"""Fig. 16 — system overhead of the Strategy Optimizer and Auto-scaler.

(a) strategy-search wall time vs the longest path length: the paper finds a
    near-optimal strategy for a 12-function path within 20 ms, a 10–100x
    reduction over alternative path-search methods (here: the constrained-
    shortest-path DP and exhaustive enumeration);
(b) the Auto-scaler's per-function optimization takes well under a
    millisecond-scale budget (paper: <0.1 ms in optimized native code).
"""

import time

from conftest import emit

from repro.core.autoscaler import AutoScaler
from repro.core.path_search import DpSearch, ExhaustiveSearch, PathSearchOptimizer
from repro.dag import linear_pipeline
from repro.hardware import ConfigurationSpace
from repro.profiler import oracle_profile

SPACE = ConfigurationSpace.default()
LENGTHS = (2, 4, 6, 8, 10, 12)
SLA_PER_FN = 0.35  # keeps the search non-trivial at every length
IT = 2.0


def _profiles(app):
    return {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}


def _time(fn, repeats=5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def regenerate():
    lines = [
        "Fig. 16a — strategy search wall time (ms) vs longest path length",
        f"{'N':>3} {'smiless top-1':>14} {'csp dp':>10} {'exhaustive':>11} "
        f"{'speedup vs dp':>13}",
    ]
    search_ms = {}
    for n in LENGTHS:
        app = linear_pipeline(n, sla=SLA_PER_FN * n)
        profiles = _profiles(app)
        fns = app.function_names
        top1 = PathSearchOptimizer(SPACE)
        dp = DpSearch(SPACE, n_bins=200)
        t_top1 = _time(lambda: top1.optimize_path(fns, profiles, IT, app.sla))
        t_dp = _time(lambda: dp.optimize_path(fns, profiles, IT, app.sla), repeats=2)
        if n <= 4:
            ex = ExhaustiveSearch(SPACE)
            t_ex = _time(
                lambda: ex.optimize_path(fns, profiles, IT, app.sla), repeats=1
            )
            ex_cell = f"{t_ex * 1e3:>10.1f}"
        else:
            ex_cell = f"{'-':>10}"
        search_ms[n] = (t_top1 * 1e3, t_dp * 1e3)
        lines.append(
            f"{n:>3} {t_top1 * 1e3:>13.2f} {t_dp * 1e3:>10.1f} {ex_cell} "
            f"{t_dp / t_top1:>12.0f}x"
        )
    lines.append("  (paper: <20 ms at N=12 with 10-100x reduction)")

    app = linear_pipeline(1, models=("TG",))
    profile = _profiles(app)[app.function_names[0]]
    scaler = AutoScaler(SPACE)
    t_scale = _time(
        lambda: scaler.plan("TG", profile, 16, 1.0, 0.8), repeats=20
    )
    lines.append(
        f"\nFig. 16b — Auto-scaler optimization: {t_scale * 1e3:.3f} ms "
        "per function (paper: <0.1 ms in native code)"
    )
    return "\n".join(lines), search_ms, t_scale


def test_fig16_overhead(benchmark, setups):
    # benchmark the headline operation itself: top-1 search on a 12-chain
    app = linear_pipeline(12, sla=SLA_PER_FN * 12)
    profiles = _profiles(app)
    optimizer = PathSearchOptimizer(SPACE)
    benchmark(
        lambda: optimizer.optimize_path(
            app.function_names, profiles, IT, app.sla
        )
    )
    text, search_ms, t_scale = regenerate()
    emit("fig16_overhead", text)
    # near-linear growth, comfortably under 20 ms at N = 12
    assert search_ms[12][0] < 20.0
    # roughly 10-100x cheaper than the DP alternative at realistic depths
    for n, (t1, t_dp) in search_ms.items():
        if n >= 6:
            assert t_dp / t1 > 5.0, n
    assert max(t_dp / t1 for t1, t_dp in search_ms.values()) >= 8.0
    # auto-scaler solves one function in well under 5 ms
    assert t_scale < 5e-3

"""Fig. 13 — the advantage of co-optimization (§VII-C3 ablations).

- SMIless-No-DAG disregards the DAG (per-function SLA shares, simultaneous
  warm-up): the paper measures +39 % cost over full SMIless;
- SMIless-Homo restricts configurations to CPU backends: under tight SLAs
  the violation ratio climbs (paper: up to 22 %).
"""

from conftest import emit

from repro.policies import SMIlessHomoPolicy, SMIlessNoDagPolicy, SMIlessPolicy
from repro.simulator import ServerlessSimulator


def run(setup, policy_cls, *, sla=None, **kw):
    app = setup.app if sla is None else setup.app.with_sla(sla)
    policy = policy_cls(
        setup.profiles,
        invocation_predictor=setup.invocation_predictor,
        interarrival_predictor=setup.interarrival_predictor,
        seed=0,
        **kw,
    )
    return ServerlessSimulator(app, setup.trace, policy, seed=3).run()


def regenerate(setups):
    lines = ["Fig. 13 — co-optimization ablations"]
    lines.append("\n(a) cost: SMIless vs SMIless-No-DAG (per app)")
    overheads = {}
    for app_name in ("amber-alert", "image-query"):
        setup = setups[app_name]
        full = run(setup, SMIlessPolicy)
        nodag = run(setup, SMIlessNoDagPolicy)
        overheads[app_name] = nodag.total_cost() / full.total_cost() - 1
        lines.append(
            f"  {app_name:<16} smiless=${full.total_cost():.4f} "
            f"no-dag=${nodag.total_cost():.4f} (+{overheads[app_name]:.0%})"
        )
    lines.append("  (paper: No-DAG costs +39%)")

    lines.append("\n(b) violations: SMIless vs SMIless-Homo at a tight SLA")
    homo_viol = {}
    for app_name, sla in (("image-query", 0.6), ("amber-alert", 0.8)):
        setup = setups[app_name]
        full = run(setup, SMIlessPolicy, sla=sla)
        homo = run(setup, SMIlessHomoPolicy, sla=sla)
        homo_viol[app_name] = (full.violation_ratio(), homo.violation_ratio())
        lines.append(
            f"  {app_name:<16} SLA={sla}s smiless={full.violation_ratio():.1%} "
            f"homo={homo.violation_ratio():.1%}"
        )
    lines.append("  (paper: Homo violates up to 22%)")
    return "\n".join(lines), overheads, homo_viol


def test_fig13_ablation(benchmark, setups):
    text, overheads, homo_viol = benchmark.pedantic(
        regenerate, args=(setups,), rounds=1, iterations=1
    )
    emit("fig13_ablation", text)
    # (a) ignoring the DAG always costs extra; the more parallel structure
    # the application has, the bigger the penalty (paper: +39 % overall)
    for app_name, overhead in overheads.items():
        assert overhead > 0.05, app_name
    assert max(overheads.values()) > 0.30
    # (b) at tight SLAs the CPU-only variant violates far more
    for app_name, (full_v, homo_v) in homo_viol.items():
        assert homo_v > full_v, app_name
        assert homo_v > 0.2, app_name

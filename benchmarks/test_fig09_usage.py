"""Fig. 9 — hardware usage and cold-start behaviour across systems.

(a) the ratio of CPU-to-GPU usage (billed dollars per backend): IceBreaker
    leans hardest on GPUs (long-lived GPU instances), SMIless balances;
(b) the fraction of container (re)initializations: Aquatope reinitializes
    most (on-demand containers), GrandSLAm/IceBreaker barely at all
    (always-on), SMIless keeps reinits low *and* off the critical path.
"""

import numpy as np
from conftest import POLICY_NAMES, emit

APPS = ("amber-alert", "image-query", "voice-assistant")


def regenerate(e2e_runs):
    lines = ["Fig. 9a — billed dollars per backend (CPU / GPU)"]
    lines.append(
        f"{'policy':<12} " + " ".join(f"{a:>21}" for a in APPS)
    )
    gpu_share = {}
    for policy in POLICY_NAMES:
        cells = []
        shares = []
        for app in APPS:
            m = e2e_runs[(app, policy)]
            cpu, gpu = m.summary()["cpu_cost"], m.summary()["gpu_cost"]
            total = cpu + gpu
            shares.append(gpu / total if total else 0.0)
            cells.append(f"{cpu:>9.4f}/{gpu:>9.4f}")
        gpu_share[policy] = float(np.mean(shares))
        lines.append(f"{policy:<12} " + " ".join(f"{c:>21}" for c in cells))
    lines.append("\nmean GPU share of billed cost:")
    for policy in POLICY_NAMES:
        lines.append(f"  {policy:<12} {gpu_share[policy]:>6.1%}")

    lines.append("\nFig. 9b — fraction of stage executions hitting a (re)init")
    reinit = {}
    lines.append(f"{'policy':<12} " + " ".join(f"{a:>15}" for a in APPS) + f" {'mean':>7}")
    for policy in POLICY_NAMES:
        fracs = [e2e_runs[(app, policy)].reinit_fraction() for app in APPS]
        reinit[policy] = float(np.mean(fracs))
        lines.append(
            f"{policy:<12} "
            + " ".join(f"{f:>14.1%}" for f in fracs)
            + f" {reinit[policy]:>6.1%}"
        )
    return "\n".join(lines), gpu_share, reinit


def test_fig09_usage(benchmark, e2e_runs):
    text, gpu_share, reinit = benchmark.pedantic(
        regenerate, args=(e2e_runs,), rounds=1, iterations=1
    )
    emit("fig09_usage", text)
    # Fig. 9a: IceBreaker is the most GPU-heavy system.
    assert gpu_share["icebreaker"] >= gpu_share["smiless"]
    # Fig. 9b: Aquatope reinitializes the most; always-on systems barely.
    managed = ("smiless", "icebreaker", "grandslam", "aquatope")
    assert reinit["aquatope"] == max(reinit[p] for p in managed)
    assert reinit["grandslam"] < 0.10
    assert reinit["smiless"] < 0.15

"""Fig. 12 — prediction accuracy of the Online Predictor vs baselines.

(a) invocation-number prediction: the bucketized LSTM classifier's
    under-estimation error vs XGBoost (GBRT stand-in), ARIMA and
    IceBreaker's Fourier predictor (paper: SMIless ~3 %, best of all);
(b) inter-arrival prediction: MAPE and over-estimation probability of the
    dual-LSTM vs the single-input SMIless-S and ARIMA (paper: MAPE 2.45 %,
    over-estimation <0.64 %, ~10x fewer over-estimations than SMIless-S).

Train on 1 h, test on held-out traffic of the same (spiky) regime, whose
windowed counts have a variance-to-mean ratio above two as in §VII-C2.
"""

import numpy as np
from conftest import emit

from repro.predictor import (
    ArimaPredictor,
    FipPredictor,
    GbrtPredictor,
    InterArrivalPredictor,
    InvocationPredictor,
)
from repro.predictor.interarrival import gaps_from_counts
from repro.predictor.metrics import (
    mean_absolute_percentage_error,
    overestimation_rate,
    underestimation_rate,
)
from repro.workload import AzureLikeWorkload

TRAIN_SECONDS = 3600.0
TEST_SECONDS = 4 * 3600.0  # scaled-down stand-in for the 21 h test set


def regenerate():
    train_trace = AzureLikeWorkload.preset("spiky", seed=30).generate(TRAIN_SECONDS)
    test_trace = AzureLikeWorkload.preset("spiky", seed=31).generate(TEST_SECONDS)
    train = train_trace.counts_per_window(1.0)
    test = test_trace.counts_per_window(1.0)
    vmr = test_trace.variance_to_mean_ratio(1.0)

    # -- (a) invocation number ------------------------------------------------
    under = {}
    lstm = InvocationPredictor(bucket_size=1, n_buckets=16, epochs=4, seed=0)
    lstm.fit(train)
    a, p = lstm.rolling_predict(test)
    under["smiless (lstm)"] = underestimation_rate(a, p)
    for name, model in (
        ("gbrt (xgboost)", GbrtPredictor(lags=12)),
        ("arima", ArimaPredictor(p=8)),
        ("fip (icebreaker)", FipPredictor(n_harmonics=8)),
    ):
        model.fit(train)
        a, p = model.rolling_predict(test)
        under[name] = underestimation_rate(a, np.round(p))

    # -- (b) inter-arrival time ----------------------------------------------
    ia = {}
    for name, dual in (("smiless (dual)", True), ("smiless-s (single)", False)):
        model = InterArrivalPredictor(dual_input=dual, epochs=15, seed=0)
        model.fit(train)
        a, p = model.evaluate(test)
        ia[name] = (
            mean_absolute_percentage_error(a, p),
            overestimation_rate(a, p),
        )
    gaps_train = gaps_from_counts(train)
    gaps_test = gaps_from_counts(test)
    arima = ArimaPredictor(p=6).fit(gaps_train)
    a, p = arima.rolling_predict(gaps_test)
    ia["arima"] = (
        mean_absolute_percentage_error(a, p),
        overestimation_rate(a, p),
    )

    lines = [
        f"Fig. 12 — prediction accuracy (test dispersion VMR={vmr:.1f})",
        "\n(a) invocation-number under-estimation rate "
        "(under-estimates cause SLA violations)",
    ]
    for name, u in sorted(under.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:<18} {u:>6.1%}")
    lines.append("  (paper: SMIless ~3%, beating all baselines)")
    lines.append(
        "\n(b) inter-arrival time: MAPE / over-estimation rate "
        "(over-estimates delay pre-warming)"
    )
    for name, (m, o) in ia.items():
        lines.append(f"  {name:<18} MAPE={m:>5.1f}%  over={o:>6.2%}")
    lines.append(
        "  (paper: dual-LSTM MAPE 2.45%, over <0.64%, ~10x below single-input)"
    )
    return "\n".join(lines), under, ia, vmr


def test_fig12_prediction(benchmark):
    text, under, ia, vmr = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    emit("fig12_prediction", text)
    assert vmr > 2.0  # §VII-C2 test-set dispersion
    # (a) the classifier under-estimates least
    assert under["smiless (lstm)"] == min(under.values())
    assert under["smiless (lstm)"] < 0.05
    # (b) the asymmetric LSTM over-estimates far less than ARIMA
    assert ia["smiless (dual)"][1] < ia["arima"][1]
    # and achieves competitive MAPE
    assert ia["smiless (dual)"][0] <= ia["arima"][0] * 1.6

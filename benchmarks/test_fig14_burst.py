"""Fig. 14 — adaptation to bursty arrivals.

Serves the Voice Assistant under the bursty regime and inspects the
busiest 60-second window:

(a) the number of pods tracks the number of invocations (fast response to
    workload changes);
(b) the CPU-to-GPU instance ratio rises during the burst — scale-out lands
    on fast-starting CPU instances while the few GPU instances absorb
    batches (§VII-D).
"""

import numpy as np
from conftest import emit


def regenerate(burst_setup):
    m = burst_setup.run("smiless")
    pods = m.pods_over_time()
    arrivals = m.arrivals_over_time()
    counts = arrivals[:, 1]
    window = 60
    sums = np.convolve(counts, np.ones(window), mode="valid")
    start = int(np.argmax(sums))
    sl = slice(start, start + window)

    lines = [
        "Fig. 14 — burst adaptation (voice-assistant, busiest 60s window "
        f"starting t={start}s, {int(sums[start])} invocations)",
        f"{'t':>5} {'arrivals':>9} {'cpu pods':>9} {'gpu pods':>9}",
    ]
    for k in range(start, start + window, 3):
        lines.append(
            f"{arrivals[k, 0]:>5.0f} {int(arrivals[k, 1]):>9} "
            f"{int(pods[k, 1]):>9} {int(pods[k, 2]):>9}"
        )

    # Calm windows: no burst-level count within the trailing 20 s (other
    # bursts and their holdover would otherwise contaminate the baseline).
    hold = 20
    rolling_peak = np.array(
        [counts[max(0, k - hold): k + 1].max() for k in range(len(counts))]
    )
    calm_mask = rolling_peak < 2
    calm_mask[sl] = False
    mean_burst = pods[sl, 1:].mean(axis=0)  # (cpu, gpu)
    mean_calm = pods[calm_mask, 1:].mean(axis=0)
    delta = mean_burst - mean_calm
    lines.append(
        f"\nmean pods — burst window cpu={mean_burst[0]:.1f} gpu={mean_burst[1]:.1f}"
        f" vs rest of run cpu={mean_calm[0]:.1f} gpu={mean_calm[1]:.1f}"
    )
    lines.append(
        f"scale-out delta: cpu +{delta[0]:.1f} pods, gpu +{delta[1]:.1f} pods "
        "(paper: the CPU share rises dramatically in bursts — GPUs batch, "
        "CPUs scale out)"
    )
    # responsiveness: correlation between (5s-smoothed) arrivals and the
    # pod count, at the best lag within the scale-out reaction range
    smooth = np.convolve(counts, np.ones(5) / 5.0, mode="same")
    corr = max(
        float(np.corrcoef(smooth[sl][:-lag], pods[sl, 1][lag:])[0, 1])
        for lag in range(1, 7)
    )
    lines.append(f"arrivals->pods correlation (best lag 1-6s): {corr:.2f}")
    return "\n".join(lines), mean_burst, mean_calm, delta, corr


def test_fig14_burst(benchmark, burst_setup):
    text, mean_burst, mean_calm, delta, corr = benchmark.pedantic(
        regenerate, args=(burst_setup,), rounds=1, iterations=1
    )
    emit("fig14_burst", text)
    # (a) the fleet grows substantially during the burst...
    assert mean_burst.sum() > 1.5 * mean_calm.sum()
    # ...tracking arrivals within seconds
    assert corr > 0.25
    # (b) the scale-out is CPU-dominated (fast cold starts), as in Fig. 14b
    assert delta[0] >= delta[1]
    assert delta[0] > 1.0

"""Fig. 8 — E2E comparison: overall cost and latency distribution.

Every policy serves every Fig. 7 application on its Azure-like trace.
Paper shapes this bench checks:

- SMIless achieves the lowest cost of all real systems while keeping SLA
  violations near zero, approaching OPT (paper: within ~1.5x overall);
- IceBreaker is the most expensive (paper: up to 5.73x SMIless);
- GrandSLAm has low latency but ~2.46x SMIless' cost;
- Orion and Aquatope trade cost for high violation ratios (up to ~40 %).
"""

import numpy as np
from conftest import POLICY_NAMES, emit


def regenerate(e2e_runs):
    lines = [
        "Fig. 8 — overall execution cost and E2E latency distribution",
    ]
    summary: dict[str, dict[str, float]] = {}
    for app_name in ("amber-alert", "image-query", "voice-assistant"):
        lines.append(f"\n[{app_name}]")
        lines.append(
            f"{'policy':<12} {'cost':>9} {'x smiless':>10} {'viol':>7} "
            f"{'p50':>6} {'p90':>6} {'p99':>6}"
        )
        base = e2e_runs[(app_name, "smiless")].total_cost()
        for policy in POLICY_NAMES:
            m = e2e_runs[(app_name, policy)]
            lat = m.latencies()
            row = dict(
                cost=m.total_cost(),
                rel=m.total_cost() / base,
                viol=m.violation_ratio(),
            )
            summary.setdefault(policy, {}).setdefault("costs", []).append(  # type: ignore[union-attr]
                row["cost"]
            )
            summary[policy].setdefault("rels", []).append(row["rel"])  # type: ignore[union-attr]
            summary[policy].setdefault("viols", []).append(row["viol"])  # type: ignore[union-attr]
            lines.append(
                f"{policy:<12} ${row['cost']:>8.4f} {row['rel']:>9.2f}x "
                f"{row['viol']:>6.1%} "
                f"{np.percentile(lat, 50):>5.2f}s {np.percentile(lat, 90):>5.2f}s "
                f"{np.percentile(lat, 99):>5.2f}s"
            )
    lines.append("\n[aggregate over the three applications]")
    lines.append(f"{'policy':<12} {'total cost':>11} {'x smiless':>10} {'mean viol':>10}")
    agg = {}
    for policy in POLICY_NAMES:
        total = float(np.sum(summary[policy]["costs"]))
        viol = float(np.mean(summary[policy]["viols"]))
        agg[policy] = dict(total=total, viol=viol)
    base_total = agg["smiless"]["total"]
    for policy in POLICY_NAMES:
        lines.append(
            f"{policy:<12} ${agg[policy]['total']:>10.4f} "
            f"{agg[policy]['total'] / base_total:>9.2f}x "
            f"{agg[policy]['viol']:>9.1%}"
        )
    return "\n".join(lines), agg


def test_fig08_e2e(benchmark, e2e_runs):
    text, agg = benchmark.pedantic(
        regenerate, args=(e2e_runs,), rounds=1, iterations=1
    )
    emit("fig08_e2e", text)
    # SMIless: near-zero violations at the lowest cost among systems that
    # also keep violations low, approaching OPT (paper: within ~1.5x).
    assert agg["smiless"]["viol"] < 0.10
    assert agg["smiless"]["total"] <= 2.0 * agg["opt"]["total"]
    for rival in ("icebreaker", "grandslam"):
        assert agg[rival]["total"] > 1.3 * agg["smiless"]["total"]
    # IceBreaker is the costliest system (paper: up to 5.73x SMIless).
    assert agg["icebreaker"]["total"] == max(
        agg[p]["total"] for p in POLICY_NAMES if p != "opt"
    )
    # Orion / Aquatope only undercut cost by violating massively.
    assert agg["orion"]["viol"] > 3 * agg["smiless"]["viol"]
    assert agg["aquatope"]["viol"] > 3 * agg["smiless"]["viol"]

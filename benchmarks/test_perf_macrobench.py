"""Macro benchmark: million-invocation co-runs in bounded memory.

Drives ``python -m repro.cli bench --macro`` — the three Fig. 7 apps
co-run on one cluster under the ``flood`` preset with ``retention="sketch"``
— in fresh subprocesses so each run's peak RSS (``ru_maxrss``) is its own,
and writes the headline record to ``BENCH_macro.json`` at the repository
root.

Two modes:

- **full** (default): a 1,000,000-invocation sketch run plus a
  100,000-invocation sketch run; asserts the *scale plane contract* —
  peak RSS stays flat as the trace grows 10x (bounded-memory retention)
  — plus a 1,000,000-invocation run under the ``smiless`` policy
  (``BENCH_macro_smiless.json``) proving the optimized policy path
  completes at scale, and an in-process 100k-aggregate co-run checks
  sketch p50/p99 against full-retention reference latencies within the
  sketch's documented rank-error bound;
- **smoke** (``SMILESS_BENCH_SMOKE=1``): a 100,000-invocation sketch run
  plus a 20,000-invocation ``smiless`` co-run.  When a recorded smoke
  baseline exists
  (``benchmarks/results/BENCH_macro_smoke_baseline.json``), the run
  fails if simulation wall-clock regresses past ``MAX_SMOKE_REGRESSION``
  times the recording.  Used by CI.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import numpy as np

REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_macro.json"
SMILESS_BENCH_JSON = REPO_ROOT / "BENCH_macro_smiless.json"
SHARDED_BENCH_JSON = REPO_ROOT / "BENCH_macro_sharded.json"
SMOKE_BASELINE_JSON = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_macro_smoke_baseline.json"
)

SMOKE = bool(os.environ.get("SMILESS_BENCH_SMOKE"))

#: Wall-clock regression gate for smoke mode (same policy as the
#: microbench smoke gate).
MAX_SMOKE_REGRESSION = 1.3

#: RSS flatness gate: the 1M-invocation run may use at most this factor
#: of the 100k run's peak RSS.  Sketch retention is O(1) in the trace
#: length, so the only growth allowed is allocator noise — a 10x trace
#: with anywhere near 10x memory fails loudly.
MAX_RSS_GROWTH = 1.35


def _run_bench(
    invocations: int,
    out: pathlib.Path,
    policy: str = "grandslam",
    shards: int | None = None,
) -> dict:
    """Run ``repro bench --macro`` in a fresh subprocess; return its record."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "bench",
        "--macro",
        "--invocations",
        str(invocations),
        "--policy",
        policy,
        "--out",
        str(out),
    ]
    if shards is not None:
        cmd += ["--shards", str(shards)]
    subprocess.run(cmd, check=True, cwd=REPO_ROOT, env=env)
    return json.loads(out.read_text())


def _check_record(record: dict, invocations: int, policy: str = "grandslam") -> None:
    assert record["generated_by"] == "repro bench --macro"
    assert record["invocations_target"] == invocations
    assert record["policy"] == policy
    assert record["retention"] == "sketch"
    # The flood regime is stable (no unbounded queueing), so nearly every
    # arrival completes within the horizon.
    assert record["completed"] >= 0.95 * invocations
    assert record["peak_rss_mb"] > 0
    assert record["events_per_second"] > 0
    assert set(record["apps"]) == {"amber-alert", "image-query", "voice-assistant"}


def test_macro_bench(tmp_path):
    if SMOKE:
        record = _run_bench(100_000, BENCH_JSON)
        _check_record(record, 100_000)
        print(
            f"\n[perf macrobench] mode=smoke "
            f"wall={record['wall_clock_seconds']:.1f}s "
            f"rss={record['peak_rss_mb']:.0f}MB"
        )
        # The policy path at macro scale: a short smiless co-run must
        # complete, exercising prediction caching, vectorized
        # co-optimization and directive reuse under the flood preset.
        smiless = _run_bench(
            20_000, tmp_path / "macro_smiless_smoke.json", policy="smiless"
        )
        _check_record(smiless, 20_000, policy="smiless")
        print(
            f"[perf macrobench] smiless smoke "
            f"wall={smiless['wall_clock_seconds']:.1f}s "
            f"({smiless['events_per_second']:,.0f} events/s)"
        )
        if SMOKE_BASELINE_JSON.exists():
            recorded = json.loads(SMOKE_BASELINE_JSON.read_text())
            limit = MAX_SMOKE_REGRESSION * recorded["wall_clock_seconds"]
            assert record["wall_clock_seconds"] <= limit, (
                f"100k macro co-run took {record['wall_clock_seconds']:.1f}s, "
                f"past {MAX_SMOKE_REGRESSION}x the recorded "
                f"{recorded['wall_clock_seconds']:.1f}s baseline "
                f"(recorded at {recorded.get('recorded_at', 'unknown')})"
            )
        return

    small = _run_bench(100_000, tmp_path / "macro_100k.json")
    _check_record(small, 100_000)
    big = _run_bench(1_000_000, BENCH_JSON)
    _check_record(big, 1_000_000)
    # Tentpole record: one million invocations through the *policy* path
    # (smiless end-to-end: predictors, co-optimization, directives) in
    # bounded memory, persisted at the repo root alongside BENCH_macro.json.
    smiless_big = _run_bench(1_000_000, SMILESS_BENCH_JSON, policy="smiless")
    _check_record(smiless_big, 1_000_000, policy="smiless")
    print(
        f"[perf macrobench] smiless 1M: "
        f"wall={smiless_big['wall_clock_seconds']:.1f}s "
        f"rss={smiless_big['peak_rss_mb']:.0f}MB "
        f"({smiless_big['events_per_second']:,.0f} events/s)"
    )

    # The tentpole assert: memory does not scale with the trace.
    growth = big["peak_rss_mb"] / small["peak_rss_mb"]
    print(
        f"\n[perf macrobench] mode=full "
        f"1M: wall={big['wall_clock_seconds']:.1f}s "
        f"rss={big['peak_rss_mb']:.0f}MB "
        f"({big['events_per_second']:,.0f} events/s); "
        f"100k rss={small['peak_rss_mb']:.0f}MB; growth={growth:.2f}x"
    )
    assert growth <= MAX_RSS_GROWTH, (
        f"peak RSS grew {growth:.2f}x from 100k to 1M invocations "
        f"(limit {MAX_RSS_GROWTH}x) — sketch retention is leaking records"
    )


def _check_sharded_record(record: dict, invocations: int) -> None:
    assert record["generated_by"] == "repro bench --macro --shards"
    assert record["invocations_target"] == invocations
    assert record["retention"] == "sketch"
    assert record["completed"] >= 0.95 * invocations
    assert record["shards_requested"] >= 2
    assert record["workers_effective"] >= 1
    assert record["slices_per_app"] >= 1
    # The parity gate is internal to cmd_bench: when more than one worker
    # actually ran, the record only exists because the merged metrics
    # matched a 1-shard reference field-by-field (exit 1 otherwise).  A
    # clamped single-worker run executes the identical serial code path
    # and records why no second pass was run.
    if record["workers_effective"] > 1:
        assert record["parity"] == "exact"
        assert record["speedup_vs_one_shard"] > 0
    else:
        assert record["parity"].startswith("skipped")
        assert "clamp_note" in record


def test_macro_bench_sharded(tmp_path):
    """Sharded 10M-invocation record (full) / sharded smoke (CI).

    Full mode writes the committed ``BENCH_macro_sharded.json``: a
    10,000,000-invocation co-run fanned over ``--shards 4``.  The >= 2.5x
    events/s speedup over the 1-shard reference is asserted only when the
    host actually granted >= 4 workers — on smaller hosts the clamp note
    documents why the pool was narrowed and the parity contract is what
    remains testable.
    """
    if SMOKE:
        record = _run_bench(
            50_000, tmp_path / "macro_sharded_smoke.json", shards=2
        )
        _check_sharded_record(record, 50_000)
        print(
            f"\n[perf macrobench] sharded smoke "
            f"workers={record['workers_effective']} "
            f"wall={record['wall_clock_seconds']:.1f}s "
            f"({record['events_per_second']:,.0f} events/s) "
            f"parity={record['parity']}"
        )
        return

    record = _run_bench(10_000_000, SHARDED_BENCH_JSON, shards=4)
    _check_sharded_record(record, 10_000_000)
    print(
        f"\n[perf macrobench] sharded 10M: "
        f"workers={record['workers_effective']}/{record['shards_requested']} "
        f"wall={record['wall_clock_seconds']:.1f}s "
        f"rss={record['peak_rss_mb']:.0f}MB "
        f"({record['events_per_second']:,.0f} events/s) "
        f"parity={record['parity']}"
    )
    if record["workers_effective"] >= 4:
        assert record["speedup_vs_one_shard"] >= 2.5, (
            f"4-way sharding delivered only "
            f"{record['speedup_vs_one_shard']:.2f}x over the 1-shard "
            f"reference on a >=4-core host (floor 2.5x)"
        )


def test_sharded_differential_100k():
    """4-shard vs 1-shard merged metrics, field by field, at 100k aggregate.

    The full-scale version of ``tests/test_sharding_differential.py``:
    same plan, same seeds, 4 shards vs 1 — every non-distributional
    summary field and raw counter must match bit for bit after the
    barrier merge.
    """
    if SMOKE:
        import pytest

        pytest.skip("100k sharded differential runs in full mode only")

    import math

    from repro.experiments.parallel import EnvSpec
    from repro.experiments.runners import APP_BUILDERS
    from repro.sharding import ShardPlan, run_sharded
    from repro.workload.azure import PRESETS

    apps = tuple(sorted(APP_BUILDERS))
    rate = len(apps) / PRESETS["flood"].mean_gap
    duration = float(np.ceil(100_000 / rate))
    envs = tuple(
        EnvSpec(app=app, preset="flood", sla=2.0, duration=duration)
        for app in apps
    )
    plan4 = ShardPlan.for_apps(apps, n_shards=4, slices_per_app=4)
    plan1 = ShardPlan.for_apps(apps, n_shards=1, slices_per_app=4)
    reference = run_sharded(plan1, envs, "grandslam", processes=1)
    sharded = run_sharded(plan4, envs, "grandslam")
    assert sharded == reference  # bitwise: every unit's accumulator states
    merged, ref = sharded.per_app_metrics(), reference.per_app_metrics()
    total = 0
    for app in ref:
        ms, rs = merged[app].summary(), ref[app].summary()
        for key in ms:
            a, b = ms[key], rs[key]
            assert a == b or (math.isnan(a) and math.isnan(b)), (app, key)
        assert merged[app].cost_breakdown() == ref[app].cost_breakdown()
        total += merged[app].n_completed
    assert total >= 0.95 * 100_000
    print(
        f"\n[perf macrobench] sharded differential: {total} invocations, "
        f"4-shard == 1-shard bit for bit"
    )


def test_sketch_quantiles_match_full_reference_at_scale():
    """Sketch p50/p99 vs full-retention reference at ~100k aggregate.

    Runs the macro co-run twice in-process — identical scenario, the two
    retention modes — and checks every app's sketch quantiles against the
    exact latencies the full run retained, within the sketch's documented
    rank-error bound.  (The simulations themselves are bit-identical; see
    tests/test_retention_differential.py.)
    """
    if SMOKE:
        import pytest

        pytest.skip("full-reference comparison runs in full mode only")

    from repro.experiments.runners import APP_BUILDERS, build_environment
    from repro.simulator import Deployment, MultiAppSimulator
    from repro.workload.azure import PRESETS

    rate = len(APP_BUILDERS) / PRESETS["flood"].mean_gap
    duration = float(np.ceil(100_000 / rate))
    envs = [
        build_environment(name, preset="flood", duration=duration)
        for name in sorted(APP_BUILDERS)
    ]

    def co_run(retention: str):
        deployments = [
            Deployment(e.app, e.trace, e.make_policy("grandslam")) for e in envs
        ]
        return MultiAppSimulator(
            deployments, seed=3, retention=retention
        ).run()

    full = co_run("full")
    sketch = co_run("sketch")
    for app, full_metrics in full.items():
        lat = np.sort(full_metrics.latencies())
        sk = sketch[app]
        assert sk.n_completed == lat.size
        bound = sk.latency_sketch.rank_error_bound
        for q in (50.0, 99.0):
            value = sk.latency_percentile(q)
            lo = np.searchsorted(lat, value, side="left") / lat.size
            hi = np.searchsorted(lat, value, side="right") / lat.size
            target = q / 100.0
            err = (
                0.0
                if lo <= target <= hi
                else min(abs(target - lo), abs(target - hi))
            )
            assert err <= bound + 1e-12, (
                f"{app} p{q}: rank error {err:.5f} > bound {bound:.5f} "
                f"(n={lat.size})"
            )

"""Fig. 11 — offline profiling results.

(a) the influence of the initialization-time measurement: planning with the
    plain mean makes pre-warms chronically late (the paper measures a 34 %
    SLA violation ratio), while the robust mu + 3*sigma estimate avoids
    the violations at slightly earlier warm-ups;
(b) the accuracy of the fitted inference-time models: SMAPE below 20 % per
    function, below ~8 % on average, with GPU fits more precise than CPU
    fits (§VII-C1).
"""

import numpy as np
from conftest import emit

from repro.dag.models import MODEL_REGISTRY
from repro.hardware import GroundTruthPerformance, HardwareConfig
from repro.policies import SMIlessPolicy
from repro.profiler import OfflineProfiler, smape
from repro.simulator import ServerlessSimulator


def fig11a(setup):
    """Violation ratio with mean vs robust init estimates.

    ``prewarm_safety`` is disabled so warm-up timing depends *only* on the
    initialization estimate, isolating the measurement-policy effect: with
    the plain mean, roughly half of all initializations finish after their
    scheduled readiness and land on the critical path.
    """
    out = {}
    for label, n_sigma in (("mean (n=0)", 0.0), ("mu+1s", 1.0), ("mu+3s", 3.0)):
        profiles = {
            fn: p.with_n_sigma(n_sigma) for fn, p in setup.profiles.items()
        }
        policy = SMIlessPolicy(
            profiles,
            invocation_predictor=setup.invocation_predictor,
            interarrival_predictor=setup.interarrival_predictor,
            prewarm_safety=0.0,
            seed=0,
        )
        m = ServerlessSimulator(setup.app, setup.trace, policy, seed=3).run()
        out[label] = m.violation_ratio()
    return out


def fig11b():
    """Per-function SMAPE of the fitted latency models, CPU vs GPU."""
    profiler = OfflineProfiler()
    rows = {}
    rng = np.random.default_rng(0)
    for name, info in MODEL_REGISTRY.items():
        oracle = GroundTruthPerformance(info.profile, rng=int(rng.integers(2**31)))
        fitted = profiler.profile_function(name, oracle)
        cpu_cfgs = [HardwareConfig.cpu(c) for c in (1, 2, 4, 8, 16)]
        gpu_cfgs = [HardwareConfig.gpu(k / 10) for k in range(1, 11)]
        batches = (1, 2, 4, 8)
        def err(cfgs):
            actual, pred = [], []
            for cfg in cfgs:
                for b in batches:
                    actual.append(info.profile.expected_inference_time(cfg, b))
                    pred.append(fitted.inference_time(cfg, b))
            return smape(np.array(actual), np.array(pred))
        rows[name] = (err(cpu_cfgs), err(gpu_cfgs))
    return rows


def regenerate(setup):
    viol = fig11a(setup)
    errors = fig11b()
    lines = ["Fig. 11a — SLA violation ratio vs init-time measurement"]
    for label, v in viol.items():
        lines.append(f"  {label:<11} {v:>6.1%}")
    lines.append("  (paper: mean -> 34%, mu+3sigma -> 0%)")
    lines.append("\nFig. 11b — SMAPE of fitted inference-time models (%)")
    lines.append(f"{'model':>6} {'cpu':>7} {'gpu':>7}")
    for name, (cpu_err, gpu_err) in errors.items():
        lines.append(f"{name:>6} {cpu_err:>6.1f}% {gpu_err:>6.1f}%")
    cpu_mean = np.mean([e[0] for e in errors.values()])
    gpu_mean = np.mean([e[1] for e in errors.values()])
    lines.append(f"{'mean':>6} {cpu_mean:>6.1f}% {gpu_mean:>6.1f}%")
    lines.append("  (paper: every function <20%, average <8%, GPU more precise)")
    return "\n".join(lines), viol, errors


def test_fig11_profiling(benchmark, setups):
    setup = setups["amber-alert"]
    text, viol, errors = benchmark.pedantic(
        regenerate, args=(setup,), rounds=1, iterations=1
    )
    emit("fig11_profiling", text)
    # (a) robust estimation removes most violations the mean causes
    assert viol["mu+3s"] < viol["mean (n=0)"]
    assert viol["mu+3s"] < 0.15
    # (b) the paper's accuracy targets
    for name, (cpu_err, gpu_err) in errors.items():
        assert cpu_err < 20.0, name
        assert gpu_err < 20.0, name
    assert np.mean([e[1] for e in errors.values()]) < np.mean(
        [e[0] for e in errors.values()]
    )
    assert np.mean([e for pair in errors.values() for e in pair]) < 8.0

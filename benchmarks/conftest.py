"""Shared fixtures for the figure-regeneration benchmarks.

Each ``test_figXX_*`` benchmark regenerates the rows/series of one paper
table or figure and writes them to ``benchmarks/results/<name>.txt`` (the
text is also printed; run ``pytest benchmarks/ --benchmark-only -s`` to see
it inline).  EXPERIMENTS.md records the paper-vs-measured comparison.

Heavy artifacts — offline profiles, trained predictors, the full Fig. 8
policy-comparison runs — are session-scoped so the suite stays fast.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

import pytest

from repro.dag import amber_alert, image_query, voice_assistant
from repro.dag.graph import AppDAG
from repro.policies import (
    AquatopePolicy,
    GrandSLAmPolicy,
    IceBreakerPolicy,
    OptimalPolicy,
    OrionPolicy,
    SMIlessPolicy,
)
from repro.predictor import InterArrivalPredictor, InvocationPredictor
from repro.profiler import OfflineProfiler, oracle_profile
from repro.simulator import ServerlessSimulator
from repro.workload import AzureLikeWorkload, Trace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Evaluation duration per app (the paper runs 2 h; 600 s keeps the full
#: bench suite tractable while preserving every qualitative comparison).
EVAL_DURATION = 600.0
TRAIN_DURATION = 3600.0

#: Each Fig. 7 application is driven by its own workload regime.  The
#: burst regime is studied separately (Fig. 14/15, ``burst_setup``).
APP_PRESETS = {
    "amber-alert": "steady",
    "image-query": "diurnal",
    "voice-assistant": "steady",
}

POLICY_NAMES = ("smiless", "orion", "icebreaker", "grandslam", "aquatope", "opt")


@dataclass
class AppSetup:
    """Everything one application's experiments need."""

    app: AppDAG
    profiles: dict
    oracle: dict
    train_counts: "object"
    trace: Trace
    invocation_predictor: InvocationPredictor
    interarrival_predictor: InterArrivalPredictor

    def make_policy(self, name: str):
        """Fresh policy instance by name (trained predictors shared)."""
        if name == "smiless":
            return SMIlessPolicy(
                self.profiles,
                invocation_predictor=self.invocation_predictor,
                interarrival_predictor=self.interarrival_predictor,
                seed=0,
            )
        if name == "orion":
            return OrionPolicy(self.profiles)
        if name == "icebreaker":
            return IceBreakerPolicy(self.profiles, train_counts=self.train_counts)
        if name == "grandslam":
            return GrandSLAmPolicy(self.profiles)
        if name == "aquatope":
            return AquatopePolicy(self.profiles)
        if name == "opt":
            return OptimalPolicy(self.oracle, self.trace)
        raise KeyError(name)

    def run(self, policy_name: str, *, trace: Trace | None = None, seed: int = 3):
        """Simulate one policy on this app's trace."""
        return ServerlessSimulator(
            self.app, trace or self.trace, self.make_policy(policy_name), seed=seed
        ).run()


def _build_setup(app: AppDAG, preset: str, seed_base: int) -> AppSetup:
    profiles = OfflineProfiler().profile_app(app, rng=seed_base)
    oracle = {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}
    train = AzureLikeWorkload.preset(preset, seed=seed_base).generate(TRAIN_DURATION)
    trace = AzureLikeWorkload.preset(preset, seed=seed_base + 100).generate(
        EVAL_DURATION
    )
    counts = train.counts_per_window(1.0)
    inv_pred = InvocationPredictor(
        bucket_size=app.min_batch(), n_buckets=16, epochs=4, seed=0
    ).fit(counts)
    ia_pred = InterArrivalPredictor(epochs=15, seed=0).fit(counts)
    return AppSetup(
        app=app,
        profiles=profiles,
        oracle=oracle,
        train_counts=counts,
        trace=trace,
        invocation_predictor=inv_pred,
        interarrival_predictor=ia_pred,
    )


@pytest.fixture(scope="session")
def setups() -> dict[str, AppSetup]:
    """Profiled + predictor-trained setups for the three Fig. 7 apps."""
    apps = {
        "amber-alert": amber_alert(),
        "image-query": image_query(),
        "voice-assistant": voice_assistant(),
    }
    return {
        name: _build_setup(app, APP_PRESETS[name], seed_base=11 + i)
        for i, (name, app) in enumerate(apps.items())
    }


@pytest.fixture(scope="session")
def burst_setup() -> AppSetup:
    """Voice Assistant under the bursty regime (Fig. 14/15)."""
    return _build_setup(voice_assistant(), "bursty", seed_base=21)


@pytest.fixture(scope="session")
def e2e_runs(setups):
    """The Fig. 8/9 grid: every policy on every application."""
    runs = {}
    for app_name, setup in setups.items():
        for policy_name in POLICY_NAMES:
            runs[(app_name, policy_name)] = setup.run(policy_name)
    return runs


def emit(name: str, text: str) -> str:
    """Print a regenerated table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n{text}")
    return text

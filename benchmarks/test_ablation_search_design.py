"""Design-choice ablations for the Strategy Optimizer (DESIGN.md §5).

The paper deploys top-1 path search and argues top-K would cost more search
time for little gain (§V-C1), and relies on the Workflow Manager's
combining step to recover cost after decomposition (§V-C2).  This bench
quantifies both choices on the evaluation applications:

- top-1 vs top-4 vs top-16 beam: solution cost and nodes explored;
- combining (rebalance) on vs off: whole-DAG plan cost vs the exhaustive
  optimum.
"""

import time

from conftest import emit

from repro.core.path_search import ExhaustiveSearch, PathSearchOptimizer
from repro.core.workflow import WorkflowManager
from repro.dag import image_query, linear_pipeline, voice_assistant
from repro.hardware import ConfigurationSpace
from repro.profiler import oracle_profile

SPACE = ConfigurationSpace.default()
IT = 3.0


def _profiles(app):
    return {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}


def topk_study():
    app = linear_pipeline(8, sla=0.35 * 8)
    profiles = _profiles(app)
    fns = app.function_names
    rows = []
    for k in (1, 4, 16):
        optimizer = PathSearchOptimizer(SPACE, top_k=k)
        t0 = time.perf_counter()
        res = optimizer.optimize_path(fns, profiles, IT, app.sla)
        dt = time.perf_counter() - t0
        rows.append((k, res.cost, res.nodes_explored, dt * 1e3))
    return rows


def combining_study():
    out = {}
    for app in (image_query(), voice_assistant()):
        profiles = _profiles(app)
        manager = WorkflowManager(SPACE)
        full = manager.optimize(app, profiles, IT)

        # disable the cost-recovery passes: per-path merge only
        plain = WorkflowManager(SPACE)
        plain._reduce_cost = lambda a, b, c, d, e, f: b  # type: ignore[assignment]
        plain._rebalance = (  # type: ignore[assignment]
            lambda a, b, c, d, e, f, max_rounds=8: b
        )
        merged_only = plain.optimize(app, profiles, IT)

        opt = ExhaustiveSearch(SPACE).optimize_app(app, profiles, IT)
        out[app.name] = (merged_only.cost, full.cost, opt.cost)
    return out


def regenerate():
    lines = ["Search-design ablations"]
    lines.append("\n(a) top-K beam width on an 8-function chain")
    lines.append(f"{'K':>4} {'cost':>12} {'nodes':>7} {'time':>8}")
    topk = topk_study()
    for k, cost, nodes, ms in topk:
        lines.append(f"{k:>4} {cost:>11.3e}$ {nodes:>7} {ms:>7.2f}ms")
    lines.append("  (paper: top-1 deployed; deeper beams cost search time)")

    lines.append("\n(b) Workflow Manager combining (merge-only vs full vs OPT)")
    combining = combining_study()
    for name, (merged, full, opt) in combining.items():
        lines.append(
            f"  {name:<16} merge-only={merged:.3e} combined={full:.3e} "
            f"opt={opt:.3e} (recovered {merged / full - 1:+.0%})"
        )
    return "\n".join(lines), topk, combining


def test_ablation_search_design(benchmark):
    text, topk, combining = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    emit("ablation_search_design", text)
    # beams never do worse on cost and always explore more nodes
    costs = [c for _, c, _, _ in topk]
    nodes = [n for _, _, n, _ in topk]
    assert costs[1] <= costs[0] + 1e-15
    assert costs[2] <= costs[1] + 1e-15
    assert nodes[0] < nodes[1] <= nodes[2]
    # the combining pass recovers cost and lands within 1.5x of OPT
    for name, (merged, full, opt) in combining.items():
        assert full <= merged + 1e-15, name
        assert full <= 1.5 * opt, name

"""Fig. 10 — total cost and violation ratio under different SLA settings.

Sweeps the SLA target and re-serves the Image Query trace under each
system.  Paper shapes:

- SMIless keeps the lowest cost with no (here: near-no) violations at every
  SLA setting, and its cost stays *stable* because the path search only
  updates a few functions' configurations when the SLA changes;
- Orion benefits most from lenient SLAs (beyond ~5 s its gap to SMIless
  narrows to ~2x) but violates heavily at tight ones.
"""

import numpy as np
from conftest import emit

from repro.simulator import ServerlessSimulator

SLAS = (1.0, 1.5, 2.0, 3.0, 5.0, 8.0)
POLICIES = ("smiless", "orion", "grandslam", "aquatope")


def regenerate(setup):
    rows: dict[str, list[tuple[float, float]]] = {p: [] for p in POLICIES}
    for sla in SLAS:
        app = setup.app.with_sla(sla)
        for policy in POLICIES:
            m = ServerlessSimulator(
                app, setup.trace, setup.make_policy(policy), seed=3
            ).run()
            rows[policy].append((m.total_cost(), m.violation_ratio()))
    lines = ["Fig. 10 — cost / violation ratio vs SLA (image-query)"]
    header = f"{'policy':<12}" + "".join(f" {f'SLA {s:g}s':>15}" for s in SLAS)
    lines.append(header)
    for policy in POLICIES:
        cells = "".join(
            f" {f'${c:.3f}/{v:.0%}':>15}" for c, v in rows[policy]
        )
        lines.append(f"{policy:<12}{cells}")
    return "\n".join(lines), rows


def test_fig10_sla_sweep(benchmark, setups):
    setup = setups["image-query"]
    text, rows = benchmark.pedantic(
        regenerate, args=(setup,), rounds=1, iterations=1
    )
    emit("fig10_sla_sweep", text)
    smiless = rows["smiless"]
    # SMIless: low violations at every SLA setting (paper: none).
    assert all(v < 0.12 for _, v in smiless)
    # Cost decreases monotonically (within noise) as the SLA relaxes.
    costs = np.array([c for c, _ in smiless])
    assert all(
        later <= earlier * 1.1 for earlier, later in zip(costs, costs[1:])
    )
    # SMIless undercuts the other violation-free system at every setting.
    for (c_s, _), (c_g, v_g) in zip(smiless, rows["grandslam"]):
        if v_g < 0.05:
            assert c_s < c_g
    # Orion violates heavily at every SLA setting relative to SMIless
    # (paper Fig. 10b: Orion ~40 % at the default SLA).
    for (_, v_s), (_, v_o) in zip(smiless, rows["orion"]):
        assert v_o > 3 * v_s

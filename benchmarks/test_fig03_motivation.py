"""Fig. 3 — the motivating example: Orion / IceBreaker / optimal.

A three-function pipeline with an SLA of 6.5 s serves two invocations that
arrive a short inter-arrival time apart.  The paper's point:

- Orion sizes configurations assuming "right pre-warming" always holds;
  when the second invocation lands inside a function's (T + I) cycle an
  extra instance must be spun up, so each such function is billed a full
  terminate-and-recreate cycle (Fig. 3a) — the optimal plan is ~37.7 %
  cheaper;
- IceBreaker warms each function on CPU *and* GPU pools without using the
  DAG, paying for both (Fig. 3b) — ~33 % over optimal.

We reproduce the construction with three heavyweight Table I functions and
the same decision logic the full policies implement.
"""

from conftest import emit

from repro.core.path_search import ExhaustiveSearch, PathSearchOptimizer, build_candidates
from repro.core.prewarming import cost_per_invocation
from repro.dag import linear_pipeline
from repro.hardware import ConfigurationSpace
from repro.profiler import oracle_profile

SLA = 6.5
INTER_ARRIVAL = 3.0
MODELS = ("SR", "TG", "TRS")
SPACE = ConfigurationSpace.default()


def orion_cost(functions, profiles) -> float:
    """Cost of Orion's plan under the *actual* close arrivals."""
    plan = PathSearchOptimizer(SPACE).optimize_path(
        functions, profiles, 1e9, SLA  # right-pre-warming assumption
    )
    total = 0.0
    for fn, cfg in plan.assignment.items():
        t = profiles[fn].init_time(cfg)
        i = profiles[fn].inference_time(cfg)
        if t + i < INTER_ARRIVAL:
            total += cost_per_invocation(t, i, INTER_ARRIVAL, cfg.unit_cost)
        else:
            # assumption broken: a second concurrent instance is launched,
            # billing a full terminate-and-recreate cycle per invocation
            total += (t + i) * cfg.unit_cost
    return total


def icebreaker_cost(functions, profiles) -> float:
    """Cost of dual-pool (CPU + GPU) keep-alive warming per function."""
    target = SLA / len(functions)
    total = 0.0
    for fn in functions:
        profile = profiles[fn]
        for pool in (SPACE.cpu_configs(), SPACE.gpu_configs()):
            feasible = [c for c in pool if profile.inference_time(c) <= target]
            cfg = (
                min(feasible, key=lambda c: c.unit_cost)
                if feasible
                else min(pool, key=lambda c: profile.inference_time(c))
            )
            total += INTER_ARRIVAL * cfg.unit_cost  # kept alive across the gap
    return total


def optimal_cost(functions, profiles) -> float:
    """Exhaustive co-optimized plan with adaptive cold-start management."""
    return ExhaustiveSearch(SPACE).optimize_path(
        functions, profiles, INTER_ARRIVAL, SLA
    ).cost


def regenerate():
    app = linear_pipeline(3, sla=SLA, models=MODELS)
    profiles = {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}
    functions = app.function_names
    build_candidates(functions, profiles, SPACE, INTER_ARRIVAL)  # warm caches
    costs = {
        "orion": orion_cost(functions, profiles),
        "icebreaker": icebreaker_cost(functions, profiles),
        "optimal": optimal_cost(functions, profiles),
    }
    lines = [
        "Fig. 3 — motivating example: 3-function pipeline, "
        f"SLA {SLA}s, IT {INTER_ARRIVAL}s",
        f"{'solution':<12} {'cost/invocation':>16} {'vs optimal':>11}",
    ]
    for name, c in costs.items():
        lines.append(
            f"{name:<12} {c:>15.3e}$ {c / costs['optimal'] - 1:>+10.1%}"
        )
    lines.append(
        "\nPaper: optimal is 37.7% below Orion and 33% below IceBreaker."
    )
    return "\n".join(lines), costs


def test_fig03_motivation(benchmark):
    text, costs = benchmark(regenerate)
    emit("fig03_motivation", text)
    assert costs["optimal"] < costs["orion"]
    assert costs["optimal"] < costs["icebreaker"]
    # the savings are substantial, as in the paper's example
    assert costs["orion"] / costs["optimal"] > 1.15
    assert costs["icebreaker"] / costs["optimal"] > 1.15

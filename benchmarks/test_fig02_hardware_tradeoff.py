"""Fig. 2 — inference latency under different hardware, warm vs cold.

Regenerates the motivating measurement: warm- and cold-start latencies of
HAP / TG / TRS on a 16-core CPU vs a full GPU, plus the price comparison.
The paper's shape: ~10x warm-start GPU speedup for TRS, but cold starts on
GPU *exceed* CPU because of the CUDA/model-transfer initialization, while
the GPU's unit price is ~8x the 16-core CPU's.
"""

from conftest import emit

from repro.dag.models import get_profile
from repro.hardware import HardwareConfig

MODELS = ("HAP", "TG", "TRS")


def regenerate() -> tuple[str, dict]:
    cpu, gpu = HardwareConfig.cpu(16), HardwareConfig.gpu(1.0)
    lines = [
        "Fig. 2 — inference latency (seconds) on CPU-16 vs full GPU",
        f"{'model':>6} {'warm cpu':>9} {'warm gpu':>9} {'speedup':>8} "
        f"{'cold cpu':>9} {'cold gpu':>9}",
    ]
    stats = {}
    for name in MODELS:
        p = get_profile(name)
        warm_cpu = p.expected_inference_time(cpu)
        warm_gpu = p.expected_inference_time(gpu)
        cold_cpu = warm_cpu + p.expected_init_time(cpu)
        cold_gpu = warm_gpu + p.expected_init_time(gpu)
        stats[name] = dict(
            warm_cpu=warm_cpu, warm_gpu=warm_gpu,
            cold_cpu=cold_cpu, cold_gpu=cold_gpu,
            speedup=warm_cpu / warm_gpu,
        )
        lines.append(
            f"{name:>6} {warm_cpu:>9.3f} {warm_gpu:>9.3f} "
            f"{warm_cpu / warm_gpu:>7.1f}x {cold_cpu:>9.3f} {cold_gpu:>9.3f}"
        )
    price_ratio = gpu.unit_cost / cpu.unit_cost
    lines.append(
        f"\nUnit price: GPU ${gpu.unit_cost_per_hour:.2f}/h vs CPU-16 "
        f"${cpu.unit_cost_per_hour:.2f}/h ({price_ratio:.1f}x; paper: ~8x)"
    )
    return "\n".join(lines), stats


def test_fig02_hardware_tradeoff(benchmark):
    text, stats = benchmark(regenerate)
    emit("fig02_hardware_tradeoff", text)
    # Paper shapes: TRS ~10x warm speedup; cold start inverts the advantage.
    assert 7.0 <= stats["TRS"]["speedup"] <= 13.0
    for name in MODELS:
        assert stats[name]["warm_gpu"] < stats[name]["warm_cpu"]
        assert stats[name]["cold_gpu"] > stats[name]["cold_cpu"]

"""Fig. 15 — auto-scaling performance under bursty workloads.

All systems serve the same bursty Voice Assistant trace.  Paper shapes:

- SMIless achieves the best cost / SLA trade-off of the online scalers;
- Aquatope, Orion and IceBreaker cost >= 1.41x SMIless (here IceBreaker's
  dual always-on pools dominate the cost);
- GrandSLAm is cheap but its restricted scaling produces SLA violations
  (paper: up to 20 %).
"""

from conftest import POLICY_NAMES, emit


def regenerate(burst_setup):
    rows = {}
    for policy in POLICY_NAMES:
        m = burst_setup.run(policy)
        rows[policy] = (m.total_cost(), m.violation_ratio())
    lines = [
        "Fig. 15 — auto-scaling under bursts (voice-assistant, bursty trace)",
        f"{'policy':<12} {'cost':>9} {'x smiless':>10} {'violations':>11}",
    ]
    base = rows["smiless"][0]
    for policy in POLICY_NAMES:
        c, v = rows[policy]
        lines.append(
            f"{policy:<12} ${c:>8.4f} {c / base:>9.2f}x {v:>10.1%}"
        )
    return "\n".join(lines), rows


def test_fig15_autoscaling(benchmark, burst_setup):
    text, rows = benchmark.pedantic(
        regenerate, args=(burst_setup,), rounds=1, iterations=1
    )
    emit("fig15_autoscaling", text)
    smiless_cost, smiless_viol = rows["smiless"]
    # the cheap under-provisioners violate more than SMIless
    assert rows["orion"][1] > smiless_viol
    assert rows["aquatope"][1] > smiless_viol
    # the over-provisioner costs more than SMIless without dominating it
    assert rows["icebreaker"][0] > smiless_cost
    # GrandSLAm's restricted scaling produces violations under bursts
    assert rows["grandslam"][1] > 0.03

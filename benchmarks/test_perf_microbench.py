"""Simulator hot-path microbench: events/sec and wall-clock per grid cell.

Runs the fig08-style comparison grid (every policy on every Fig. 7 app)
through :func:`repro.experiments.parallel.run_grid`, serially and with a
4-worker process pool, and writes the measurements to ``BENCH_simcore.json``
at the repository root so the speedup is tracked across PRs.

Two modes:

- **full** (default): evaluation duration 150 s, two serial repeats
  (min taken, the standard microbenchmark estimator), and the >= 3x
  end-to-end speedup acceptance assert against the recorded seed baseline;
- **smoke** (``SMILESS_BENCH_SMOKE=1``): duration 40 s, single repeat, no
  speedup assert (the baseline constant was measured at duration 150).
  Used by CI to exercise the harness cheaply.  When a recorded smoke
  baseline exists (``benchmarks/results/BENCH_smoke_baseline.json``),
  smoke mode asserts the serial grid has not regressed past
  ``MAX_SMOKE_REGRESSION`` times the recorded wall-clock.

Both modes assert that the 4-worker grid returns bit-identical summaries
to the serial grid — the determinism contract of the parallel runner.

In-process caches (memoized environments, the trained-predictor cache) are
cleared between serial repeats so every repeat pays the full cost of a
cold run; without this, repeat 2 would measure cache hits and flatter the
result.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.experiments import parallel as parallel_mod
from repro.experiments.parallel import product_grid, run_grid
from repro.policies import smiless as smiless_mod

REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_simcore.json"

SMOKE = bool(os.environ.get("SMILESS_BENCH_SMOKE"))

APPS = ("image-query", "amber-alert", "voice-assistant")
POLICIES = ("smiless", "orion", "icebreaker", "grandslam")
DURATION = 40.0 if SMOKE else 150.0
REPEATS = 1 if SMOKE else 2
#: Process-pool size, clamped to the host: 4 workers on a 1-core machine
#: only add pool overhead (a recorded run showed 20.3 s parallel against
#: 7.1 s serial on cpu_count 1), so the pool never exceeds the CPU count
#: and the parallel pass is skipped entirely where it cannot win.
PARALLEL_WORKERS = min(4, os.cpu_count() or 1)

#: Throughput floor for the policy path: every smiless cell must reach at
#: least this fraction of the same app's orion events/s, so the directive
#: path cannot silently regress back to its pre-optimization ~100x gap.
#: Enforced in smoke mode (the CI regression gate): at smoke duration the
#: margin is wide (~2.5x the floor), while full-mode cells amortize orion's
#: fixed setup over more events and sit within noise of the boundary.
SMILESS_MIN_ORION_FRACTION = 0.2

#: Wall-clock of this exact grid (3 apps x 4 policies, preset steady,
#: sla 2.0, duration 150 s, env seed 0, sim seed 3) on the pre-optimization
#: engine, measured in this repository's reference container from a git
#: worktree at the seed commit: environments built once per app, then every
#: cell's ``make_policy`` + ``run`` timed serially — the same accounting
#: :func:`run_cell` uses.  Only comparable to full-mode runs.
SEED_BASELINE_SECONDS = 17.05

#: Acceptance floor for the optimized engine (indexed pools + cancellable
#: timers + memoized perf models + predictor cache) on the same grid.
MIN_SPEEDUP = 3.0

#: Recorded smoke-mode wall-clock (same container class as CI); smoke runs
#: fail if the serial grid slows past this factor of the recording.
SMOKE_BASELINE_JSON = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_smoke_baseline.json"
)
MAX_SMOKE_REGRESSION = 1.3


def _clear_caches() -> None:
    """Reset every in-process memo so a repeat measures a cold run."""
    parallel_mod._environment.cache_clear()
    smiless_mod._PREDICTOR_CACHE.clear()


def _timed_grid(cells, *, workers: int):
    _clear_caches()
    start = time.perf_counter()
    results = run_grid(cells, workers=workers)
    return time.perf_counter() - start, results


def test_perf_microbench():
    cells = product_grid(APPS, POLICIES, duration=DURATION)

    serial_walls = []
    serial_results = None
    for _ in range(REPEATS):
        wall, serial_results = _timed_grid(cells, workers=1)
        serial_walls.append(wall)
    serial_seconds = min(serial_walls)

    if PARALLEL_WORKERS >= 2:
        parallel_seconds, parallel_results = _timed_grid(
            cells, workers=PARALLEL_WORKERS
        )
        # Determinism contract: fanning the grid across processes changes
        # nothing about any cell's outcome.
        assert [r.summary for r in parallel_results] == [
            r.summary for r in serial_results
        ]
        assert [r.spec for r in parallel_results] == [
            r.spec for r in serial_results
        ]
        best_seconds = min(serial_seconds, parallel_seconds)
    else:
        # One usable core: the pool can only lose to serial, so skip it
        # (noted in the JSON) rather than record a meaningless figure.
        parallel_seconds = None
        best_seconds = serial_seconds

    speedup = SEED_BASELINE_SECONDS / best_seconds if not SMOKE else None

    report = {
        "mode": "smoke" if SMOKE else "full",
        "cpu_count": os.cpu_count(),
        "grid": {
            "apps": list(APPS),
            "policies": list(POLICIES),
            "preset": "steady",
            "sla": 2.0,
            "duration": DURATION,
            "env_seed": 0,
            "sim_seed": 3,
        },
        "serial_seconds": round(serial_seconds, 4),
        "serial_repeats": serial_walls,
        "parallel_workers": PARALLEL_WORKERS,
        "parallel_seconds": (
            None if parallel_seconds is None else round(parallel_seconds, 4)
        ),
        "parallel_skipped": (
            "single usable core: a process pool cannot beat serial"
            if parallel_seconds is None
            else None
        ),
        "best_seconds": round(best_seconds, 4),
        "seed_baseline_seconds": None if SMOKE else SEED_BASELINE_SECONDS,
        "speedup_vs_seed": None if SMOKE else round(speedup, 2),
        "cells": [
            {
                "app": r.spec.env.app,
                "policy": r.spec.policy,
                "wall_clock": round(r.wall_clock, 4),
                "events_processed": r.events_processed,
                "events_per_second": round(r.events_per_second, 1),
            }
            for r in serial_results
        ],
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    parallel_note = (
        "skipped" if parallel_seconds is None else f"{parallel_seconds:.2f}s"
    )
    print(
        f"\n[perf microbench] mode={report['mode']} "
        f"serial={serial_seconds:.2f}s parallel={parallel_note}"
        + ("" if SMOKE else f" speedup_vs_seed={speedup:.2f}x")
    )

    # Policy-path throughput floor: smiless within 1/5 of orion per app.
    if SMOKE:
        events_per_second = {
            (r.spec.env.app, r.spec.policy): r.events_per_second
            for r in serial_results
        }
        for app in APPS:
            smiless_eps = events_per_second[(app, "smiless")]
            orion_eps = events_per_second[(app, "orion")]
            floor = SMILESS_MIN_ORION_FRACTION * orion_eps
            assert smiless_eps >= floor, (
                f"smiless on {app} ran {smiless_eps:.1f} events/s, below "
                f"{SMILESS_MIN_ORION_FRACTION:.0%} of orion's "
                f"{orion_eps:.1f} events/s"
            )

    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"grid took {best_seconds:.2f}s against the "
            f"{SEED_BASELINE_SECONDS:.2f}s seed baseline "
            f"({speedup:.2f}x < {MIN_SPEEDUP}x)"
        )
    elif SMOKE_BASELINE_JSON.exists():
        recorded = json.loads(SMOKE_BASELINE_JSON.read_text())
        limit = MAX_SMOKE_REGRESSION * recorded["serial_seconds"]
        assert serial_seconds <= limit, (
            f"smoke grid took {serial_seconds:.2f}s serially, past "
            f"{MAX_SMOKE_REGRESSION}x the recorded "
            f"{recorded['serial_seconds']:.2f}s baseline "
            f"(recorded at {recorded.get('recorded_at', 'unknown')})"
        )

"""Table I — the twelve inference models and their simulated profiles.

Regenerates the model inventory with the ground-truth latency/init numbers
this reproduction substitutes for the real checkpoints (DESIGN.md §1).
"""

from conftest import emit

from repro.dag.models import MODEL_REGISTRY
from repro.hardware import HardwareConfig


def regenerate() -> str:
    cpu4, gpu = HardwareConfig.cpu(4), HardwareConfig.gpu(1.0)
    lines = [
        "Table I — inference models (simulated ground truth)",
        f"{'name':>5} {'architecture':<12} {'dataset':<9} "
        f"{'field':<22} {'I@cpu4':>7} {'I@gpu':>7} {'T@cpu':>6} {'T@gpu':>6}",
    ]
    for info in MODEL_REGISTRY.values():
        p = info.profile
        lines.append(
            f"{info.name:>5} {info.architecture:<12} {info.dataset:<9} "
            f"{info.field:<22} "
            f"{p.expected_inference_time(cpu4):>6.2f}s "
            f"{p.expected_inference_time(gpu):>6.2f}s "
            f"{p.init_cpu.mean:>5.1f}s {p.init_gpu.mean:>5.1f}s"
        )
    return "\n".join(lines)


def test_table1_models(benchmark):
    text = benchmark(regenerate)
    emit("table1_models", text)
    assert len(MODEL_REGISTRY) == 12

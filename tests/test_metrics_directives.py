"""Focused tests for RunMetrics accounting and FunctionDirective validation."""

import itertools
import math

import numpy as np
import pytest

from repro.hardware import Backend, HardwareConfig
from repro.simulator import FunctionDirective, Instance, InstanceState, Placement
from repro.simulator.invocation import Invocation, StageRecord
from repro.simulator.metrics import InstanceUsage, RunMetrics


def make_usage(function="f", config=None, lifetime=10.0, busy=2.0, init=1.0):
    cfg = config or HardwareConfig.cpu(2)
    return InstanceUsage(
        function=function,
        config=cfg,
        lifetime=lifetime,
        init_seconds=init,
        busy_seconds=busy,
        idle_seconds=lifetime - busy - init,
        cost=lifetime * cfg.unit_cost,
        batches_served=1,
        invocations_served=2,
    )


_ids = itertools.count()


def make_invocation(arrival=0.0, latency=1.0):
    inv = Invocation(app="a", arrival=arrival, invocation_id=next(_ids))
    inv.completed_at = arrival + latency
    return inv


class TestRunMetricsAccounting:
    def test_total_and_backend_costs(self):
        m = RunMetrics(app="a", policy="p", sla=2.0)
        m.instances = [
            make_usage(config=HardwareConfig.cpu(2)),
            make_usage(config=HardwareConfig.gpu(0.2)),
        ]
        assert m.total_cost() == pytest.approx(
            sum(u.cost for u in m.instances)
        )
        assert m.backend_cost(Backend.CPU) == pytest.approx(m.instances[0].cost)
        assert m.backend_cost(Backend.GPU) == pytest.approx(m.instances[1].cost)
        assert m.cpu_gpu_cost_ratio() == pytest.approx(
            m.instances[0].cost / m.instances[1].cost
        )

    def test_cpu_gpu_ratio_without_gpu(self):
        m = RunMetrics(app="a", policy="p", sla=2.0)
        m.instances = [make_usage()]
        assert m.cpu_gpu_cost_ratio() == float("inf")

    def test_cost_breakdown_sums_to_total(self):
        m = RunMetrics(app="a", policy="p", sla=2.0)
        m.instances = [make_usage(), make_usage(lifetime=5.0, busy=1.0, init=0.5)]
        parts = m.cost_breakdown()
        assert sum(parts.values()) == pytest.approx(m.total_cost())

    def test_violation_ratio_counts_unfinished(self):
        m = RunMetrics(app="a", policy="p", sla=2.0)
        m.invocations = [make_invocation(latency=1.0), make_invocation(latency=3.0)]
        m.unfinished = 2
        # 1 violating completed + 2 unfinished over 4 total
        assert m.violation_ratio() == pytest.approx(3 / 4)

    def test_violation_ratio_empty(self):
        assert RunMetrics(app="a", policy="p", sla=2.0).violation_ratio() == 0.0

    def test_latency_percentile(self):
        m = RunMetrics(app="a", policy="p", sla=2.0)
        m.invocations = [make_invocation(latency=v) for v in (1.0, 2.0, 3.0)]
        assert m.latency_percentile(50) == pytest.approx(2.0)

    def test_latency_percentile_empty_is_nan(self):
        # Zero-traffic runs are legitimate: percentile matches summary()'s
        # NaN convention instead of raising.
        empty = RunMetrics(app="a", policy="p", sla=2.0)
        assert math.isnan(empty.latency_percentile(50))
        assert math.isnan(empty.summary()["p50_latency"])

    def test_reinit_fraction_and_per_invocation(self):
        m = RunMetrics(app="a", policy="p", sla=2.0)
        m.stage_executions = 10
        m.cold_stage_executions = 3
        m.initializations = 6
        m.invocations = [make_invocation() for _ in range(3)]
        assert m.reinit_fraction() == pytest.approx(0.3)
        assert m.initializations_per_invocation() == pytest.approx(2.0)

    def test_reinit_fraction_no_executions(self):
        assert RunMetrics(app="a", policy="p", sla=2.0).reinit_fraction() == 0.0

    def test_pod_and_arrival_arrays(self):
        m = RunMetrics(app="a", policy="p", sla=2.0)
        m.pod_samples = [(1.0, 2, 1), (2.0, 3, 0)]
        m.arrival_samples = [(1.0, 4), (2.0, 0)]
        pods = m.pods_over_time()
        assert pods.shape == (2, 3)
        arrivals = m.arrivals_over_time()
        assert arrivals[:, 1].sum() == 4

    def test_empty_pod_arrays_have_shape(self):
        m = RunMetrics(app="a", policy="p", sla=2.0)
        assert m.pods_over_time().shape == (0, 3)
        assert m.arrivals_over_time().shape == (0, 2)

    def test_summary_keys(self):
        m = RunMetrics(app="a", policy="p", sla=2.0)
        m.invocations = [make_invocation()]
        s = m.summary()
        for key in (
            "total_cost",
            "violation_ratio",
            "invocations",
            "mean_latency",
            "p99_latency",
            "reinit_fraction",
            "cpu_cost",
            "gpu_cost",
        ):
            assert key in s

    def test_summary_without_latencies_is_nan(self):
        s = RunMetrics(app="a", policy="p", sla=2.0).summary()
        assert np.isnan(s["mean_latency"])


class TestInstanceUsageSnapshot:
    def test_from_instance(self):
        cfg = HardwareConfig.cpu(4)
        inst = Instance(
            function="f",
            config=cfg,
            placement=Placement(0, cfg),
            launched_at=0.0,
            init_duration=2.0,
        )
        inst.mark_warm(2.0)
        inst.mark_busy(3.0, 2)
        inst.mark_idle(5.0, 2.0)
        usage = InstanceUsage.from_instance(inst, now=10.0)
        assert usage.lifetime == pytest.approx(10.0)
        assert usage.init_seconds == pytest.approx(2.0)
        assert usage.busy_seconds == pytest.approx(2.0)
        assert usage.idle_seconds == pytest.approx(6.0)
        assert usage.invocations_served == 2


class TestFunctionDirectiveValidation:
    def test_valid_defaults(self):
        d = FunctionDirective(config=HardwareConfig.cpu(1))
        assert d.keep_alive == 0.0
        assert d.batch == 1
        assert d.min_warm == 0
        assert d.warm_grace > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"keep_alive": -1.0},
            {"batch": 0},
            {"min_warm": -1},
            {"warm_grace": -0.1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            FunctionDirective(config=HardwareConfig.cpu(1), **kwargs)


class TestInvocationRecords:
    def test_stage_created_on_access(self):
        inv = Invocation(app="a", arrival=1.0, invocation_id=0)
        rec = inv.stage("x")
        assert isinstance(rec, StageRecord)
        assert inv.stage("x") is rec

    def test_latency_requires_completion(self):
        inv = Invocation(app="a", arrival=1.0, invocation_id=0)
        assert not inv.finished
        with pytest.raises(ValueError):
            _ = inv.latency
        inv.completed_at = 3.5
        assert inv.latency == pytest.approx(2.5)

    def test_queue_wait(self):
        rec = StageRecord(function="x", ready_at=1.0, started_at=2.5)
        assert rec.queue_wait == pytest.approx(1.5)
        assert StageRecord(function="x").queue_wait == 0.0

    def test_explicit_ids(self):
        a = Invocation(app="a", arrival=0.0, invocation_id=0)
        b = Invocation(app="a", arrival=0.0, invocation_id=1)
        assert a.invocation_id != b.invocation_id

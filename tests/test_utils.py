"""Tests for repro.utils: RNG management and validation helpers."""

import math

import numpy as np
import pytest

from repro.utils import (
    check_finite,
    check_in_range,
    check_positive,
    check_probability,
    child_rng,
    ensure_rng,
    spawn_rngs,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)


class TestChildAndSpawn:
    def test_child_rng_independent_of_parent_draws(self):
        parent = ensure_rng(7)
        child = child_rng(parent, "workload")
        assert isinstance(child, np.random.Generator)

    def test_spawn_rngs_count_and_independence(self):
        rngs = spawn_rngs(123, 4)
        assert len(rngs) == 4
        draws = [g.random(3).tolist() for g in rngs]
        # all four streams distinct
        assert len({tuple(d) for d in draws}) == 4

    def test_spawn_rngs_deterministic(self):
        a = [g.random() for g in spawn_rngs(5, 3)]
        b = [g.random() for g in spawn_rngs(5, 3)]
        assert a == b


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    def test_check_positive_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_check_positive_nonstrict_accepts_zero(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_check_positive_nonstrict_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_in_range_inclusive_bounds(self):
        assert check_in_range("y", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("y", 1.0, 0.0, 1.0) == 1.0

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range("y", 0.0, 0.0, 1.0, inclusive=False)

    def test_check_in_range_rejects_outside(self):
        with pytest.raises(ValueError, match="y"):
            check_in_range("y", 2.0, 0.0, 1.0)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.2)

    def test_check_finite_scalar_and_iterable(self):
        check_finite("v", 1.0)
        check_finite("v", [0.0, 2.5])
        with pytest.raises(ValueError):
            check_finite("v", math.inf)
        with pytest.raises(ValueError):
            check_finite("v", [1.0, math.nan])

"""Engine-level tests for the hot-path behaviors: pending-launch retries
across functions and event-heap boundedness on long traces."""

import numpy as np

from repro.dag import linear_pipeline
from repro.hardware import HardwareConfig
from repro.policies import AlwaysOnPolicy
from repro.simulator import Cluster, ServerlessSimulator
from repro.workload import Trace


class TestRetryPendingLaunches:
    def test_one_blocked_function_does_not_starve_others(self):
        """Regression: the retry pass used to stop at the first function
        whose pending configuration did not fit, never reaching other
        functions' smaller pending launches."""
        cluster = Cluster.build(n_machines=1, cores_per_machine=8)
        app = linear_pipeline(2, models=("IR", "DB"))
        sim = ServerlessSimulator(
            app,
            Trace([50.0], duration=60.0),
            AlwaysOnPolicy(HardwareConfig.cpu(2)),
            cluster=cluster,
            seed=0,
        )
        sim.setup()
        blocked_fn, small_fn = app.function_names

        hold_big = cluster.try_allocate(HardwareConfig.cpu(4))
        hold_small = cluster.try_allocate(HardwareConfig.cpu(2))
        assert hold_big is not None and hold_small is not None

        sim.pending_launches[blocked_fn].append(HardwareConfig.cpu(8))
        sim.pending_launches[small_fn].append(HardwareConfig.cpu(2))

        # Free 2 cores: the first function's cpu(8) launch still cannot
        # fit, but the second function's cpu(2) launch now can.
        cluster.release(hold_small)
        sim._retry_pending_launches()

        assert list(sim.pending_launches[blocked_fn]) == [HardwareConfig.cpu(8)]
        assert not sim.pending_launches[small_fn]
        assert sim.pools[small_fn].initializing_count() == 1

    def test_multiple_pending_same_function_drain_in_order(self):
        cluster = Cluster.build(n_machines=1, cores_per_machine=8)
        app = linear_pipeline(1, models=("IR",))
        sim = ServerlessSimulator(
            app,
            Trace([50.0], duration=60.0),
            AlwaysOnPolicy(HardwareConfig.cpu(2)),
            cluster=cluster,
            seed=0,
        )
        sim.setup()
        (fn,) = app.function_names
        hold = cluster.try_allocate(HardwareConfig.cpu(8))
        sim.pending_launches[fn].extend(
            [HardwareConfig.cpu(2), HardwareConfig.cpu(2), HardwareConfig.cpu(8)]
        )
        cluster.release(hold)
        sim._retry_pending_launches()
        # Both cpu(2) launches fit (4 of 8 cores); the cpu(8) head remains.
        assert list(sim.pending_launches[fn]) == [HardwareConfig.cpu(8)]
        assert sim.pools[fn].initializing_count() == 2


class TestHeapBoundedness:
    def test_heap_stays_o_live_events_on_10k_invocation_trace(self):
        """With streamed arrivals the heap holds the *next* arrival and
        tick plus in-flight work — not the entire 10k-event trace."""
        times = (np.arange(10_000) * 0.05 + 0.01).tolist()
        trace = Trace(times, duration=510.0)
        app = linear_pipeline(1, models=("IR",))
        sim = ServerlessSimulator(
            app, trace, AlwaysOnPolicy(HardwareConfig.cpu(16)), seed=0
        )
        sim.setup()
        assert sim.events.heap_size < 10, "arrivals must not be pre-pushed"
        max_heap = sim.events.heap_size
        while sim.events.step():
            max_heap = max(max_heap, sim.events.heap_size)
        metrics = sim.finalize()
        assert metrics.unfinished == 0
        assert len(metrics.invocations) == 10_000
        # Far below the 10k pre-pushed arrivals the old engine held; the
        # bound covers live instances' events plus the two stream heads.
        assert max_heap < 500
        assert sim.events.processed >= 20_000

"""Tests for the online predictors and baseline forecasters."""

import numpy as np
import pytest

from repro.predictor import (
    ArimaPredictor,
    FipPredictor,
    GbrtPredictor,
    InterArrivalPredictor,
    InvocationPredictor,
    SlidingWindowPredictor,
)
from repro.predictor.gbrt import RegressionTree
from repro.predictor.interarrival import gaps_from_counts
from repro.predictor.metrics import (
    mean_absolute_percentage_error,
    overestimation_rate,
    underestimation_magnitude,
    underestimation_rate,
)
from repro.workload import AzureLikeWorkload, gamma_renewal_process


@pytest.fixture(scope="module")
def periodic_counts():
    train = gamma_renewal_process(5.0, 0.15, 1800.0, rng=0, period_drift=0.3)
    test = gamma_renewal_process(5.0, 0.15, 1800.0, rng=1, period_drift=0.3)
    return train.counts_per_window(1.0), test.counts_per_window(1.0)


@pytest.fixture(scope="module")
def diurnal_counts():
    wl = AzureLikeWorkload.preset("diurnal", seed=1)
    return wl.generate(1200.0).counts_per_window(1.0), wl.generate(
        1200.0
    ).counts_per_window(1.0)


class TestInvocationPredictor:
    def test_bucket_mapping(self):
        p = InvocationPredictor(bucket_size=4, n_buckets=5, seed=0)
        assert p.bucket_of(0) == 0
        assert p.bucket_of(1) == 1
        assert p.bucket_of(4) == 1
        assert p.bucket_of(5) == 2
        assert p.bucket_of(1000) == 4  # clipped to top bucket
        with pytest.raises(ValueError):
            p.bucket_of(-1)

    def test_upper_bound(self):
        p = InvocationPredictor(bucket_size=4, n_buckets=5, seed=0)
        assert p.upper_bound(0) == 0
        assert p.upper_bound(3) == 12
        with pytest.raises(ValueError):
            p.upper_bound(5)

    def test_requires_fit_before_predict(self):
        p = InvocationPredictor(window=5, seed=0)
        with pytest.raises(RuntimeError):
            p.predict_next(np.zeros(5))

    def test_requires_enough_history(self, diurnal_counts):
        train, _ = diurnal_counts
        p = InvocationPredictor(window=10, epochs=1, seed=0).fit(train)
        with pytest.raises(ValueError):
            p.predict_next(np.zeros(3))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            InvocationPredictor(bucket_size=0)
        with pytest.raises(ValueError):
            InvocationPredictor(compensation=1.5)
        with pytest.raises(ValueError):
            InvocationPredictor(quantile=0.0)

    def test_low_underestimation_on_held_out(self, diurnal_counts):
        """§VII-C2: the classifier keeps under-estimation low (paper: 3 %)."""
        train, test = diurnal_counts
        p = InvocationPredictor(bucket_size=1, n_buckets=10, epochs=4, seed=0).fit(train)
        actual, pred = p.rolling_predict(test)
        assert underestimation_rate(actual, pred) < 0.10

    def test_compensation_inflates_prediction(self, diurnal_counts):
        train, _ = diurnal_counts
        p = InvocationPredictor(
            bucket_size=8, n_buckets=6, epochs=1, compensation=0.03, seed=0
        ).fit(train)
        history = train[-p.window :]
        bucket = p.predict_bucket(history)
        assert p.predict_next(history) >= p.upper_bound(bucket)

    def test_proba_is_distribution(self, diurnal_counts):
        train, _ = diurnal_counts
        p = InvocationPredictor(epochs=1, seed=0).fit(train)
        proba = p.predict_proba(train[-p.window :])
        assert proba.shape == (p.n_buckets,)
        assert proba.sum() == pytest.approx(1.0)
        assert (proba >= 0).all()

    def test_quantile_one_picks_top_reachable_bucket(self, diurnal_counts):
        train, _ = diurnal_counts
        p = InvocationPredictor(epochs=1, quantile=1.0, seed=0).fit(train)
        b_conservative = p.predict_bucket(train[-p.window :])
        p.quantile = 0.5
        b_median = p.predict_bucket(train[-p.window :])
        assert b_conservative >= b_median


class TestInterArrivalPredictor:
    def test_gaps_from_counts(self):
        gaps = gaps_from_counts(np.array([0, 2, 0, 0, 1, 3]), window=2.0)
        np.testing.assert_allclose(gaps, [6.0, 2.0])

    def test_gaps_too_few_nonzero(self):
        assert gaps_from_counts(np.array([0, 1, 0])).size == 0

    def test_fit_and_predict_positive(self, periodic_counts):
        train, _ = periodic_counts
        p = InterArrivalPredictor(epochs=5, seed=0).fit(train)
        gaps = gaps_from_counts(train)
        pred = p.predict_next(gaps[-p.gap_window :], train[-p.count_window :])
        assert pred >= p.window_seconds

    def test_reasonable_mape_on_periodic(self, periodic_counts):
        train, test = periodic_counts
        p = InterArrivalPredictor(epochs=20, seed=0).fit(train)
        actual, pred = p.evaluate(test)
        assert mean_absolute_percentage_error(actual, pred) < 45.0

    def test_overestimation_is_rare(self, periodic_counts):
        """§IV-B2: the asymmetric design keeps over-estimation rare."""
        train, test = periodic_counts
        p = InterArrivalPredictor(epochs=20, seed=0).fit(train)
        actual, pred = p.evaluate(test)
        assert overestimation_rate(actual, pred) < 0.30

    def test_single_input_variant(self, periodic_counts):
        train, _ = periodic_counts
        p = InterArrivalPredictor(dual_input=False, epochs=2, seed=0).fit(train)
        assert p.count_lstm is None
        gaps = gaps_from_counts(train)
        assert p.predict_next(gaps[-p.gap_window :], None) > 0

    def test_requires_fit(self):
        p = InterArrivalPredictor(seed=0)
        with pytest.raises(RuntimeError):
            p.predict_next(np.ones(12), np.ones(30))

    def test_requires_enough_history(self, periodic_counts):
        train, _ = periodic_counts
        p = InterArrivalPredictor(epochs=1, seed=0).fit(train)
        with pytest.raises(ValueError):
            p.predict_next(np.ones(2), train[-30:])

    def test_dataset_alignment(self):
        """The j-th target is the gap following the j-th gap window."""
        counts = np.zeros(100)
        counts[::10] = 1  # gaps of exactly 10s
        p = InterArrivalPredictor(gap_window=3, count_window=10, seed=0)
        gap_seqs, count_seqs, targets = p.build_dataset(counts)
        np.testing.assert_allclose(targets, 10.0)
        np.testing.assert_allclose(gap_seqs, 10.0)
        assert count_seqs.shape[1] == 10


class TestArima:
    def test_learns_ar1(self):
        rng = np.random.default_rng(0)
        s = np.zeros(800)
        for t in range(1, 800):
            s[t] = 0.8 * s[t - 1] + rng.normal(0, 0.1)
        model = ArimaPredictor(p=3).fit(s[:600])
        actual, pred = model.rolling_predict(s[600:])
        naive = np.abs(actual).mean()
        assert np.abs(actual - pred).mean() < naive

    def test_differencing_handles_trend(self):
        t = np.arange(300, dtype=float)
        s = 2.0 * t + 5.0
        model = ArimaPredictor(p=2, d=1).fit(s[:200])
        pred = model.predict_next(s[:250])
        assert pred == pytest.approx(s[250], rel=0.05)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            ArimaPredictor().predict_next(np.ones(20))

    def test_short_series_raises(self):
        with pytest.raises(ValueError):
            ArimaPredictor(p=10).fit(np.ones(5))


class TestFip:
    def test_recovers_pure_harmonic(self):
        t = np.arange(512, dtype=float)
        s = 5.0 + 2.0 * np.cos(2 * np.pi * t / 32.0)
        model = FipPredictor(n_harmonics=3).fit(s)
        future = model.predict_at(t + 512)
        np.testing.assert_allclose(future, s, atol=0.3)

    def test_prediction_nonnegative(self):
        t = np.arange(256, dtype=float)
        s = np.maximum(0.0, np.sin(2 * np.pi * t / 16.0))
        model = FipPredictor().fit(s)
        assert (model.predict_at(np.arange(300.0)) >= 0).all()

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            FipPredictor().predict_next(np.ones(10))

    def test_rolling_predict_extrapolates(self):
        t = np.arange(256, dtype=float)
        s = 3.0 + np.cos(2 * np.pi * t / 16.0)
        model = FipPredictor(n_harmonics=2).fit(s)
        actual, pred = model.rolling_predict(s[:64])
        assert mean_absolute_percentage_error(actual, pred) < 10.0


class TestSlidingWindow:
    def test_stats(self):
        h = np.array([1.0, 2.0, 3.0])
        assert SlidingWindowPredictor(2, "mean").predict_next(h) == 2.5
        assert SlidingWindowPredictor(2, "max").predict_next(h) == 3.0
        assert SlidingWindowPredictor(2, "last").predict_next(h) == 3.0

    def test_bad_stat(self):
        with pytest.raises(ValueError):
            SlidingWindowPredictor(stat="median")

    def test_empty_history(self):
        with pytest.raises(ValueError):
            SlidingWindowPredictor().predict_next(np.array([]))

    def test_rolling_shapes(self):
        actual, pred = SlidingWindowPredictor(3).rolling_predict(np.arange(10.0))
        assert actual.shape == pred.shape == (9,)


class TestGbrt:
    def test_tree_fits_step_function(self):
        X = np.linspace(0, 1, 200)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        assert np.abs(pred - y).mean() < 0.05

    def test_tree_validates_shapes(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros(5), np.zeros(5))

    def test_tree_requires_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((2, 2)))

    def test_boosting_beats_single_tree(self):
        rng = np.random.default_rng(0)
        t = np.arange(600, dtype=float)
        s = np.sin(2 * np.pi * t / 24.0) * 3 + 5 + rng.normal(0, 0.2, 600)
        model = GbrtPredictor(lags=12, n_estimators=40).fit(s[:400])
        actual, pred = model.rolling_predict(s[400:])
        assert np.abs(actual - pred).mean() < 1.0

    def test_predict_next_needs_lags(self):
        model = GbrtPredictor(lags=5)
        s = np.sin(np.arange(100.0))
        model.fit(s)
        with pytest.raises(ValueError):
            model.predict_next(np.ones(3))

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            GbrtPredictor().predict_next(np.ones(20))


class TestMetrics:
    def test_under_over_partition(self):
        a = np.array([1.0, 2.0, 3.0])
        p = np.array([0.5, 2.0, 4.0])
        assert underestimation_rate(a, p) == pytest.approx(1 / 3)
        assert overestimation_rate(a, p) == pytest.approx(1 / 3)

    def test_underestimation_magnitude(self):
        a = np.array([2.0, 4.0])
        p = np.array([1.0, 4.0])
        assert underestimation_magnitude(a, p) == pytest.approx(0.5)
        assert underestimation_magnitude(a, a) == 0.0

    def test_mape(self):
        assert mean_absolute_percentage_error([2.0], [3.0]) == pytest.approx(50.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            underestimation_rate(np.ones(2), np.ones(3))

    def test_empty(self):
        with pytest.raises(ValueError):
            overestimation_rate([], [])

"""Tests for the AppDAG abstraction (structure, paths, latency evaluation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import AppDAG, FunctionSpec
from repro.dag.apps import random_dag
from repro.dag.models import get_profile


def spec(name: str, model: str = "IR") -> FunctionSpec:
    return FunctionSpec(name=name, profile=get_profile(model))


def chain(*names: str) -> AppDAG:
    specs = [spec(n) for n in names]
    edges = [(names[i], names[i + 1]) for i in range(len(names) - 1)]
    return AppDAG("chain", specs, edges)


def diamond() -> AppDAG:
    specs = [spec(n) for n in "ABCD"]
    edges = [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]
    return AppDAG("diamond", specs, edges)


class TestConstruction:
    def test_rejects_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            AppDAG("bad", [spec("A"), spec("B")], [("A", "B"), ("B", "A")])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            AppDAG("bad", [spec("A")], [("A", "A")])

    def test_rejects_duplicate_function(self):
        with pytest.raises(ValueError, match="duplicate"):
            AppDAG("bad", [spec("A"), spec("A")], [])

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(ValueError, match="endpoint"):
            AppDAG("bad", [spec("A")], [("A", "Z")])

    def test_rejects_empty_app(self):
        with pytest.raises(ValueError):
            AppDAG("bad", [], [])

    def test_rejects_nonpositive_sla(self):
        with pytest.raises(ValueError):
            AppDAG("bad", [spec("A")], [], sla=0.0)

    def test_single_function_app(self):
        app = AppDAG("solo", [spec("A")], [])
        assert app.sources() == app.sinks() == ("A",)
        assert app.simple_paths() == (("A",),)


class TestStructure:
    def test_topological_iteration(self):
        app = diamond()
        order = list(app)
        assert order.index("A") < order.index("B") < order.index("D")
        assert order.index("A") < order.index("C") < order.index("D")

    def test_predecessors_successors(self):
        app = diamond()
        assert set(app.predecessors("D")) == {"B", "C"}
        assert set(app.successors("A")) == {"B", "C"}

    def test_sources_sinks(self):
        app = diamond()
        assert app.sources() == ("A",)
        assert app.sinks() == ("D",)

    def test_spec_lookup(self):
        app = diamond()
        assert app.spec("A").name == "A"
        with pytest.raises(KeyError):
            app.spec("Z")

    def test_depth(self):
        app = chain("A", "B", "C")
        assert [app.depth(n) for n in "ABC"] == [0, 1, 2]

    def test_diamond_depth(self):
        app = diamond()
        assert app.depth("D") == 2

    def test_contains_and_len(self):
        app = diamond()
        assert "A" in app and "Z" not in app
        assert len(app) == 4

    def test_with_sla(self):
        app = diamond().with_sla(5.0)
        assert app.sla == 5.0
        assert len(app) == 4


class TestPaths:
    def test_simple_paths_of_diamond(self):
        assert set(diamond().simple_paths()) == {
            ("A", "B", "D"),
            ("A", "C", "D"),
        }

    def test_longest_path_of_chain(self):
        app = chain("A", "B", "C", "D")
        assert app.longest_path() == ("A", "B", "C", "D")
        assert app.longest_path_length() == 4

    def test_critical_path_latency_chain_is_sum(self):
        app = chain("A", "B", "C")
        lat = {"A": 1.0, "B": 2.0, "C": 3.0}
        assert app.critical_path_latency(lat) == pytest.approx(6.0)

    def test_critical_path_latency_diamond_is_max_branch(self):
        app = diamond()
        lat = {"A": 1.0, "B": 5.0, "C": 2.0, "D": 1.0}
        assert app.critical_path_latency(lat) == pytest.approx(7.0)
        assert app.critical_path(lat) == ("A", "B", "D")

    def test_parallel_substructure_of_diamond(self):
        assert diamond().parallel_substructures() == (("A", "D"),)

    def test_no_parallel_substructure_in_chain(self):
        assert chain("A", "B", "C").parallel_substructures() == ()

    def test_fork_without_join_is_skipped(self):
        # A fans out to two sinks that never reconverge.
        app = AppDAG(
            "fan", [spec("A"), spec("B"), spec("C")], [("A", "B"), ("A", "C")]
        )
        assert app.parallel_substructures() == ()
        assert set(app.simple_paths()) == {("A", "B"), ("A", "C")}

    def test_map_functions(self):
        app = chain("A", "B")
        out = app.map_functions(lambda s: float(len(s.name)))
        assert out == {"A": 1.0, "B": 1.0}


class TestPropertyBased:
    @given(n=st.integers(min_value=1, max_value=12), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_random_dag_invariants(self, n, seed):
        app = random_dag(n, rng=seed)
        assert len(app) == n
        # every simple path starts at a source and ends at a sink
        sources, sinks = set(app.sources()), set(app.sinks())
        for path in app.simple_paths():
            assert path[0] in sources
            assert path[-1] in sinks
        # critical path latency >= max single-stage latency
        lat = {name: 1.0 for name in app.function_names}
        assert app.critical_path_latency(lat) >= 1.0
        assert app.critical_path_latency(lat) == app.longest_path_length()

    @given(n=st.integers(min_value=2, max_value=10), seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_critical_path_is_consistent_with_latency(self, n, seed):
        import numpy as np

        app = random_dag(n, rng=seed)
        rng = np.random.default_rng(seed)
        lat = {name: float(rng.uniform(0.1, 2.0)) for name in app.function_names}
        path = app.critical_path(lat)
        total = sum(lat[f] for f in path)
        assert total == pytest.approx(app.critical_path_latency(lat))

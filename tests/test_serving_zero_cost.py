"""Zero-cost rule: the offline stack never loads ``repro.serving``.

The serving façade sits strictly above the simulator/experiments layers.
These tests pin that (a) importing every offline entry point — including
the CLI, whose ``serve`` subcommand lazy-imports the package — pulls in
no serving module, and (b) a simulation's summary is byte-identical
whether or not ``repro.serving`` was imported first, i.e. the package
cannot perturb offline results even when present.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run_python(code):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-c", code],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_offline_imports_never_load_serving():
    out = run_python(
        "import sys\n"
        "import repro.cli, repro.simulator, repro.experiments\n"
        "import repro.workload, repro.telemetry, repro.overload\n"
        "serving = [m for m in sys.modules if m.startswith('repro.serving')]\n"
        "print(serving)\n"
    )
    assert out.strip() == "[]"


SIM_SNIPPET = """\
import json, sys
{prelude}
from repro.experiments import build_environment
from repro.simulator import ServerlessSimulator
env = build_environment(
    "image-query", preset="steady", sla=2.0,
    duration=60.0, train_duration=300.0, seed=0,
)
metrics = ServerlessSimulator(
    env.app, env.trace, env.make_policy("smiless"), seed=3
).run()
loaded = any(m.startswith("repro.serving") for m in sys.modules)
assert loaded == {expect_loaded}, sorted(sys.modules)
print(json.dumps(metrics.summary(), sort_keys=True))
"""


def test_summaries_byte_identical_with_and_without_serving():
    without = run_python(
        SIM_SNIPPET.format(prelude="", expect_loaded=False)
    )
    with_serving = run_python(
        SIM_SNIPPET.format(prelude="import repro.serving", expect_loaded=True)
    )
    assert without == with_serving
    summary = json.loads(without)
    assert summary["invocations"] > 0

"""Tests for the experiment runners and the CLI layer."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import (
    build_environment,
    run_comparison,
    run_multi_app,
    run_sla_sweep,
)
from repro.experiments.runners import POLICY_NAMES, ComparisonRow


@pytest.fixture(scope="module")
def small_env():
    return build_environment(
        "image-query", preset="steady", duration=120.0, train_duration=600.0, seed=2
    )


class TestBuildEnvironment:
    def test_environment_shape(self, small_env):
        assert small_env.app.name == "image-query"
        assert set(small_env.profiles) == set(small_env.app.function_names)
        assert small_env.trace.duration == pytest.approx(120.0)
        assert small_env.train_counts.shape == (600,)

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="unknown application"):
            build_environment("nope")

    def test_policy_registry_complete(self, small_env):
        for name in POLICY_NAMES:
            assert small_env.make_policy(name) is not None
        with pytest.raises(KeyError):
            small_env.make_policy("nope")


class TestRunners:
    def test_run_comparison_rows(self, small_env):
        rows = run_comparison(small_env, ("smiless", "grandslam"))
        assert [r.policy for r in rows] == ["smiless", "grandslam"]
        for r in rows:
            assert isinstance(r, ComparisonRow)
            assert r.total_cost > 0
            assert 0.0 <= r.violation_ratio <= 1.0

    def test_run_sla_sweep(self, small_env):
        out = run_sla_sweep(small_env, (1.0, 4.0), "grandslam")
        assert [sla for sla, _ in out] == [1.0, 4.0]
        # lenient SLA is never more expensive for the slack-driven system
        assert out[1][1].total_cost <= out[0][1].total_cost * 1.05

    def test_run_multi_app(self):
        envs = [
            build_environment(
                name, duration=90.0, train_duration=400.0, seed=5 + i
            )
            for i, name in enumerate(("image-query", "voice-assistant"))
        ]
        rows = run_multi_app(envs, "grandslam")
        assert set(rows) == {"image-query", "voice-assistant"}


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["compare", "image-query", "--duration", "60"])
        assert args.command == "compare"
        assert args.duration == 60.0
        args = parser.parse_args(["sweep", "amber-alert", "--slas", "1", "2"])
        assert args.slas == [1.0, 2.0]

    def test_parser_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "image-query", "--policies", "magic"]
            )

    def test_apps_command(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "amber-alert" in out
        assert "smiless" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "QA"]) == 0
        out = capsys.readouterr().out
        assert "Roberta" in out
        assert "robust=" in out

    def test_compare_command_end_to_end(self, capsys):
        code = main(
            [
                "compare",
                "image-query",
                "--duration",
                "60",
                "--policies",
                "grandslam",
                "--seed",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "grandslam" in out
        assert "$" in out

"""Additional coverage for FunctionProfile and ProfilingPlan surfaces."""

import pytest

from repro.dag.models import get_profile
from repro.hardware import Backend, HardwareConfig
from repro.profiler import FunctionProfile, ProfilingPlan, oracle_profile
from repro.profiler.fitting import FittedLatencyModel
from repro.profiler.inittime import InitTimeEstimate


class TestFunctionProfileSurface:
    @pytest.fixture
    def profile(self):
        return oracle_profile(get_profile("QA"), n_sigma=2.0)

    def test_supports_both_backends(self, profile):
        assert profile.supports(Backend.CPU)
        assert profile.supports(Backend.GPU)

    def test_inference_monotone_in_batch(self, profile):
        cfg = HardwareConfig.cpu(4)
        times = [profile.inference_time(cfg, b) for b in (1, 2, 4, 8)]
        assert times == sorted(times)

    def test_inference_monotone_in_resources(self, profile):
        times = [
            profile.inference_time(HardwareConfig.cpu(c)) for c in (1, 2, 4, 8, 16)
        ]
        assert times == sorted(times, reverse=True)

    def test_init_time_uses_n_sigma(self, profile):
        cfg = HardwareConfig.gpu(0.3)
        assert profile.init_time(cfg) == pytest.approx(
            profile.mean_init_time(cfg)
            + 2.0 * profile._init(Backend.GPU).std
        )

    def test_cpu_only_profile_errors(self):
        cpu_only = FunctionProfile(
            function="x",
            cpu_model=FittedLatencyModel(1.0, 0.1, 0.02),
            gpu_model=None,
            init_cpu=InitTimeEstimate(2.0, 0.1, 10),
            init_gpu=None,
        )
        assert not cpu_only.supports(Backend.GPU)
        with pytest.raises(ValueError, match="gpu"):
            cpu_only.inference_time(HardwareConfig.gpu(0.1))
        with pytest.raises(ValueError, match="gpu"):
            cpu_only.init_time(HardwareConfig.gpu(0.1))


class TestProfilingPlanGrids:
    def test_grid_contents(self):
        plan = ProfilingPlan(cpu_cores=(1, 4), gpu_fractions=(0.5,), batches=(1, 2))
        cpu = plan.cpu_grid()
        gpu = plan.gpu_grid()
        assert {(c.cpu_cores, b) for c, b in cpu} == {(1, 1), (1, 2), (4, 1), (4, 2)}
        assert {(c.gpu_fraction, b) for c, b in gpu} == {(0.5, 1), (0.5, 2)}

    def test_inference_repeats_validation(self):
        with pytest.raises(ValueError):
            ProfilingPlan(inference_repeats=0)

"""Behavioural tests for the scheduling policies.

These assert the *mechanisms* each policy is defined by (configuration
choice, cold-start handling, scaling), plus the qualitative orderings the
paper's evaluation rests on.  Full-figure comparisons live in benchmarks/.
"""

import math

import numpy as np
import pytest

from repro.core.prewarming import ColdStartPolicy
from repro.dag import image_query, linear_pipeline, voice_assistant
from repro.hardware import Backend, ConfigurationSpace, HardwareConfig
from repro.policies import (
    AquatopePolicy,
    GrandSLAmPolicy,
    IceBreakerPolicy,
    OptimalPolicy,
    OrionPolicy,
    SMIlessHomoPolicy,
    SMIlessNoDagPolicy,
    SMIlessPolicy,
)
from repro.profiler import OfflineProfiler, oracle_profile
from repro.simulator import ServerlessSimulator
from repro.workload import AzureLikeWorkload


@pytest.fixture(scope="module")
def app():
    return image_query()


@pytest.fixture(scope="module")
def profiles(app):
    return OfflineProfiler().profile_app(app, rng=1)


@pytest.fixture(scope="module")
def oracle(app):
    return {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}


@pytest.fixture(scope="module")
def steady_trace():
    return AzureLikeWorkload.preset("steady", seed=7).generate(300.0)


def simulate(app, trace, policy, seed=3):
    return ServerlessSimulator(app, trace, policy, seed=seed).run()


class TestSMIlessPolicy:
    def test_runs_and_meets_sla_mostly(self, app, profiles, steady_trace):
        m = simulate(app, steady_trace, SMIlessPolicy(profiles))
        assert m.violation_ratio() < 0.10
        assert m.total_cost() > 0

    def test_prewarm_keeps_reinits_off_critical_path(
        self, app, profiles, steady_trace
    ):
        m = simulate(app, steady_trace, SMIlessPolicy(profiles))
        assert m.reinit_fraction() < 0.10

    def test_strategy_cached_per_bucket(self, app, profiles, steady_trace):
        policy = SMIlessPolicy(profiles)
        simulate(app, steady_trace, policy)
        assert len(policy._strategy_cache) >= 1
        # far fewer optimizer invocations than windows
        assert len(policy._strategy_cache) < 10

    def test_fallback_it_prediction_is_conservative(self, profiles):
        policy = SMIlessPolicy(profiles)
        counts = np.zeros(60, dtype=int)
        counts[::6] = 1  # gaps of exactly 6 windows
        assert policy.predict_inter_arrival(counts) <= 6.0
        assert policy.predict_inter_arrival_upper(counts) >= 6.0

    def test_predict_invocations_ramp_extrapolates(self, profiles):
        policy = SMIlessPolicy(profiles)
        assert policy.predict_invocations(np.array([0, 2, 4])) >= 6
        assert policy.predict_invocations(np.array([0, 0, 1])) == 1
        assert policy.predict_invocations(np.array([], dtype=int)) == 0

    def test_sla_margin_validation(self, profiles):
        with pytest.raises(ValueError):
            SMIlessPolicy(profiles, sla_margin=1.0)

    def test_burst_budgets_respect_sla(self, app, profiles):
        policy = SMIlessPolicy(profiles)
        budgets = policy._burst_budgets(app)
        for path in app.simple_paths():
            assert sum(budgets[f] for f in path) <= app.sla * 0.91


class TestOrionPolicy:
    def test_plans_with_prewarm_assumption(self, app, profiles):
        policy = OrionPolicy(profiles)
        trace = AzureLikeWorkload.preset("steady", seed=9).generate(120.0)
        simulate(app, trace, policy)
        # every function is treated as pre-warmable (Case I pricing)
        for fn in app.function_names:
            assert policy._plans[fn].policy is ColdStartPolicy.PREWARM

    def test_suffers_under_close_arrivals(self, app, profiles, oracle):
        """Fig. 3a: closely spaced invocations break the assumption."""
        bursty = AzureLikeWorkload.preset("bursty", seed=5).generate(300.0)
        orion = simulate(app, bursty, OrionPolicy(profiles))
        opt = simulate(app, bursty, OptimalPolicy(oracle, bursty))
        assert orion.violation_ratio() > opt.violation_ratio()


class TestIceBreakerPolicy:
    def test_dual_pool_configs(self, app, profiles, steady_trace):
        policy = IceBreakerPolicy(profiles)
        simulate(app, steady_trace, policy)
        for fn in app.function_names:
            cpu_cfg = policy._cpu_configs[fn]
            gpu_cfg = policy._gpu_configs[fn]
            assert cpu_cfg is None or cpu_cfg.backend is Backend.CPU
            assert gpu_cfg is None or gpu_cfg.backend is Backend.GPU

    def test_heavy_gpu_usage(self, app, profiles, steady_trace):
        """Fig. 9a: IceBreaker bills most on GPUs."""
        m = simulate(app, steady_trace, IceBreakerPolicy(profiles))
        assert m.backend_cost(Backend.GPU) > 0

    def test_costlier_than_smiless(self, app, profiles, steady_trace):
        """The headline: DAG-oblivious warming is expensive (§VII-B)."""
        ice = simulate(app, steady_trace, IceBreakerPolicy(profiles))
        smi = simulate(app, steady_trace, SMIlessPolicy(profiles))
        assert ice.total_cost() > 1.5 * smi.total_cost()


class TestGrandSLAmPolicy:
    def test_always_on_no_reinits(self, app, profiles, steady_trace):
        m = simulate(app, steady_trace, GrandSLAmPolicy(profiles))
        assert m.reinit_fraction() < 0.05
        assert m.violation_ratio() < 0.05

    def test_stage_budgets_fit_sla(self, app, profiles):
        policy = GrandSLAmPolicy(profiles)
        budgets = policy.stage_budgets(app)
        for path in app.simple_paths():
            assert sum(budgets[f] for f in path) <= app.sla + 1e-9

    def test_costlier_than_smiless(self, app, profiles, steady_trace):
        grand = simulate(app, steady_trace, GrandSLAmPolicy(profiles))
        smi = simulate(app, steady_trace, SMIlessPolicy(profiles))
        assert grand.total_cost() > 1.3 * smi.total_cost()


class TestAquatopePolicy:
    def test_tuned_assignment_covers_all_functions(self, app, profiles):
        policy = AquatopePolicy(profiles, n_iter=10)
        assignment = policy.tune(app)
        assert set(assignment) == set(app.function_names)

    def test_most_reinits_among_managed_policies(
        self, app, profiles, steady_trace
    ):
        """Fig. 9b: Aquatope reinitializes most (no pre-warm coordination)."""
        sparse = AzureLikeWorkload.preset("sparse", seed=4).generate(400.0)
        aqua = simulate(app, sparse, AquatopePolicy(profiles, n_iter=10))
        smi = simulate(app, sparse, SMIlessPolicy(profiles))
        assert aqua.reinit_fraction() >= smi.reinit_fraction()


class TestOptimalPolicy:
    def test_near_zero_violations_on_steady(self, app, oracle, steady_trace):
        m = simulate(app, steady_trace, OptimalPolicy(oracle, steady_trace))
        assert m.violation_ratio() < 0.05

    def test_cheapest_of_all(self, app, profiles, oracle, steady_trace):
        opt = simulate(app, steady_trace, OptimalPolicy(oracle, steady_trace))
        for policy in (
            GrandSLAmPolicy(profiles),
            IceBreakerPolicy(profiles),
        ):
            m = simulate(app, steady_trace, policy)
            assert opt.total_cost() < m.total_cost()

    def test_smiless_within_factor_of_opt(self, app, profiles, oracle, steady_trace):
        """§VII-B: SMIless approximates OPT (paper: within ~1.5x)."""
        opt = simulate(app, steady_trace, OptimalPolicy(oracle, steady_trace))
        smi = simulate(app, steady_trace, SMIlessPolicy(profiles))
        assert smi.total_cost() <= 2.0 * opt.total_cost()


class TestAblations:
    def test_no_dag_costs_more(self, app, profiles, steady_trace):
        """Fig. 13a: simultaneous warm-up wastes money (paper: +39 %)."""
        smi = simulate(app, steady_trace, SMIlessPolicy(profiles))
        nodag = simulate(app, steady_trace, SMIlessNoDagPolicy(profiles))
        assert nodag.total_cost() > smi.total_cost()

    def test_homo_uses_only_cpu(self, app, profiles, steady_trace):
        m = simulate(app, steady_trace, SMIlessHomoPolicy(profiles))
        assert m.backend_cost(Backend.GPU) == 0.0

    def test_homo_struggles_with_tight_sla(self, profiles):
        """Fig. 13b: CPU-only cannot meet tight SLAs (paper: up to 22 %)."""
        tight = image_query(sla=0.6)
        trace = AzureLikeWorkload.preset("steady", seed=11).generate(300.0)
        homo = simulate(tight, trace, SMIlessHomoPolicy(profiles))
        hetero = simulate(tight, trace, SMIlessPolicy(profiles))
        assert homo.violation_ratio() > 0.2
        assert hetero.violation_ratio() < 0.1


class TestPolicyHygiene:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda p, tr: SMIlessPolicy(p),
            lambda p, tr: OrionPolicy(p),
            lambda p, tr: IceBreakerPolicy(p),
            lambda p, tr: GrandSLAmPolicy(p),
            lambda p, tr: AquatopePolicy(p, n_iter=5),
            lambda p, tr: SMIlessNoDagPolicy(p),
            lambda p, tr: SMIlessHomoPolicy(p),
        ],
    )
    def test_all_policies_complete_all_invocations(
        self, app, profiles, steady_trace, factory
    ):
        m = simulate(app, steady_trace, factory(profiles, steady_trace))
        assert len(m.invocations) + m.unfinished == 72 or len(
            m.invocations
        ) == len(steady_trace)

    def test_works_on_deeper_dag(self, steady_trace):
        app = voice_assistant()
        profiles = OfflineProfiler().profile_app(app, rng=2)
        m = simulate(app, steady_trace, SMIlessPolicy(profiles))
        assert len(m.invocations) == len(steady_trace)

    def test_single_function_app(self, steady_trace):
        app = linear_pipeline(1, models=("QA",))
        profiles = OfflineProfiler().profile_app(app, rng=2)
        m = simulate(app, steady_trace, SMIlessPolicy(profiles))
        assert m.violation_ratio() < 0.15

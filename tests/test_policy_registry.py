"""Tests for the decorator-based policy registry."""

import pytest

from repro.policies import (
    Policy,
    get_policy_spec,
    make_policy,
    policy_names,
    register_policy,
    registered_policies,
)
from repro.policies import registry as registry_mod

ALL_BUILTIN = (
    "smiless",
    "orion",
    "icebreaker",
    "grandslam",
    "aquatope",
    "opt",
    "smiless-no-dag",
    "smiless-homo",
    "always-on",
    "on-demand",
)


class TestBuiltinRegistrations:
    def test_all_builtin_policies_registered(self):
        names = policy_names()
        for name in ALL_BUILTIN:
            assert name in names

    def test_names_sorted_for_stable_display(self):
        assert list(policy_names()) == sorted(policy_names())

    def test_specs_carry_classes(self):
        for name, spec in registered_policies().items():
            assert spec.name == name
            assert isinstance(spec.cls, type)
            assert issubclass(spec.cls, Policy)

    def test_opt_constructor_spec_uses_oracle_and_trace(self):
        spec = get_policy_spec("opt")
        assert spec.args == ("oracle", "trace")

    def test_reference_policies_need_no_environment(self):
        class NoEnv:
            pass

        for name in ("always-on", "on-demand"):
            assert make_policy(name, NoEnv()).name == name


class TestRegistrationMechanics:
    def test_decorator_returns_class_and_registers(self):
        @register_policy("_test-reg", args=())
        class _TestPolicy(Policy):
            name = "_test-reg"

            def on_register(self, app, ctx):
                pass

        try:
            assert get_policy_spec("_test-reg").cls is _TestPolicy
            assert isinstance(make_policy("_test-reg", object()), _TestPolicy)
        finally:
            registry_mod._REGISTRY.pop("_test-reg")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_policy("smiless")
            class _Clash(Policy):  # pragma: no cover - never instantiated
                def on_register(self, app, ctx):
                    pass

    def test_unknown_name_lists_registry(self):
        with pytest.raises(KeyError) as exc:
            get_policy_spec("nope")
        message = str(exc.value)
        for name in ALL_BUILTIN:
            assert name in message

    def test_make_policy_unknown_name(self):
        with pytest.raises(KeyError, match="unknown policy"):
            make_policy("nope", object())

    def test_constructor_spec_pulls_environment_attributes(self):
        class Probe(Policy):
            name = "probe"

            def __init__(self, profiles, *, train_counts=None):
                self.profiles = profiles
                self.train_counts = train_counts

            def on_register(self, app, ctx):
                pass

        register_policy(
            "_test-probe", kwargs={"train_counts": "train_counts"}
        )(Probe)
        try:

            class Env:
                profiles = {"f": "profile"}
                train_counts = [1, 2, 3]

            policy = make_policy("_test-probe", Env())
            assert policy.profiles == {"f": "profile"}
            assert policy.train_counts == [1, 2, 3]
        finally:
            registry_mod._REGISTRY.pop("_test-probe")

"""Snapshot tests for the plain-text report renderers.

The reports are read by humans and scraped by scripts, so their exact
shape is part of the contract: these tests freeze the current output of
every renderer over a hand-built, fully deterministic
:class:`~repro.simulator.metrics.RunMetrics` — including the zero-traffic
path — so layout drift shows up as a diff, not a surprise.
"""

from textwrap import dedent

from repro.hardware import HardwareConfig
from repro.simulator.invocation import Invocation
from repro.simulator.metrics import InstanceUsage, RunMetrics
from repro.simulator.reporting import (
    format_cost_breakdown,
    format_function_table,
    format_latency_histogram,
    format_report,
)


def usage(fn, cfg, lifetime, init, busy, served):
    return InstanceUsage(
        function=fn,
        config=cfg,
        lifetime=lifetime,
        init_seconds=init,
        busy_seconds=busy,
        idle_seconds=lifetime - init - busy,
        cost=lifetime * cfg.unit_cost,
        batches_served=served,
        invocations_served=served,
    )


def inv(i, arrival, latency):
    v = Invocation(app="demo", arrival=arrival, invocation_id=i)
    v.completed_at = arrival + latency
    return v


def make_metrics() -> RunMetrics:
    m = RunMetrics(app="demo", policy="unit", sla=2.0, duration=100.0)
    m.instances = [
        usage("A", HardwareConfig.cpu(2), 40.0, 2.0, 10.0, 5),
        usage("A", HardwareConfig.cpu(2), 10.0, 2.0, 2.0, 1),
        usage("B", HardwareConfig.gpu(0.3), 20.0, 4.0, 8.0, 6),
    ]
    m.invocations = [
        inv(i, float(i), lat)
        for i, lat in enumerate((0.5, 1.0, 1.5, 1.5, 2.5, 4.0))
    ]
    m.unfinished = 1
    m.stage_executions = 12
    m.cold_stage_executions = 3
    m.initializations = 3
    m.failed_initializations = 1
    return m


def test_cost_breakdown_snapshot():
    assert format_cost_breakdown(make_metrics()) == dedent(
        """\
        total cost $0.0060
          init       $0.0011 (18%)
          inference  $0.0023 (37%)
          keepalive  $0.0027 (44%)"""
    )


def test_function_table_snapshot():
    assert format_function_table(make_metrics()) == dedent(
        """\
        function       instances    billed      cost  served
        A                      2     50.0s $  0.0009       6
        B                      1     20.0s $  0.0051       6"""
    )


def test_latency_histogram_snapshot():
    out = format_latency_histogram(make_metrics(), bins=4, width=10)
    assert out == "\n".join(
        [
            "  0.00- 1.01s |##########|    2",
            "  1.01- 2.02s |##########|    2 <- SLA",
            "  2.02- 3.03s |#####     |    1",
            "  3.03- 4.04s |#####     |    1",
        ]
    )


def test_latency_histogram_no_traffic():
    empty = RunMetrics(app="idle", policy="unit", sla=2.0)
    assert format_latency_histogram(empty) == "(no completed invocations)"


def test_full_report_snapshot():
    assert format_report(make_metrics()) == dedent(
        """\
        run report — app=demo policy=unit sla=2.0s duration=100s
        invocations: 6 completed, 1 unfinished, 0 timed out
        violations 42.9%, availability 85.7%, goodput 57.1%
        latency: mean 1.83s p50 1.50s p99 3.93s

        total cost $0.0060
          init       $0.0011 (18%)
          inference  $0.0023 (37%)
          keepalive  $0.0027 (44%)

        function       instances    billed      cost  served
        A                      2     50.0s $  0.0009       6
        B                      1     20.0s $  0.0051       6

          0.00- 0.40s |                                        |    0
          0.40- 0.81s |####################                    |    1
          0.81- 1.21s |####################                    |    1
          1.21- 1.62s |########################################|    2
          1.62- 2.02s |                                        |    0 <- SLA
          2.02- 2.42s |                                        |    0
          2.42- 2.83s |####################                    |    1
          2.83- 3.23s |                                        |    0
          3.23- 3.64s |                                        |    0
          3.64- 4.04s |####################                    |    1

        (re)initializations: 3 (25.0% of stage executions cold, 1 failed)"""
    )


def test_full_report_faults_footer_snapshot():
    """Runs that absorbed faults grow one extra summary section."""
    m = make_metrics()
    m.timed_out = 2
    m.stage_retries = 4
    m.failed_executions = 3
    m.fallbacks = 1
    report = format_report(m)
    assert report.startswith(
        dedent(
            """\
            run report — app=demo policy=unit sla=2.0s duration=100s
            invocations: 6 completed, 1 unfinished, 2 timed out
            violations 55.6%, availability 66.7%, goodput 44.4%"""
        )
    )
    assert report.endswith(
        "faults absorbed: 4 stage retries, 3 failed executions, 1 fallbacks"
    )


def test_full_report_zero_traffic_snapshot():
    empty = RunMetrics(app="idle", policy="unit", sla=2.0, duration=50.0)
    assert format_report(empty) == dedent(
        """\
        run report — app=idle policy=unit (no traffic)

        total cost $0.0000
          init       $0.0000 (0%)
          inference  $0.0000 (0%)
          keepalive  $0.0000 (0%)

        function       instances    billed      cost  served

        (no completed invocations)

        (re)initializations: 0 (0.0% of stage executions cold)"""
    )

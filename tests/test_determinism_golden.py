"""Golden determinism regression for the hot-path refactor.

The indexed pools, streamed arrivals, cancellable timers and memoized
performance models are pure optimizations: they must not change any
simulated outcome.  These goldens were captured from the pre-optimization
engine (flat instance lists, pre-pushed arrivals, epoch-checked expiry
closures, unmemoized models) on a fixed seed; exact equality guards the
whole refactor, bit for bit.
"""

import hashlib

import numpy as np
import pytest

from repro.experiments import build_environment
from repro.predictor.interarrival import InterArrivalPredictor, gaps_from_counts
from repro.predictor.invocation import InvocationPredictor
from repro.simulator import ServerlessSimulator
from repro.telemetry.audit import format_decision_audit
from repro.telemetry.recorder import TraceRecorder, write_jsonl

GOLDEN = {
    "smiless": {
        "total_cost": 0.021234276514211513,
        "violation_ratio": 0.0625,
        "invocations": 32.0,
        "mean_latency": 1.8374996431873079,
        "p50_latency": 1.7217652206835865,
        "p99_latency": 4.176380256244681,
        "reinit_fraction": 0.0234375,
        "cpu_cost": 0.009589276514211511,
        "gpu_cost": 0.011645000000000003,
        "availability": 1.0,
        "goodput": 0.9375,
    },
    "grandslam": {
        "total_cost": 0.04533333333333334,
        "violation_ratio": 0.0,
        "invocations": 32.0,
        "mean_latency": 1.1689839044284174,
        "p50_latency": 1.1668884110355293,
        "p99_latency": 1.3531786860133097,
        "reinit_fraction": 0.0,
        "cpu_cost": 0.04533333333333334,
        "gpu_cost": 0,
        "availability": 1.0,
        "goodput": 1.0,
    },
}


# Captured from the pre-optimization policy path (before prediction
# caching, vectorized co-optimization and directive reuse): a second
# smiless cell on a different app, plus full-trace and decision-audit
# digests of a *traced* image-query run.  The optimizations must leave
# metrics, traces and audits byte-identical.
SMILESS_AMBER_GOLDEN = {
    "total_cost": 0.04962998161721614,
    "violation_ratio": 0.0625,
    "invocations": 32.0,
    "mean_latency": 1.946881771898577,
    "p50_latency": 1.8418977967539973,
    "p99_latency": 4.245052596596203,
    "reinit_fraction": 0.020833333333333332,
    "cpu_cost": 0.02633998161721614,
    "gpu_cost": 0.023290000000000005,
    "availability": 1.0,
    "goodput": 0.9375,
}
SMILESS_TRACE_DIGEST = "882cb77403c038ffac378cc2058aa98f"
SMILESS_AUDIT_DIGEST = "966f317ac4fa2d476dbb37b004e32364"
SMILESS_TRACE_EVENTS = 1038


@pytest.fixture(scope="module")
def environment():
    return build_environment(
        "image-query", preset="steady", sla=2.0, duration=150.0, seed=0
    )


@pytest.mark.parametrize("policy", sorted(GOLDEN))
def test_summary_bit_identical_to_pre_refactor_engine(environment, policy):
    env = environment
    metrics = ServerlessSimulator(
        env.app, env.trace, env.make_policy(policy), seed=3
    ).run()
    summary = metrics.summary()
    assert summary == GOLDEN[policy]


def test_back_to_back_runs_identical(environment):
    """Memo caches warmed by a first run must not perturb a second one."""
    env = environment

    def one_run():
        return ServerlessSimulator(
            env.app, env.trace, env.make_policy("smiless"), seed=3
        ).run().summary()

    assert one_run() == one_run()


def test_smiless_amber_summary_bit_identical():
    """Second-app smiless golden pinned before the policy-path optimization."""
    env = build_environment(
        "amber-alert", preset="steady", sla=2.0, duration=150.0, seed=0
    )
    summary = ServerlessSimulator(
        env.app, env.trace, env.make_policy("smiless"), seed=3
    ).run().summary()
    assert summary == SMILESS_AMBER_GOLDEN


def test_smiless_trace_and_audit_digests_bit_identical(environment, tmp_path):
    """Traced runs must re-emit the exact pre-optimization event stream.

    Directive reuse may only skip re-issues on *untraced* runs, so the
    JSONL trace and the decision-audit rendering of a recorded run pin
    the full ``DirectiveChanged`` churn byte for byte.
    """
    env = environment
    rec = TraceRecorder()
    ServerlessSimulator(
        env.app, env.trace, env.make_policy("smiless"), seed=3, recorder=rec
    ).run()
    path = tmp_path / "trace.jsonl"
    write_jsonl(rec.events, path)
    trace_digest = hashlib.blake2b(
        path.read_bytes(), digest_size=16
    ).hexdigest()
    audit_digest = hashlib.blake2b(
        format_decision_audit(rec.events).encode(), digest_size=16
    ).hexdigest()
    assert len(rec.events) == SMILESS_TRACE_EVENTS
    assert trace_digest == SMILESS_TRACE_DIGEST
    assert audit_digest == SMILESS_AUDIT_DIGEST


def test_predictor_cache_bit_identical_across_randomized_histories():
    """Cached and uncached predictor outputs agree bitwise on random tails."""
    rng = np.random.default_rng(42)
    train = rng.poisson(0.8, size=900)
    inv = InvocationPredictor(
        bucket_size=1, n_buckets=16, epochs=2, seed=0
    ).fit(train)
    inter = InterArrivalPredictor(epochs=2, seed=0).fit(train)
    checked_inter = 0
    for _ in range(30):
        size = int(rng.integers(60, 400))
        hist = rng.poisson(float(rng.uniform(0.3, 3.0)), size=size)
        cached = inv.predict_next(hist)
        assert cached == inv.predict_next(hist, use_cache=False)
        assert cached == inv.predict_next(hist)  # memo hit, same value
        gaps = gaps_from_counts(hist)
        if gaps.size >= inter.gap_window and hist.size >= inter.count_window:
            got = inter.predict_next(gaps, hist)
            assert got == inter.predict_next(gaps, hist, use_cache=False)
            assert got == inter.predict_next(gaps, hist)  # memo hit
            checked_inter += 1
    assert checked_inter >= 10  # the generator must exercise the LSTM path

"""Golden determinism regression for the hot-path refactor.

The indexed pools, streamed arrivals, cancellable timers and memoized
performance models are pure optimizations: they must not change any
simulated outcome.  These goldens were captured from the pre-optimization
engine (flat instance lists, pre-pushed arrivals, epoch-checked expiry
closures, unmemoized models) on a fixed seed; exact equality guards the
whole refactor, bit for bit.
"""

import pytest

from repro.experiments import build_environment
from repro.simulator import ServerlessSimulator

GOLDEN = {
    "smiless": {
        "total_cost": 0.021234276514211513,
        "violation_ratio": 0.0625,
        "invocations": 32.0,
        "mean_latency": 1.8374996431873079,
        "p50_latency": 1.7217652206835865,
        "p99_latency": 4.176380256244681,
        "reinit_fraction": 0.0234375,
        "cpu_cost": 0.009589276514211511,
        "gpu_cost": 0.011645000000000003,
        "availability": 1.0,
        "goodput": 0.9375,
    },
    "grandslam": {
        "total_cost": 0.04533333333333334,
        "violation_ratio": 0.0,
        "invocations": 32.0,
        "mean_latency": 1.1689839044284174,
        "p50_latency": 1.1668884110355293,
        "p99_latency": 1.3531786860133097,
        "reinit_fraction": 0.0,
        "cpu_cost": 0.04533333333333334,
        "gpu_cost": 0,
        "availability": 1.0,
        "goodput": 1.0,
    },
}


@pytest.fixture(scope="module")
def environment():
    return build_environment(
        "image-query", preset="steady", sla=2.0, duration=150.0, seed=0
    )


@pytest.mark.parametrize("policy", sorted(GOLDEN))
def test_summary_bit_identical_to_pre_refactor_engine(environment, policy):
    env = environment
    metrics = ServerlessSimulator(
        env.app, env.trace, env.make_policy(policy), seed=3
    ).run()
    summary = metrics.summary()
    assert summary == GOLDEN[policy]


def test_back_to_back_runs_identical(environment):
    """Memo caches warmed by a first run must not perturb a second one."""
    env = environment

    def one_run():
        return ServerlessSimulator(
            env.app, env.trace, env.make_policy("smiless"), seed=3
        ).run().summary()

    assert one_run() == one_run()

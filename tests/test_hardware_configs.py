"""Tests for the hardware configuration space and pricing model."""

import pytest

from repro.hardware import (
    CPU_CORE_OPTIONS,
    CPU_CORE_PRICE_PER_HOUR,
    GPU_FRACTION_OPTIONS,
    GPU_PRICE_PER_HOUR,
    Backend,
    ConfigurationSpace,
    HardwareConfig,
)


class TestHardwareConfig:
    def test_cpu_constructor_validates_cores(self):
        with pytest.raises(ValueError):
            HardwareConfig.cpu(3)

    def test_gpu_constructor_validates_fraction_range(self):
        with pytest.raises(ValueError):
            HardwareConfig.gpu(0.05)
        with pytest.raises(ValueError):
            HardwareConfig.gpu(1.1)

    def test_gpu_fraction_must_be_on_mps_grid(self):
        with pytest.raises(ValueError):
            HardwareConfig.gpu(0.25)

    def test_cpu_cannot_carry_gpu_fraction(self):
        with pytest.raises(ValueError):
            HardwareConfig(Backend.CPU, cpu_cores=4, gpu_fraction=0.1)

    def test_gpu_cannot_carry_cores(self):
        with pytest.raises(ValueError):
            HardwareConfig(Backend.GPU, cpu_cores=2, gpu_fraction=0.2)

    def test_cpu_pricing_matches_paper(self):
        # x cores cost x * $0.034/hour (§VII-A)
        for cores in CPU_CORE_OPTIONS:
            cfg = HardwareConfig.cpu(cores)
            assert cfg.unit_cost_per_hour == pytest.approx(cores * 0.034)

    def test_gpu_pricing_matches_paper(self):
        # 10% of a GPU costs 10% of $3.06/hour (§VII-A)
        cfg = HardwareConfig.gpu(0.1)
        assert cfg.unit_cost_per_hour == pytest.approx(0.306)
        assert HardwareConfig.gpu(1.0).unit_cost_per_hour == pytest.approx(3.06)

    def test_unit_cost_is_per_second(self):
        cfg = HardwareConfig.cpu(1)
        assert cfg.unit_cost == pytest.approx(CPU_CORE_PRICE_PER_HOUR / 3600)

    def test_gpu_unit_price_ratio(self):
        # a full GPU is 90x one CPU core and ~5.6x a 16-core CPU
        gpu = HardwareConfig.gpu(1.0)
        cpu1 = HardwareConfig.cpu(1)
        assert gpu.unit_cost / cpu1.unit_cost == pytest.approx(
            GPU_PRICE_PER_HOUR / CPU_CORE_PRICE_PER_HOUR
        )

    def test_key_roundtrip(self):
        for cfg in (HardwareConfig.cpu(8), HardwareConfig.gpu(0.3)):
            assert HardwareConfig.from_key(cfg.key) == cfg

    def test_from_key_rejects_garbage(self):
        with pytest.raises(ValueError):
            HardwareConfig.from_key("tpu-1")

    def test_ordering_is_by_unit_cost(self):
        configs = sorted(
            [HardwareConfig.gpu(0.1), HardwareConfig.cpu(16), HardwareConfig.cpu(1)]
        )
        assert configs[0] == HardwareConfig.cpu(1)
        assert configs[-1] == HardwareConfig.cpu(16)

    def test_mps_slots(self):
        assert HardwareConfig.gpu(0.3).mps_slots == 3
        assert HardwareConfig.gpu(1.0).mps_slots == 10
        assert HardwareConfig.cpu(4).mps_slots == 0

    def test_hashable_and_equal(self):
        assert HardwareConfig.cpu(4) == HardwareConfig.cpu(4)
        assert len({HardwareConfig.cpu(4), HardwareConfig.cpu(4)}) == 1


class TestConfigurationSpace:
    def test_default_space_has_15_points(self):
        space = ConfigurationSpace.default()
        assert len(space) == len(CPU_CORE_OPTIONS) + len(GPU_FRACTION_OPTIONS)

    def test_configs_sorted_cheapest_first(self):
        space = ConfigurationSpace.default()
        costs = [c.unit_cost for c in space.configs]
        assert costs == sorted(costs)

    def test_cheapest_and_most_expensive(self):
        space = ConfigurationSpace.default()
        assert space.cheapest() == HardwareConfig.cpu(1)
        assert space.most_expensive() == HardwareConfig.gpu(1.0)

    def test_cpu_only_space(self):
        space = ConfigurationSpace.cpu_only()
        assert all(c.backend is Backend.CPU for c in space)
        assert len(space) == len(CPU_CORE_OPTIONS)

    def test_by_key_lookup(self):
        space = ConfigurationSpace.default()
        assert space.by_key("gpu-50") == HardwareConfig.gpu(0.5)
        with pytest.raises(KeyError):
            space.by_key("gpu-55")

    def test_contains(self):
        space = ConfigurationSpace.cpu_only()
        assert HardwareConfig.cpu(2) in space
        assert HardwareConfig.gpu(0.2) not in space

    def test_backend_partitions(self):
        space = ConfigurationSpace.default()
        cpus, gpus = space.cpu_configs(), space.gpu_configs()
        assert len(cpus) + len(gpus) == len(space)
        assert all(c.backend is Backend.CPU for c in cpus)
        assert all(c.backend is Backend.GPU for c in gpus)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(cpu_cores=(), gpu_fractions=())

"""Differential tests: sharded runs vs the 1-shard reference.

The shard plane's correctness bar (ISSUE 7): a 4-shard run of a plan
merges to **bit-identical** non-distributional metrics — costs, counters,
violation/availability/goodput ratios, conservation sums — as a 1-shard
run of the same plan, because both simulate exactly the same (app ×
trace-slice) units with the same seeds and collapse them in the same
canonical order.  Latency quantiles from the merged sketch stay within
the sketch's documented rank-error bound of the exact per-unit latencies.

A chaos cell (FaultPlan with execution faults + resilience knobs) pins
that fault counters survive the barrier merge too.

The full-scale 100k-invocation version of this differential runs in the
benchmark tier (``benchmarks/test_perf_macrobench.py``); these runs are
sized for tier-1.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from tests.test_retention_differential import COUNTERS, EXACT_FIELDS

from repro.experiments.parallel import EnvSpec, _environment
from repro.faults.plan import ExecutionFault, FaultPlan, FlashCrowd, ResilienceSpec
from repro.overload import OverloadSpec
from repro.sharding import ShardPlan, run_sharded
from repro.simulator import ServerlessSimulator
from repro.simulator.runtime import derive_slice_seed

APPS = ("amber-alert", "image-query", "voice-assistant")


def _envs(apps, duration):
    return tuple(
        EnvSpec(app=app, preset="flood", sla=2.0, duration=duration)
        for app in apps
    )


def assert_metrics_identical(merged: dict, reference: dict) -> None:
    """Field-by-field parity: summaries and raw counters, NaN == NaN."""
    assert set(merged) == set(reference)
    for app in merged:
        ms, rs = merged[app].summary(), reference[app].summary()
        for key in EXACT_FIELDS:
            a, b = ms[key], rs[key]
            assert a == b or (math.isnan(a) and math.isnan(b)), (
                f"{app}.{key}: sharded={a!r} reference={b!r}"
            )
        for key in COUNTERS:
            assert getattr(merged[app], key) == getattr(
                reference[app], key
            ), (app, key)
        assert merged[app].n_completed == reference[app].n_completed
        assert merged[app].cost_breakdown() == reference[app].cost_breakdown()
        assert merged[app].duration == reference[app].duration


class TestFourShardParity:
    """The headline differential: 4 shards vs 1 shard, same plan."""

    DURATION = 400.0

    @pytest.fixture(scope="class")
    def snapshots(self):
        envs = _envs(APPS, self.DURATION)
        plan4 = ShardPlan.for_apps(APPS, n_shards=4, slices_per_app=4)
        plan1 = ShardPlan.for_apps(APPS, n_shards=1, slices_per_app=4)
        # Serial reference first: with the fork start method the pool
        # workers then inherit this process's warm environment cache.
        reference = run_sharded(plan1, envs, "grandslam", processes=1)
        sharded = run_sharded(plan4, envs, "grandslam")
        return sharded, reference, envs

    def test_snapshots_bit_identical(self, snapshots):
        sharded, reference, _ = snapshots
        # Dataclass equality covers every unit's counters and the exact
        # accumulator states (sketch centroids, stats, billing sums).
        assert sharded == reference

    def test_merged_metrics_field_by_field(self, snapshots):
        sharded, reference, _ = snapshots
        assert_metrics_identical(
            sharded.per_app_metrics(), reference.per_app_metrics()
        )

    def test_conservation_across_slices(self, snapshots):
        sharded, _, envs = snapshots
        merged = sharded.per_app_metrics()
        for env in envs:
            arrivals = len(_environment(env).trace)
            m = merged[env.app]
            assert m.n_completed + m.unfinished + m.timed_out == arrivals, (
                env.app
            )
            assert m.n_completed > 0

    def test_merged_quantiles_within_rank_bound(self, snapshots):
        """Merged sketch quantiles vs exact full-retention references.

        Rebuilds each unit with ``retention="full"`` (same sliced trace,
        same derived seed — the simulations are bit-identical across
        retention modes) and checks the merged sketch against the
        concatenated exact latencies.
        """
        sharded, _, envs = snapshots
        merged = sharded.per_app_metrics()
        env = envs[1]  # image-query: mid-size app keeps this affordable
        built = _environment(env)
        n_slices = 4
        width = built.trace.duration / n_slices
        lats = []
        for i in range(n_slices):
            end = built.trace.duration if i == n_slices - 1 else (i + 1) * width
            sliced = built.trace.slice(i * width, end)
            metrics = ServerlessSimulator(
                built.app,
                sliced,
                built.make_policy("grandslam"),
                seed=derive_slice_seed(3, env.app, i, n_slices),
                retention="full",
            ).run()
            lats.append(metrics.latencies())
        lat = np.sort(np.concatenate(lats))
        m = merged[env.app]
        assert m.n_completed == lat.size
        assert lat.size > m.latency_sketch.compression  # past exact regime
        bound = m.latency_sketch.rank_error_bound
        for q in (50.0, 90.0, 99.0):
            value = m.latency_percentile(q)
            lo = np.searchsorted(lat, value, side="left") / lat.size
            hi = np.searchsorted(lat, value, side="right") / lat.size
            target = q / 100.0
            err = (
                0.0
                if lo <= target <= hi
                else min(abs(target - lo), abs(target - hi))
            )
            assert err <= bound + 1e-12, (q, err, bound)


class TestChaosParity:
    """Fault counters survive the barrier merge bit for bit."""

    def test_fault_counters_survive_merge(self):
        plan2 = ShardPlan.for_apps(
            ["image-query"], n_shards=2, slices_per_app=2
        )
        plan1 = ShardPlan.for_apps(
            ["image-query"], n_shards=1, slices_per_app=2
        )
        envs = _envs(["image-query"], 300.0)
        faults = FaultPlan(
            execution_faults=(ExecutionFault(rate=0.25),),
            resilience=ResilienceSpec(
                max_retries=6, retry_backoff=0.3, deadline_factor=4.0
            ),
        )
        sharded = run_sharded(plan2, envs, "grandslam", faults=faults)
        reference = run_sharded(
            plan1, envs, "grandslam", processes=1, faults=faults
        )
        assert sharded == reference
        merged = sharded.per_app_metrics()
        ref = reference.per_app_metrics()
        assert_metrics_identical(merged, ref)
        m = merged["image-query"]
        # The chaos actually bit — and the bites made it through the merge.
        assert m.stage_retries > 0
        assert m.failed_executions > 0
        assert m.availability() <= 1.0


class TestOverloadParity:
    """Overload counters commute with sharding (satellite, ISSUE 9).

    Admission decisions are a pure function of the arrival timestamps
    (no RNG, no wall clock), so every slice replays the same sheds and
    rejections whether its unit runs in one process or four — the merged
    ``shed`` / ``rejected`` sums and the max-merged ``peak_queue_depth``
    are field-by-field identical to the 1-shard reference.
    """

    def test_overload_counters_survive_merge(self):
        plan2 = ShardPlan.for_apps(
            ["image-query"], n_shards=2, slices_per_app=2
        )
        plan1 = ShardPlan.for_apps(
            ["image-query"], n_shards=1, slices_per_app=2
        )
        envs = _envs(["image-query"], 300.0)
        faults = FaultPlan(
            flash_crowds=(FlashCrowd(rate=40.0, start=100.0, end=108.0),)
        )
        overload = OverloadSpec(
            queue_limit=8,
            shed_policy="deadline-aware",
            admission_rate=20.0,
            admission_burst=10.0,
        )
        sharded = run_sharded(
            plan2, envs, "grandslam", faults=faults, overload=overload
        )
        reference = run_sharded(
            plan1, envs, "grandslam", processes=1, faults=faults,
            overload=overload,
        )
        assert sharded == reference
        merged = sharded.per_app_metrics()
        assert_metrics_identical(merged, reference.per_app_metrics())
        m = merged["image-query"]
        # The overload machinery actually engaged on both sides of the
        # differential — the parity is not vacuous.
        assert m.shed > 0
        assert m.rejected > 0
        assert m.injected_arrivals > 0
        # peak depth merges by max over units, never exceeding the bound.
        units = [u for u in sharded.units if u.app == "image-query"]
        assert m.peak_queue_depth == max(u.peak_queue_depth for u in units)
        assert m.peak_queue_depth <= overload.queue_limit
        # Extended conservation across the slice boundaries.
        arrivals = len(_environment(envs[0]).trace)
        assert arrivals + m.injected_arrivals == (
            m.n_completed + m.unfinished + m.timed_out + m.shed + m.rejected
        )

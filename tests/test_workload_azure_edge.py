"""Edge cases for the workload layer: traces and the Azure-like generator.

Covers the awkward inputs the scale plane must digest without surprises —
duplicate timestamps, out-of-order rows, empty windows, empty traces —
plus the streamed-buffer contract of :meth:`AzureLikeWorkload.generate`:
the geometrically-grown numpy buffer must reproduce the historical
list-based generator bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng
from repro.workload import AzureLikeWorkload, Trace
from repro.workload.azure import PRESETS


class TestTraceEdgeCases:
    def test_out_of_order_rows_sorted(self):
        trace = Trace([5.0, 1.0, 3.0], duration=10.0)
        assert list(trace.times) == [1.0, 3.0, 5.0]

    def test_duplicate_timestamps_kept(self):
        trace = Trace([2.0, 2.0, 2.0, 7.0], duration=10.0)
        assert len(trace) == 4
        assert list(trace.times) == [2.0, 2.0, 2.0, 7.0]
        counts = trace.counts_per_window(1.0)
        assert counts[2] == 3 and counts[7] == 1

    def test_empty_windows_zero_filled(self):
        trace = Trace([0.5, 8.5], duration=10.0)
        counts = trace.counts_per_window(1.0)
        assert counts.shape == (10,)
        assert counts.sum() == 2
        assert list(np.flatnonzero(counts)) == [0, 8]

    def test_empty_trace(self):
        trace = Trace(np.empty(0), duration=5.0)
        assert len(trace) == 0
        assert trace.counts_per_window(1.0).sum() == 0
        assert trace.inter_arrival_times().size == 0

    def test_duration_before_last_arrival_rejected(self):
        with pytest.raises(ValueError):
            Trace([1.0, 9.0], duration=5.0)

    def test_non_finite_and_negative_rejected(self):
        with pytest.raises(ValueError):
            Trace([1.0, float("nan")], duration=10.0)
        with pytest.raises(ValueError):
            Trace([-0.5, 1.0], duration=10.0)

    def test_times_read_only(self):
        trace = Trace([1.0, 2.0], duration=5.0)
        with pytest.raises(ValueError):
            trace.times[0] = 0.0

    def test_variance_to_mean_zero_on_silence(self):
        trace = Trace(np.empty(0), duration=10.0)
        assert trace.variance_to_mean_ratio(1.0) == 0.0


class TestStreamedGeneration:
    """`generate` streams into a growable numpy buffer; the draw sequence
    — hence the trace — must match the historical list-based loop."""

    @staticmethod
    def _reference_generate(pattern, seed, duration):
        # The pre-scale-plane generator: a Python list of boxed floats.
        rng = ensure_rng(seed)
        shape = 1.0 / pattern.gap_cv**2
        times = []
        t = 0.0
        while True:
            local_mean = pattern.gap_at(t)
            t += float(rng.gamma(shape, local_mean / shape))
            if t >= duration:
                break
            times.append(t)
        base = np.asarray(times) if times else np.empty(0)
        if base.size:
            base = base[~pattern.in_idle_phase(base)]
        pieces = [base]
        if pattern.burst_frequency > 0 and pattern.burst_size > 0:
            n_bursts = rng.poisson(pattern.burst_frequency * duration)
            for start in np.sort(rng.random(n_bursts) * duration):
                span = min(pattern.burst_spread, duration - start)
                if span <= 0:
                    continue
                size = rng.poisson(
                    pattern.burst_size * (1.0 + rng.pareto(3.0))
                )
                if size:
                    offsets = rng.triangular(0.0, 0.45 * span, span, size)
                    pieces.append(start + np.sort(offsets))
        return Trace(np.concatenate(pieces), duration=duration)

    @pytest.mark.parametrize("preset", ["steady", "bursty", "sparse", "flood"])
    def test_bit_identical_to_list_based_reference(self, preset):
        pattern = PRESETS[preset]
        duration = 120.0
        got = AzureLikeWorkload(pattern=pattern, seed=42).generate(duration)
        want = self._reference_generate(pattern, 42, duration)
        assert got.times.shape == want.times.shape
        assert np.array_equal(got.times, want.times)

    def test_buffer_growth_past_initial_capacity(self):
        # flood at 600 s yields ~4000 arrivals — several buffer doublings
        # past the initial 1024 slots.
        trace = AzureLikeWorkload.preset("flood", seed=1).generate(600.0)
        assert len(trace) > 2048
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.times[-1] < 600.0

    def test_tiny_duration_can_be_empty(self):
        # Duration far below the mean gap: usually no arrivals, and the
        # generator must return a valid empty trace rather than crash.
        trace = AzureLikeWorkload.preset("sparse", seed=0).generate(0.001)
        assert len(trace) == 0
        assert trace.duration == 0.001

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="unknown preset"):
            AzureLikeWorkload.preset("tsunami")

    def test_flood_preset_rate(self):
        # The macro-bench regime: ~1/0.15 ≈ 6.7 arrivals/s per app.
        pattern = PRESETS["flood"]
        assert pattern.mean_gap == pytest.approx(0.15)
        trace = AzureLikeWorkload.preset("flood", seed=3).generate(300.0)
        rate = len(trace) / 300.0
        assert 5.0 < rate < 8.5

    def test_generate_counts_shape(self):
        counts = AzureLikeWorkload.preset("steady", seed=0).generate_counts(
            60.0, window=2.0
        )
        assert counts.shape == (30,)
        assert counts.dtype.kind in "iu" or counts.dtype.kind == "f"
        assert counts.sum() > 0

    def test_same_seed_reproducible(self):
        a = AzureLikeWorkload.preset("bursty", seed=9).generate(200.0)
        b = AzureLikeWorkload.preset("bursty", seed=9).generate(200.0)
        assert np.array_equal(a.times, b.times)

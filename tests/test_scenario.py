"""Tests for declarative scenarios and the unified grid execution path."""

import json

import pytest

from repro.cli import main
from repro.experiments import (
    CellSpec,
    EnvSpec,
    MultiAppCellSpec,
    ScenarioSpec,
    build_environment,
    run_multi_app,
    run_scenario,
)

FAST = dict(duration=60.0, train_duration=400.0)


class TestSpecConstruction:
    def test_from_dict_promotes_scalars(self):
        spec = ScenarioSpec.from_dict(
            {"apps": "image-query", "policies": "always-on", "slas": 4.0}
        )
        assert spec.apps == ("image-query",)
        assert spec.policies == ("always-on",)
        assert spec.slas == (4.0,)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(KeyError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"apps": ["a"], "policies": ["p"], "sla": 2.0})

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(apps=(), policies=("smiless",))
        with pytest.raises(ValueError):
            ScenarioSpec(apps=("image-query",), policies=())
        with pytest.raises(ValueError):
            ScenarioSpec(apps=("image-query",), policies=("smiless",), seeds=())

    def test_json_round_trip(self, tmp_path):
        spec = ScenarioSpec(
            apps=("image-query", "amber-alert"),
            policies=("smiless", "grandslam"),
            slas=(1.0, 2.0),
            duration=120.0,
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_json(path) == spec

    def test_json_round_trip_with_fault_plan(self, tmp_path):
        from repro.faults import (
            ExecutionFault,
            FaultPlan,
            MachineOutage,
            ResilienceSpec,
        )

        spec = ScenarioSpec(
            apps=("image-query",),
            policies=("on-demand",),
            faults=FaultPlan(
                outages=(MachineOutage(machine=0, start=30.0, end=45.0),),
                execution_faults=(ExecutionFault(rate=0.1, functions=("f",)),),
                resilience=ResilienceSpec(max_retries=5, deadline_factor=3.0),
            ),
            init_failure_rate=0.05,
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        revived = ScenarioSpec.from_json(path)
        assert revived == spec
        (cell,) = revived.cells()
        assert cell.faults == spec.faults
        assert cell.init_failure_rate == 0.05

    def test_faults_key_accepts_plan_file_path(self, tmp_path):
        from repro.faults import FaultPlan

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json.dumps({"outages": [{"machine": 1, "start": 5.0, "end": 9.0}]})
        )
        spec = ScenarioSpec.from_dict(
            {
                "apps": ["image-query"],
                "policies": ["on-demand"],
                "faults": str(plan_path),
            }
        )
        assert spec.faults == FaultPlan.from_json(plan_path)


class TestCompilation:
    def test_solo_cells_cover_the_product(self):
        spec = ScenarioSpec(
            apps=("image-query", "amber-alert"),
            policies=("always-on", "on-demand"),
            slas=(1.0, 2.0),
            seeds=(3, 4),
            **FAST,
        )
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 2 * 2
        assert all(isinstance(c, CellSpec) for c in cells)
        assert len(set(cells)) == len(cells)
        assert {c.env.app for c in cells} == {"image-query", "amber-alert"}

    def test_co_run_cells_deploy_all_apps_together(self):
        spec = ScenarioSpec(
            apps=("image-query", "amber-alert"),
            policies=("always-on", "on-demand"),
            co_run=True,
            **FAST,
        )
        cells = spec.cells()
        assert len(cells) == 2  # one per policy; apps share each cell
        assert all(isinstance(c, MultiAppCellSpec) for c in cells)
        assert all(len(c.envs) == 2 for c in cells)

    def test_for_environment_pins_env_axes(self):
        env = EnvSpec(app="amber-alert", preset="diurnal", sla=4.0, duration=90.0)
        spec = ScenarioSpec.for_environment(env, policies=("smiless",))
        (cell,) = spec.cells()
        assert cell.env == env

    def test_for_environment_sla_override(self):
        env = EnvSpec(app="amber-alert", sla=4.0)
        spec = ScenarioSpec.for_environment(
            env, policies=("smiless",), slas=(1.0, 8.0)
        )
        assert [c.env.sla for c in spec.cells()] == [1.0, 8.0]


class TestRunScenario:
    def test_solo_end_to_end(self):
        spec = ScenarioSpec(
            apps=("image-query",),
            policies=("always-on", "on-demand"),
            **FAST,
        )
        rows = run_scenario(spec)
        assert [r.policy for r in rows] == ["always-on", "on-demand"]
        assert all(r.app == "image-query" for r in rows)
        assert all(r.row.total_cost > 0 for r in rows)

    def test_co_run_expands_one_row_per_app(self):
        spec = ScenarioSpec(
            apps=("image-query", "amber-alert"),
            policies=("always-on",),
            co_run=True,
            **FAST,
        )
        rows = run_scenario(spec)
        assert {r.app for r in rows} == {"image-query", "amber-alert"}
        assert len(rows) == 2

    def test_parallel_matches_serial(self):
        spec = ScenarioSpec(
            apps=("image-query",),
            policies=("always-on", "on-demand"),
            slas=(2.0, 4.0),
            **FAST,
        )
        assert run_scenario(spec, workers=2) == run_scenario(spec, workers=1)


class TestRunMultiApp:
    def make_envs(self):
        return [
            build_environment("image-query", seed=0, **FAST),
            build_environment("amber-alert", seed=1, **FAST),
        ]

    def test_single_policy_returns_per_app_rows(self):
        results = run_multi_app(self.make_envs(), "always-on")
        assert set(results) == {"image-query", "amber-alert"}

    def test_policy_tuple_returns_nested_mapping(self):
        results = run_multi_app(self.make_envs(), ("always-on", "on-demand"))
        assert set(results) == {"always-on", "on-demand"}
        for rows in results.values():
            assert set(rows) == {"image-query", "amber-alert"}

    def test_parallel_matches_serial(self):
        envs = self.make_envs()
        policies = ("always-on", "on-demand")
        serial = run_multi_app(envs, policies, workers=1)
        parallel = run_multi_app(envs, policies, workers=2)
        assert serial == parallel

    def test_hand_rolled_envs_warn_and_fall_back(self):
        envs = self.make_envs()
        stripped = [
            type(e)(
                app=e.app,
                profiles=e.profiles,
                oracle=e.oracle,
                train_counts=e.train_counts,
                trace=e.trace,
            )
            for e in envs
        ]
        with pytest.warns(RuntimeWarning, match="no build spec"):
            fallback = run_multi_app(stripped, "always-on", workers=4)
        assert fallback == run_multi_app(envs, "always-on", workers=1)

    def test_empty_envs_rejected(self):
        with pytest.raises(ValueError):
            run_multi_app([], "always-on")


class TestScenarioCLI:
    def test_scenario_command_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "apps": ["image-query"],
                    "policies": ["always-on", "on-demand"],
                    "duration": 60.0,
                    "train_duration": 400.0,
                }
            )
        )
        assert main(["scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out
        assert "always-on" in out and "on-demand" in out
        assert "image-query" in out

    def test_scenario_command_co_run(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "apps": ["image-query", "amber-alert"],
                    "policies": ["always-on"],
                    "co_run": True,
                    "duration": 60.0,
                    "train_duration": 400.0,
                }
            )
        )
        assert main(["scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "[co-run]" in out
        assert "amber-alert" in out

"""Unit tests for baseline-policy internals (fast, no full traces)."""

import numpy as np
import pytest

from repro.dag import image_query, voice_assistant
from repro.hardware import Backend, ConfigurationSpace, HardwareConfig
from repro.policies import (
    AquatopePolicy,
    GrandSLAmPolicy,
    IceBreakerPolicy,
    OptimalPolicy,
)
from repro.profiler import oracle_profile
from repro.workload import Trace, gamma_renewal_process


@pytest.fixture(scope="module")
def app():
    return image_query()


@pytest.fixture(scope="module")
def profiles(app):
    return {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}


class TestGrandSLAmUnits:
    def test_budget_shares_proportional_to_reference(self, app, profiles):
        policy = GrandSLAmPolicy(profiles)
        budgets = policy.stage_budgets(app)
        ref = {
            fn: profiles[fn].inference_time(policy.reference)
            for fn in app.function_names
        }
        # heavier stages get larger budgets
        order_budget = sorted(app.function_names, key=budgets.get)
        order_ref = sorted(app.function_names, key=ref.get)
        assert order_budget == order_ref

    def test_choose_config_cheapest_within_budget(self, app, profiles):
        policy = GrandSLAmPolicy(profiles)
        cfg = policy.choose_config("TG", budget=1.0)
        assert profiles["TG"].inference_time(cfg) <= 1.0
        cheaper = [
            c
            for c in policy.space
            if c.unit_cost < cfg.unit_cost
        ]
        assert all(profiles["TG"].inference_time(c) > 1.0 for c in cheaper)

    def test_choose_config_falls_back_to_fastest(self, app, profiles):
        policy = GrandSLAmPolicy(profiles)
        cfg = policy.choose_config("TG", budget=1e-6)
        fastest = min(
            (profiles["TG"].inference_time(c) for c in policy.space)
        )
        assert profiles["TG"].inference_time(cfg) == pytest.approx(fastest)


class TestIceBreakerUnits:
    def test_best_in_prefers_efficiency_within_target(self, app, profiles):
        policy = IceBreakerPolicy(profiles)
        cpu_space = ConfigurationSpace(gpu_fractions=())
        cfg = policy._best_in("TG", cpu_space, target=2.0)
        assert cfg.backend is Backend.CPU
        assert profiles["TG"].inference_time(cfg) <= 2.0

    def test_best_in_falls_back_to_fastest(self, app, profiles):
        policy = IceBreakerPolicy(profiles)
        cpu_space = ConfigurationSpace(gpu_fractions=())
        cfg = policy._best_in("TG", cpu_space, target=1e-6)
        assert cfg == HardwareConfig.cpu(16)

    def test_choose_config_respects_latency_target(self, app, profiles):
        policy = IceBreakerPolicy(profiles)
        cfg = policy.choose_config("TG", latency_target=0.5)
        assert profiles["TG"].inference_time(cfg) <= 0.5


class TestAquatopeUnits:
    def test_decode_maps_unit_box_to_configs(self, app, profiles):
        policy = AquatopePolicy(profiles)
        fns = app.function_names
        low = policy._decode(np.zeros(len(fns)), fns)
        high = policy._decode(np.full(len(fns), 0.999), fns)
        space = policy.space
        assert all(cfg == space.cheapest() for cfg in low.values())
        assert all(cfg == space.most_expensive() for cfg in high.values())

    def test_tune_deterministic_given_seed(self, app, profiles):
        a = AquatopePolicy(profiles, n_iter=5, seed=9).tune(app)
        b = AquatopePolicy(profiles, n_iter=5, seed=9).tune(app)
        assert a == b


class TestOptimalUnits:
    def test_true_mean_it_matches_trace(self, profiles):
        trace = gamma_renewal_process(6.0, 0.05, 600.0, rng=0)
        policy = OptimalPolicy(profiles, trace)
        assert policy._true_mean_it() == pytest.approx(6.0, rel=0.15)

    def test_plan_assignment_small_app_is_exact(self, app, profiles):
        from repro.core.path_search import ExhaustiveSearch
        from repro.hardware import ConfigurationSpace

        trace = gamma_renewal_process(6.0, 0.05, 300.0, rng=1)
        policy = OptimalPolicy(profiles, trace)
        assignment = policy.plan_assignment(app)
        exact = ExhaustiveSearch(ConfigurationSpace.default()).optimize_app(
            app.with_sla(app.sla * 0.9), profiles, policy._true_mean_it()
        )
        assert assignment == exact.assignment

    def test_path_based_plan_for_larger_app(self):
        app = voice_assistant()  # 5 functions: above the enumeration limit
        profiles = {
            s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs
        }
        trace = gamma_renewal_process(5.0, 0.05, 300.0, rng=2)
        policy = OptimalPolicy(profiles, trace)
        assignment = policy.plan_assignment(app)
        assert set(assignment) == set(app.function_names)

    def test_empty_trace_defaults(self, profiles):
        policy = OptimalPolicy(profiles, Trace([], duration=10.0))
        assert policy._true_mean_it() == 10.0

"""Tests for arrival-process generators and the Azure-like workload."""

import numpy as np
import pytest

from repro.workload import (
    AzureLikeWorkload,
    Trace,
    WorkloadPattern,
    bursty_process,
    constant_rate_process,
    poisson_process,
    renewal_process,
)
from repro.workload.azure import PRESETS
from repro.workload.generator import gamma_renewal_process, nonhomogeneous_poisson


class TestPoisson:
    def test_rate_matches(self):
        t = poisson_process(2.0, 2000.0, rng=0)
        assert t.rate == pytest.approx(2.0, rel=0.1)

    def test_zero_rate_gives_empty_trace(self):
        t = poisson_process(0.0, 10.0, rng=0)
        assert len(t) == 0
        assert t.duration == 10.0

    def test_deterministic_given_seed(self):
        assert poisson_process(1.0, 50.0, rng=9) == poisson_process(1.0, 50.0, rng=9)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            poisson_process(-1.0, 10.0)
        with pytest.raises(ValueError):
            poisson_process(1.0, 0.0)


class TestNonhomogeneous:
    def test_rate_modulation(self):
        # rate 2/s in first half, 0 in second half
        def rate(t):
            return np.where(np.asarray(t) < 500, 2.0, 0.0)

        tr = nonhomogeneous_poisson(rate, 1000.0, 2.0, rng=0)
        first = tr.slice(0, 500.0)
        second = tr.slice(500.0, 1000.0)
        assert first.rate == pytest.approx(2.0, rel=0.15)
        assert len(second) == 0

    def test_rejects_rate_above_bound(self):
        with pytest.raises(ValueError, match="rate_max"):
            nonhomogeneous_poisson(lambda t: np.full_like(t, 5.0), 100.0, 2.0, rng=0)


class TestConstantRate:
    def test_interval_spacing(self):
        t = constant_rate_process(3.0, 10.0)
        np.testing.assert_allclose(t.times, [0.0, 3.0, 6.0, 9.0])

    def test_offset(self):
        t = constant_rate_process(5.0, 10.0, offset=1.0)
        np.testing.assert_allclose(t.times, [1.0, 6.0])


class TestRenewal:
    def test_exponential_renewal_is_poisson_like(self):
        t = renewal_process(lambda g: g.exponential(0.5), 2000.0, rng=0)
        assert t.rate == pytest.approx(2.0, rel=0.1)

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ValueError, match="gap"):
            renewal_process(lambda g: 0.0, 10.0, rng=0)


class TestBursty:
    def test_burstier_than_poisson(self):
        base = poisson_process(0.5, 1800.0, rng=1)
        burst = bursty_process(0.5, 1800.0, burst_rate=20.0, rng=1)
        assert burst.variance_to_mean_ratio() > base.variance_to_mean_ratio()

    def test_contains_base_traffic(self):
        t = bursty_process(1.0, 600.0, burst_frequency=0.0, rng=0)
        assert t.rate == pytest.approx(1.0, rel=0.2)


class TestGammaRenewal:
    def test_mean_gap_matches(self):
        t = gamma_renewal_process(5.0, 0.1, 3000.0, rng=0)
        assert t.inter_arrival_times().mean() == pytest.approx(5.0, rel=0.05)

    def test_low_cv_is_regular(self):
        t = gamma_renewal_process(5.0, 0.05, 2000.0, rng=1)
        gaps = t.inter_arrival_times()
        assert gaps.std() / gaps.mean() < 0.1

    def test_drift_modulates_gap(self):
        t = gamma_renewal_process(
            10.0, 0.05, 2000.0, rng=2, period_drift=0.5, drift_period=1000.0
        )
        gaps = t.inter_arrival_times()
        assert gaps.max() > 1.3 * gaps.min()

    def test_validation(self):
        with pytest.raises(ValueError):
            gamma_renewal_process(0.0, 0.1, 10.0)
        with pytest.raises(ValueError):
            gamma_renewal_process(1.0, 0.1, 10.0, period_drift=1.5)


class TestWorkloadPattern:
    def test_gap_at_drift(self):
        p = WorkloadPattern(mean_gap=4.0, gap_cv=0.1, drift=0.5, drift_period=100.0)
        assert p.gap_at(25.0) == pytest.approx(6.0)  # sin peak
        assert p.gap_at(75.0) == pytest.approx(2.0)  # sin trough

    def test_idle_phase_mask(self):
        p = WorkloadPattern(mean_gap=4.0, idle_fraction=0.5, idle_period=100.0)
        mask = p.in_idle_phase(np.array([10.0, 60.0]))
        assert mask.tolist() == [True, False]

    def test_no_idle_phase_by_default(self):
        p = WorkloadPattern(mean_gap=4.0)
        assert not p.in_idle_phase(np.linspace(0, 100, 50)).any()

    def test_rejects_bad_idle_fraction(self):
        with pytest.raises(ValueError):
            WorkloadPattern(mean_gap=1.0, idle_fraction=1.0)

    def test_rejects_bad_drift(self):
        with pytest.raises(ValueError):
            WorkloadPattern(mean_gap=1.0, drift=1.0)


class TestAzureLikeWorkload:
    def test_presets_exist(self):
        for name in ("steady", "diurnal", "bursty", "spiky", "sparse", "irregular"):
            assert name in PRESETS

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            AzureLikeWorkload.preset("nope")

    def test_deterministic_given_seed(self):
        a = AzureLikeWorkload.preset("steady", seed=5).generate(300.0)
        b = AzureLikeWorkload.preset("steady", seed=5).generate(300.0)
        assert a == b

    def test_steady_preset_has_predictable_gaps(self):
        """Timer-dominated traffic: low coefficient of variation of gaps."""
        t = AzureLikeWorkload.preset("steady", seed=4).generate(1800.0)
        gaps = t.inter_arrival_times()
        assert gaps.std() / gaps.mean() < 0.35  # drift included

    def test_spiky_preset_has_high_dispersion(self):
        """§VII-C2: the prediction-study traces have dispersion > 2."""
        t = AzureLikeWorkload.preset("spiky", seed=3).generate(3600.0)
        assert t.variance_to_mean_ratio(1.0) > 2.0

    def test_bursty_preset_burstier_than_steady(self):
        bursty = AzureLikeWorkload.preset("bursty", seed=3).generate(3600.0)
        steady = AzureLikeWorkload.preset("steady", seed=3).generate(3600.0)
        assert (
            bursty.variance_to_mean_ratio(1.0)
            > steady.variance_to_mean_ratio(1.0)
        )

    def test_generate_counts_shape(self):
        counts = AzureLikeWorkload.preset("steady", seed=1).generate_counts(120.0, 1.0)
        assert counts.shape == (120,)
        assert counts.dtype.kind == "i"

    def test_sparse_preset_has_idle_gaps(self):
        t = AzureLikeWorkload.preset("sparse", seed=2).generate(1800.0)
        gaps = t.window_inter_arrivals(1.0)
        assert gaps.size > 0
        assert gaps.max() > 10.0

    def test_irregular_preset_is_unpredictable(self):
        t = AzureLikeWorkload.preset("irregular", seed=6).generate(2000.0)
        gaps = t.inter_arrival_times()
        assert gaps.std() / gaps.mean() > 0.7

    def test_traces_respect_duration(self):
        t = AzureLikeWorkload.preset("bursty", seed=8).generate(200.0)
        assert isinstance(t, Trace)
        assert t.duration == pytest.approx(200.0)
        if len(t):
            assert t.times.max() <= 200.0

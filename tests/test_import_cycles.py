"""Every repro module must import from a cold start (no import cycles).

Runs ``tools/check_imports.py`` in a subprocess: the checker purges
``repro*`` from ``sys.modules`` between imports, which would corrupt class
identity for the rest of the test session if done in-process.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_all_modules_import_cold():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_imports.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"import-cycle check failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "import cleanly" in result.stdout

"""Tests for the Gaussian-process Bayesian optimization substrate."""

import numpy as np
import pytest

from repro.bayesopt import BayesianOptimizer, GaussianProcess, rbf_kernel
from repro.bayesopt.bo import expected_improvement


class TestKernel:
    def test_diagonal_is_one(self):
        x = np.random.default_rng(0).random((5, 2))
        K = rbf_kernel(x, x, 0.5)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_symmetry(self):
        x = np.random.default_rng(1).random((4, 3))
        K = rbf_kernel(x, x, 0.3)
        np.testing.assert_allclose(K, K.T)

    def test_decays_with_distance(self):
        a = np.array([[0.0]])
        b = np.array([[0.1], [1.0], [3.0]])
        K = rbf_kernel(a, b, 0.5)[0]
        assert K[0] > K[1] > K[2]

    def test_rejects_bad_length_scale(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.zeros((1, 1)), np.zeros((1, 1)), 0.0)


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        rng = np.random.default_rng(0)
        X = rng.random((10, 1))
        y = np.sin(4 * X[:, 0])
        gp = GaussianProcess(length_scale=0.3, noise=1e-6).fit(X, y)
        mean, std = gp.predict(X)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert (std < 0.05).all()

    def test_uncertainty_grows_away_from_data(self):
        X = np.array([[0.2], [0.3]])
        gp = GaussianProcess(length_scale=0.1).fit(X, np.array([1.0, 2.0]))
        _, std_near = gp.predict(np.array([[0.25]]))
        _, std_far = gp.predict(np.array([[0.9]]))
        assert std_far[0] > std_near[0]

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 1)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 1)), np.zeros(2))

    def test_constant_targets_handled(self):
        gp = GaussianProcess().fit(np.array([[0.1], [0.9]]), np.array([5.0, 5.0]))
        mean, _ = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(5.0, abs=0.1)


class TestExpectedImprovement:
    def test_nonnegative(self):
        mean = np.array([1.0, 0.5, 2.0])
        std = np.array([0.1, 0.5, 0.01])
        ei = expected_improvement(mean, std, best=1.0)
        assert (ei >= 0).all()

    def test_prefers_lower_mean(self):
        std = np.array([0.2, 0.2])
        ei = expected_improvement(np.array([0.5, 1.5]), std, best=1.0)
        assert ei[0] > ei[1]

    def test_prefers_higher_uncertainty_at_same_mean(self):
        mean = np.array([1.0, 1.0])
        ei = expected_improvement(mean, np.array([0.5, 0.01]), best=1.0)
        assert ei[0] > ei[1]


class TestBayesianOptimizer:
    def test_minimizes_quadratic_bowl(self):
        target = np.array([0.3, 0.7])

        def objective(x):
            return float(((x - target) ** 2).sum())

        result = BayesianOptimizer(dim=2, seed=0).minimize(objective, n_iter=30)
        assert result.best_y < 0.02
        np.testing.assert_allclose(result.best_x, target, atol=0.15)

    def test_beats_random_search_on_budget(self):
        rng = np.random.default_rng(1)
        target = np.array([0.25, 0.6, 0.8])

        def objective(x):
            return float(((np.asarray(x) - target) ** 2).sum())

        bo = BayesianOptimizer(dim=3, n_initial=8, seed=2).minimize(
            objective, n_iter=30
        )
        random_best = min(objective(rng.random(3)) for _ in range(38))
        assert bo.best_y <= random_best * 1.5

    def test_records_all_evaluations(self):
        result = BayesianOptimizer(dim=1, n_initial=4, seed=0).minimize(
            lambda x: float(x[0]), n_iter=6
        )
        assert result.xs.shape == (10, 1)
        assert result.ys.shape == (10,)
        assert result.best_y == result.ys.min()

    def test_validation(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(dim=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(dim=1).minimize(lambda x: 0.0, n_iter=0)

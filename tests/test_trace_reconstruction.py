"""Property tests: metrics are a pure view over the event stream.

The telemetry plane's core contract is that ``aggregate(trace)`` rebuilds
the exact ``RunMetrics`` the live counters produced — float for float —
for any (app, policy) combination, through a JSONL round-trip, and for
multi-tenant runs.  These tests pin that contract, plus the per-runtime
invocation-id guarantee that makes traces comparable across processes
and grid orderings.
"""

import math

import pytest

from repro.experiments import build_environment
from repro.simulator import Deployment, MultiAppSimulator, ServerlessSimulator
from repro.telemetry import (
    TraceRecorder,
    aggregate,
    aggregate_all,
    decision_audit,
    read_jsonl,
    to_dict,
    validate_event,
)
from repro.telemetry.events import Arrival, DirectiveChanged

PAIRS = [
    ("image-query", "smiless"),
    ("amber-alert", "on-demand"),
    ("voice-assistant", "grandslam"),
    ("image-query", "always-on"),
]


@pytest.fixture(scope="module")
def environments():
    return {
        app: build_environment(app, preset="steady", sla=2.0, duration=80.0, seed=0)
        for app in {a for a, _ in PAIRS}
    }


def assert_metrics_equal(live, rebuilt):
    """Exact equality of every counter and derived view."""
    assert rebuilt.app == live.app
    assert rebuilt.policy == live.policy
    assert rebuilt.sla == live.sla
    assert rebuilt.duration == live.duration
    assert rebuilt.unfinished == live.unfinished
    assert rebuilt.stage_executions == live.stage_executions
    assert rebuilt.cold_stage_executions == live.cold_stage_executions
    assert rebuilt.initializations == live.initializations
    assert rebuilt.failed_initializations == live.failed_initializations
    assert rebuilt.timed_out == live.timed_out
    assert rebuilt.stage_retries == live.stage_retries
    assert rebuilt.failed_executions == live.failed_executions
    assert rebuilt.fallbacks == live.fallbacks
    assert rebuilt.pod_samples == live.pod_samples
    assert rebuilt.arrival_samples == live.arrival_samples
    assert rebuilt.total_cost() == live.total_cost()
    assert len(rebuilt.instances) == len(live.instances)
    assert [i.latency for i in rebuilt.invocations] == [
        i.latency for i in live.invocations
    ]
    a, b = rebuilt.summary(), live.summary()
    assert a.keys() == b.keys()
    for key in a:
        if isinstance(a[key], float) and math.isnan(a[key]):
            assert math.isnan(b[key])
        else:
            assert a[key] == b[key], key


@pytest.mark.parametrize("app,policy", PAIRS)
def test_aggregate_reconstructs_live_counters(environments, app, policy):
    env = environments[app]
    rec = TraceRecorder()
    live = ServerlessSimulator(
        env.app, env.trace, env.make_policy(policy), seed=3, recorder=rec
    ).run()
    assert len(rec) > 0
    # Every emitted event satisfies the published schema.
    for event in rec:
        assert validate_event(to_dict(event)) == []
    assert_metrics_equal(live, aggregate(rec.events))


def test_aggregate_survives_jsonl_round_trip(environments, tmp_path):
    env = environments["image-query"]
    rec = TraceRecorder()
    live = ServerlessSimulator(
        env.app, env.trace, env.make_policy("smiless"), seed=3, recorder=rec
    ).run()
    path = tmp_path / "run.jsonl"
    rec.write_jsonl(path)
    assert_metrics_equal(live, aggregate(read_jsonl(path)))


def test_aggregate_with_init_failures(environments):
    env = environments["image-query"]
    rec = TraceRecorder()
    live = ServerlessSimulator(
        env.app,
        env.trace,
        env.make_policy("on-demand"),
        seed=3,
        init_failure_rate=0.3,
        recorder=rec,
    ).run()
    assert live.failed_initializations > 0
    assert_metrics_equal(live, aggregate(rec.events))


def test_aggregate_with_fault_plan(environments):
    """Reconstruction stays exact when the chaos machinery is active."""
    from repro.faults import (
        ExecutionFault,
        FaultPlan,
        MachineOutage,
        ResilienceSpec,
    )

    env = environments["image-query"]
    plan = FaultPlan(
        outages=(MachineOutage(machine=0, start=20.05, end=30.0),),
        execution_faults=(ExecutionFault(rate=0.2),),
        resilience=ResilienceSpec(max_retries=8, retry_backoff=0.2),
    )
    rec = TraceRecorder()
    live = ServerlessSimulator(
        env.app,
        env.trace,
        env.make_policy("smiless"),
        seed=3,
        faults=plan,
        recorder=rec,
    ).run()
    assert live.stage_retries > 0
    for event in rec:
        assert validate_event(to_dict(event)) == []
    assert_metrics_equal(live, aggregate(rec.events))


def test_aggregate_all_multiapp(environments):
    envs = [environments["image-query"], environments["amber-alert"]]
    rec = TraceRecorder()
    live = MultiAppSimulator(
        [Deployment(e.app, e.trace, e.make_policy("on-demand")) for e in envs],
        seed=3,
        recorder=rec,
    ).run()
    rebuilt = aggregate_all(rec.events)
    assert set(rebuilt) == set(live)
    for name in live:
        assert_metrics_equal(live[name], rebuilt[name])
    # aggregate() on a multi-app trace needs the app made explicit.
    with pytest.raises(ValueError):
        aggregate(rec.events)
    assert_metrics_equal(
        live["image-query"], aggregate(rec.events, app="image-query")
    )


def test_null_recorder_runs_bit_identical(environments):
    env = environments["image-query"]

    def run(recorder=None):
        return ServerlessSimulator(
            env.app, env.trace, env.make_policy("smiless"), seed=3,
            recorder=recorder,
        ).run().summary()

    assert run() == run(TraceRecorder())


def test_every_directive_change_has_a_reason(environments):
    """The decision audit must explain every change (acceptance criterion)."""
    for app, policy in PAIRS:
        env = environments[app]
        rec = TraceRecorder()
        ServerlessSimulator(
            env.app, env.trace, env.make_policy(policy), seed=3, recorder=rec
        ).run()
        changes = decision_audit(rec.events)
        assert changes, f"{policy} issued no directives"
        for change in changes:
            assert isinstance(change, DirectiveChanged)
            assert change.reason.strip(), (
                f"{policy} changed {change.function} without a reason"
            )


def test_invocation_ids_are_per_runtime(environments):
    """Two runs in one process trace identical invocation ids (satellite 1)."""
    env = environments["amber-alert"]

    def arrival_ids():
        rec = TraceRecorder()
        ServerlessSimulator(
            env.app, env.trace, env.make_policy("on-demand"), seed=3,
            recorder=rec,
        ).run()
        ids = [e.invocation_id for e in rec if isinstance(e, Arrival)]
        return ids

    first, second = arrival_ids(), arrival_ids()
    assert first == second
    assert first[0] == 0  # fresh counter per runtime, not process-global
    assert first == sorted(first)

"""Tests for the ground-truth performance models (Eq. 1/2 substrate)."""

import numpy as np
import pytest

from repro.dag.models import get_profile
from repro.hardware import (
    Backend,
    GroundTruthPerformance,
    HardwareConfig,
    InitTimeParams,
    LatencyParams,
)


@pytest.fixture
def trs_profile():
    return get_profile("TRS")


class TestLatencyParams:
    def test_latency_law_shape(self):
        p = LatencyParams(lam=1.0, alpha=4.0, beta=0.1, gamma=0.02)
        # Eq. (1): lam * B * (alpha/resources + beta) + gamma
        assert p.latency(4, batch=1) == pytest.approx(1.0 * (4.0 / 4 + 0.1) + 0.02)

    def test_more_resources_is_faster(self):
        p = LatencyParams(lam=1.0, alpha=4.0, beta=0.1, gamma=0.02)
        assert p.latency(16) < p.latency(8) < p.latency(1)

    def test_latency_linear_in_batch(self):
        p = LatencyParams(lam=1.2, alpha=2.0, beta=0.1, gamma=0.05)
        l1, l2 = p.latency(4, 1), p.latency(4, 2)
        assert (l2 - 0.05) == pytest.approx(2 * (l1 - 0.05))

    def test_rejects_nonpositive_resources(self):
        p = LatencyParams(lam=1.0, alpha=1.0, beta=0.0, gamma=0.0)
        with pytest.raises(ValueError):
            p.latency(0)

    def test_rejects_invalid_params(self):
        with pytest.raises(ValueError):
            LatencyParams(lam=0.0, alpha=1.0, beta=0.1, gamma=0.0)
        with pytest.raises(ValueError):
            LatencyParams(lam=1.0, alpha=-1.0, beta=0.1, gamma=0.0)

    def test_as_vector(self):
        p = LatencyParams(1.0, 2.0, 3.0, 4.0)
        np.testing.assert_array_equal(p.as_vector(), [1.0, 2.0, 3.0, 4.0])


class TestInitTimeParams:
    def test_sample_positive_and_near_mean(self):
        params = InitTimeParams(mean=5.0, std=0.5)
        rng = np.random.default_rng(0)
        samples = np.array([params.sample(rng) for _ in range(500)])
        assert (samples > 0).all()
        assert samples.mean() == pytest.approx(5.0, rel=0.05)

    def test_truncation_floor(self):
        params = InitTimeParams(mean=1.0, std=10.0)
        rng = np.random.default_rng(1)
        samples = [params.sample(rng) for _ in range(200)]
        assert min(samples) >= 0.1 * params.mean


class TestPerfProfile:
    def test_expected_inference_cpu_vs_gpu(self, trs_profile):
        cpu16 = trs_profile.expected_inference_time(HardwareConfig.cpu(16))
        gpu = trs_profile.expected_inference_time(HardwareConfig.gpu(1.0))
        # warm-start GPU speedup ~10x for TRS (paper §I / Fig. 2)
        assert 6.0 < cpu16 / gpu < 14.0

    def test_gpu_cold_start_slower_than_cpu(self, trs_profile):
        """Fig. 2: TRS cold start on GPU exceeds CPU despite faster inference."""
        cpu16, gpu = HardwareConfig.cpu(16), HardwareConfig.gpu(1.0)
        cold_cpu = trs_profile.expected_init_time(cpu16) + trs_profile.expected_inference_time(cpu16)
        cold_gpu = trs_profile.expected_init_time(gpu) + trs_profile.expected_inference_time(gpu)
        assert cold_gpu > cold_cpu

    def test_latency_params_selector(self, trs_profile):
        assert trs_profile.latency_params(Backend.CPU) is trs_profile.cpu
        assert trs_profile.latency_params(Backend.GPU) is trs_profile.gpu

    def test_init_params_selector(self, trs_profile):
        assert trs_profile.init_params(Backend.CPU) is trs_profile.init_cpu
        assert trs_profile.init_params(Backend.GPU) is trs_profile.init_gpu


class TestGroundTruthPerformance:
    def test_noiseless_matches_expected(self, trs_profile):
        perf = GroundTruthPerformance(trs_profile, rng=0, noisy=False)
        cfg = HardwareConfig.cpu(4)
        assert perf.inference_time(cfg) == trs_profile.expected_inference_time(cfg)
        assert perf.init_time(cfg) == trs_profile.expected_init_time(cfg)

    def test_noise_is_multiplicative_and_unbiased(self, trs_profile):
        perf = GroundTruthPerformance(trs_profile, rng=0)
        cfg = HardwareConfig.cpu(4)
        base = trs_profile.expected_inference_time(cfg)
        samples = perf.sample_inference(cfg, batch=1, n=2000)
        assert samples.mean() == pytest.approx(base, rel=0.05)
        assert (samples > 0).all()

    def test_cpu_noisier_than_gpu(self, trs_profile):
        """Fig. 11b: GPU inference-time measurements are more precise."""
        perf = GroundTruthPerformance(trs_profile, rng=0)
        cpu = perf.sample_inference(HardwareConfig.cpu(4), 1, 1000)
        gpu = perf.sample_inference(HardwareConfig.gpu(0.5), 1, 1000)
        assert np.std(np.log(cpu)) > np.std(np.log(gpu))

    def test_deterministic_given_seed(self, trs_profile):
        a = GroundTruthPerformance(trs_profile, rng=11).sample_init(HardwareConfig.cpu(1), 5)
        b = GroundTruthPerformance(trs_profile, rng=11).sample_init(HardwareConfig.cpu(1), 5)
        np.testing.assert_array_equal(a, b)

    def test_sample_shapes(self, trs_profile):
        perf = GroundTruthPerformance(trs_profile, rng=3)
        assert perf.sample_inference(HardwareConfig.gpu(0.2), 2, 7).shape == (7,)
        assert perf.sample_init(HardwareConfig.gpu(0.2), 4).shape == (4,)

"""Coverage for SimulationContext plumbing and OptimizerEngine extras."""

import pytest

from repro.core import OptimizerEngine
from repro.dag import image_query, linear_pipeline
from repro.hardware import ConfigurationSpace, HardwareConfig
from repro.policies import AlwaysOnPolicy
from repro.policies.base import Policy
from repro.profiler import oracle_profile
from repro.simulator import FunctionDirective, ServerlessSimulator
from repro.workload import Trace

SPACE = ConfigurationSpace.default()


def oracle_profiles(app):
    return {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}


class ProbePolicy(Policy):
    """Records context observations at chosen times."""

    name = "probe"

    def __init__(self):
        self.observations = []

    def on_register(self, app, ctx):
        for fn in app.function_names:
            ctx.set_directive(
                fn,
                FunctionDirective(
                    config=HardwareConfig.cpu(4), keep_alive=float("inf"), min_warm=1
                ),
            )
            ctx.schedule_warmup(fn, 0.0)

    def on_window(self, t, ctx):
        fn = ctx.app.function_names[0]
        self.observations.append(
            dict(
                t=t,
                live=ctx.live_count(fn),
                live_cpu4=ctx.live_count(fn, HardwareConfig.cpu(4)),
                live_gpu=ctx.live_count(fn, HardwareConfig.gpu(0.1)),
                idle=ctx.idle_count(fn),
                queue=ctx.queue_length(fn),
                window=ctx.window,
                counts=ctx.counts_history().tolist(),
            )
        )


class TestSimulationContext:
    @pytest.fixture
    def probe_run(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([5.0, 15.0], duration=30.0)
        policy = ProbePolicy()
        ServerlessSimulator(app, trace, policy, seed=0).run()
        return policy.observations

    def test_live_counts_respect_config_filter(self, probe_run):
        late = probe_run[-1]
        assert late["live"] == late["live_cpu4"] == 1
        assert late["live_gpu"] == 0

    def test_window_and_counts_history(self, probe_run):
        assert probe_run[0]["window"] == 1.0
        # counts history grows by one entry per tick
        lengths = [len(o["counts"]) for o in probe_run]
        assert lengths == sorted(lengths)
        assert sum(probe_run[-1]["counts"]) == 2

    def test_queue_mostly_empty_with_warm_fleet(self, probe_run):
        assert all(o["queue"] == 0 for o in probe_run[5:])

    def test_set_directive_rejects_unknown_function(self):
        app = linear_pipeline(1, models=("IR",))

        class Bad(Policy):
            name = "bad"

            def on_register(self, app, ctx):
                ctx.set_directive(
                    "ghost",
                    FunctionDirective(config=HardwareConfig.cpu(1)),
                )

        with pytest.raises(KeyError):
            ServerlessSimulator(
                app, Trace([1.0], duration=5.0), Bad(), seed=0
            ).run()

    def test_schedule_warmup_rejects_unknown_function(self):
        app = linear_pipeline(1, models=("IR",))

        class Bad(Policy):
            name = "bad"

            def on_register(self, app, ctx):
                for fn in app.function_names:
                    ctx.set_directive(
                        fn, FunctionDirective(config=HardwareConfig.cpu(1))
                    )
                ctx.schedule_warmup("ghost", 0.0)

        with pytest.raises(KeyError):
            ServerlessSimulator(
                app, Trace([1.0], duration=5.0), Bad(), seed=0
            ).run()

    def test_schedule_warmup_rejects_zero_count(self):
        app = linear_pipeline(1, models=("IR",))

        class Bad(AlwaysOnPolicy):
            def on_register(self, app, ctx):
                super().on_register(app, ctx)
                ctx.schedule_warmup(app.function_names[0], 0.0, count=0)

        with pytest.raises(ValueError):
            ServerlessSimulator(
                app, Trace([1.0], duration=5.0), Bad(), seed=0
            ).run()


class TestOptimizerEngineExtras:
    @pytest.fixture
    def setup(self):
        app = image_query()
        profiles = oracle_profiles(app)
        engine = OptimizerEngine(SPACE)
        strategy = engine.strategy(app, profiles, 4.0)
        return app, profiles, engine, strategy

    def test_scale_with_budget_override(self, setup):
        app, profiles, engine, strategy = setup
        generous = {fn: 5.0 for fn in app.function_names}
        decisions = engine.scale(
            app, profiles, strategy, 16, 1.0, budgets=generous
        )
        # generous budgets allow heavy batching: few instances suffice
        assert all(d.instances <= 4 for d in decisions.values())
        tight = {fn: strategy.plan(fn).inference_time for fn in app.function_names}
        tight_decisions = engine.scale(
            app, profiles, strategy, 16, 1.0, budgets=tight
        )
        assert sum(d.instances for d in tight_decisions.values()) >= sum(
            d.instances for d in decisions.values()
        )

    def test_scale_with_max_init_time(self, setup):
        app, profiles, engine, strategy = setup
        decisions = engine.scale(
            app, profiles, strategy, 8, 1.0,
            budgets={fn: 2.0 for fn in app.function_names},
            max_init_time=4.0,
        )
        for fn, d in decisions.items():
            if d.feasible:
                assert profiles[fn].init_time(d.config) <= 4.0

    def test_strategy_with_sla_override_is_feasible(self, setup):
        app, profiles, engine, _ = setup
        strategy = engine.strategy(app, profiles, 4.0, sla=1.0)
        assert strategy.feasible
        assert strategy.latency <= 1.0 + 1e-9

"""Unit tests for SMIlessPolicy internals (no full simulation needed)."""

import numpy as np
import pytest

from repro.core.prewarming import ColdStartPolicy
from repro.dag import image_query
from repro.policies import SMIlessPolicy
from repro.profiler import oracle_profile


@pytest.fixture(scope="module")
def profiles():
    app = image_query()
    return {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}


class TestItBuckets:
    def test_bucket_monotone_in_it(self, profiles):
        policy = SMIlessPolicy(profiles)
        buckets = [policy._it_bucket(it) for it in (0.5, 1.0, 3.0, 10.0, 60.0)]
        assert buckets == sorted(buckets)

    def test_nearby_its_share_bucket(self, profiles):
        policy = SMIlessPolicy(profiles)
        assert policy._it_bucket(4.0) == policy._it_bucket(4.3)

    def test_strategy_cached_by_bucket(self, profiles):
        policy = SMIlessPolicy(profiles)
        policy._app = image_query()
        s1 = policy._strategy_for(4.0)
        s2 = policy._strategy_for(4.2)
        assert s1 is s2  # same bucket -> cached object
        far = policy._strategy_for(100.0)
        assert far is not s1


class TestFallbackPredictors:
    def test_it_fallback_uses_low_quantile(self, profiles):
        policy = SMIlessPolicy(profiles)
        counts = np.zeros(100, dtype=int)
        counts[::10] = 1  # exact 10s gaps
        assert policy.predict_inter_arrival(counts) == pytest.approx(10.0)
        # mixed gaps: low quantile sits near the short ones
        counts = np.zeros(60, dtype=int)
        for idx in (0, 3, 6, 9, 30, 50):
            counts[idx] = 1
        est = policy.predict_inter_arrival(counts)
        assert est <= np.mean([3, 3, 3, 21, 20])

    def test_it_fallback_default_without_history(self, profiles):
        policy = SMIlessPolicy(profiles, default_it=7.5)
        assert policy.predict_inter_arrival(np.zeros(5, dtype=int)) == 7.5

    def test_upper_estimate_at_least_lower(self, profiles):
        policy = SMIlessPolicy(profiles)
        counts = np.zeros(80, dtype=int)
        counts[::7] = 1
        lo = policy.predict_inter_arrival(counts)
        hi = policy.predict_inter_arrival_upper(counts)
        assert hi >= lo

    def test_invocation_fallback_cases(self, profiles):
        policy = SMIlessPolicy(profiles)
        assert policy.predict_invocations(np.array([], dtype=int)) == 0
        assert policy.predict_invocations(np.array([3])) == 3
        assert policy.predict_invocations(np.array([1, 0])) == 0
        assert policy.predict_invocations(np.array([2, 4])) == 6


class TestBurstBudgets:
    def test_budgets_positive_and_path_bounded(self, profiles):
        app = image_query()
        policy = SMIlessPolicy(profiles)
        budgets = policy._burst_budgets(app)
        assert set(budgets) == set(app.function_names)
        assert all(b > 0 for b in budgets.values())
        target = app.sla * (1.0 - policy.sla_margin)
        for path in app.simple_paths():
            assert sum(budgets[f] for f in path) <= target + 1e-9

    def test_prewarm_grace_scales_with_uncertainty(self, profiles):
        policy = SMIlessPolicy(profiles)
        policy._current_it, policy._current_it_upper = 5.0, 5.5
        tight = policy._prewarm_grace()
        policy._current_it_upper = 30.0
        loose = policy._prewarm_grace()
        assert loose > tight


class TestConstruction:
    def test_rejects_bad_margin(self, profiles):
        with pytest.raises(ValueError):
            SMIlessPolicy(profiles, sla_margin=-0.1)

    def test_training_from_short_counts_is_graceful(self, profiles):
        policy = SMIlessPolicy(profiles, train_counts=np.zeros(3, dtype=int))
        assert policy.invocation_predictor is None
        assert policy.interarrival_predictor is None

    def test_standing_batch_at_least_one(self, profiles):
        app = image_query()
        policy = SMIlessPolicy(profiles)
        policy._app = app
        strategy = policy._strategy_for(5.0)
        for fn in app.function_names:
            assert 1 <= policy._standing_batch(fn, strategy) <= 8

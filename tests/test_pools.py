"""Unit tests for the state-indexed instance pools."""

import pytest

from repro.hardware import HardwareConfig
from repro.simulator import Cluster, InstancePool, Instance, InstanceState

CPU2 = HardwareConfig.cpu(2)
CPU4 = HardwareConfig.cpu(4)
GPU = HardwareConfig.gpu(0.5)


def make_instance(config=CPU2, cluster=None):
    cluster = cluster or Cluster.build(n_machines=1)
    placement = cluster.try_allocate(config)
    assert placement is not None
    return Instance(
        function="f",
        config=config,
        placement=placement,
        launched_at=0.0,
        init_duration=1.0,
    )


def warm(inst, now=1.0):
    inst.mark_warm(now)
    return inst


class TestLifecycleIndexing:
    def test_add_requires_initializing(self):
        pool = InstancePool()
        inst = warm(make_instance())
        with pytest.raises(ValueError):
            pool.add(inst)

    def test_counts_follow_transitions(self):
        pool = InstancePool()
        cluster = Cluster.build(n_machines=1)
        inst = make_instance(cluster=cluster)
        pool.add(inst)
        assert pool.initializing_count() == 1
        assert pool.live_count() == 1
        assert pool.idle_count() == 0

        warm(inst)
        pool.transition(inst, InstanceState.INITIALIZING)
        assert pool.initializing_count() == 0
        assert pool.idle_count() == 1
        assert pool.warm_count() == 1

        inst.mark_busy(2.0, batch=1)
        pool.transition(inst, InstanceState.IDLE)
        assert pool.idle_count() == 0
        assert pool.warm_count() == 1

        inst.mark_idle(3.0, busy_time=1.0)
        pool.transition(inst, InstanceState.BUSY)
        assert pool.idle_count() == 1

        prev = inst.state
        inst.mark_terminated(4.0)
        pool.remove(inst, prev)
        assert pool.live_count() == 0
        assert len(pool) == 0

    def test_per_config_counts(self):
        pool = InstancePool()
        cluster = Cluster.build(n_machines=1)
        a = make_instance(CPU2, cluster)
        b = make_instance(CPU4, cluster)
        pool.add(a)
        pool.add(b)
        assert pool.live_count(CPU2) == 1
        assert pool.live_count(CPU4) == 1
        assert pool.live_count(GPU) == 0
        assert pool.uncommitted_count(CPU2) == 1
        assert pool.uncommitted_count() == 2

    def test_backend_live_counts(self):
        pool = InstancePool()
        cluster = Cluster.build(n_machines=1)
        pool.add(make_instance(CPU2, cluster))
        pool.add(make_instance(GPU, cluster))
        assert pool.backend_live_counts() == (1, 1)


class TestPickOrder:
    def make_idle_fleet(self, configs):
        pool = InstancePool()
        cluster = Cluster.build(n_machines=2)
        fleet = []
        for cfg in configs:
            inst = make_instance(cfg, cluster)
            pool.add(inst)
            warm(inst)
            pool.transition(inst, InstanceState.INITIALIZING)
            fleet.append(inst)
        return pool, fleet

    def test_prefers_matching_config_in_launch_order(self):
        pool, fleet = self.make_idle_fleet([CPU4, CPU2, CPU2])
        assert pool.pick_idle(CPU2) is fleet[1]

    def test_falls_back_to_oldest_any_config(self):
        pool, fleet = self.make_idle_fleet([CPU4, CPU4])
        assert pool.pick_idle(CPU2) is fleet[0]

    def test_pick_none_when_no_idle(self):
        pool = InstancePool()
        assert pool.pick_idle(CPU2) is None

    def test_rebusied_instance_keeps_fifo_rank(self):
        """An instance cycling busy->idle is picked by id, not re-insertion."""
        pool, fleet = self.make_idle_fleet([CPU2, CPU2])
        first, second = fleet
        first.mark_busy(2.0, batch=1)
        pool.transition(first, InstanceState.IDLE)
        first.mark_idle(3.0, busy_time=1.0)
        pool.transition(first, InstanceState.BUSY)
        # first went idle *after* second, but has the lower id
        assert pool.pick_idle(CPU2) is first

    def test_idle_sorted_ascending_ids(self):
        pool, fleet = self.make_idle_fleet([CPU2, CPU4, CPU2])
        assert pool.idle_sorted() == fleet
        assert pool.idle_sorted(config=CPU2) == [fleet[0], fleet[2]]

    def test_iteration_in_launch_order(self):
        pool, fleet = self.make_idle_fleet([CPU2, CPU4])
        assert list(pool) == fleet

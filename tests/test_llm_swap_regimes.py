"""End-to-end tests of the beyond-paper regimes: LLM work + GPU swapping.

These drive full simulations (short horizons) rather than unit surfaces:
the LLM archetype must conserve invocations and emit schema-valid
``token_stage`` telemetry, the swap regime must actually swap and — the
point of swapping — pay strictly fewer full cold starts than its no-swap
twin on the identical workload.
"""

from types import SimpleNamespace

import pytest

from repro.experiments.runners import build_environment
from repro.hardware.configs import HardwareConfig
from repro.simulator import ServerlessSimulator
from repro.simulator.cluster import ModelResidencyCache
from repro.telemetry import TraceRecorder, aggregate, to_dict, validate_event
from repro.telemetry.events import InstanceSwappedIn, TokenStage


@pytest.fixture(scope="module")
def llm_run():
    env = build_environment(
        "llm-chat", sla=6.0, duration=120.0, train_duration=900.0
    )
    recorder = TraceRecorder()
    sim = ServerlessSimulator(
        env.app, env.trace, env.make_policy("smiless"), seed=3,
        recorder=recorder,
    )
    metrics = sim.run()
    return env, metrics, recorder


@pytest.fixture(scope="module")
def swap_pair():
    """(swap metrics, baseline metrics, swap recorder) on the same workload."""
    results = {}
    recorder = None
    for app in ("image-query-swap", "image-query"):
        env = build_environment(
            app, preset="bursty", sla=1.0, duration=180.0, train_duration=900.0
        )
        rec = TraceRecorder() if app == "image-query-swap" else None
        sim = ServerlessSimulator(
            env.app, env.trace, env.make_policy("smiless"), seed=3,
            recorder=rec,
        )
        results[app] = sim.run()
        if rec is not None:
            recorder = rec
    return results["image-query-swap"], results["image-query"], recorder


# ------------------------------------------------------------------- LLM
def test_llm_run_conserves_invocations(llm_run):
    env, metrics, _ = llm_run
    assert len(env.trace) == (
        metrics.n_completed + metrics.unfinished + metrics.timed_out
    )
    assert metrics.n_completed > 0


def test_llm_run_emits_valid_token_stages(llm_run):
    env, metrics, recorder = llm_run
    stages = [e for e in recorder.events if isinstance(e, TokenStage)]
    assert stages, "LLM run produced no token_stage events"
    for e in stages:
        assert validate_event(to_dict(e)) == []
        assert e.tokens_in >= 1 and e.tokens_out >= 1
        assert e.prefill > 0.0 and e.decode > 0.0
    # Work-dependent service: token totals vary across invocations.
    assert len({(e.tokens_in, e.tokens_out) for e in stages}) > 1


def test_llm_token_stages_cover_only_the_llm_function(llm_run):
    _, _, recorder = llm_run
    fns = {e.function for e in recorder.events if isinstance(e, TokenStage)}
    assert fns == {"LLM"}


def test_llm_trace_reconstructs_metrics(llm_run):
    _, metrics, recorder = llm_run
    rebuilt = aggregate(recorder.events)
    assert rebuilt.summary() == metrics.summary()
    assert rebuilt.swap_ins == metrics.swap_ins


# ------------------------------------------------------------------ swap
def test_swap_regime_swaps_and_reduces_cold_starts(swap_pair):
    swap, base, _ = swap_pair
    assert swap.swap_ins > 0
    cold_starts = swap.initializations - swap.swap_ins
    assert cold_starts < base.initializations
    assert base.swap_ins == 0


def test_swap_events_match_counter_and_reconstruct(swap_pair):
    swap, _, recorder = swap_pair
    events = [e for e in recorder.events if isinstance(e, InstanceSwappedIn)]
    assert len(events) == swap.swap_ins
    for e in events:
        assert validate_event(to_dict(e)) == []
        assert e.swap_duration > 0.0
        assert e.config.startswith("gpu-")
    rebuilt = aggregate(recorder.events)
    assert rebuilt.swap_ins == swap.swap_ins
    assert rebuilt.summary() == swap.summary()


def test_swap_runs_conserve_invocations(swap_pair):
    swap, base, _ = swap_pair
    for m in (swap, base):
        assert m.n_completed + m.unfinished + m.timed_out == (
            base.n_completed + base.unfinished + base.timed_out
        )


# ------------------------------------------------------- residency cache
def test_residency_cache_lru_semantics():
    cache = ModelResidencyCache(capacity_gb=10.0)
    assert cache.admit(("a", "f"), 4.0) == []
    assert cache.admit(("a", "g"), 4.0) == []
    assert cache.resident(("a", "f"))
    # Touch the older entry; the *other* one becomes the LRU victim.
    cache.touch(("a", "f"))
    evicted = cache.admit(("a", "h"), 4.0)
    assert evicted == [("a", "g")]
    assert cache.resident(("a", "f")) and cache.resident(("a", "h"))
    assert not cache.resident(("a", "g"))
    assert cache.used_gb == pytest.approx(8.0)


def test_residency_cache_never_admits_oversize_models():
    cache = ModelResidencyCache(capacity_gb=4.0)
    assert cache.admit(("a", "big"), 5.0) == []
    assert not cache.resident(("a", "big"))
    assert len(cache) == 0


def test_residency_cache_explicit_evict():
    cache = ModelResidencyCache(capacity_gb=8.0)
    cache.admit(("a", "f"), 3.0)
    assert cache.evict(("a", "f")) is True
    assert cache.evict(("a", "f")) is False
    assert cache.used_gb == 0.0


# ------------------------------------------------------- smiless lead
def test_smiless_init_lead_uses_swap_time_only_when_resident():
    env = build_environment(
        "image-query-swap", sla=1.0, duration=60.0, train_duration=900.0
    )
    policy = env.make_policy("smiless")
    fn = env.app.specs[0].name
    gpu = HardwareConfig.gpu(0.3)
    swap = policy.profiles[fn].swap_time(gpu)
    assert swap is not None
    plan = SimpleNamespace(config=gpu, init_time=swap + 5.0)
    resident = SimpleNamespace(model_resident=lambda f: True)
    absent = SimpleNamespace(model_resident=lambda f: False)
    assert policy._init_lead(fn, plan, resident) == swap
    assert policy._init_lead(fn, plan, absent) == plan.init_time
    # CPU plans never shorten: swap_time is None off-GPU.
    cpu_plan = SimpleNamespace(config=HardwareConfig.cpu(4), init_time=2.0)
    assert policy._init_lead(fn, cpu_plan, resident) == 2.0


def test_smiless_init_lead_identical_for_fixed_profiles():
    env = build_environment(
        "image-query", sla=1.0, duration=60.0, train_duration=900.0
    )
    policy = env.make_policy("smiless")
    fn = env.app.specs[0].name
    plan = SimpleNamespace(config=HardwareConfig.gpu(0.3), init_time=3.5)
    resident = SimpleNamespace(model_resident=lambda f: True)
    assert policy._init_lead(fn, plan, resident) == plan.init_time

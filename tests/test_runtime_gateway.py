"""Tests for the Runtime/Gateway split behind the simulator facades."""

import pytest

from repro.dag import linear_pipeline
from repro.hardware import HardwareConfig
from repro.policies import AlwaysOnPolicy, OnDemandPolicy
from repro.simulator import (
    Cluster,
    Deployment,
    Gateway,
    MultiAppSimulator,
    Runtime,
    ServerlessSimulator,
    derive_app_seed,
)
from repro.workload import Trace, constant_rate_process


def named_app(name, models):
    app = linear_pipeline(1, models=models)
    return type(app)(name, app.specs, [], sla=app.sla)


def make_deps(names=("app0", "app1")):
    deps = []
    for i, (name, models) in enumerate(zip(names, (("IR",), ("DB",)))):
        trace = constant_rate_process(10.0, 60.0, offset=5.0 + i)
        deps.append(Deployment(named_app(name, models), trace, AlwaysOnPolicy()))
    return deps


class TestRuntimeAPI:
    def test_add_app_returns_gateway(self):
        rt = Runtime()
        gw = rt.add_app(
            named_app("a", ("IR",)), Trace([1.0], duration=5.0), AlwaysOnPolicy()
        )
        assert isinstance(gw, Gateway)
        assert rt.gateways == [gw]
        assert gw.cluster is rt.cluster
        assert gw.events is rt.events

    def test_duplicate_app_name_rejected(self):
        rt = Runtime()
        rt.add_app(
            named_app("a", ("IR",)), Trace([1.0], duration=5.0), AlwaysOnPolicy()
        )
        with pytest.raises(ValueError, match="duplicate"):
            rt.add_app(
                named_app("a", ("DB",)), Trace([2.0], duration=5.0), OnDemandPolicy()
            )

    def test_run_without_gateways_rejected(self):
        with pytest.raises(ValueError, match="no gateways"):
            Runtime().run()

    def test_negative_drain_timeout_rejected(self):
        with pytest.raises(ValueError):
            Runtime(drain_timeout=-1.0)

    def test_direct_runtime_matches_solo_facade(self):
        """Driving Runtime/Gateway by hand equals the ServerlessSimulator facade."""
        app = named_app("a", ("IR",))
        trace = constant_rate_process(10.0, 60.0, offset=5.0)

        rt = Runtime()
        rt.add_app(app, trace, AlwaysOnPolicy(), seed=4)
        direct = rt.run()["a"]

        facade = ServerlessSimulator(
            named_app("a", ("IR",)),
            constant_rate_process(10.0, 60.0, offset=5.0),
            AlwaysOnPolicy(),
            seed=4,
        ).run()
        assert direct.summary() == facade.summary()

    def test_facade_exposes_runtime_and_gateway(self):
        sim = ServerlessSimulator(
            named_app("a", ("IR",)), Trace([1.0], duration=5.0), AlwaysOnPolicy()
        )
        assert isinstance(sim.runtime, Runtime)
        assert isinstance(sim.gateway, Gateway)
        # delegation: engine-era attribute access still works
        assert sim.app.name == "a"
        assert sim.open_invocations == 0


class TestSeedDerivation:
    def test_name_seed_is_deterministic(self):
        assert derive_app_seed(7, "app0") == derive_app_seed(7, "app0")

    def test_name_seed_varies_with_name_and_seed(self):
        assert derive_app_seed(7, "app0") != derive_app_seed(7, "app1")
        assert derive_app_seed(7, "app0") != derive_app_seed(8, "app0")

    def test_unknown_seeding_mode_rejected(self):
        with pytest.raises(ValueError, match="seeding"):
            MultiAppSimulator(make_deps(), seeding="positional")


class TestLegacySeedingGolden:
    """``seeding="legacy"`` reproduces pre-refactor MultiAppSimulator runs.

    The expected values were captured from the monolithic engine (commit
    395b9fb) with ``seed=7`` and positional per-app seeds, before the
    Runtime/Gateway split landed.  They must never drift.
    """

    def make_deps(self):
        deps = []
        for i, models in enumerate((("IR",), ("DB",))):
            app = named_app(f"app{i}", models)
            trace = constant_rate_process(10.0, 60.0, offset=5.0 + i)
            policy = (
                AlwaysOnPolicy(config=HardwareConfig.cpu(4))
                if i == 0
                else OnDemandPolicy(config=HardwareConfig.cpu(4))
            )
            deps.append(Deployment(app, trace, policy))
        return deps

    def test_bit_identical_to_pre_refactor(self):
        results = MultiAppSimulator(self.make_deps(), seed=7, seeding="legacy").run()
        app0, app1 = results["app0"].summary(), results["app1"].summary()
        assert len(results["app0"].invocations) == 6
        assert len(results["app1"].invocations) == 6
        assert app0["total_cost"] == 0.002266666666666667
        assert app0["mean_latency"] == 0.34084285138092446
        assert app0["p99_latency"] == 0.3731914992026727
        assert app0["reinit_fraction"] == 0.0
        assert app1["total_cost"] == 0.00042886857505982496
        assert app1["violation_ratio"] == pytest.approx(1 / 3)
        assert app1["mean_latency"] == 1.8920672429109926
        assert app1["p99_latency"] == 2.0499902544794133
        assert app1["reinit_fraction"] == 1.0


class TestNameSeedingOrderIndependence:
    def run_pair(self, order, seeding):
        deps = make_deps()
        deps = [deps[i] for i in order]
        results = MultiAppSimulator(deps, seed=7, seeding=seeding).run()
        return {name: m.summary() for name, m in results.items()}

    def test_permuting_deployments_preserves_per_app_results(self):
        forward = self.run_pair((0, 1), "name")
        reversed_ = self.run_pair((1, 0), "name")
        assert forward == reversed_

    def test_legacy_mode_is_positional(self):
        """Under legacy seeding the seed follows the slot, not the app."""
        deps = make_deps()
        sim = MultiAppSimulator(deps, seed=7, seeding="legacy")
        seeds = [gw.seed for gw in sim.runtime.gateways]
        assert seeds == [7, 8]
        named = MultiAppSimulator(make_deps(), seed=7, seeding="name")
        assert [gw.seed for gw in named.runtime.gateways] == [
            derive_app_seed(7, "app0"),
            derive_app_seed(7, "app1"),
        ]


class TestCrossAppBackPressure:
    """S4: cross-app queueing that a solo run cannot exhibit."""

    def victim_deployment(self):
        return Deployment(
            named_app("victim", ("DB",)),
            Trace([30.0], duration=120.0),
            OnDemandPolicy(config=HardwareConfig.cpu(16)),
        )

    def test_solo_victim_is_healthy(self):
        cluster = Cluster.build(n_machines=1, cores_per_machine=16)
        dep = self.victim_deployment()
        metrics = ServerlessSimulator(
            dep.app, dep.trace, dep.policy, cluster=cluster, seed=0
        ).run()
        assert metrics.unfinished == 0
        assert metrics.latencies().max() < 10.0

    def test_co_run_hog_starves_victim(self):
        cluster = Cluster.build(n_machines=1, cores_per_machine=16)
        hog = Deployment(
            named_app("hog", ("IR",)),
            Trace([5.0], duration=120.0),
            AlwaysOnPolicy(config=HardwareConfig.cpu(16)),
        )
        results = MultiAppSimulator(
            [hog, self.victim_deployment()], cluster=cluster, seed=0
        ).run()
        victim = results["victim"]
        # the always-on hog pins all 16 cores; the victim's cold start
        # queues behind capacity that never frees in its window
        assert victim.unfinished == 1 or victim.latencies().max() > 10.0

"""Property-based tests for the Workflow Manager and Auto-scaler.

Randomized DAGs and parameters probe the optimizer's contracts:

- whenever the exhaustive search finds a feasible assignment, the Workflow
  Manager's strategy is feasible too, and never cheaper than the optimum;
- scaling decisions always cover the predicted demand within the budget;
- candidate orderings and plan evaluation agree with first principles.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AutoScaler, ExhaustiveSearch, WorkflowManager
from repro.core.path_search import build_candidates
from repro.core.prewarming import evaluate_assignment
from repro.dag import random_dag
from repro.dag.models import model_names
from repro.hardware import ConfigurationSpace
from repro.profiler import oracle_profile

SPACE = ConfigurationSpace.default()
SMALL_SPACE = ConfigurationSpace(cpu_cores=(1, 4, 16), gpu_fractions=(0.1, 0.5))


def oracle_profiles(app):
    return {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}


class TestWorkflowProperties:
    @given(
        n=st.integers(2, 4),
        seed=st.integers(0, 60),
        it=st.sampled_from([1.0, 4.0, 20.0]),
        sla=st.sampled_from([0.5, 1.0, 2.0, 5.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_feasible_whenever_optimum_is(self, n, seed, it, sla):
        app = random_dag(n, rng=seed, sla=sla)
        profiles = oracle_profiles(app)
        opt = ExhaustiveSearch(SMALL_SPACE).optimize_app(app, profiles, it)
        strategy = WorkflowManager(SMALL_SPACE).optimize(app, profiles, it)
        if opt.feasible:
            assert strategy.feasible
            # the optimum is a lower bound
            assert strategy.cost >= opt.cost - 1e-15
        else:
            assert not strategy.feasible

    @given(n=st.integers(2, 5), seed=st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_strategy_self_consistent(self, n, seed):
        app = random_dag(n, rng=seed, sla=3.0)
        profiles = oracle_profiles(app)
        strategy = WorkflowManager(SMALL_SPACE).optimize(app, profiles, 5.0)
        ev = evaluate_assignment(app, strategy.assignment, profiles, 5.0)
        assert strategy.latency == pytest.approx(ev.latency)
        assert strategy.cost == pytest.approx(ev.cost)

    @given(n=st.integers(2, 4), seed=st.integers(0, 40))
    @settings(max_examples=10, deadline=None)
    def test_candidates_cover_space(self, n, seed):
        app = random_dag(n, rng=seed)
        profiles = oracle_profiles(app)
        cands = build_candidates(app.function_names, profiles, SPACE, 5.0)
        for fn, lst in cands.items():
            assert len(lst) == len(SPACE)
            costs = [c.cost for c in lst]
            assert costs == sorted(costs)


class TestAutoscalerProperties:
    @given(
        model=st.sampled_from(model_names()),
        g=st.integers(1, 64),
        it=st.sampled_from([0.5, 1.0, 3.0]),
        budget=st.sampled_from([0.2, 0.5, 1.0, 3.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_decision_covers_demand_within_budget(self, model, g, it, budget):
        from repro.dag.models import get_profile

        profile = oracle_profile(get_profile(model), n_sigma=1.0)
        scaler = AutoScaler(SPACE)
        decision = scaler.plan(model, profile, g, it, budget)
        assert decision.batch * decision.instances >= g
        assert decision.batch >= 1 and decision.instances >= 1
        if decision.feasible:
            assert decision.inference_time <= budget + 1e-9
            # batch maximality: one more item would blow the budget, unless
            # demand itself capped the batch
            if decision.batch < g:
                assert (
                    profile.inference_time(decision.config, decision.batch + 1)
                    > budget
                )

    @given(
        model=st.sampled_from(model_names()),
        g=st.integers(2, 32),
    )
    @settings(max_examples=30, deadline=None)
    def test_infeasible_budget_scales_out_fastest(self, model, g):
        from repro.dag.models import get_profile

        profile = oracle_profile(get_profile(model), n_sigma=1.0)
        scaler = AutoScaler(SPACE)
        decision = scaler.plan(model, profile, g, 1.0, budget=1e-4)
        assert not decision.feasible
        assert decision.instances == g
        fastest = min(
            (profile.inference_time(c) for c in SPACE),
        )
        assert decision.inference_time == pytest.approx(fastest)

    @given(
        model=st.sampled_from(model_names()),
        g=st.integers(1, 32),
    )
    @settings(max_examples=30, deadline=None)
    def test_max_init_filter_respected_when_possible(self, model, g):
        from repro.dag.models import get_profile

        profile = oracle_profile(get_profile(model), n_sigma=1.0)
        scaler = AutoScaler(SPACE)
        budget = 2.0
        limit = 4.0
        decision = scaler.plan(
            model, profile, g, 1.0, budget, max_init_time=limit
        )
        quick_exists = any(
            profile.init_time(c) <= limit
            and scaler.max_feasible_batch(profile, c, budget) > 0
            for c in SPACE
        )
        if quick_exists and decision.feasible:
            assert profile.init_time(decision.config) <= limit

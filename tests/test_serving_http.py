"""LiveServer end-to-end: HTTP front door, 429s, record/replay parity.

Drives a real ``asyncio.start_server`` socket with the stdlib client
from ``tools/loadgen.py`` (imported, so the CI harness is itself under
test).  Request logs always land in ``tmp_path``.
"""

import asyncio
import json
import sys
from pathlib import Path

import pytest

from repro.experiments.parallel import EnvSpec, MultiAppCellSpec
from repro.overload.spec import OverloadSpec
from repro.serving import (
    LiveServer,
    RequestLogWriter,
    SimDriver,
    TimeWarpPacer,
    read_request_log,
    replay_request_log,
    verify_replay,
)
from repro.telemetry.audit import (
    REQUEST_AUDIT_FIELDS,
    format_request_audit,
    request_audit,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import loadgen  # noqa: E402

HORIZON = 90.0


def env_spec(app):
    return EnvSpec(
        app=app,
        preset="steady",
        sla=2.0,
        duration=HORIZON,
        train_duration=400.0,
        seed=0,
    )


def make_driver(apps, *, policy="grandslam", overload=None, **kwargs):
    cell = MultiAppCellSpec(
        envs=tuple(env_spec(app) for app in apps),
        policy=policy,
        sim_seed=3,
        overload=overload,
    )
    return SimDriver(cell, horizon=HORIZON, **kwargs)


async def request_with_headers(host, port, method, path, body=None):
    """Like ``loadgen.http_request`` but also returns response headers."""
    payload = json.dumps(body).encode() if body is not None else b""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\nContent-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            + payload
        )
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length else b"{}"
        return status, json.loads(raw), headers
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class TestEndpoints:
    def test_routes_payloads_and_admission(self, tmp_path):
        log_path = tmp_path / "session.jsonl"

        async def scenario():
            driver = make_driver(
                ("image-query",),
                overload=OverloadSpec(
                    admission_rate=0.05, admission_burst=1.0
                ),
            )
            server = LiveServer(
                driver, TimeWarpPacer(), log=RequestLogWriter(log_path)
            )
            await server.start()
            host, port = server.host, server.port

            status, health = await loadgen.http_request(
                host, port, "GET", "/healthz"
            )
            assert status == 200
            assert health["apps"] == ["image-query"]
            assert health["pacing"] == "time-warp"

            status, payload = await loadgen.http_request(
                host, port, "POST", "/invoke/no-such-app"
            )
            assert status == 404
            assert payload["apps"] == ["image-query"]

            status, payload, _ = await request_with_headers(
                host, port, "GET", "/nope"
            )
            assert status == 404

            status, _, _ = await request_with_headers(
                host, port, "GET", "/invoke/image-query"
            )
            assert status == 405

            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /invoke/image-query HTTP/1.1\r\n"
                b"Content-Length: 8\r\nConnection: close\r\n\r\nnot json"
            )
            await writer.drain()
            assert int((await reader.readline()).split()[1]) == 400
            writer.close()

            # First request: admitted, completes with per-stage timing.
            status, payload = await loadgen.http_request(
                host, port, "POST", "/invoke/image-query", {"tenant": "t0"}
            )
            assert status == 200
            assert payload["status"] == "completed"
            assert payload["tenant"] == "t0"
            assert payload["latency"] > 0
            assert payload["stages"]
            for stage in payload["stages"].values():
                assert stage["finished_at"] >= stage["started_at"]
                assert stage["queue_wait"] >= 0

            # Second request: the bucket (burst 1, refill 0.05/s) cannot
            # have recovered a whole token — deterministic 429.
            status, payload, headers = await request_with_headers(
                host, port, "POST", "/invoke/image-query"
            )
            assert status == 429
            assert payload["status"] == "rejected"
            assert payload["retry_after"] > 0
            assert int(headers["retry-after"]) >= 1

            status, stats = await loadgen.http_request(
                host, port, "GET", "/stats"
            )
            assert status == 200
            assert stats["apps"]["image-query"]["completed"] == 1
            assert stats["apps"]["image-query"]["rejected"] == 1

            status, stopped = await loadgen.http_request(
                host, port, "POST", "/control/stop"
            )
            assert status == 200
            counters = stopped["summary"]["counters"]["image-query"]
            assert counters["completed"] == 1
            assert counters["rejected"] == 1
            metrics = await server.run()
            assert metrics["image-query"].rejected == 1
            return server

        asyncio.run(scenario())

        parsed = read_request_log(log_path)
        assert len(parsed.requests) == 2
        assert len(parsed.responses) == 2
        assert parsed.summary is not None
        _, diffs = verify_replay(log_path)
        assert diffs == []

    def test_horizon_straddling_request_times_out_504(self, tmp_path):
        async def scenario():
            driver = make_driver(("image-query",), drain_timeout=0.0)
            driver.start()
            driver.advance_to(HORIZON - 0.25, max_steps=1_000_000)
            server = LiveServer(driver, TimeWarpPacer())
            await server.start()
            host, port = server.host, server.port
            invoke = asyncio.create_task(
                loadgen.http_request(
                    host, port, "POST", "/invoke/image-query"
                )
            )
            while len(driver.tickets) < 1:
                await asyncio.sleep(0.005)
            stop = asyncio.create_task(
                loadgen.http_request(host, port, "POST", "/control/stop")
            )
            status, payload = await invoke
            assert status == 504
            assert payload["status"] == "unfinished"
            await stop
            await server.run()

        asyncio.run(scenario())

    def test_shutdown_refuses_new_requests_503(self):
        async def scenario():
            driver = make_driver(("image-query",))
            server = LiveServer(driver, TimeWarpPacer())
            await server.start()
            server.request_stop()
            status, payload = await loadgen.http_request(
                server.host, server.port, "POST", "/invoke/image-query"
            )
            assert status == 503
            await server.run()

        asyncio.run(scenario())


class TestClosedLoopRecordReplay:
    def test_loadgen_session_replays_bit_identical(self, tmp_path):
        """Satellite: live loadgen → request log → offline bit parity."""
        log_path = tmp_path / "closed_loop.jsonl"

        async def scenario():
            driver = make_driver(
                ("image-query", "amber-alert"),
                policy="smiless",
                overload=OverloadSpec(
                    admission_rate=0.5, admission_burst=2.0
                ),
            )
            server = LiveServer(
                driver, TimeWarpPacer(), log=RequestLogWriter(log_path)
            )
            await server.start()
            stats = await loadgen.run_load(
                server.host,
                server.port,
                apps=["image-query", "amber-alert"],
                requests=40,
                concurrency=8,
                rate=200.0,
                seed=7,
                tenant="tenant-a",
            )
            await loadgen.http_request(
                server.host, server.port, "POST", "/control/stop"
            )
            await server.run()
            return stats

        stats = asyncio.run(scenario())
        assert stats["errors"] == []
        assert stats["dispositions"]["completed"] > 0
        assert stats["dispositions"]["rejected"] > 0
        assert stats["status"]["429"] == stats["dispositions"]["rejected"]

        # Field-by-field replay parity against the recorded footer.
        result, diffs = verify_replay(log_path)
        assert diffs == []

        # The replayed RunMetrics mirror the HTTP-visible dispositions.
        totals = {
            "completed": sum(m.n_completed for m in result.metrics.values()),
            "rejected": sum(m.rejected for m in result.metrics.values()),
        }
        assert totals["completed"] == stats["dispositions"]["completed"]
        assert totals["rejected"] == stats["dispositions"]["rejected"]

        # Request-level audit rows cover every front-door request.
        rows = request_audit(result.parsed.responses)
        assert len(rows) == 40
        assert all(tuple(row) == REQUEST_AUDIT_FIELDS for row in rows)
        assert {row["tenant"] for row in rows} == {"tenant-a"}
        rejected = [r for r in rows if r["status"] == "rejected"]
        assert len(rejected) == stats["dispositions"]["rejected"]
        assert all(r["latency"] is None for r in rejected)
        table = format_request_audit(result.parsed.responses)
        assert "rejected" in table and "completed" in table

    def test_cli_replay_parity_ok_and_tampered(self, tmp_path, capsys):
        from repro.cli import main

        log_path = tmp_path / "session.jsonl"

        async def scenario():
            driver = make_driver(("image-query",))
            server = LiveServer(
                driver, TimeWarpPacer(), log=RequestLogWriter(log_path)
            )
            await server.start()
            for _ in range(2):
                await loadgen.http_request(
                    server.host, server.port, "POST", "/invoke/image-query"
                )
            await server.stop()

        asyncio.run(scenario())

        assert main(["serve", "--replay", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "replay parity: OK" in out
        assert "(replayed)" in out

        # Tamper with a footer metric: the parity gate must catch it.
        lines = [json.loads(line) for line in log_path.read_text().splitlines()]
        for record in lines:
            if record["kind"] == "summary":
                record["metrics"]["image-query"]["mean_latency"] += 1.0
        log_path.write_text(
            "\n".join(json.dumps(r, sort_keys=True) for r in lines) + "\n"
        )
        assert main(["serve", "--replay", str(log_path)]) == 1
        out = capsys.readouterr().out
        assert "replay parity FAILED" in out
        assert "mean_latency" in out

    def test_cli_serve_requires_one_mode(self, capsys):
        from repro.cli import main

        assert main(["serve"]) == 2
        assert "exactly one of" in capsys.readouterr().out

    def test_cli_live_session_empty_then_replayable(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "apps": ["image-query"],
                    "policies": "grandslam",
                    "slas": 2.0,
                    "presets": "steady",
                    "seeds": 3,
                    "duration": HORIZON,
                    "train_duration": 400.0,
                }
            )
        )
        log_path = tmp_path / "empty.jsonl"
        # --max-requests 0 makes the live branch deterministic and
        # non-interactive: bind, stop, finalize, report.
        rc = main(
            [
                "serve",
                "--scenario",
                str(spec_path),
                "--port",
                "0",
                "--max-requests",
                "0",
                "--admission-rate",
                "1.0",
                "--admission-burst",
                "2.0",
                "--log",
                str(log_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving image-query" in out
        assert "request log:" in out
        header = read_request_log(log_path).header
        assert header["overload"]["admission_rate"] == 1.0
        assert main(["serve", "--replay", str(log_path)]) == 0

    def test_replay_without_footer_reports_missing(self, tmp_path):
        log_path = tmp_path / "truncated.jsonl"

        async def scenario():
            driver = make_driver(("image-query",))
            server = LiveServer(
                driver, TimeWarpPacer(), log=RequestLogWriter(log_path)
            )
            await server.start()
            await loadgen.http_request(
                server.host, server.port, "POST", "/invoke/image-query"
            )
            await server.stop()

        asyncio.run(scenario())
        # Simulate a crashed session: drop the summary footer.
        lines = log_path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        kept = [line for line, rec in zip(lines, records) if rec["kind"] != "summary"]
        log_path.write_text("\n".join(kept) + "\n")

        with pytest.raises(ValueError, match="no summary footer"):
            verify_replay(log_path)
        # …but an unverified replay still works from header + requests.
        result = replay_request_log(log_path)
        assert result.metrics["image-query"].n_completed == 1

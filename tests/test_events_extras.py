"""Extra edge-case coverage for the event queue and graph utilities."""

import pytest

from repro.dag import AppDAG, FunctionSpec, linear_pipeline
from repro.dag.models import get_profile
from repro.simulator import EventQueue


class TestEventQueueExtras:
    def test_len_tracks_pending(self):
        q = EventQueue()
        assert len(q) == 0
        q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        q.step()
        assert len(q) == 1

    def test_run_until_same_timestamp_events(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, lambda: fired.append("a"))
        q.schedule(5.0, lambda: fired.append("b"))
        q.run_until(5.0)
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_past_quiet_horizon(self):
        q = EventQueue()
        q.run_until(42.0)
        assert q.now == 42.0

    def test_exception_in_callback_propagates(self):
        q = EventQueue()

        def boom():
            raise RuntimeError("kaboom")

        q.schedule(1.0, boom)
        with pytest.raises(RuntimeError, match="kaboom"):
            q.run()


class TestAppDagExtras:
    def test_with_sla_preserves_structure(self):
        app = linear_pipeline(3)
        copy = app.with_sla(9.0)
        assert copy.function_names == app.function_names
        assert set(copy.graph.edges) == set(app.graph.edges)
        assert copy.sla == 9.0

    def test_min_batch_over_functions(self):
        app = linear_pipeline(2, models=("IR", "TG"))
        assert app.min_batch() == min(s.profile.min_batch for s in app.specs)

    def test_repr_mentions_name(self):
        assert "amber" not in repr(linear_pipeline(1))
        assert "pipeline-1" in repr(linear_pipeline(1))

    def test_nested_fork_join_substructures(self):
        """Two nested diamonds: innermost substructure reported first."""
        specs = [
            FunctionSpec(n, get_profile("IR")) for n in "ABCDEFG"
        ]
        edges = [
            ("A", "B"), ("A", "F"),        # outer fork at A
            ("B", "C"), ("B", "D"),        # inner fork at B
            ("C", "E"), ("D", "E"),        # inner join at E
            ("E", "G"), ("F", "G"),        # outer join at G
        ]
        app = AppDAG("nested", specs, edges)
        subs = app.parallel_substructures()
        assert ("B", "E") in subs
        assert ("A", "G") in subs
        assert subs.index(("B", "E")) < subs.index(("A", "G"))

    def test_critical_path_on_nested(self):
        specs = [FunctionSpec(n, get_profile("IR")) for n in "ABCD"]
        edges = [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]
        app = AppDAG("d", specs, edges)
        lat = {"A": 1.0, "B": 1.0, "C": 4.0, "D": 1.0}
        assert app.critical_path(lat) == ("A", "C", "D")

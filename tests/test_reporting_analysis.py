"""Tests for run reporting, trace analytics, online predictor updates and
the GPU-contention knob."""

import numpy as np
import pytest

from repro.dag import linear_pipeline
from repro.hardware import HardwareConfig
from repro.policies import AlwaysOnPolicy, OnDemandPolicy
from repro.predictor import InterArrivalPredictor, InvocationPredictor
from repro.simulator import ServerlessSimulator
from repro.simulator.reporting import (
    format_cost_breakdown,
    format_function_table,
    format_latency_histogram,
    format_report,
)
from repro.workload import AzureLikeWorkload, Trace, constant_rate_process, gamma_renewal_process
from repro.workload.analysis import (
    burst_episodes,
    dominant_period,
    format_summary,
    gap_cv,
    summarize,
)


@pytest.fixture(scope="module")
def run_metrics():
    app = linear_pipeline(2, models=("IR", "DB"))
    trace = constant_rate_process(10.0, 120.0, offset=5.0)
    return ServerlessSimulator(app, trace, AlwaysOnPolicy(), seed=0).run()


class TestReporting:
    def test_cost_breakdown_sums_to_total(self, run_metrics):
        text = format_cost_breakdown(run_metrics)
        assert f"${run_metrics.total_cost():.4f}" in text
        for key in ("init", "inference", "keepalive"):
            assert key in text

    def test_function_table_lists_all_functions(self, run_metrics):
        text = format_function_table(run_metrics)
        assert "f0-IR" in text and "f1-DB" in text

    def test_histogram_marks_sla(self, run_metrics):
        text = format_latency_histogram(run_metrics)
        assert "<- SLA" in text
        assert "#" in text

    def test_histogram_empty_metrics(self):
        from repro.simulator.metrics import RunMetrics

        empty = RunMetrics(app="x", policy="y", sla=1.0)
        assert "no completed" in format_latency_histogram(empty)

    def test_full_report(self, run_metrics):
        text = format_report(run_metrics)
        assert "run report" in text
        assert "violations" in text
        assert "(re)initializations" in text

    def test_report_mentions_failed_inits(self):
        app = linear_pipeline(1, models=("IR",))
        trace = constant_rate_process(10.0, 100.0, offset=5.0)
        m = ServerlessSimulator(
            app, trace, OnDemandPolicy(), seed=1, init_failure_rate=0.5
        ).run()
        assert "failed" in format_report(m)


class TestAnalysis:
    def test_gap_cv_regular_vs_poisson(self):
        regular = gamma_renewal_process(5.0, 0.05, 1000.0, rng=0)
        irregular = AzureLikeWorkload.preset("irregular", seed=1).generate(1000.0)
        assert gap_cv(regular) < 0.1
        assert gap_cv(irregular) > 0.5

    def test_gap_cv_degenerate(self):
        assert gap_cv(Trace([1.0], duration=5.0)) == 0.0

    def test_dominant_period_detects_harmonic(self):
        t = np.arange(0, 512.0, 8.0)  # one arrival every 8 s
        trace = Trace(t, duration=512.0)
        period = dominant_period(trace)
        assert period is not None
        assert period == pytest.approx(8.0, rel=0.15)

    def test_dominant_period_none_for_noise(self):
        trace = AzureLikeWorkload.preset("irregular", seed=3).generate(600.0)
        # Poisson-like traffic: either no peak or a weak incidental one;
        # the detector must not crash and must respect the threshold
        result = dominant_period(trace, min_strength=10.0)
        assert result is None

    def test_burst_episodes(self):
        counts = np.zeros(30, dtype=int)
        counts[5:8] = 4
        counts[20] = 3
        trace = Trace.from_counts(counts, window=1.0)
        episodes = burst_episodes(trace, threshold=2)
        assert len(episodes) == 2
        assert episodes[0].start == 5.0 and episodes[0].end == 8.0
        assert episodes[0].invocations == 12
        assert episodes[0].peak_rate == 4.0
        assert episodes[0].duration == 3.0

    def test_burst_episode_at_trace_end(self):
        counts = np.zeros(10, dtype=int)
        counts[8:] = 5
        episodes = burst_episodes(Trace.from_counts(counts), threshold=2)
        assert len(episodes) == 1
        assert episodes[0].end == 10.0

    def test_summarize_and_format(self):
        trace = AzureLikeWorkload.preset("bursty", seed=2).generate(900.0)
        summary = summarize(trace)
        assert summary.invocations == len(trace)
        assert summary.burst_count >= 1
        assert 0.0 <= summary.burst_share <= 1.0
        text = format_summary(summary)
        assert "dispersion" in text
        assert "bursts" in text


class TestOnlineUpdates:
    def test_invocation_partial_fit_improves(self):
        wl_a = AzureLikeWorkload.preset("steady", seed=10)
        wl_b = AzureLikeWorkload.preset("spiky", seed=11)
        pred = InvocationPredictor(epochs=2, seed=0)
        pred.fit(wl_a.generate(900.0).counts_per_window(1.0))
        shifted = wl_b.generate(900.0).counts_per_window(1.0)
        before_scale = pred._scale
        pred.partial_fit(shifted)
        assert pred._scale >= before_scale  # scale only grows
        assert pred.trained

    def test_invocation_partial_fit_on_untrained_fits(self):
        pred = InvocationPredictor(epochs=1, seed=0)
        counts = AzureLikeWorkload.preset("steady", seed=12).generate_counts(600.0)
        pred.partial_fit(counts)
        assert pred.trained

    def test_invocation_partial_fit_short_history_noop(self):
        pred = InvocationPredictor(epochs=1, window=30, seed=0)
        pred.fit(AzureLikeWorkload.preset("steady", seed=13).generate_counts(600.0))
        pred.partial_fit(np.zeros(5))  # silently ignored

    def test_interarrival_partial_fit(self):
        counts = gamma_renewal_process(5.0, 0.1, 1200.0, rng=5).counts_per_window(1.0)
        pred = InterArrivalPredictor(epochs=3, seed=0).fit(counts)
        more = gamma_renewal_process(5.0, 0.1, 600.0, rng=6).counts_per_window(1.0)
        pred.partial_fit(more)
        assert pred.trained

    def test_interarrival_partial_fit_sparse_noop(self):
        counts = gamma_renewal_process(5.0, 0.1, 1200.0, rng=7).counts_per_window(1.0)
        pred = InterArrivalPredictor(epochs=1, seed=0).fit(counts)
        pred.partial_fit(np.zeros(40))  # no gaps to learn from


class TestGpuContention:
    def _run(self, contention):
        app = linear_pipeline(1, models=("TG",))
        trace = constant_rate_process(8.0, 160.0, offset=5.0)
        policy = AlwaysOnPolicy(config=HardwareConfig.gpu(0.5))
        m = ServerlessSimulator(
            app, trace, policy, seed=4, noisy=False, gpu_contention=contention
        ).run()
        return m

    def test_no_contention_for_sole_tenant(self):
        # one instance on the device: others' share is zero -> no slowdown
        base = self._run(0.0).latencies().mean()
        alone = self._run(2.0).latencies().mean()
        assert alone == pytest.approx(base, rel=1e-6)

    def test_contention_slows_co_located_instances(self):
        from repro.simulator import Cluster, FunctionDirective
        from repro.policies.base import Policy

        class TwoPods(Policy):
            name = "two-pods"

            def on_register(self, app, ctx):
                for fn in app.function_names:
                    ctx.set_directive(
                        fn,
                        FunctionDirective(
                            config=HardwareConfig.gpu(0.5),
                            keep_alive=float("inf"),
                            min_warm=2,
                        ),
                    )
                    ctx.schedule_warmup(fn, 0.0, count=2)

        app = linear_pipeline(1, models=("TG",))
        # simultaneous pairs force both pods busy at once on one GPU
        trace = Trace([20.0, 20.0, 40.0, 40.0, 60.0, 60.0], duration=90.0)
        cluster = Cluster.build(n_machines=1)

        def mean_lat(contention):
            m = ServerlessSimulator(
                app, trace, TwoPods(), cluster=Cluster.build(n_machines=1),
                seed=4, noisy=False, gpu_contention=contention,
            ).run()
            return m.latencies().mean()

        assert mean_lat(2.0) > mean_lat(0.0) * 1.3

    def test_invalid_contention_rejected(self):
        app = linear_pipeline(1, models=("TG",))
        with pytest.raises(ValueError):
            ServerlessSimulator(
                app, Trace([1.0], duration=5.0), AlwaysOnPolicy(),
                gpu_contention=-1.0,
            )

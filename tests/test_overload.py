"""Behavioural tests for the overload-resilience plane (:mod:`repro.overload`).

Each mechanism gets a targeted scenario — bounded-queue shedding under
each policy, token-bucket admission control, circuit breakers, brownout
tiers, flash-crowd injection and retry-storm amplification — plus the
cross-cutting guarantees: the extended conservation identity
(``trace + injected == completed + unfinished + timed_out + shed +
rejected``), exact trace reconstruction of the new counters, no leaked
timers or demand charges at run end, and the zero-cost rule (an inert
spec changes nothing).
"""

import json
import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.test_resilience import FixedConfigPolicy

from repro.dag import linear_pipeline
from repro.experiments import build_environment
from repro.faults import (
    ExecutionFault,
    FaultPlan,
    FlashCrowd,
    ResilienceSpec,
    RetryStorm,
)
from repro.hardware import HardwareConfig
from repro.overload import SHED_POLICIES, OverloadSpec, TokenBucket
from repro.policies import OnDemandPolicy
from repro.simulator import ServerlessSimulator
from repro.telemetry import TraceRecorder, aggregate
from repro.telemetry.events import (
    Arrival,
    FallbackActivated,
    InvocationRejected,
    InvocationShed,
)
from repro.workload import Trace, constant_rate_process


def assert_conserved_extended(trace, m):
    """Offered load lands in exactly one of the five disposition bins."""
    assert len(trace) + m.injected_arrivals == (
        m.n_completed + m.unfinished + m.timed_out + m.shed + m.rejected
    )


def assert_overload_reconstructs(live, rec):
    """aggregate() rebuilds the overload counters and summary exactly.

    ``injected_arrivals`` is deliberately excluded: injected arrivals emit
    ordinary ``arrival`` events, so the trace view cannot tell them apart
    (and no summary figure depends on the split).
    """
    rebuilt = aggregate(rec.events, app=live.app)
    assert rebuilt.shed == live.shed
    assert rebuilt.rejected == live.rejected
    assert rebuilt.timed_out == live.timed_out
    assert rebuilt.fallbacks == live.fallbacks
    a, b = rebuilt.summary(), live.summary()
    assert a.keys() == b.keys()
    for key in a:
        if isinstance(a[key], float) and math.isnan(a[key]):
            assert math.isnan(b[key])
        else:
            assert a[key] == b[key], key
    return rebuilt


# ------------------------------------------------------------------- spec
class TestSpecValidation:
    def test_knob_bounds(self):
        with pytest.raises(ValueError, match="queue_limit"):
            OverloadSpec(queue_limit=0)
        with pytest.raises(ValueError, match="shed_policy"):
            OverloadSpec(shed_policy="coin-flip")
        with pytest.raises(ValueError, match="admission_rate"):
            OverloadSpec(admission_rate=0.0)
        with pytest.raises(ValueError, match="admission_burst"):
            OverloadSpec(admission_rate=1.0, admission_burst=0.5)
        with pytest.raises(ValueError, match="breaker_failures"):
            OverloadSpec(breaker_failures=0)
        with pytest.raises(ValueError, match="breaker_cooldown"):
            OverloadSpec(breaker_failures=1, breaker_cooldown=0.0)
        with pytest.raises(ValueError, match="brownout_queue_delay"):
            OverloadSpec(brownout_queue_delay=0.0)
        with pytest.raises(ValueError, match="brownout_recover_delay"):
            OverloadSpec(brownout_queue_delay=1.0, brownout_recover_delay=-1.0)
        # Hysteresis: recover must sit strictly below engage.
        with pytest.raises(ValueError, match="hysteresis"):
            OverloadSpec(brownout_queue_delay=1.0, brownout_recover_delay=1.0)

    def test_unknown_keys_rejected_with_alternatives(self):
        with pytest.raises(KeyError, match="unknown overload-spec keys"):
            OverloadSpec.from_dict({"queue_cap": 8})
        with pytest.raises(KeyError, match="valid keys"):
            OverloadSpec.from_dict({"queue_limit": 8, "bogus": 1})

    def test_json_round_trip(self, tmp_path):
        spec = OverloadSpec(
            queue_limit=16,
            shed_policy="deadline-aware",
            admission_rate=50.0,
            admission_burst=25.0,
            breaker_failures=3,
            breaker_cooldown=10.0,
            brownout_queue_delay=2.0,
            brownout_recover_delay=0.5,
            degraded_config="cpu-16",
        )
        path = tmp_path / "overload.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert OverloadSpec.from_json(path) == spec
        assert OverloadSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_frozen_hashable_picklable(self):
        spec = OverloadSpec(queue_limit=8, admission_rate=5.0)
        assert hash(spec) == hash(OverloadSpec(queue_limit=8, admission_rate=5.0))
        assert pickle.loads(pickle.dumps(spec)) == spec
        with pytest.raises(AttributeError):
            spec.queue_limit = 4

    def test_mechanism_queries_and_bucket(self):
        inert = OverloadSpec()
        assert not inert.bounds_queues
        assert not inert.admits
        assert not inert.breaks_circuits
        assert not inert.browns_out
        assert inert.make_bucket() is None
        armed = OverloadSpec(
            queue_limit=8,
            admission_rate=2.0,
            breaker_failures=2,
            brownout_queue_delay=1.0,
        )
        assert armed.bounds_queues and armed.admits
        assert armed.breaks_circuits and armed.browns_out
        bucket = armed.make_bucket()
        assert isinstance(bucket, TokenBucket)
        assert bucket.rate == 2.0 and bucket.burst == armed.admission_burst


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=2.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)

    def test_starts_full_and_refills(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.admit(0.0)
        assert bucket.admit(0.0)
        assert not bucket.admit(0.0)  # burst spent
        assert bucket.admit(1.0)  # one token refilled over 1 s
        assert not bucket.admit(1.0)
        assert not bucket.admit(1.5)  # only half a token back

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        for _ in range(3):
            assert bucket.admit(0.0)
        assert not bucket.admit(0.0)
        # A long idle gap refills to burst, not beyond.
        assert bucket.admit(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        rate=st.floats(min_value=0.01, max_value=100.0),
        burst=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_admission_is_a_pure_function_of_the_timestamps(
        self, times, rate, burst
    ):
        """Property (satellite 3): no hidden state, no randomness — two
        buckets replaying the same monotone timestamp sequence make
        identical decisions, which is exactly why admission commutes with
        sharding (each slice replays the same instants)."""
        sequence = sorted(times)
        first = TokenBucket(rate=rate, burst=burst)
        second = TokenBucket(rate=rate, burst=burst)
        decisions = [first.admit(t) for t in sequence]
        assert decisions == [second.admit(t) for t in sequence]
        # Token count stays within [0, burst] throughout.
        assert 0.0 <= first.tokens <= first.burst
        # The first arrival always finds a full bucket.
        assert decisions[0]


# --------------------------------------------------------- bounded queues
class TestBoundedQueues:
    """A burst deeper than the queue limit forces shedding; the victim
    depends on the policy.  Arrivals land faster than any instance can
    warm, so the queue is the only buffer."""

    N_ARRIVALS = 8
    LIMIT = 3

    def run(self, shed_policy):
        app = linear_pipeline(1, models=("IR",))
        times = [1.0 + 0.05 * k for k in range(self.N_ARRIVALS)]
        trace = Trace(times, duration=60.0)
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app,
            trace,
            FixedConfigPolicy(HardwareConfig.cpu(4)),
            seed=0,
            overload=OverloadSpec(
                queue_limit=self.LIMIT, shed_policy=shed_policy
            ),
            recorder=rec,
        ).run()
        return trace, m, rec

    @pytest.mark.parametrize("shed_policy", SHED_POLICIES)
    def test_shedding_conserves_and_bounds_the_queue(self, shed_policy):
        trace, m, rec = self.run(shed_policy)
        assert m.shed == self.N_ARRIVALS - self.LIMIT
        assert m.peak_queue_depth == self.LIMIT
        assert_conserved_extended(trace, m)
        sheds = [e for e in rec if isinstance(e, InvocationShed)]
        assert len(sheds) == m.shed
        assert all(e.reason == shed_policy for e in sheds)
        assert all(e.function == "f0-IR" for e in sheds)
        assert_overload_reconstructs(m, rec)

    def test_reject_newest_sheds_the_incoming_arrival(self):
        _, m, rec = self.run("reject-newest")
        sheds = [e for e in rec if isinstance(e, InvocationShed)]
        # The victim is the arrival itself: shed at age zero, and the
        # first LIMIT invocations survive to completion.
        assert all(e.age == 0.0 for e in sheds)
        served = {e.invocation_id for e in rec if isinstance(e, Arrival)} - {
            e.invocation_id for e in sheds
        }
        assert served == set(range(self.LIMIT))

    def test_drop_oldest_evicts_the_queue_head(self):
        _, m, rec = self.run("drop-oldest")
        sheds = [e for e in rec if isinstance(e, InvocationShed)]
        # Victims are queued invocations (positive age), oldest first —
        # the newest LIMIT arrivals survive.
        assert all(e.age > 0.0 for e in sheds)
        assert [e.invocation_id for e in sheds] == list(
            range(self.N_ARRIVALS - self.LIMIT)
        )

    def test_deadline_aware_sheds_least_slack_first(self):
        _, m, rec = self.run("deadline-aware")
        sheds = [e for e in rec if isinstance(e, InvocationShed)]
        # With distinct arrival times the earliest arrival has the least
        # remaining SLA slack, so deadline-aware matches drop-oldest here.
        assert [e.invocation_id for e in sheds] == list(
            range(self.N_ARRIVALS - self.LIMIT)
        )


# ------------------------------------------------------ admission control
class TestAdmissionControl:
    def run(self, *, faults=None, times=None, duration=60.0):
        app = linear_pipeline(1, models=("IR",))
        if times is None:
            times = [0.5 + 0.1 * k for k in range(10)]
        trace = Trace(times, duration=duration)
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app,
            trace,
            OnDemandPolicy(),
            seed=0,
            faults=faults,
            overload=OverloadSpec(admission_rate=1.0, admission_burst=2.0),
            recorder=rec,
        ).run()
        return trace, m, rec

    def test_rejections_are_pinned_and_never_enter_the_system(self):
        trace, m, rec = self.run()
        # Bucket: 2 tokens at t=0.5, refill 0.1/arrival — the first two
        # arrivals are admitted, the rest find a fractional token.
        assert m.rejected == 8
        assert m.n_completed + m.unfinished == 2
        assert_conserved_extended(trace, m)
        rejected = [e for e in rec if isinstance(e, InvocationRejected)]
        assert len(rejected) == 8
        # A rejected invocation never enters the system: no Arrival event,
        # no invocation record, disjoint id sets.
        arrival_ids = {e.invocation_id for e in rec if isinstance(e, Arrival)}
        assert len(arrival_ids) == 2
        assert arrival_ids.isdisjoint({e.invocation_id for e in rejected})
        assert_overload_reconstructs(m, rec)

    def test_admission_is_seed_deterministic(self):
        _, m1, rec1 = self.run()
        _, m2, rec2 = self.run()
        assert m1.summary() == m2.summary()
        assert rec1.events == rec2.events


# ------------------------------------------------------- circuit breaker
class TestCircuitBreaker:
    def test_open_probe_reopen_then_close(self):
        """Failures open the breaker; half-open probes fail while the
        fault window lasts (re-opening), then the first clean probe
        closes the circuit and the invocation completes."""
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([1.0], duration=60.0)
        faults = FaultPlan(
            execution_faults=(ExecutionFault(rate=1.0, start=0.0, end=20.0),),
            resilience=ResilienceSpec(
                max_retries=50, retry_backoff=0.1, retry_backoff_max=1.0
            ),
        )
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app,
            trace,
            OnDemandPolicy(),
            seed=0,
            faults=faults,
            overload=OverloadSpec(breaker_failures=2, breaker_cooldown=5.0),
            recorder=rec,
        ).run()
        reasons = [
            e.reason for e in rec if isinstance(e, FallbackActivated)
        ]
        assert set(reasons) == {"circuit-open", "circuit-close"}
        assert reasons[0] == "circuit-open"
        assert reasons[-1] == "circuit-close"
        # The fault window outlives the first cool-down, so at least one
        # half-open probe failed and re-opened the circuit.
        assert reasons.count("circuit-open") >= 2
        assert reasons.count("circuit-close") == 1
        assert m.fallbacks == len(reasons)
        # Once closed, service resumed and the invocation completed.
        assert m.n_completed == 1
        assert m.timed_out == 0 and m.unfinished == 0
        assert_conserved_extended(trace, m)
        assert_overload_reconstructs(m, rec)

    def test_breaker_pauses_dispatch_while_open(self):
        """Between circuit-open and the next probe no batch starts: the
        StageStart timeline has a gap covering the cool-down."""
        from repro.telemetry.events import StageStart

        app = linear_pipeline(1, models=("IR",))
        trace = Trace([1.0], duration=60.0)
        faults = FaultPlan(
            execution_faults=(ExecutionFault(rate=1.0, start=0.0, end=6.0),),
            resilience=ResilienceSpec(max_retries=50, retry_backoff=0.1),
        )
        rec = TraceRecorder()
        ServerlessSimulator(
            app,
            trace,
            OnDemandPolicy(),
            seed=0,
            faults=faults,
            overload=OverloadSpec(breaker_failures=1, breaker_cooldown=10.0),
            recorder=rec,
        ).run()
        opened = [
            e.t
            for e in rec
            if isinstance(e, FallbackActivated) and e.reason == "circuit-open"
        ]
        assert opened
        starts = [e.t for e in rec if isinstance(e, StageStart)]
        in_cooldown = [
            t for t in starts if opened[0] < t < opened[0] + 10.0
        ]
        assert in_cooldown == []


# ------------------------------------------------------------- brownout
class TestBrownout:
    def test_degrades_on_queue_delay_and_restores(self):
        """A cold-start backlog pushes head-of-queue delay past the
        threshold: the function degrades to the spec's tier, then the
        policy's directive is restored once the queue drains."""
        app = linear_pipeline(1, models=("IR",))
        times = [0.1 + 0.01 * k for k in range(40)]
        trace = Trace(times, duration=120.0)
        rec = TraceRecorder()
        sim = ServerlessSimulator(
            app,
            trace,
            FixedConfigPolicy(HardwareConfig.cpu(4), keep_alive=30.0),
            seed=0,
            overload=OverloadSpec(
                brownout_queue_delay=1.0, degraded_config="cpu-16"
            ),
            recorder=rec,
        )
        m = sim.run()
        reasons = [
            e.reason for e in rec if isinstance(e, FallbackActivated)
        ]
        assert reasons == ["brownout", "brownout-restore"]
        events = [e for e in rec if isinstance(e, FallbackActivated)]
        assert events[0].from_config == "cpu-4"
        assert events[0].to_config == "cpu-16"
        assert events[1].from_config == "cpu-16"
        assert events[1].to_config == "cpu-4"
        # The directive swap is part of the decision audit.
        from repro.telemetry import decision_audit

        brownout_changes = [
            d for d in decision_audit(rec.events) if "brownout" in d.reason
        ]
        assert len(brownout_changes) == 2
        # Ownership returned to the policy: the standing directive at run
        # end is the policy's own configuration.
        assert sim.gateway.directives["f0-IR"].config == HardwareConfig.cpu(4)
        assert sim.gateway._brownout_saved == {}
        assert m.n_completed == len(trace)
        assert_conserved_extended(trace, m)
        assert_overload_reconstructs(m, rec)


# -------------------------------------------- flash crowds / retry storms
class TestFlashCrowd:
    def test_injection_counts_and_conserves(self):
        app = linear_pipeline(1, models=("IR",))
        trace = constant_rate_process(5.0, 40.0, offset=5.0)
        faults = FaultPlan(
            flash_crowds=(FlashCrowd(rate=2.0, start=10.0, end=12.0),)
        )
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app,
            trace,
            FixedConfigPolicy(HardwareConfig.cpu(4)),
            seed=0,
            faults=faults,
            recorder=rec,
        ).run()
        # rate * (end - start) = 4 extra arrivals, all through the
        # ordinary front door.
        assert m.injected_arrivals == 4
        arrivals = [e for e in rec if isinstance(e, Arrival)]
        assert len(arrivals) == len(trace) + 4
        assert {e.t for e in arrivals} >= {10.0, 10.5, 11.0, 11.5}
        assert_conserved_extended(trace, m)


class TestRetryStorm:
    def test_rejected_arrivals_resubmit_up_to_generation_cap(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([1.0, 1.01, 1.02], duration=30.0)
        faults = FaultPlan(retry_storms=(RetryStorm(resubmits=2, delay=1.0),))
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app,
            trace,
            OnDemandPolicy(),
            seed=0,
            faults=faults,
            overload=OverloadSpec(admission_rate=0.01, admission_burst=1.0),
            recorder=rec,
        ).run()
        # One token at t=1.0: the first arrival is admitted.  The other
        # two are rejected and resubmit twice each (the generation cap),
        # every resubmission rejected again by the starved bucket.
        assert m.n_completed + m.unfinished == 1
        assert m.injected_arrivals == 4
        assert m.rejected == 6
        assert_conserved_extended(trace, m)
        # Resubmissions arrive exactly delay seconds after each rejection.
        rejected_t = sorted(
            e.t for e in rec if isinstance(e, InvocationRejected)
        )
        assert rejected_t == [1.01, 1.02, 2.01, 2.02, 3.01, 3.02]

    def test_storm_outside_window_is_inert(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([1.0, 1.01], duration=30.0)
        faults = FaultPlan(
            retry_storms=(RetryStorm(resubmits=5, delay=1.0, start=20.0),)
        )
        m = ServerlessSimulator(
            app,
            trace,
            OnDemandPolicy(),
            seed=0,
            faults=faults,
            overload=OverloadSpec(admission_rate=0.01, admission_burst=1.0),
        ).run()
        # The rejection happens before the storm window opens: no echo.
        assert m.injected_arrivals == 0
        assert m.rejected == 1


# ------------------------------------------------------------- zero cost
class TestZeroCost:
    def test_inert_spec_changes_nothing(self):
        """A spec with every mechanism disabled produces the identical
        event stream and summary as no spec at all."""
        env = build_environment(
            "image-query", preset="steady", sla=2.0, duration=60.0, seed=0
        )

        def run(overload):
            rec = TraceRecorder()
            m = ServerlessSimulator(
                env.app,
                env.trace,
                env.make_policy("smiless"),
                seed=3,
                overload=overload,
                recorder=rec,
            ).run()
            return m, rec

        base_m, base_rec = run(None)
        inert_m, inert_rec = run(OverloadSpec())
        assert base_rec.events == inert_rec.events
        assert base_m.summary() == inert_m.summary()
        assert inert_m.shed == 0 and inert_m.rejected == 0


# ------------------------------------------------------------ leak tests
class TestNoLeaksAtRunEnd:
    """Satellite: deadline timers and demand charges must not survive the
    run, however invocations leave the system — completed, timed out,
    shed at the front door or rejected before entry."""

    @pytest.mark.parametrize("shed_policy", SHED_POLICIES)
    @pytest.mark.parametrize("policy", ["on-demand", "smiless"])
    def test_chaos_overload_grid_leaves_no_residue(self, policy, shed_policy):
        env = build_environment(
            "image-query", preset="steady", sla=2.0, duration=60.0,
            train_duration=400.0, seed=0,
        )
        faults = FaultPlan(
            execution_faults=(ExecutionFault(rate=0.2),),
            flash_crowds=(FlashCrowd(rate=10.0, start=20.0, end=24.0),),
            resilience=ResilienceSpec(
                max_retries=4, retry_backoff=0.2, deadline_factor=2.0
            ),
        )
        overload = OverloadSpec(
            queue_limit=8,
            shed_policy=shed_policy,
            admission_rate=5.0,
            admission_burst=5.0,
        )
        sim = ServerlessSimulator(
            env.app,
            env.trace,
            env.make_policy(policy),
            seed=3,
            faults=faults,
            overload=overload,
        )
        m = sim.run()
        # The overload machinery actually engaged.
        assert m.shed + m.rejected > 0
        assert m.timed_out > 0
        assert_conserved_extended(env.trace, m)
        # No leaked deadline timers, no stranded demand charges, and the
        # cluster ends empty.
        gw = sim.gateway
        assert gw._deadline_timers == {}
        assert all(v == 0 for v in gw.pending_stage_demand.values()), (
            gw.pending_stage_demand
        )
        assert sim.cluster.cores_used() == 0
        assert sim.cluster.gpu_slots_used() == 0


# --------------------------------------------------- report reconstruction
class TestReportFromTrace:
    def overload_run(self, tmp_path):
        env = build_environment(
            "image-query", preset="steady", sla=2.0, duration=60.0, seed=0
        )
        faults = FaultPlan(
            flash_crowds=(FlashCrowd(rate=20.0, start=20.0, end=25.0),)
        )
        overload = OverloadSpec(
            queue_limit=8,
            shed_policy="deadline-aware",
            admission_rate=10.0,
            admission_burst=10.0,
        )
        rec = TraceRecorder()
        m = ServerlessSimulator(
            env.app,
            env.trace,
            env.make_policy("on-demand"),
            seed=3,
            faults=faults,
            overload=overload,
            recorder=rec,
        ).run()
        path = tmp_path / "overload.jsonl"
        rec.write_jsonl(path)
        return m, rec, path

    def test_report_renders_overload_section_from_events_alone(
        self, tmp_path
    ):
        from repro.simulator.reporting import format_report

        live, rec, path = self.overload_run(tmp_path)
        assert live.shed > 0 and live.rejected > 0
        rebuilt = assert_overload_reconstructs(live, rec)
        live_report = format_report(live)
        rebuilt_report = format_report(rebuilt)
        expected = (
            f"overload absorbed: {live.shed} shed from bounded queues, "
            f"{live.rejected} rejected at admission"
        )
        assert expected in live_report
        assert expected in rebuilt_report

    def test_cli_report_from_trace(self, tmp_path, capsys):
        from repro.cli import main

        live, _, path = self.overload_run(tmp_path)
        assert main(["report", "image-query", "--from-trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "overload absorbed:" in out
        assert f"{live.shed} shed from bounded queues" in out
        assert f"{live.rejected} rejected at admission" in out

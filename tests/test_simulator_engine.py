"""Integration tests for the serverless simulator engine.

The two reference policies bracket the design space and make engine
behaviour easy to assert: always-on never cold-starts after warm-up but
bills idle time continuously; on-demand bills almost no idle time but puts
every initialization on the critical path.
"""

import math

import numpy as np
import pytest

from repro.dag import image_query, linear_pipeline
from repro.hardware import Backend, HardwareConfig
from repro.policies import AlwaysOnPolicy, OnDemandPolicy
from repro.policies.base import Policy
from repro.simulator import Cluster, FunctionDirective, ServerlessSimulator
from repro.workload import Trace, constant_rate_process


def run(app, trace, policy, **kw):
    return ServerlessSimulator(app, trace, policy, seed=0, **kw).run()


class TestBasicExecution:
    def test_all_invocations_complete(self):
        app = linear_pipeline(3, models=("IR", "DB", "QA"))
        trace = constant_rate_process(20.0, 100.0, offset=5.0)
        m = run(app, trace, AlwaysOnPolicy())
        assert len(m.invocations) == len(trace)
        assert m.unfinished == 0
        assert all(inv.finished for inv in m.invocations)

    def test_every_stage_executes_once_per_invocation(self):
        app = image_query()
        trace = constant_rate_process(30.0, 90.0, offset=5.0)
        m = run(app, trace, AlwaysOnPolicy())
        assert m.stage_executions == len(trace) * len(app)
        for inv in m.invocations:
            assert set(inv.stages) == set(app.function_names)

    def test_dag_ordering_respected(self):
        app = image_query()
        trace = constant_rate_process(30.0, 60.0, offset=5.0)
        m = run(app, trace, AlwaysOnPolicy())
        for inv in m.invocations:
            for fn in app.function_names:
                for pred in app.predecessors(fn):
                    assert (
                        inv.stages[pred].finished_at
                        <= inv.stages[fn].started_at + 1e-9
                    )

    def test_latency_accounts_arrival_to_completion(self):
        app = linear_pipeline(2, models=("IR", "DB"))
        trace = Trace([10.0], duration=20.0)
        m = run(app, trace, AlwaysOnPolicy())
        inv = m.invocations[0]
        assert inv.latency == pytest.approx(inv.completed_at - 10.0)

    def test_deterministic_given_seed(self):
        app = image_query()
        trace = constant_rate_process(15.0, 120.0, offset=3.0)
        a = run(app, trace, AlwaysOnPolicy())
        b = run(app, trace, AlwaysOnPolicy())
        np.testing.assert_allclose(a.latencies(), b.latencies())
        assert a.total_cost() == pytest.approx(b.total_cost())


class TestColdVsWarm:
    def test_on_demand_every_stage_cold(self):
        app = linear_pipeline(2, models=("IR", "DB"))
        trace = constant_rate_process(30.0, 90.0, offset=5.0)
        m = run(app, trace, OnDemandPolicy())
        assert m.reinit_fraction() == pytest.approx(1.0)
        # latency includes both init times
        assert m.latencies().min() > 3.0

    def test_always_on_warm_after_first(self):
        app = linear_pipeline(2, models=("IR", "DB"))
        trace = constant_rate_process(30.0, 90.0, offset=10.0)
        m = run(app, trace, AlwaysOnPolicy())
        assert m.reinit_fraction() == 0.0

    def test_on_demand_cheaper_but_slower_than_always_on(self):
        """The core trade-off cold-start management navigates."""
        app = linear_pipeline(2, models=("IR", "DB"))
        trace = constant_rate_process(60.0, 600.0, offset=10.0)
        on_demand = run(app, trace, OnDemandPolicy())
        always_on = run(app, trace, AlwaysOnPolicy())
        assert on_demand.total_cost() < always_on.total_cost()
        assert on_demand.latencies().mean() > always_on.latencies().mean()


class TestKeepAlive:
    class FixedKeepAlive(Policy):
        name = "fixed-ka"

        def __init__(self, keep_alive):
            self.keep_alive = keep_alive

        def on_register(self, app, ctx):
            for fn in app.function_names:
                ctx.set_directive(
                    fn,
                    FunctionDirective(
                        config=HardwareConfig.cpu(4),
                        keep_alive=self.keep_alive,
                        warm_grace=0.0,
                    ),
                )

    def test_keep_alive_spans_gap(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([10.0, 20.0], duration=40.0)
        m = run(app, trace, self.FixedKeepAlive(keep_alive=15.0))
        # second invocation reuses the instance: only one initialization
        assert m.initializations == 1

    def test_short_keep_alive_reinitializes(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([10.0, 20.0], duration=40.0)
        m = run(app, trace, self.FixedKeepAlive(keep_alive=2.0))
        assert m.initializations == 2

    def test_keep_alive_idle_is_billed(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([10.0, 20.0], duration=40.0)
        kept = run(app, trace, self.FixedKeepAlive(keep_alive=15.0))
        assert kept.cost_breakdown()["keepalive"] > 0


class TestPrewarming:
    class PrewarmOnce(Policy):
        """Warm one instance so it is ready exactly at a known arrival."""

        name = "prewarm-once"

        def __init__(self, ready_at, init_guess):
            self.ready_at = ready_at
            self.init_guess = init_guess

        def on_register(self, app, ctx):
            for fn in app.function_names:
                ctx.set_directive(
                    fn,
                    FunctionDirective(
                        config=HardwareConfig.cpu(4),
                        keep_alive=0.0,
                        warm_grace=10.0,
                    ),
                )
                ctx.schedule_warmup(
                    fn, self.ready_at - self.init_guess, HardwareConfig.cpu(4)
                )

    def test_prewarmed_stage_is_warm(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([30.0], duration=40.0)
        policy = self.PrewarmOnce(ready_at=30.0, init_guess=3.0)
        m = ServerlessSimulator(app, trace, policy, seed=0, noisy=False).run()
        inv = m.invocations[0]
        assert not inv.stages["f0-IR"].cold_start
        assert inv.latency < 1.0

    def test_warmup_dedup_absorbs_duplicates(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([30.0], duration=40.0)

        class DoubleWarm(self.PrewarmOnce):
            def on_register(inner, app, ctx):
                super().on_register(app, ctx)
                # a second identical request must not launch a second pod
                ctx.schedule_warmup(
                    "f0-IR", 27.5, HardwareConfig.cpu(4)
                )

        m = ServerlessSimulator(
            app, trace, DoubleWarm(30.0, 3.0), seed=0, noisy=False
        ).run()
        assert m.initializations == 1


class TestBatching:
    class BatchPolicy(Policy):
        name = "batcher"

        def __init__(self, batch):
            self.batch = batch

        def on_register(self, app, ctx):
            for fn in app.function_names:
                ctx.set_directive(
                    fn,
                    FunctionDirective(
                        config=HardwareConfig.gpu(0.5),
                        keep_alive=math.inf,
                        batch=self.batch,
                        min_warm=1,
                    ),
                )
                ctx.schedule_warmup(fn, 0.0)

    def test_simultaneous_arrivals_batched(self):
        """Work-conserving batching: the first arrival dispatches on the
        idle instance immediately; the stragglers coalesce into one batch."""
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([30.0, 30.0, 30.0], duration=60.0)
        m = run(app, trace, self.BatchPolicy(batch=4))
        batches = sorted(inv.stages["f0-IR"].batch for inv in m.invocations)
        assert batches == [1, 2, 2]
        assert m.stage_executions == 3
        assert sum(u.batches_served for u in m.instances) == 2

    def test_batch_limit_respected(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([30.0] * 5, duration=60.0)
        m = run(app, trace, self.BatchPolicy(batch=2))
        assert max(inv.stages["f0-IR"].batch for inv in m.invocations) <= 2


class TestCapacityPressure:
    def test_queueing_when_cluster_full(self):
        """A tiny cluster forces pending launches instead of crashes."""
        app = linear_pipeline(1, models=("IR",))
        cluster = Cluster.build(n_machines=1, cores_per_machine=16)
        trace = Trace(list(np.linspace(10, 11, 8)), duration=60.0)
        m = ServerlessSimulator(
            app, trace, OnDemandPolicy(config=HardwareConfig.cpu(16)),
            cluster=cluster, seed=0,
        ).run()
        assert len(m.invocations) + m.unfinished == 8
        # never more than one concurrent 16-core instance on 16 cores
        assert max(p[1] for p in m.pod_samples) <= 1


class TestMetricsPlumbing:
    def test_pod_samples_track_backends(self):
        app = linear_pipeline(1, models=("IR",))
        trace = constant_rate_process(10.0, 60.0, offset=5.0)
        m = run(app, trace, AlwaysOnPolicy(config=HardwareConfig.gpu(0.2)))
        pods = m.pods_over_time()
        assert pods.shape[1] == 3
        assert pods[:, 2].max() >= 1  # gpu pods
        assert pods[:, 1].max() == 0  # no cpu pods

    def test_backend_cost_split(self):
        app = linear_pipeline(1, models=("IR",))
        trace = constant_rate_process(10.0, 60.0, offset=5.0)
        m = run(app, trace, AlwaysOnPolicy(config=HardwareConfig.gpu(0.2)))
        assert m.backend_cost(Backend.GPU) > 0
        assert m.backend_cost(Backend.CPU) == 0
        assert m.cpu_gpu_cost_ratio() == 0.0

    def test_arrival_samples_sum_to_trace(self):
        app = linear_pipeline(1, models=("IR",))
        trace = constant_rate_process(7.0, 100.0, offset=1.0)
        m = run(app, trace, AlwaysOnPolicy())
        arrivals = m.arrivals_over_time()
        assert arrivals[:, 1].sum() == len(trace)

    def test_violation_ratio_with_sla(self):
        app = linear_pipeline(2, models=("TRS", "TG")).with_sla(0.1)
        trace = constant_rate_process(30.0, 60.0, offset=5.0)
        m = run(app, trace, AlwaysOnPolicy())
        assert m.violation_ratio() == 1.0

    def test_policy_must_set_all_directives(self):
        class Lazy(Policy):
            name = "lazy"

            def on_register(self, app, ctx):
                pass

        app = linear_pipeline(1, models=("IR",))
        with pytest.raises(RuntimeError, match="directive"):
            ServerlessSimulator(
                app, Trace([1.0], duration=5.0), Lazy(), seed=0
            ).run()

"""Tests for the cluster capacity model and the container lifecycle."""

import pytest

from repro.hardware import HardwareConfig
from repro.simulator import Cluster, Instance, InstanceState, Machine, Placement


class TestMachine:
    def test_cpu_allocation(self):
        m = Machine(0, cores_total=8, gpu_slots_total=10)
        cfg = HardwareConfig.cpu(4)
        assert m.can_fit(cfg)
        m.allocate(cfg)
        assert m.cores_used == 4
        assert m.can_fit(cfg)
        m.allocate(cfg)
        assert not m.can_fit(cfg)

    def test_gpu_allocation_in_mps_slots(self):
        m = Machine(0, cores_total=8, gpu_slots_total=10)
        m.allocate(HardwareConfig.gpu(0.7))
        assert m.gpu_slots_used == 7
        assert m.can_fit(HardwareConfig.gpu(0.3))
        assert not m.can_fit(HardwareConfig.gpu(0.4))

    def test_release_restores_capacity(self):
        m = Machine(0, cores_total=8)
        cfg = HardwareConfig.cpu(8)
        m.allocate(cfg)
        m.release(cfg)
        assert m.cores_used == 0
        assert m.can_fit(cfg)

    def test_overallocation_raises(self):
        m = Machine(0, cores_total=2)
        with pytest.raises(RuntimeError):
            m.allocate(HardwareConfig.cpu(4))

    def test_release_underflow_raises(self):
        m = Machine(0)
        with pytest.raises(RuntimeError):
            m.release(HardwareConfig.cpu(4))


class TestCluster:
    def test_paper_default_dimensions(self):
        c = Cluster.build()
        assert len(c.machines) == 8
        assert c.cores_total() == 8 * 104
        assert c.gpu_slots_total() == 8 * 10

    def test_first_fit_spills_to_next_machine(self):
        c = Cluster.build(n_machines=2, cores_per_machine=16)
        placements = [c.try_allocate(HardwareConfig.cpu(16)) for _ in range(2)]
        assert placements[0].machine == 0
        assert placements[1].machine == 1
        assert c.try_allocate(HardwareConfig.cpu(16)) is None

    def test_release(self):
        c = Cluster.build(n_machines=1, cores_per_machine=4)
        p = c.try_allocate(HardwareConfig.cpu(4))
        assert c.try_allocate(HardwareConfig.cpu(1)) is None
        c.release(p)
        assert c.cores_used() == 0
        assert c.try_allocate(HardwareConfig.cpu(4)) is not None

    def test_gpu_capacity_independent_of_cpu(self):
        c = Cluster.build(n_machines=1, cores_per_machine=4, gpu_slots_per_machine=10)
        assert c.try_allocate(HardwareConfig.cpu(4)) is not None
        assert c.try_allocate(HardwareConfig.gpu(1.0)) is not None
        assert c.gpu_slots_used() == 10
        assert c.cores_used() == 4


class TestInstanceLifecycle:
    def make(self, config=None, launched=10.0, init=2.0):
        cfg = config or HardwareConfig.cpu(4)
        return Instance(
            function="f",
            config=cfg,
            placement=Placement(machine=0, config=cfg),
            launched_at=launched,
            init_duration=init,
        )

    def test_initial_state(self):
        inst = self.make()
        assert inst.state is InstanceState.INITIALIZING
        assert inst.warm_at == 12.0
        assert inst.is_live

    def test_full_lifecycle(self):
        inst = self.make()
        inst.mark_warm(12.0)
        assert inst.state is InstanceState.IDLE
        inst.mark_busy(13.0, batch=2)
        assert inst.state is InstanceState.BUSY
        inst.mark_idle(14.0, busy_time=1.0)
        assert inst.state is InstanceState.IDLE
        inst.mark_terminated(20.0)
        assert not inst.is_live
        assert inst.invocations_served == 2
        assert inst.batches_served == 1

    def test_invalid_transitions(self):
        inst = self.make()
        with pytest.raises(RuntimeError):
            inst.mark_busy(11.0, 1)  # still initializing
        inst.mark_warm(12.0)
        with pytest.raises(RuntimeError):
            inst.mark_warm(13.0)  # warmed twice
        with pytest.raises(RuntimeError):
            inst.mark_idle(13.0, 1.0)  # not busy
        inst.mark_terminated(14.0)
        with pytest.raises(RuntimeError):
            inst.mark_terminated(15.0)

    def test_expiry_epoch_bumped_on_idle(self):
        inst = self.make()
        inst.mark_warm(12.0)
        epoch0 = inst.expiry_epoch
        inst.mark_busy(13.0, 1)
        inst.mark_idle(14.0, 1.0)
        assert inst.expiry_epoch == epoch0 + 1


class TestInstanceBilling:
    def make(self):
        cfg = HardwareConfig.cpu(1)
        return Instance(
            function="f",
            config=cfg,
            placement=Placement(0, cfg),
            launched_at=0.0,
            init_duration=2.0,
        )

    def test_cost_is_lifetime_times_unit_cost(self):
        inst = self.make()
        inst.mark_terminated(100.0)
        assert inst.cost() == pytest.approx(100.0 * HardwareConfig.cpu(1).unit_cost)

    def test_live_instance_requires_now(self):
        inst = self.make()
        with pytest.raises(ValueError):
            inst.lifetime()
        assert inst.lifetime(now=5.0) == 5.0

    def test_time_split(self):
        inst = self.make()
        inst.mark_warm(2.0)
        inst.mark_busy(5.0, 1)
        inst.mark_idle(8.0, 3.0)
        inst.mark_terminated(10.0)
        assert inst.init_seconds() == pytest.approx(2.0)
        assert inst.busy_seconds == pytest.approx(3.0)
        assert inst.idle_seconds() == pytest.approx(5.0)
        assert (
            inst.init_seconds() + inst.busy_seconds + inst.idle_seconds()
        ) == pytest.approx(inst.lifetime())

    def test_init_seconds_capped_by_lifetime(self):
        inst = self.make()
        inst.mark_terminated(1.0)  # killed mid-initialization
        assert inst.init_seconds() == pytest.approx(1.0)
        assert inst.idle_seconds() == pytest.approx(0.0)

"""Tests for adaptive cold-start management (Eq. 3/5, §V-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ColdStartPolicy,
    FunctionPlan,
    cost_per_invocation,
    evaluate_assignment,
    policy_for,
    prewarm_window,
)
from repro.dag import image_query
from repro.hardware import HardwareConfig
from repro.profiler import oracle_profile


class TestPolicySelection:
    def test_prewarm_when_cycle_fits(self):
        # T + I < IT -> Case I
        assert policy_for(2.0, 1.0, 4.0) is ColdStartPolicy.PREWARM

    def test_keepalive_when_cycle_does_not_fit(self):
        # T + I >= IT -> Case II
        assert policy_for(2.0, 2.0, 4.0) is ColdStartPolicy.KEEP_ALIVE
        assert policy_for(3.0, 2.0, 4.0) is ColdStartPolicy.KEEP_ALIVE

    def test_validation(self):
        with pytest.raises(ValueError):
            policy_for(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            policy_for(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            policy_for(1.0, 1.0, 0.0)


class TestPrewarmWindow:
    def test_window_size_case1(self):
        # Fig. 5a: window = IT - T - I
        assert prewarm_window(2.0, 1.0, 5.0) == pytest.approx(2.0)

    def test_window_zero_case2(self):
        # Fig. 5b: no idle window under keep-alive
        assert prewarm_window(3.0, 2.0, 4.0) == 0.0

    @given(
        t=st.floats(0.1, 10.0),
        i=st.floats(0.1, 10.0),
        it=st.floats(0.2, 50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_window_nonnegative_and_consistent(self, t, i, it):
        w = prewarm_window(t, i, it)
        assert w >= 0.0
        if w > 0:
            assert policy_for(t, i, it) is ColdStartPolicy.PREWARM
            assert w == pytest.approx(it - t - i)


class TestCost:
    def test_prewarm_cost_is_cycle_cost(self):
        # Eq. (5): C = (T + I) * U
        assert cost_per_invocation(2.0, 1.0, 10.0, 0.01) == pytest.approx(0.03)

    def test_keepalive_cost_is_it_cost(self):
        # Case II second strategy: C = IT * U
        assert cost_per_invocation(5.0, 2.0, 4.0, 0.01) == pytest.approx(0.04)

    def test_keepalive_cheaper_than_recreate(self):
        """Theorem rationale: keep-alive beats terminate-and-recreate."""
        t, i, it, u = 5.0, 2.0, 4.0, 0.01
        keepalive = cost_per_invocation(t, i, it, u)
        recreate = (t + i) * u
        assert keepalive < recreate

    @given(
        t=st.floats(0.1, 10.0),
        i=st.floats(0.1, 10.0),
        it=st.floats(0.2, 50.0),
        u=st.floats(1e-6, 1e-3),
    )
    @settings(max_examples=100, deadline=None)
    def test_adaptive_cost_is_min_envelope(self, t, i, it, u):
        """The adaptive policy never costs more than either pure strategy."""
        c = cost_per_invocation(t, i, it, u)
        assert c <= (t + i) * u + 1e-15  # never worse than recreate
        if t + i < it:  # pre-warm regime: also never worse than keep-alive
            assert c <= it * u + 1e-15


class TestFunctionPlan:
    @pytest.fixture
    def profile(self):
        return oracle_profile(image_query().spec("TG").profile, n_sigma=1.0)

    def test_build_prewarm_regime(self, profile):
        cfg = HardwareConfig.cpu(8)
        plan = FunctionPlan.build("TG", cfg, profile, inter_arrival=60.0)
        assert plan.policy is ColdStartPolicy.PREWARM
        assert plan.prewarm_window == pytest.approx(
            60.0 - plan.init_time - plan.inference_time
        )
        assert plan.cost == pytest.approx(
            (plan.init_time + plan.inference_time) * cfg.unit_cost
        )

    def test_build_keepalive_regime(self, profile):
        cfg = HardwareConfig.gpu(0.3)
        plan = FunctionPlan.build("TG", cfg, profile, inter_arrival=2.0)
        assert plan.policy is ColdStartPolicy.KEEP_ALIVE
        assert plan.cost == pytest.approx(2.0 * cfg.unit_cost)

    def test_batch_increases_inference(self, profile):
        cfg = HardwareConfig.cpu(8)
        p1 = FunctionPlan.build("TG", cfg, profile, 60.0, batch=1)
        p4 = FunctionPlan.build("TG", cfg, profile, 60.0, batch=4)
        assert p4.inference_time > p1.inference_time


class TestEvaluateAssignment:
    @pytest.fixture
    def setup(self):
        app = image_query()
        profiles = {
            s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs
        }
        return app, profiles

    def test_latency_is_critical_path_of_inference(self, setup):
        app, profiles = setup
        assignment = {f: HardwareConfig.gpu(1.0) for f in app.function_names}
        ev = evaluate_assignment(app, assignment, profiles, 10.0)
        expect = app.critical_path_latency(
            {f: profiles[f].inference_time(HardwareConfig.gpu(1.0)) for f in app}
        )
        assert ev.latency == pytest.approx(expect)

    def test_cost_is_sum_of_function_costs(self, setup):
        app, profiles = setup
        assignment = {f: HardwareConfig.cpu(4) for f in app.function_names}
        ev = evaluate_assignment(app, assignment, profiles, 10.0)
        assert ev.cost == pytest.approx(sum(p.cost for p in ev.plans.values()))

    def test_feasibility_flag(self, setup):
        app, profiles = setup
        slow = {f: HardwareConfig.cpu(1) for f in app.function_names}
        ev = evaluate_assignment(app, slow, profiles, 10.0)
        assert ev.latency > app.sla
        assert not ev.feasible

    def test_missing_function_raises(self, setup):
        app, profiles = setup
        with pytest.raises(ValueError, match="missing"):
            evaluate_assignment(app, {"IR": HardwareConfig.cpu(1)}, profiles, 10.0)

    def test_larger_it_never_cheaper_per_invocation(self, setup):
        """Per-invocation adaptive cost is nondecreasing in IT."""
        app, profiles = setup
        assignment = {f: HardwareConfig.cpu(4) for f in app.function_names}
        costs = [
            evaluate_assignment(app, assignment, profiles, it).cost
            for it in (0.5, 1.0, 2.0, 5.0, 20.0, 100.0)
        ]
        assert all(a <= b + 1e-15 for a, b in zip(costs, costs[1:]))

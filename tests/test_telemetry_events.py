"""Unit tests for the telemetry plane: events, recorders, exports, audits."""

import json
import math
from dataclasses import fields

import pytest

from repro.telemetry import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    NullRecorder,
    Recorder,
    TraceRecorder,
    decision_audit,
    format_decision_audit,
    from_dict,
    prewarm_audit,
    read_jsonl,
    to_chrome_trace,
    to_dict,
    validate_event,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.events import (
    CLUSTER_SCOPE,
    Arrival,
    DirectiveChanged,
    ExecutionFailed,
    FallbackActivated,
    InstanceExpired,
    InstanceLaunched,
    InvocationTimedOut,
    MachineDown,
    MachineUp,
    PrewarmScheduled,
    RunStarted,
    SimEvent,
    SlaViolation,
    StageFinish,
    StageRetried,
    StageStart,
    WindowTick,
)

#: One concrete instance of every registered event type, for round-trips.
SAMPLES = {
    "run_started": RunStarted(
        t=0.0, app="a", policy="p", sla=2.0, window=1.0, functions=("f", "g")
    ),
    "run_finished": EVENT_TYPES["run_finished"](
        t=9.0, app="a", duration=9.0, unfinished=1
    ),
    "arrival": Arrival(t=1.0, app="a", invocation_id=7),
    "stage_ready": EVENT_TYPES["stage_ready"](
        t=1.0, app="a", invocation_id=7, function="f"
    ),
    "stage_start": StageStart(
        t=1.5, app="a", invocation_id=7, function="f", instance_id=3,
        batch=2, cold=True,
    ),
    "stage_finish": StageFinish(
        t=2.5, app="a", invocation_id=7, function="f", instance_id=3
    ),
    "cold_start": EVENT_TYPES["cold_start"](
        t=1.5, app="a", invocation_id=7, function="f", instance_id=3, wait=0.5
    ),
    "invocation_finished": EVENT_TYPES["invocation_finished"](
        t=3.0, app="a", invocation_id=7, latency=2.0
    ),
    "sla_violation": SlaViolation(
        t=3.0, app="a", invocation_id=7, latency=2.5, sla=2.0
    ),
    "instance_launched": InstanceLaunched(
        t=0.5, app="a", function="f", instance_id=3, config="cpu-4",
        init_duration=1.5, prewarm=False,
    ),
    "instance_init_failed": EVENT_TYPES["instance_init_failed"](
        t=2.0, app="a", function="f", instance_id=4
    ),
    "instance_expired": InstanceExpired(
        t=8.0, app="a", function="f", instance_id=3, config="cpu-4",
        reason="keep-alive-expired", lifetime=7.5, init_seconds=1.5,
        busy_seconds=2.0, idle_seconds=4.0, cost=0.01, batches_served=2,
        invocations_served=3,
    ),
    "directive_changed": DirectiveChanged(
        t=0.0, app="a", function="f", config="gpu-30", keep_alive=math.inf,
        batch=4, min_warm=1, warm_grace=6.0, reason="unit test",
    ),
    "prewarm_scheduled": PrewarmScheduled(
        t=4.0, app="a", function="f", fire_at=6.0, count=1, config="cpu-4"
    ),
    "prewarm_hit": EVENT_TYPES["prewarm_hit"](
        t=6.5, app="a", function="f", instance_id=5, idle_wait=0.3
    ),
    "prewarm_miss": EVENT_TYPES["prewarm_miss"](
        t=9.0, app="a", function="f", instance_id=6, idle_seconds=2.0
    ),
    "window_tick": WindowTick(
        t=1.0, app="a", window_index=0, arrivals=3, cpu_pods=2, gpu_pods=1
    ),
    "machine_down": MachineDown(t=5.0, app=CLUSTER_SCOPE, machine=2),
    "machine_up": MachineUp(t=7.0, app=CLUSTER_SCOPE, machine=2),
    "execution_failed": ExecutionFailed(
        t=5.1, app="a", function="f", instance_id=3, batch=2
    ),
    "stage_retried": StageRetried(
        t=5.1, app="a", invocation_id=7, function="f", attempt=1, delay=0.5
    ),
    "invocation_timed_out": InvocationTimedOut(
        t=6.0, app="a", invocation_id=7, reason="deadline", age=5.0
    ),
    "fallback_activated": FallbackActivated(
        t=6.5, app="a", function="f", from_config="gpu-30",
        to_config="cpu-16", reason="gpu-starvation",
    ),
    "instance_swapped_in": EVENT_TYPES["instance_swapped_in"](
        t=4.2, app="a", function="f", instance_id=8, config="gpu-30",
        swap_duration=1.2,
    ),
    "model_evicted": EVENT_TYPES["model_evicted"](t=4.2, app="a", function="g"),
    "invocation_shed": EVENT_TYPES["invocation_shed"](
        t=6.2, app="a", invocation_id=7, function="f",
        reason="deadline-aware", age=1.5,
    ),
    "invocation_rejected": EVENT_TYPES["invocation_rejected"](
        t=6.3, app="a", invocation_id=8
    ),
    "token_stage": EVENT_TYPES["token_stage"](
        t=1.5, app="a", invocation_id=7, function="f", tokens_in=256,
        tokens_out=128, prefill=0.4, decode=1.1,
    ),
}


def test_registry_covers_every_sample_and_vice_versa():
    assert set(SAMPLES) == set(EVENT_TYPES) == set(EVENT_SCHEMA)


@pytest.mark.parametrize("tag", sorted(SAMPLES))
def test_round_trip_through_json(tag):
    event = SAMPLES[tag]
    d = to_dict(event)
    assert d["type"] == tag
    assert validate_event(d) == []
    # inf survives python json (non-strict); strict output is chrome's job
    revived = from_dict(json.loads(json.dumps(d)))
    assert revived == event
    assert type(revived) is type(event)


def test_duplicate_type_tag_rejected():
    with pytest.raises(TypeError, match="duplicate"):

        class Dup(SimEvent):  # noqa: F811 - intentionally clashing
            type = "arrival"

    with pytest.raises(TypeError, match="type"):

        class Untagged(SimEvent):
            pass


def test_validate_event_catches_problems():
    assert validate_event({"type": "nope"}) == ["unknown event type 'nope'"]
    good = to_dict(SAMPLES["arrival"])
    missing = dict(good)
    del missing["invocation_id"]
    assert any("missing" in p for p in validate_event(missing))
    extra = dict(good, bogus=1)
    assert any("unexpected" in p for p in validate_event(extra))
    wrong = dict(good, invocation_id="seven")
    assert any("invocation_id" in p for p in validate_event(wrong))
    # bool must not satisfy an int field
    boolish = dict(good, invocation_id=True)
    assert any("bool not allowed" in p for p in validate_event(boolish))


def test_every_field_has_a_schema_entry():
    for tag, cls in EVENT_TYPES.items():
        assert set(EVENT_SCHEMA[tag]) == {f.name for f in fields(cls)}


# ------------------------------------------------------------------ recorders
def test_null_recorder_is_disabled_protocol_member():
    rec = NullRecorder()
    assert isinstance(rec, Recorder)
    assert rec.enabled is False
    rec.emit(SAMPLES["arrival"])  # no-op, no storage


def test_trace_recorder_collects_and_filters():
    rec = TraceRecorder()
    assert isinstance(rec, Recorder)
    assert rec.enabled is True
    rec.emit(SAMPLES["arrival"])
    rec.emit(Arrival(t=2.0, app="b", invocation_id=0))
    assert len(rec) == 2
    assert list(rec) == rec.events
    assert rec.apps == ("a", "b")
    assert [e.app for e in rec.events_for("b")] == ["b"]


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    events = [SAMPLES[tag] for tag in sorted(SAMPLES)]
    assert write_jsonl(events, path) == len(events)
    assert read_jsonl(path) == events


def test_read_jsonl_reports_bad_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type":"arrival","t":0.0,"app":"a","invocation_id":1}\nnot json\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        read_jsonl(path)


# ------------------------------------------------------------------ chrome
def test_chrome_trace_structure_and_strict_json(tmp_path):
    events = [
        SAMPLES["run_started"],
        SAMPLES["instance_launched"],
        SAMPLES["directive_changed"],  # keep_alive = inf
        SAMPLES["stage_start"],
        SAMPLES["stage_finish"],
        SAMPLES["window_tick"],
        SAMPLES["instance_expired"],
    ]
    doc = to_chrome_trace(events)
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"X", "i", "C", "M"} <= phases
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    # init span + lifetime span + one exec span
    assert len(spans) == 3
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in spans)
    # inf keep-alive must still serialize as strict JSON
    path = tmp_path / "chrome.json"
    write_chrome_trace(events, path)
    loaded = json.loads(path.read_text(), parse_constant=lambda _: pytest.fail(
        "non-strict JSON constant in chrome trace"
    ))
    assert loaded["traceEvents"]


# ------------------------------------------------------------------ audits
def test_decision_audit_lists_changes_with_reasons():
    events = [SAMPLES["run_started"], SAMPLES["directive_changed"]]
    audit = decision_audit(events)
    assert [d.reason for d in audit] == ["unit test"]
    text = format_decision_audit(events)
    assert "unit test" in text and "gpu-30" in text and "inf" in text


def test_decision_audit_empty():
    assert "no directive changes" in format_decision_audit([])


def test_fault_audit_covers_fault_lifecycle():
    from repro.telemetry import fault_audit

    events = [
        SAMPLES["run_started"],
        SAMPLES["machine_down"],
        SAMPLES["instance_init_failed"],
        SAMPLES["execution_failed"],
        SAMPLES["stage_retried"],
        SAMPLES["invocation_timed_out"],
        SAMPLES["fallback_activated"],
        SAMPLES["machine_up"],
        SAMPLES["arrival"],
    ]
    tags = [e.type for e in fault_audit(events)]
    assert tags == [
        "machine_down",
        "instance_init_failed",
        "execution_failed",
        "stage_retried",
        "invocation_timed_out",
        "fallback_activated",
        "machine_up",
    ]


def test_chrome_trace_renders_fault_events(tmp_path):
    events = [
        SAMPLES["run_started"],
        SAMPLES["machine_down"],
        SAMPLES["execution_failed"],
        SAMPLES["stage_retried"],
        SAMPLES["invocation_timed_out"],
        SAMPLES["fallback_activated"],
        SAMPLES["machine_up"],
    ]
    doc = to_chrome_trace(events)
    names = [e["args"]["name"] for e in doc["traceEvents"] if e["name"] == "process_name"]
    assert "cluster" in names and CLUSTER_SCOPE not in names
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    cats = {e["cat"] for e in instants}
    assert {"cluster", "fault", "policy"} <= cats
    # Strict JSON round trip still holds with the fault instants present.
    path = tmp_path / "chaos.json"
    write_chrome_trace(events, path)
    assert json.loads(path.read_text())["traceEvents"]


def test_prewarm_audit_covers_lifecycle():
    events = [
        SAMPLES["run_started"],
        SAMPLES["prewarm_scheduled"],
        SAMPLES["prewarm_hit"],
        SAMPLES["prewarm_miss"],
        SAMPLES["arrival"],
    ]
    tags = [e.type for e in prewarm_audit(events)]
    assert tags == ["prewarm_scheduled", "prewarm_hit", "prewarm_miss"]

"""SimDriver: live injection, admission partition, replay parity.

Exercises the serving plane's simulation driver without any HTTP on the
wire: requests are submitted directly, the event heap is stepped with
the same advance methods the server's pump uses, and the resulting
tickets/metrics are checked against the offline machinery.

All artifacts stay under ``tmp_path`` (never the repo tree — see the
``tests/_transcript.jsonl*`` pattern in ``.gitignore``).
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.parallel import (
    EnvSpec,
    MultiAppCellSpec,
    _environment,
)
from repro.overload.spec import OverloadSpec, TokenBucket
from repro.serving import HorizonPassed, SimDriver
from repro.serving.driver import TERMINAL_STATUSES
from repro.simulator.multiapp import Deployment, MultiAppSimulator
from repro.workload.trace import Trace

HORIZON = 90.0

ENVS = {
    "image-query": EnvSpec(
        app="image-query",
        preset="steady",
        sla=2.0,
        duration=HORIZON,
        train_duration=400.0,
        seed=0,
    ),
    "amber-alert": EnvSpec(
        app="amber-alert",
        preset="steady",
        sla=2.0,
        duration=HORIZON,
        train_duration=400.0,
        seed=0,
    ),
}


def make_cell(apps=("image-query",), policy="grandslam", overload=None):
    return MultiAppCellSpec(
        envs=tuple(ENVS[app] for app in apps),
        policy=policy,
        sim_seed=3,
        overload=overload,
    )


def make_driver(apps=("image-query",), policy="grandslam", overload=None):
    driver = SimDriver(make_cell(apps, policy, overload), horizon=HORIZON)
    driver.start()
    return driver


class TestSubmitLifecycle:
    def test_submit_advance_resolves_completed(self):
        driver = make_driver()
        done = []
        ticket = driver.submit("image-query", on_done=done.append)
        assert not ticket.done and driver.pending_work()
        driver.advance_while_busy(max_steps=100_000)
        assert ticket.status == "completed"
        assert ticket.invocation_id is not None
        assert ticket.inv.completed_at is not None
        assert done == [ticket]
        metrics = driver.finish()
        assert metrics["image-query"].n_completed == 1

    def test_stamps_strictly_increase_and_exceed_now(self):
        driver = make_driver()
        stamps = []
        for _ in range(5):
            stamps.append(driver.submit("image-query").t)
            driver.advance_while_busy(max_steps=100_000)
        assert stamps == sorted(set(stamps))
        assert all(s > 0.0 for s in stamps)
        # Time-warp parks the clock: stamps hug the last event, so the
        # whole burst stays far from the horizon.
        assert stamps[-1] < HORIZON / 2

    def test_unknown_app_raises_keyerror(self):
        driver = make_driver()
        with pytest.raises(KeyError):
            driver.submit("no-such-app")

    def test_submit_past_horizon_raises(self):
        driver = make_driver()
        driver.advance_to(HORIZON, max_steps=100_000)
        with pytest.raises(HorizonPassed):
            driver.submit("image-query")

    def test_finish_resolves_leftovers_as_unfinished(self):
        driver = make_driver()
        driver.advance_to(HORIZON - 1e-6, max_steps=100_000)
        ticket = driver.submit("image-query")
        # Never step: the arrival fires inside finish()'s drain, but the
        # invocation cannot complete before the horizon.
        metrics = driver.finish()
        assert ticket.status in ("completed", "unfinished")
        counters = driver.status_counts["image-query"]
        assert sum(counters[s] for s in TERMINAL_STATUSES) == 1
        assert metrics["image-query"].n_completed + metrics[
            "image-query"
        ].unfinished == 1

    def test_finish_is_idempotent(self):
        driver = make_driver()
        driver.submit("image-query")
        driver.advance_while_busy(max_steps=100_000)
        assert driver.finish() is driver.finish()
        with pytest.raises(RuntimeError, match="finished"):
            driver.submit("image-query")

    def test_wall_clock_advance_burns_idle_windows(self):
        driver = make_driver()
        steps = driver.advance_to(10.0, max_steps=100_000)
        assert driver.now == pytest.approx(10.0)
        # Window ticks fired even though no request ever arrived.
        assert steps >= 9

    def test_rejects_fault_plans_and_sharding(self):
        from repro.faults.plan import FaultPlan

        cell = make_cell()
        with pytest.raises(ValueError, match="fault plans"):
            SimDriver(
                MultiAppCellSpec(
                    envs=cell.envs,
                    policy=cell.policy,
                    sim_seed=3,
                    faults=FaultPlan(),
                ),
                horizon=HORIZON,
            )
        with pytest.raises(ValueError, match="shards"):
            SimDriver(
                MultiAppCellSpec(
                    envs=cell.envs,
                    policy=cell.policy,
                    sim_seed=3,
                    retention="sketch",
                    shards=2,
                ),
                horizon=HORIZON,
            )


class TestServeCellCompilation:
    def test_serve_cell_pins_single_axes(self):
        from repro.experiments.scenario import ScenarioSpec

        spec = ScenarioSpec(
            apps=("image-query", "amber-alert"),
            policies=("smiless",),
            slas=(2.0,),
            seeds=(3,),
            overload=OverloadSpec(admission_rate=1.0, admission_burst=2.0),
        )
        cell = spec.serve_cell()
        assert [e.app for e in cell.envs] == ["image-query", "amber-alert"]
        assert cell.policy == "smiless"
        assert cell.overload.admission_rate == 1.0

    def test_serve_cell_rejects_swept_axes_and_unsupported(self):
        from repro.experiments.scenario import ScenarioSpec
        from repro.faults.plan import FaultPlan

        base = dict(apps=("image-query",), policies=("smiless",))
        with pytest.raises(ValueError, match="policies"):
            ScenarioSpec(
                apps=("image-query",), policies=("smiless", "grandslam")
            ).serve_cell()
        with pytest.raises(ValueError, match="slas"):
            ScenarioSpec(**base, slas=(1.0, 2.0)).serve_cell()
        with pytest.raises(ValueError, match="fault plans"):
            ScenarioSpec(**base, faults=FaultPlan()).serve_cell()
        with pytest.raises(ValueError, match="sharding"):
            ScenarioSpec(
                **base, shards=2, retention="sketch"
            ).serve_cell()
        with pytest.raises(ValueError, match="request log"):
            ScenarioSpec(**base, trace_dir="/tmp/x").serve_cell()


class TestAdmissionPartition:
    """Property: the live 429s are exactly the reference bucket's nos.

    The gateway's token bucket is a pure function of the admission
    stamps, so feeding the actual ticket stamps to a fresh
    :class:`TokenBucket` must partition the requests into the same
    accepted/rejected sets the live run produced — and the terminal
    counters must satisfy the conservation identity.
    """

    @given(
        gaps=st.lists(
            st.floats(min_value=1e-3, max_value=4.0, allow_nan=False),
            min_size=1,
            max_size=25,
        ),
        rate=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
        burst=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    )
    @settings(max_examples=15, deadline=None)
    def test_429s_partition_arrivals_exactly(self, gaps, rate, burst):
        driver = SimDriver(
            make_cell(overload=OverloadSpec(admission_rate=rate, admission_burst=burst)),
            horizon=float(sum(gaps) + 30.0),
        )
        driver.start()
        t = 0.0
        for gap in gaps:
            t += gap
            driver.advance_to(t, max_steps=100_000)
            driver.submit("image-query")
        metrics = driver.finish()["image-query"]

        reference = TokenBucket(rate=rate, burst=burst)
        expected = [reference.admit(ticket.t) for ticket in driver.tickets]
        live = [ticket.status != "rejected" for ticket in driver.tickets]
        assert live == expected

        # Conservation: every submitted request lands in exactly one
        # terminal bin, and the gateway's own counter agrees.
        n = len(gaps)
        assert metrics.rejected == expected.count(False)
        assert (
            metrics.n_completed
            + metrics.unfinished
            + metrics.timed_out
            + metrics.shed
            + metrics.rejected
            == n
        )
        counters = driver.status_counts["image-query"]
        assert sum(counters[s] for s in TERMINAL_STATUSES) == n
        assert counters["rejected"] == metrics.rejected

    def test_retry_after_reflects_token_deficit(self):
        rate = 0.5
        driver = make_driver(
            overload=OverloadSpec(admission_rate=rate, admission_burst=1.0)
        )
        assert driver.retry_after("image-query") == 0.0
        driver.submit("image-query")
        driver.advance_while_busy(max_steps=100_000)
        bucket = driver.gateways["image-query"]._admission
        expected = max(0.0, 1.0 - bucket.tokens) / rate
        assert driver.retry_after("image-query") == pytest.approx(expected)


class TestDriverReplayParity:
    def test_live_session_replays_bit_identical(self):
        apps = ("image-query", "amber-alert")
        overload = OverloadSpec(admission_rate=0.5, admission_burst=2.0)
        driver = make_driver(apps, policy="smiless", overload=overload)
        rng = random.Random(11)
        for _ in range(40):
            driver.submit(rng.choice(apps))
            if rng.random() < 0.7:
                driver.advance_while_busy(max_steps=100_000)
        live = driver.finish()
        assert any(m.rejected > 0 for m in live.values())

        cell = driver.cell
        deployments = []
        for spec in cell.envs:
            env = _environment(spec)
            times = np.asarray(
                [t.t for t in driver.tickets if t.app == env.app.name]
            )
            deployments.append(
                Deployment(
                    env.app,
                    Trace(times, duration=HORIZON),
                    env.make_policy(cell.policy),
                )
            )
        replayed = MultiAppSimulator(
            deployments,
            seed=cell.sim_seed,
            seeding=cell.seeding,
            overload=cell.overload,
        ).run()

        for app in apps:
            live_summary = live[app].summary()
            replay_summary = replayed[app].summary()
            for key, value in live_summary.items():
                other = replay_summary[key]
                if isinstance(value, float) and math.isnan(value):
                    assert math.isnan(other), (app, key)
                else:
                    assert value == other, (app, key)
            assert live[app].rejected == replayed[app].rejected
            assert live[app].n_completed == replayed[app].n_completed
            assert live[app].unfinished == replayed[app].unfinished

"""Unit tests for the declarative fault plan (:mod:`repro.faults`).

The plan is the contract between chaos scenarios and the engine: it must
round-trip through JSON, reject malformed specs loudly, and compose
overlapping windows the documented way (probabilities saturate below 1,
stragglers multiply, windows are half-open).
"""

import json
import math

import pytest

from repro.faults import (
    ExecutionFault,
    FaultPlan,
    FlashCrowd,
    InitFailureBurst,
    LatencyStraggler,
    MachineOutage,
    ResilienceSpec,
    RetryStorm,
)


class TestSpecValidation:
    def test_outage_rejects_negative_machine_and_bad_windows(self):
        with pytest.raises(ValueError, match="machine index"):
            MachineOutage(machine=-1, start=0.0)
        with pytest.raises(ValueError, match="start must be >= 0"):
            MachineOutage(machine=0, start=-1.0)
        with pytest.raises(ValueError, match="end must be > start"):
            MachineOutage(machine=0, start=5.0, end=5.0)

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="rate"):
            ExecutionFault(rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            ExecutionFault(rate=-0.1)
        with pytest.raises(ValueError, match="rate"):
            InitFailureBurst(rate=2.0)

    def test_straggler_must_slow_not_speed_up(self):
        with pytest.raises(ValueError, match="factor"):
            LatencyStraggler(factor=0.5)
        with pytest.raises(ValueError, match="backend"):
            LatencyStraggler(factor=2.0, backend="tpu")

    def test_resilience_knob_bounds(self):
        with pytest.raises(ValueError, match="max_retries"):
            ResilienceSpec(max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            ResilienceSpec(retry_backoff=-0.5)
        with pytest.raises(ValueError, match="retry_backoff_max"):
            ResilienceSpec(retry_backoff_max=0.0)
        with pytest.raises(ValueError, match="max_crash_loop"):
            ResilienceSpec(max_crash_loop=0)
        with pytest.raises(ValueError, match="deadline_factor"):
            ResilienceSpec(deadline_factor=0.0)
        with pytest.raises(ValueError, match="fallback_after"):
            ResilienceSpec(fallback_after=0)

    def test_flash_crowd_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FlashCrowd(rate=0.0, start=1.0, end=2.0)
        with pytest.raises(ValueError, match="end must be > start"):
            FlashCrowd(rate=1.0, start=2.0, end=2.0)
        with pytest.raises(ValueError, match="finite"):
            FlashCrowd(rate=1.0, start=0.0, end=math.inf)

    def test_retry_storm_bounds(self):
        with pytest.raises(ValueError, match="resubmits"):
            RetryStorm(resubmits=0)
        with pytest.raises(ValueError, match="delay"):
            RetryStorm(delay=0.0)
        with pytest.raises(ValueError, match="end must be > start"):
            RetryStorm(start=5.0, end=5.0)

    def test_unknown_keys_rejected_with_alternatives(self):
        with pytest.raises(KeyError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"outage": [{"machine": 0, "start": 1.0}]})
        with pytest.raises(KeyError, match="valid keys"):
            FaultPlan.from_dict({"outages": [{"machine": 0, "begin": 1.0}]})
        with pytest.raises(KeyError, match="resilience"):
            FaultPlan.from_dict({"resilience": {"retries": 3}})

    def test_spec_entries_must_be_mappings(self):
        with pytest.raises(TypeError, match="entries must be dicts"):
            FaultPlan.from_dict({"outages": [3]})


class TestLoading:
    def test_single_dict_promoted_to_tuple(self):
        plan = FaultPlan.from_dict(
            {"outages": {"machine": 2, "start": 10.0, "end": 20.0}}
        )
        assert plan.outages == (MachineOutage(machine=2, start=10.0, end=20.0),)

    def test_function_scalar_promoted_to_tuple(self):
        plan = FaultPlan.from_dict(
            {"execution_faults": {"rate": 0.1, "functions": "detector"}}
        )
        assert plan.execution_faults[0].functions == ("detector",)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            outages=(MachineOutage(machine=0, start=30.0, end=45.0),),
            execution_faults=(
                ExecutionFault(rate=0.2, functions=("f",), start=5.0, end=50.0),
            ),
            stragglers=(
                LatencyStraggler(factor=3.0, backend="gpu", start=0.0, end=10.0),
            ),
            init_failure_bursts=(InitFailureBurst(rate=0.5, start=1.0, end=2.0),),
            resilience=ResilienceSpec(max_retries=5, deadline_factor=4.0),
        )
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_json(path) == plan

    def test_infinite_window_survives_round_trip(self):
        plan = FaultPlan(outages=(MachineOutage(machine=1, start=10.0),))
        assert plan.outages[0].end == math.inf
        revived = FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        )
        assert revived == plan

    def test_plan_is_hashable_and_defaults_are_inert(self):
        assert hash(FaultPlan()) == hash(FaultPlan())
        plan = FaultPlan()
        assert plan.execution_fault_rate("f", 0.0) == 0.0
        assert plan.straggler_factor("f", "cpu", 0.0) == 1.0
        assert plan.extra_init_failure_rate(0.0) == 0.0
        assert plan.max_machine == -1


class TestQueries:
    def test_windows_are_half_open(self):
        plan = FaultPlan(
            execution_faults=(ExecutionFault(rate=0.25, start=10.0, end=20.0),)
        )
        assert plan.execution_fault_rate("f", 9.999) == 0.0
        assert plan.execution_fault_rate("f", 10.0) == 0.25
        assert plan.execution_fault_rate("f", 19.999) == 0.25
        assert plan.execution_fault_rate("f", 20.0) == 0.0

    def test_function_scoping(self):
        plan = FaultPlan(
            execution_faults=(ExecutionFault(rate=0.5, functions=("g",)),)
        )
        assert plan.execution_fault_rate("g", 0.0) == 0.5
        assert plan.execution_fault_rate("f", 0.0) == 0.0

    def test_overlapping_rates_saturate_below_one(self):
        plan = FaultPlan(
            execution_faults=(
                ExecutionFault(rate=0.7),
                ExecutionFault(rate=0.8),
            ),
            init_failure_bursts=(
                InitFailureBurst(rate=0.9),
                InitFailureBurst(rate=0.9),
            ),
        )
        assert plan.execution_fault_rate("f", 0.0) == pytest.approx(0.999999)
        assert plan.extra_init_failure_rate(0.0) == pytest.approx(0.999999)

    def test_overlapping_stragglers_multiply(self):
        plan = FaultPlan(
            stragglers=(
                LatencyStraggler(factor=2.0),
                LatencyStraggler(factor=3.0, backend="gpu"),
            )
        )
        assert plan.straggler_factor("f", "cpu", 0.0) == pytest.approx(2.0)
        assert plan.straggler_factor("f", "gpu", 0.0) == pytest.approx(6.0)

    def test_max_machine_spans_all_outages(self):
        plan = FaultPlan(
            outages=(
                MachineOutage(machine=2, start=0.0, end=1.0),
                MachineOutage(machine=5, start=3.0, end=4.0),
            )
        )
        assert plan.max_machine == 5


class TestOverloadComposition:
    """Flash crowds and retry storms: the overload plane's pressure sources."""

    def test_flash_crowd_times_are_pinned(self):
        crowd = FlashCrowd(rate=2.0, start=10.0, end=12.0)
        assert crowd.times() == (10.0, 10.5, 11.0, 11.5)
        # Exactly rate * (end - start) arrivals, window half-open.
        assert len(FlashCrowd(rate=4.0, start=0.0, end=3.0).times()) == 12

    def test_injected_times_merged_and_sorted(self):
        plan = FaultPlan(
            flash_crowds=(
                FlashCrowd(rate=1.0, start=5.0, end=7.0),
                FlashCrowd(rate=1.0, start=4.5, end=6.5),
            )
        )
        times = plan.injected_times()
        assert times == (4.5, 5.0, 5.5, 6.0)
        assert times == tuple(sorted(times))
        assert FaultPlan().injected_times() == ()

    def test_storm_for_respects_windows(self):
        early = RetryStorm(resubmits=2, delay=0.5, start=0.0, end=10.0)
        late = RetryStorm(resubmits=1, delay=2.0, start=10.0, end=20.0)
        plan = FaultPlan(retry_storms=(early, late))
        assert plan.storm_for(5.0) is early
        assert plan.storm_for(10.0) is late
        assert plan.storm_for(25.0) is None
        assert FaultPlan().storm_for(5.0) is None

    def test_overload_plan_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            flash_crowds=(FlashCrowd(rate=20.0, start=60.0, end=90.0),),
            retry_storms=(RetryStorm(resubmits=3, delay=1.5, end=120.0),),
            resilience=ResilienceSpec(retry_backoff_max=8.0),
        )
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_json(path) == plan

    def test_capped_backoff_schedule_observed_in_run(self):
        """Pin the capped schedule min(b * 2**(k-1), cap) via StageRetried.

        An always-failing function burns the whole retry budget, so the
        recorded retry delays are exactly the exponential schedule
        saturating at ``retry_backoff_max``.
        """
        from repro.dag import linear_pipeline
        from repro.policies import OnDemandPolicy
        from repro.simulator import ServerlessSimulator
        from repro.telemetry import TraceRecorder
        from repro.telemetry.events import StageRetried
        from repro.workload import Trace

        app = linear_pipeline(1, models=("IR",))
        trace = Trace([5.0], duration=60.0)
        plan = FaultPlan(
            execution_faults=(ExecutionFault(rate=1.0),),
            resilience=ResilienceSpec(
                max_retries=6, retry_backoff=0.5, retry_backoff_max=4.0
            ),
        )
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app, trace, OnDemandPolicy(), seed=0, faults=plan, recorder=rec
        ).run()
        delays = [e.delay for e in rec if isinstance(e, StageRetried)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0, 4.0]
        assert m.timed_out == 1  # budget exhausted after the capped tail
        assert m.stage_retries == 6

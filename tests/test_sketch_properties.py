"""Property tests for the streaming metrics sketches.

Pins the documented contract of :mod:`repro.metrics.sketch`:

- while at most ``compression`` values have been seen, ``quantile`` is
  **bit-identical** to ``numpy.percentile`` (the exact regime);
- beyond that, every estimate sits within ``rank_error_bound``
  (= ``2 / compression``) of the true empirical rank — across
  adversarial distributions (bimodal, heavy tail, constant, tiny n)
  and input orders;
- ``merge`` is commutative bit-for-bit and associative within the
  rank-error bound, including many-shard merges (the multi-app
  aggregation path);
- :class:`StreamingStats` is exact and mergeable.

Hypothesis drives the exact-regime and commutativity properties; the
adversarial distributions use seeded numpy generators so failures
reproduce.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import QuantileSketch, StreamingStats

#: Quantile grid the rank-error properties are checked on — includes the
#: extremes and the tails where t-digest budgets are tightest.
Q_GRID = (0.0, 0.1, 1.0, 5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0)


def rank_error(data: np.ndarray, value: float, q: float) -> float:
    """Fractional rank error of ``value`` as an estimate of percentile ``q``.

    ``value`` covers the rank interval ``[lo, hi]`` in the sorted data
    (degenerate when ``value`` is interpolated rather than observed); the
    error is the distance from ``q/100`` to that interval.
    """
    data = np.sort(data)
    n = data.size
    lo = np.searchsorted(data, value, side="left") / n
    hi = np.searchsorted(data, value, side="right") / n
    target = q / 100.0
    if lo <= target <= hi:
        return 0.0
    return min(abs(target - lo), abs(target - hi))


def assert_within_bound(sketch: QuantileSketch, data: np.ndarray) -> None:
    bound = sketch.rank_error_bound
    for q in Q_GRID:
        err = rank_error(data, sketch.quantile(q), q)
        assert err <= bound + 1e-12, (
            f"p{q}: rank error {err:.5f} exceeds bound {bound:.5f} "
            f"(n={data.size}, compression={sketch.compression})"
        )


def fill(values, compression: int = 200) -> QuantileSketch:
    sketch = QuantileSketch(compression)
    for v in values:
        sketch.add(float(v))
    return sketch


#: Adversarial value distributions, all seeded (name -> n=5000 sample).
def _distributions() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(1234)
    n = 5000
    bimodal = np.concatenate(
        [rng.normal(0.0, 0.05, n // 2), rng.normal(100.0, 0.05, n - n // 2)]
    )
    return {
        "uniform": rng.random(n),
        "bimodal": bimodal,
        "heavy_tail": rng.pareto(1.1, n) + 1.0,
        "constant": np.full(n, 3.25),
        "lognormal": rng.lognormal(0.0, 2.0, n),
        "sorted": np.sort(rng.random(n)),
        "reversed": np.sort(rng.random(n))[::-1],
    }


DISTRIBUTIONS = _distributions()


class TestRankErrorBound:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_streaming_within_bound(self, name):
        data = DISTRIBUTIONS[name]
        assert_within_bound(fill(data), data)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_tight_compression_within_its_own_bound(self, name):
        # The bound scales with compression: a coarse sketch still honors
        # its (looser) documented bound.
        data = DISTRIBUTIONS[name]
        assert_within_bound(fill(data, compression=50), data)

    def test_shuffled_orders_within_bound(self):
        data = DISTRIBUTIONS["bimodal"]
        rng = np.random.default_rng(7)
        for _ in range(3):
            shuffled = rng.permutation(data)
            assert_within_bound(fill(shuffled), data)

    def test_min_max_exact(self):
        data = DISTRIBUTIONS["heavy_tail"]
        sketch = fill(data)
        assert sketch.minimum == data.min()
        assert sketch.maximum == data.max()
        assert sketch.quantile(0.0) == data.min()
        assert sketch.quantile(100.0) == data.max()

    def test_centroid_count_bounded(self):
        # Memory contract: centroids never exceed ~2 * compression.
        sketch = fill(DISTRIBUTIONS["lognormal"])
        sketch._flush()
        assert sketch._means.size <= 2 * sketch.compression


class TestExactRegime:
    @given(
        st.lists(
            st.floats(
                min_value=-1e9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_small_n_matches_numpy_bitwise(self, values, q):
        # n <= compression: bit-identical to numpy's linear interpolation,
        # including n < 10 and duplicate-heavy inputs.
        sketch = fill(values, compression=200)
        expected = float(np.percentile(np.asarray(values), q))
        got = sketch.quantile(q)
        assert got == expected or (math.isnan(got) and math.isnan(expected))

    def test_exact_regime_boundary(self):
        # Exactly `compression` values: still exact.  One more: sketch may
        # compress but stays within bound.
        rng = np.random.default_rng(5)
        data = rng.random(200)
        sketch = fill(data, compression=200)
        for q in Q_GRID:
            assert sketch.quantile(q) == float(np.percentile(data, q))
        sketch.add(0.5)
        full = np.append(data, 0.5)
        assert_within_bound(sketch, full)


class TestMerge:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=0,
            max_size=400,
        ),
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=0,
            max_size=400,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_commutative_bitwise(self, a_vals, b_vals):
        ab = fill(a_vals, compression=50)
        ab.merge(fill(b_vals, compression=50))
        ba = fill(b_vals, compression=50)
        ba.merge(fill(a_vals, compression=50))
        assert ab.to_flat() == ba.to_flat()
        assert ab.count == ba.count == len(a_vals) + len(b_vals)

    def test_associative_within_bound(self):
        # Different merge trees over the same shards: every tree's
        # estimates obey the one documented bound.
        rng = np.random.default_rng(11)
        shards = [rng.lognormal(0.0, 1.5, 1500) for _ in range(4)]
        data = np.concatenate(shards)

        left = fill(shards[0])
        for s in shards[1:]:
            left.merge(fill(s))

        pair_a = fill(shards[0])
        pair_a.merge(fill(shards[1]))
        pair_b = fill(shards[2])
        pair_b.merge(fill(shards[3]))
        pair_a.merge(pair_b)

        for tree in (left, pair_a):
            assert tree.count == data.size
            assert_within_bound(tree, data)

    def test_eight_shard_merge_within_bound(self):
        # The multi-app aggregation shape: one sketch per app, merged.
        rng = np.random.default_rng(21)
        shards = [rng.pareto(1.3, 2000) + 0.01 for _ in range(8)]
        merged = QuantileSketch()
        for s in shards:
            merged.merge(fill(s))
        data = np.concatenate(shards)
        assert merged.count == data.size
        assert_within_bound(merged, data)

    def test_merge_empty_is_identity(self):
        sketch = fill(np.arange(500.0))
        before = sketch.to_flat()
        sketch.merge(QuantileSketch())
        assert sketch.to_flat() == before
        empty = QuantileSketch()
        empty.merge(fill([1.0, 2.0]))
        assert empty.quantile(50) == 1.5


class TestSnapshots:
    def test_flat_roundtrip_within_bound(self):
        data = DISTRIBUTIONS["lognormal"]
        sketch = fill(data)
        rebuilt = QuantileSketch.from_flat(sketch.to_flat())
        assert rebuilt.count == sketch.count
        assert_within_bound(rebuilt, data)

    def test_flat_roundtrip_empty(self):
        rebuilt = QuantileSketch.from_flat(())
        assert rebuilt.count == 0
        assert math.isnan(rebuilt.quantile(50))

    def test_from_flat_odd_length_raises(self):
        with pytest.raises(ValueError, match="even length"):
            QuantileSketch.from_flat((1.0, 2.0, 3.0))


class TestErrorPaths:
    def test_non_finite_add_raises(self):
        sketch = QuantileSketch()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError, match="finite"):
                sketch.add(bad)
        assert sketch.count == 0

    def test_quantile_out_of_range_raises(self):
        sketch = fill([1.0])
        for q in (-0.1, 100.1, 1000):
            with pytest.raises(ValueError, match="q must be"):
                sketch.quantile(q)

    def test_low_compression_raises(self):
        with pytest.raises(ValueError, match="compression"):
            QuantileSketch(19)

    def test_empty_sketch_conventions(self):
        sketch = QuantileSketch()
        assert math.isnan(sketch.quantile(50))
        assert sketch.minimum == math.inf
        assert sketch.maximum == -math.inf
        assert len(sketch) == 0


class TestStreamingStats:
    @given(
        st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_exact(self, values):
        stats = StreamingStats()
        for v in values:
            stats.add(v)
        arr = np.asarray(values)
        assert stats.count == arr.size
        assert stats.minimum == arr.min()
        assert stats.maximum == arr.max()
        assert stats.total == pytest.approx(float(arr.sum()), rel=1e-12, abs=1e-9)

    def test_merge_matches_sequential(self):
        a, b, seq = StreamingStats(), StreamingStats(), StreamingStats()
        for v in (1.0, 2.0, 5.0):
            a.add(v)
            seq.add(v)
        for v in (-3.0, 0.5):
            b.add(v)
            seq.add(v)
        a.merge(b)
        assert (a.count, a.total, a.minimum, a.maximum) == (
            seq.count,
            seq.total,
            seq.minimum,
            seq.maximum,
        )
        assert a.mean == seq.mean

    def test_empty_mean_is_nan(self):
        assert math.isnan(StreamingStats().mean)

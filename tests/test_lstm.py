"""Tests for the NumPy LSTM building blocks: gradients, training, helpers."""

import numpy as np
import pytest

from repro.predictor.lstm import (
    Adam,
    DenseLayer,
    LSTMLayer,
    asymmetric_squared_error,
    make_windows,
    softmax,
    softmax_cross_entropy,
)


def numeric_grad(f, x, eps=1e-5):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        g[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return g


class TestLSTMForward:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        layer = LSTMLayer(3, 5, rng)
        hs, _ = layer.forward(rng.normal(size=(4, 7, 3)))
        assert hs.shape == (4, 7, 5)

    def test_hidden_bounded(self):
        rng = np.random.default_rng(0)
        layer = LSTMLayer(2, 4, rng)
        hs, _ = layer.forward(rng.normal(size=(2, 20, 2)) * 10)
        assert np.abs(hs).max() <= 1.0  # |o * tanh(c)| <= 1

    def test_rejects_bad_shape(self):
        layer = LSTMLayer(3, 5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((4, 7, 2)))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((4, 3)))

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        layer = LSTMLayer(2, 3, rng)
        x = np.random.default_rng(2).normal(size=(1, 5, 2))
        a, _ = layer.forward(x)
        b, _ = layer.forward(x)
        np.testing.assert_array_equal(a, b)


class TestLSTMGradients:
    """BPTT gradients must match finite differences."""

    @pytest.mark.parametrize("param", ["Wx", "Wh", "b"])
    def test_param_gradients(self, param):
        rng = np.random.default_rng(3)
        layer = LSTMLayer(2, 3, rng)
        x = rng.normal(size=(2, 4, 2))
        target = rng.normal(size=(2, 3))

        def loss():
            hs, _ = layer.forward(x)
            return 0.5 * float(((hs[:, -1, :] - target) ** 2).sum())

        hs, cache = layer.forward(x)
        dhs = np.zeros_like(hs)
        dhs[:, -1, :] = hs[:, -1, :] - target
        grads, _ = layer.backward(dhs, cache)
        analytic = grads[param]
        numeric = numeric_grad(loss, getattr(layer, param))
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_input_gradient(self):
        rng = np.random.default_rng(4)
        layer = LSTMLayer(2, 3, rng)
        x = rng.normal(size=(1, 3, 2))
        target = rng.normal(size=(1, 3))

        def loss():
            hs, _ = layer.forward(x)
            return 0.5 * float(((hs[:, -1, :] - target) ** 2).sum())

        hs, cache = layer.forward(x)
        dhs = np.zeros_like(hs)
        dhs[:, -1, :] = hs[:, -1, :] - target
        _, dx = layer.backward(dhs, cache)
        numeric = numeric_grad(loss, x)
        np.testing.assert_allclose(dx, numeric, rtol=1e-4, atol=1e-6)

    def test_dense_gradients(self):
        rng = np.random.default_rng(5)
        dense = DenseLayer(4, 2, rng)
        x = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 2))

        def loss():
            y = dense.forward(x)
            return 0.5 * float(((y - target) ** 2).sum())

        y = dense.forward(x)
        grads, dx = dense.backward(x, y - target)
        np.testing.assert_allclose(grads["W"], numeric_grad(loss, dense.W), rtol=1e-4)
        np.testing.assert_allclose(grads["b"], numeric_grad(loss, dense.b), rtol=1e-4)
        np.testing.assert_allclose(dx, numeric_grad(loss, x), rtol=1e-4, atol=1e-7)


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        p = softmax(np.array([[1.0, 2.0, 3.0], [100.0, 100.0, 100.0]]))
        np.testing.assert_allclose(p.sum(axis=1), [1.0, 1.0])

    def test_softmax_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(p).all()

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[20.0, 0.0], [0.0, 20.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        np.testing.assert_allclose(grad, 0.0, atol=1e-6)

    def test_cross_entropy_gradient_numeric(self):
        rng = np.random.default_rng(6)
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])

        def loss():
            return softmax_cross_entropy(logits, labels)[0]

        _, grad = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(grad, numeric_grad(loss, logits), rtol=1e-4, atol=1e-7)

    def test_asymmetric_loss_penalizes_overprediction(self):
        target = np.array([1.0])
        over, _ = asymmetric_squared_error(np.array([1.5]), target, over_weight=8.0)
        under, _ = asymmetric_squared_error(np.array([0.5]), target, over_weight=8.0)
        assert over == pytest.approx(8.0 * under)

    def test_asymmetric_gradient_numeric(self):
        rng = np.random.default_rng(7)
        pred = rng.normal(size=5)
        target = rng.normal(size=5)

        def loss():
            return asymmetric_squared_error(pred, target, 8.0)[0]

        _, grad = asymmetric_squared_error(pred, target, 8.0)
        np.testing.assert_allclose(grad, numeric_grad(loss, pred), rtol=1e-4, atol=1e-7)


class TestAdam:
    def test_minimizes_quadratic(self):
        x = np.array([5.0, -3.0])
        opt = Adam({"x": x}, lr=0.1)
        for _ in range(500):
            opt.step({"x": 2 * x})
        np.testing.assert_allclose(x, 0.0, atol=1e-3)

    def test_clipping_bounds_update(self):
        x = np.zeros(3)
        opt = Adam({"x": x}, lr=0.1, clip_norm=1.0)
        opt.step({"x": np.full(3, 1e9)})
        assert np.abs(x).max() <= 0.2  # one Adam step of lr magnitude


class TestMakeWindows:
    def test_shapes_and_alignment(self):
        X, y = make_windows(np.arange(10.0), 3)
        assert X.shape == (7, 3)
        np.testing.assert_array_equal(X[0], [0, 1, 2])
        np.testing.assert_array_equal(y, np.arange(3.0, 10.0))

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            make_windows(np.arange(3.0), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            make_windows(np.zeros((3, 3)), 2)

    def test_training_reduces_loss(self):
        """End-to-end: an LSTM + dense head learns a noiseless pattern."""
        rng = np.random.default_rng(8)
        series = np.sin(np.linspace(0, 40 * np.pi, 2000)) + 1.0
        X, y = make_windows(series, 20)
        Xb = X[:, :, None]
        lstm = LSTMLayer(1, 12, rng)
        head = DenseLayer(12, 1, rng)
        opt = Adam({**lstm.parameters("l"), **head.parameters("h")}, lr=5e-3)

        def batch_loss(idx):
            hs, cache = lstm.forward(Xb[idx])
            last = hs[:, -1, :]
            pred = head.forward(last)[:, 0]
            diff = pred - y[idx]
            loss = float((diff**2).mean())
            dpred = (2 * diff / diff.size)[:, None]
            hg, dlast = head.backward(last, dpred)
            dhs = np.zeros_like(hs)
            dhs[:, -1, :] = dlast
            lg, _ = lstm.backward(dhs, cache)
            opt.step({"l.Wx": lg["Wx"], "l.Wh": lg["Wh"], "l.b": lg["b"],
                      "h.W": hg["W"], "h.b": hg["b"]})
            return loss

        idx = rng.permutation(len(y))[:256]
        first = batch_loss(idx)
        for _ in range(60):
            last = batch_loss(idx)
        assert last < first * 0.2

"""Tests for the discrete-event queue."""

import pytest

from repro.simulator import EventQueue


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        q.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        q = EventQueue()
        fired = []
        for tag in "xyz":
            q.schedule(1.0, lambda t=tag: fired.append(t))
        q.run()
        assert fired == ["x", "y", "z"]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(5.0, lambda: seen.append(q.now))
        q.run()
        assert seen == [5.0]
        assert q.now == 5.0

    def test_past_events_clamped_to_now(self):
        q = EventQueue()
        fired = []
        q.schedule(10.0, lambda: q.schedule(1.0, lambda: fired.append(q.now)))
        q.run()
        assert fired == [10.0]

    def test_schedule_in_relative(self):
        q = EventQueue()
        seen = []
        q.schedule(2.0, lambda: q.schedule_in(3.0, lambda: seen.append(q.now)))
        q.run()
        assert seen == [5.0]

    def test_schedule_in_rejects_negative(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule_in(-1.0, lambda: None)

    def test_schedule_rejects_nonfinite(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(float("inf"), lambda: None)

    def test_run_until_stops_at_horizon(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(10.0, lambda: fired.append(10))
        q.run_until(5.0)
        assert fired == [1]
        assert q.now == 5.0
        assert len(q) == 1

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_events_can_schedule_events(self):
        q = EventQueue()
        count = []

        def chain(n):
            count.append(n)
            if n < 5:
                q.schedule_in(1.0, lambda: chain(n + 1))

        q.schedule(0.0, lambda: chain(0))
        q.run()
        assert count == [0, 1, 2, 3, 4, 5]
        assert q.now == 5.0

    def test_run_budget_guard(self):
        q = EventQueue()

        def forever():
            q.schedule_in(1.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="budget"):
            q.run(max_events=100)

"""Tests for the evaluation applications (Fig. 7) and synthetic DAG builders."""

import pytest

from repro.dag import (
    amber_alert,
    evaluation_apps,
    image_query,
    linear_pipeline,
    random_dag,
    voice_assistant,
)


class TestEvaluationApps:
    def test_amber_alert_structure(self):
        app = amber_alert()
        assert len(app) == 6
        assert app.sources() == ("OD",)
        assert app.sinks() == ("TRS",)
        assert set(app.successors("OD")) == {"IR", "FR", "HAP"}
        assert app.longest_path_length() == 4

    def test_image_query_structure(self):
        app = image_query()
        assert len(app) == 4
        assert app.sources() == ("IR",)
        assert app.sinks() == ("TG",)
        assert app.longest_path_length() == 3

    def test_voice_assistant_structure(self):
        app = voice_assistant()
        assert len(app) == 5
        assert app.sources() == ("SR",)
        assert app.sinks() == ("TTS",)
        assert app.longest_path_length() == 4

    def test_default_sla_is_two_seconds(self):
        for app in evaluation_apps():
            assert app.sla == 2.0

    def test_custom_sla_propagates(self):
        apps = evaluation_apps(sla=5.0)
        assert all(a.sla == 5.0 for a in apps)

    def test_all_have_parallel_substructures(self):
        # every Fig. 7 workload contains at least one fork-join
        for app in evaluation_apps():
            assert len(app.parallel_substructures()) >= 1

    def test_amber_alert_paths(self):
        paths = amber_alert().simple_paths()
        assert len(paths) == 3
        assert all(p[0] == "OD" and p[-1] == "TRS" for p in paths)


class TestSyntheticBuilders:
    def test_linear_pipeline_lengths(self):
        for n in (1, 2, 5, 12):
            app = linear_pipeline(n)
            assert len(app) == n
            assert app.longest_path_length() == n
            assert len(app.simple_paths()) == 1

    def test_linear_pipeline_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_pipeline(0)

    def test_linear_pipeline_custom_models(self):
        app = linear_pipeline(3, models=("TRS",))
        assert all(s.model_name == "TRS" for s in app.specs)

    def test_random_dag_deterministic(self):
        a, b = random_dag(8, rng=42), random_dag(8, rng=42)
        assert a.function_names == b.function_names
        assert set(a.graph.edges) == set(b.graph.edges)

    def test_random_dag_rejects_zero(self):
        with pytest.raises(ValueError):
            random_dag(0)

    def test_random_dag_connected(self):
        import networkx as nx

        app = random_dag(10, rng=1, edge_prob=0.05)
        assert nx.is_weakly_connected(app.graph)

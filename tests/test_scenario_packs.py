"""Scenario-pack specs and invariant checks (no simulations run here).

The packs' full runs are exercised by the CI smoke step and documented in
EXPERIMENTS.md; these tests pin the cheap parts — spec shape, check logic
over fabricated cell results, CLI argument validation — so a regression
fails in milliseconds instead of minutes.
"""

import pytest

from repro.experiments.packs import (
    PACK_NAMES,
    PackReport,
    _conservation_check,
    _overload_checks,
    _progress_check,
    _swap_checks,
    pack_spec,
)
from repro.experiments.parallel import CellResult, CellSpec, EnvSpec
from repro.policies import policy_names


def result(app, policy, *, summary=None, **extras):
    defaults = dict(
        completed=10, unfinished=0, timed_out=0, arrivals=10,
        shed=0, rejected=0, injected_arrivals=0, peak_queue_depth=0,
        initializations=5, swap_ins=0,
    )
    defaults.update(extras)
    return CellResult(
        spec=CellSpec(env=EnvSpec(app=app), policy=policy),
        summary=summary or {},
        wall_clock=0.1,
        events_processed=100,
        extras=defaults,
    )


def test_pack_specs_cover_every_policy():
    assert PACK_NAMES == ("llm", "gpu-swap", "overload")
    llm = pack_spec("llm")
    assert llm.apps == ("llm-chat",)
    assert llm.policies == tuple(policy_names())
    swap = pack_spec("gpu-swap")
    assert set(swap.apps) == {"image-query-swap", "image-query"}
    assert swap.policies == tuple(policy_names())
    overload = pack_spec("overload")
    assert overload.apps == ("image-query",)
    assert overload.policies == tuple(policy_names())
    assert overload.overload is not None
    assert overload.overload.bounds_queues and overload.overload.admits
    assert overload.faults is not None and overload.faults.flash_crowds
    with pytest.raises(KeyError, match="unknown scenario pack"):
        pack_spec("nope")


def test_pack_spec_threads_azure_trace():
    spec = pack_spec("llm", azure_trace="/tmp/trace.csv")
    assert spec.azure_trace == "/tmp/trace.csv"
    assert pack_spec("llm").azure_trace is None


def test_conservation_check_flags_leaks():
    good = [result("a", "p1"), result("a", "p2")]
    assert _conservation_check(good).passed
    leaky = good + [result("a", "p3", arrivals=11)]
    check = _conservation_check(leaky)
    assert not check.passed
    assert "a/p3" in check.detail


def test_conservation_check_extended_identity():
    # Offered load (trace + injected) balances against the five-way
    # accounting: completed, unfinished, timed out, shed, rejected.
    balanced = result(
        "a", "p", arrivals=10, injected_arrivals=6,
        completed=9, timed_out=1, shed=4, rejected=2,
    )
    assert _conservation_check([balanced]).passed
    # A shed invocation with no matching offered arrival is a leak.
    leaky = result("a", "p", shed=1)
    check = _conservation_check([leaky])
    assert not check.passed
    assert "11 accounted" in check.detail


def test_overload_checks_bound_activity_and_uplift():
    spec = pack_spec("overload")
    limit = spec.overload.queue_limit

    def on(policy, *, peak=None, goodput=0.6):
        return result(
            "image-query", policy, injected_arrivals=6, completed=9,
            timed_out=1, shed=4, rejected=2,
            peak_queue_depth=limit if peak is None else peak,
            summary={"goodput": goodput},
        )

    def off(policy, *, goodput=0.2):
        return result(
            "image-query", policy, injected_arrivals=6, completed=16,
            summary={"goodput": goodput},
        )

    bound, activity, uplift = _overload_checks(spec, [on("p")], [off("p")])
    assert bound.passed and activity.passed and uplift.passed

    bound, _, _ = _overload_checks(
        spec, [on("p", peak=limit + 1)], [off("p")]
    )
    assert not bound.passed and "peak depth" in bound.detail

    _, _, uplift = _overload_checks(
        spec, [on("p", goodput=0.2)], [off("p", goodput=0.2)]
    )
    assert not uplift.passed and "p: goodput" in uplift.detail

    _, _, uplift = _overload_checks(spec, [on("p")], [])
    assert not uplift.passed and "no twin pairs" in uplift.detail


def test_progress_check_flags_stalled_cells():
    assert _progress_check([result("a", "p")]).passed
    check = _progress_check([result("a", "p", completed=0)])
    assert not check.passed
    assert "a/p" in check.detail


def test_swap_checks_require_activity_and_strict_reduction():
    swapping = [
        result("image-query-swap", "p", initializations=10, swap_ins=4),
        result("image-query", "p", initializations=9),
    ]
    activity, reduction = _swap_checks(swapping)
    assert activity.passed and reduction.passed

    idle = [
        result("image-query-swap", "p"),
        result("image-query", "p"),
    ]
    activity, reduction = _swap_checks(idle)
    assert not activity.passed and not reduction.passed

    regressed = [
        result("image-query-swap", "p", initializations=12, swap_ins=2),
        result("image-query", "p", initializations=9),
    ]
    activity, reduction = _swap_checks(regressed)
    assert activity.passed and not reduction.passed
    assert "10 cold starts" in reduction.detail


def test_pack_report_ok_and_rows():
    res = result("llm-chat", "smiless")
    res = CellResult(
        spec=res.spec,
        summary={
            "total_cost": 1.0, "violation_ratio": 0.0, "mean_latency": 1.0,
            "p99_latency": 2.0, "reinit_fraction": 0.0,
        },
        wall_clock=res.wall_clock,
        events_processed=res.events_processed,
        extras=res.extras,
    )
    report = PackReport(
        pack="llm",
        spec=pack_spec("llm"),
        results=[res],
        checks=[_conservation_check([res])],
    )
    assert report.ok
    rows = report.rows()
    assert len(rows) == 1
    assert rows[0].app == "llm-chat" and rows[0].policy == "smiless"


def test_cli_scenario_requires_exactly_one_source(capsys):
    from repro.cli import main

    assert main(["scenario"]) == 2
    assert "exactly one of" in capsys.readouterr().err
    # Both a spec file and a preset is also ambiguous.
    assert main(["scenario", "spec.json", "--preset", "llm"]) == 2

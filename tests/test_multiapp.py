"""Tests for multi-application co-scheduling on a shared cluster."""

import pytest

from repro.dag import image_query, linear_pipeline, voice_assistant
from repro.hardware import HardwareConfig
from repro.policies import AlwaysOnPolicy, OnDemandPolicy
from repro.profiler import OfflineProfiler
from repro.policies import SMIlessPolicy
from repro.simulator import Cluster, Deployment, MultiAppSimulator
from repro.workload import Trace, constant_rate_process


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MultiAppSimulator([])

    def test_rejects_duplicate_names(self):
        app = linear_pipeline(1, models=("IR",))
        dep = Deployment(app, Trace([1.0], duration=5.0), AlwaysOnPolicy())
        with pytest.raises(ValueError, match="duplicate"):
            MultiAppSimulator([dep, dep])


class TestCoRunning:
    def make_deps(self):
        deps = []
        for i, models in enumerate((("IR",), ("DB",))):
            app = linear_pipeline(1, models=models)
            # distinct app names
            app = type(app)(f"app{i}", app.specs, [], sla=app.sla)
            trace = constant_rate_process(10.0, 60.0, offset=5.0 + i)
            deps.append(Deployment(app, trace, AlwaysOnPolicy()))
        return deps

    def test_all_apps_complete(self):
        sim = MultiAppSimulator(self.make_deps(), seed=0)
        results = sim.run()
        assert set(results) == {"app0", "app1"}
        for m in results.values():
            assert len(m.invocations) == 6
            assert m.unfinished == 0

    def test_shared_clock(self):
        """Both apps' events interleave on one timeline."""
        sim = MultiAppSimulator(self.make_deps(), seed=0)
        results = sim.run()
        ends = [m.duration for m in results.values()]
        assert ends[0] == ends[1]  # finalized at the same shared clock

    def test_total_cost_aggregates(self):
        sim = MultiAppSimulator(self.make_deps(), seed=0)
        results = sim.run()
        assert sim.total_cost(results) == pytest.approx(
            sum(m.total_cost() for m in results.values())
        )

    def test_capacity_contention_across_apps(self):
        """One app's fleet can starve another on a tiny shared cluster."""
        cluster = Cluster.build(n_machines=1, cores_per_machine=16)
        hog_app = linear_pipeline(1, models=("IR",))
        hog_app = type(hog_app)("hog", hog_app.specs, [], sla=2.0)
        victim_app = linear_pipeline(1, models=("DB",))
        victim_app = type(victim_app)("victim", victim_app.specs, [], sla=2.0)
        deps = [
            Deployment(
                hog_app,
                Trace([5.0], duration=120.0),
                AlwaysOnPolicy(config=HardwareConfig.cpu(16)),
            ),
            Deployment(
                victim_app,
                Trace([30.0], duration=120.0),
                OnDemandPolicy(config=HardwareConfig.cpu(16)),
            ),
        ]
        results = MultiAppSimulator(deps, cluster=cluster, seed=0).run()
        # the always-on hog holds all 16 cores; the victim's cold start
        # waits for capacity that never frees within its window
        victim = results["victim"]
        assert victim.unfinished == 1 or victim.latencies().max() > 10.0

    def test_smiless_multiapp_end_to_end(self):
        """The full paper setting: SMIless serving co-running DAG apps."""
        deps = []
        for i, appf in enumerate((image_query, voice_assistant)):
            app = appf()
            profiles = OfflineProfiler().profile_app(app, rng=50 + i)
            trace = constant_rate_process(6.0, 120.0, offset=3.0 + i)
            deps.append(Deployment(app, trace, SMIlessPolicy(profiles)))
        results = MultiAppSimulator(deps, seed=1).run()
        for name, m in results.items():
            assert len(m.invocations) + m.unfinished == 20, name
            assert m.violation_ratio() < 0.5, name

"""Differential tests: retention="sketch" vs retention="full".

The scale plane's correctness contract (ISSUE 5): switching a run to
sketch retention changes *nothing* about the simulation — the event
sequence, every conservation counter, billing, availability and goodput
are bit-identical to a full-retention run of the same scenario.  Only
latency *distribution* queries become approximate, within the sketch's
documented rank-error bound (and exactly equal while the run is small
enough for the sketch's exact regime).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dag import image_query
from repro.experiments.parallel import CellSpec, EnvSpec, MultiAppCellSpec, run_cell
from repro.experiments.runners import build_environment
from repro.experiments.scenario import ScenarioSpec
from repro.faults.plan import ExecutionFault, FaultPlan, ResilienceSpec
from repro.hardware import Backend
from repro.metrics import QuantileSketch
from repro.simulator import ServerlessSimulator
from repro.simulator.metrics import RunMetrics
from repro.telemetry.events import from_dict, to_dict, validate_event
from repro.telemetry.recorder import TraceRecorder
from repro.workload import Trace

#: Summary fields that must be bit-identical between retention modes.
#: Latency percentiles are included too: these runs stay inside the
#: sketch's exact regime (n <= compression), where quantile queries are
#: numpy-identical.
EXACT_FIELDS = (
    "total_cost",
    "violation_ratio",
    "invocations",
    "mean_latency",
    "p50_latency",
    "p99_latency",
    "reinit_fraction",
    "cpu_cost",
    "gpu_cost",
    "availability",
    "goodput",
)

#: RunMetrics counters that must match regardless of retention.
COUNTERS = (
    "unfinished",
    "timed_out",
    "stage_executions",
    "cold_stage_executions",
    "initializations",
    "failed_initializations",
    "stage_retries",
    "failed_executions",
    "fallbacks",
    "shed",
    "rejected",
    "injected_arrivals",
    "peak_queue_depth",
)


def _run(env, policy: str, retention: str, *, faults=None) -> RunMetrics:
    return ServerlessSimulator(
        env.app,
        env.trace,
        env.make_policy(policy),
        seed=3,
        faults=faults,
        retention=retention,
    ).run()


def assert_equivalent(full: RunMetrics, sketch: RunMetrics) -> None:
    fs, ss = full.summary(), sketch.summary()
    for key in EXACT_FIELDS:
        a, b = fs[key], ss[key]
        assert a == b or (math.isnan(a) and math.isnan(b)), (
            f"{key}: full={a!r} sketch={b!r}"
        )
    for key in COUNTERS:
        assert getattr(full, key) == getattr(sketch, key), key
    assert full.n_completed == sketch.n_completed
    assert full.cost_breakdown() == sketch.cost_breakdown()
    assert full.backend_cost(Backend.CPU) == sketch.backend_cost(Backend.CPU)
    assert full.backend_cost(Backend.GPU) == sketch.backend_cost(Backend.GPU)
    # The point of sketch mode: no per-invocation or per-instance records.
    assert sketch.invocations == []
    assert sketch.instances == []
    assert len(full.invocations) == full.n_completed


@pytest.fixture(scope="module")
def env():
    return build_environment("image-query", duration=150.0)


class TestCleanRunParity:
    @pytest.mark.parametrize("policy", ["grandslam", "smiless"])
    def test_summary_bit_identical(self, env, policy):
        assert_equivalent(_run(env, policy, "full"), _run(env, policy, "sketch"))

    def test_conservation(self, env):
        m = _run(env, "grandslam", "sketch")
        arrivals = m.n_completed + m.unfinished + m.timed_out
        assert arrivals == len(env.trace)


class TestChaosRunParity:
    def test_faults_and_timeouts_match(self, env):
        # Execution faults force retries; the deadline factor converts
        # some of the resulting slow invocations into timeouts — the
        # hardest counters to keep identical across retention modes.
        plan = FaultPlan(
            execution_faults=(ExecutionFault(rate=0.25),),
            resilience=ResilienceSpec(
                max_retries=6, retry_backoff=0.3, deadline_factor=4.0
            ),
        )
        full = _run(env, "grandslam", "full", faults=plan)
        sketch = _run(env, "grandslam", "sketch", faults=plan)
        assert full.stage_retries > 0
        assert_equivalent(full, sketch)


class TestZeroCompletionRegression:
    """latency_percentile/summary on an empty sketch run must be NaN,
    exactly like full retention's empty-array path."""

    def test_direct_metrics_nan(self):
        for retention in ("full", "sketch"):
            m = RunMetrics(app="a", policy="p", sla=2.0, retention=retention)
            assert math.isnan(m.latency_percentile(50))
            assert math.isnan(m.latency_percentile(99))
            s = m.summary()
            assert math.isnan(s["mean_latency"])
            assert math.isnan(s["p50_latency"])
            assert math.isnan(s["p99_latency"])
            assert s["invocations"] == 0.0
            assert m.availability() == 1.0
            assert m.goodput() == 1.0
            assert m.violation_ratio() == 0.0

    def test_empty_trace_simulation(self, env):
        trace = Trace(np.empty(0), duration=30.0)
        for retention in ("full", "sketch"):
            m = ServerlessSimulator(
                env.app,
                trace,
                env.make_policy("grandslam"),
                seed=3,
                retention=retention,
            ).run()
            assert m.n_completed == 0
            assert math.isnan(m.latency_percentile(50))
            assert math.isnan(m.summary()["mean_latency"])


class TestModeGuards:
    def test_latencies_raises_in_sketch_mode(self):
        m = RunMetrics(app="a", policy="p", sla=2.0, retention="sketch")
        with pytest.raises(RuntimeError, match="retention='full'"):
            m.latencies()

    def test_invalid_retention_rejected(self):
        with pytest.raises(ValueError, match="retention"):
            RunMetrics(app="a", policy="p", sla=2.0, retention="bogus")
        with pytest.raises(ValueError, match="retention"):
            ScenarioSpec(
                apps=("image-query",), policies=("grandslam",), retention="bogus"
            )


class TestGridParity:
    def test_cell_spec_retention(self):
        spec = EnvSpec(
            app="image-query", preset="steady", sla=2.0, duration=120.0, seed=0
        )
        results = {
            retention: run_cell(
                CellSpec(
                    env=spec, policy="grandslam", sim_seed=3, retention=retention
                )
            )
            for retention in ("full", "sketch")
        }
        full, sketch = results["full"].summary, results["sketch"].summary
        for key in EXACT_FIELDS:
            a, b = full[key], sketch[key]
            assert a == b or (math.isnan(a) and math.isnan(b)), key

    def test_multiapp_cell_retention(self):
        envs = tuple(
            EnvSpec(app=app, preset="steady", sla=2.0, duration=100.0, seed=0)
            for app in ("image-query", "amber-alert")
        )
        results = {
            retention: run_cell(
                MultiAppCellSpec(
                    envs=envs, policy="grandslam", sim_seed=3, retention=retention
                )
            )
            for retention in ("full", "sketch")
        }
        assert set(results["full"].summary) == set(results["sketch"].summary)
        for app, full in results["full"].summary.items():
            sketch = results["sketch"].summary[app]
            for key in EXACT_FIELDS:
                a, b = full[key], sketch[key]
                assert a == b or (math.isnan(a) and math.isnan(b)), (app, key)


class TestTelemetryRoundTrip:
    def test_run_finished_carries_sketch(self, env):
        rec = TraceRecorder()
        m = ServerlessSimulator(
            env.app,
            env.trace,
            env.make_policy("grandslam"),
            seed=3,
            retention="sketch",
            recorder=rec,
        ).run()
        finished = [e for e in rec.events if type(e).__name__ == "RunFinished"]
        assert len(finished) == 1
        event = finished[0]
        assert event.completed == m.n_completed
        assert validate_event(to_dict(event)) == []
        # JSON round-trip preserves the snapshot; the rebuilt sketch
        # answers the same quantile queries as the live one (bit-equal
        # here: the run is inside the exact regime).
        restored = from_dict(to_dict(event))
        assert restored.latency_sketch == event.latency_sketch
        rebuilt = QuantileSketch.from_flat(restored.latency_sketch)
        assert rebuilt.count == m.n_completed
        assert rebuilt.quantile(50) == pytest.approx(
            m.latency_percentile(50), rel=1e-9
        )
        assert rebuilt.quantile(99) == pytest.approx(
            m.latency_percentile(99), rel=1e-9
        )

    def test_full_mode_emits_empty_sketch(self):
        env = build_environment("image-query", duration=60.0)
        rec = TraceRecorder()
        ServerlessSimulator(
            env.app,
            env.trace,
            env.make_policy("grandslam"),
            seed=3,
            recorder=rec,
        ).run()
        (event,) = [e for e in rec.events if type(e).__name__ == "RunFinished"]
        assert event.latency_sketch == ()


def test_large_run_quantiles_within_bound():
    # Past the exact regime: sketch quantiles sit within the documented
    # rank-error bound of the full run's retained latencies.
    env = build_environment("image-query", preset="flood", duration=120.0)
    full = _run(env, "grandslam", "full")
    sketch = _run(env, "grandslam", "sketch")
    lat = np.sort(full.latencies())
    n = lat.size
    assert n > 400  # comfortably past compression=200
    bound = sketch.latency_sketch.rank_error_bound
    for q in (50.0, 90.0, 99.0):
        value = sketch.latency_percentile(q)
        lo = np.searchsorted(lat, value, side="left") / n
        hi = np.searchsorted(lat, value, side="right") / n
        target = q / 100.0
        err = 0.0 if lo <= target <= hi else min(abs(target - lo), abs(target - hi))
        assert err <= bound + 1e-12, (q, err, bound)


def test_mode_constant_exported():
    from repro.simulator.metrics import RETENTION_MODES

    assert RETENTION_MODES == ("full", "sketch")
    assert image_query().name  # app builder importable (sanity for fixtures)

"""Tests for the parallel experiment grid and its CLI surface."""

import pytest

from repro.cli import build_parser
from repro.experiments import (
    CellSpec,
    EnvSpec,
    build_environment,
    product_grid,
    run_comparison,
    run_grid,
    run_sla_sweep,
)
from repro.experiments.parallel import run_cell

POLICIES = ("grandslam", "orion")  # fast, training-free policies
DURATION = 60.0


@pytest.fixture(scope="module")
def environment():
    return build_environment(
        "image-query", preset="steady", sla=2.0, duration=DURATION, seed=0
    )


class TestCellExecution:
    def test_run_cell_reports_timing_and_events(self):
        spec = CellSpec(
            env=EnvSpec(app="image-query", duration=DURATION),
            policy="grandslam",
        )
        result = run_cell(spec)
        assert result.spec == spec
        assert result.events_processed > 0
        assert result.wall_clock > 0
        assert result.events_per_second > 0
        assert "total_cost" in result.summary

    def test_product_grid_order_and_shape(self):
        cells = product_grid(
            ["a1", "a2"], ["p1", "p2"], slas=(1.0, 2.0), seeds=(3,)
        )
        assert len(cells) == 8
        assert cells[0].env.app == "a1"
        assert [c.policy for c in cells[:2]] == ["p1", "p2"]
        assert cells[0].env.sla == 1.0
        assert cells[-1].env.app == "a2"

    def test_run_grid_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            run_grid([], workers=0)


class TestParallelMatchesSerial:
    def test_run_grid_parallel_bit_identical(self):
        cells = product_grid(
            ["image-query"], POLICIES, duration=DURATION
        )
        serial = run_grid(cells, workers=1)
        parallel = run_grid(cells, workers=2)
        assert [r.spec for r in serial] == [r.spec for r in parallel]
        assert [r.summary for r in serial] == [r.summary for r in parallel]

    def test_run_comparison_workers_bit_identical(self, environment):
        serial = run_comparison(environment, POLICIES, seed=3)
        parallel = run_comparison(environment, POLICIES, seed=3, workers=2)
        assert serial == parallel

    def test_run_sla_sweep_workers_bit_identical(self, environment):
        slas = (1.0, 4.0)
        serial = run_sla_sweep(environment, slas, "grandslam", seed=3)
        parallel = run_sla_sweep(
            environment, slas, "grandslam", seed=3, workers=2
        )
        assert serial == parallel

    def test_handrolled_environment_falls_back_to_serial(self, environment):
        from dataclasses import replace

        bare = replace(environment, spec=None)
        with pytest.warns(RuntimeWarning, match="no build spec"):
            rows = run_comparison(bare, ("grandslam",), seed=3, workers=4)
        assert rows == run_comparison(environment, ("grandslam",), seed=3)


class TestCliWorkers:
    def test_compare_accepts_workers(self):
        args = build_parser().parse_args(
            ["compare", "image-query", "--workers", "3"]
        )
        assert args.workers == 3

    def test_sweep_accepts_workers(self):
        args = build_parser().parse_args(
            ["sweep", "amber-alert", "--workers", "2"]
        )
        assert args.workers == 2

    def test_workers_default_serial(self):
        args = build_parser().parse_args(["compare", "image-query"])
        assert args.workers == 1

"""Shard plane unit tests: plans, snapshots, merge algebra, spawn safety.

The merge-algebra property tests pin the invariant the whole plane is
built on: :func:`repro.sharding.merge_snapshots` is commutative and
associative **bit for bit** — any shard ordering, any merge tree, same
snapshot, same collapsed metrics.  The pickling tests pin spawn safety:
every object that crosses a process boundary round-trips through pickle
(the spawn start method's transport) unchanged.
"""

from __future__ import annotations

import math
import pickle
import warnings
from functools import reduce

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.parallel import EnvSpec
from repro.experiments.scenario import ScenarioSpec
from repro.faults.plan import ExecutionFault, FaultPlan, ResilienceSpec
from repro.metrics import QuantileSketch
from repro.metrics.sketch import StreamingStats
from repro.sharding import (
    ShardPlan,
    ShardSnapshot,
    ShardTask,
    ShardUnit,
    UnitSnapshot,
    clamp_shard_workers,
    merge_snapshots,
    run_sharded,
)
from repro.simulator.metrics import BillingFold
from repro.simulator.runtime import derive_app_seed, derive_slice_seed


class TestShardUnit:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_slices"):
            ShardUnit(app="a", n_slices=0)
        with pytest.raises(ValueError, match="slice_index"):
            ShardUnit(app="a", slice_index=2, n_slices=2)
        with pytest.raises(ValueError, match="slice_index"):
            ShardUnit(app="a", slice_index=-1, n_slices=2)

    def test_key(self):
        assert ShardUnit(app="a", slice_index=1, n_slices=2).key == ("a", 1)


class TestShardPlan:
    def test_for_apps_builds_complete_partition(self):
        plan = ShardPlan.for_apps(["b", "a"], n_shards=3, slices_per_app=2)
        assert plan.apps == ("a", "b")
        assert len(plan.units) == 4
        assert plan.units[0].key == ("a", 0)  # canonical order
        assert plan.units[-1].key == ("b", 1)

    def test_duplicate_units_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShardPlan(units=(ShardUnit(app="a"), ShardUnit(app="a")))

    def test_incomplete_slice_partition_rejected(self):
        with pytest.raises(ValueError, match="misses trace slices"):
            ShardPlan(
                units=(ShardUnit(app="a", slice_index=0, n_slices=2),)
            )

    def test_mixed_slice_counts_rejected(self):
        with pytest.raises(ValueError, match="mixes slice counts"):
            ShardPlan(
                units=(
                    ShardUnit(app="a", slice_index=0, n_slices=1),
                    ShardUnit(app="a", slice_index=1, n_slices=2),
                )
            )

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="at least one unit"):
            ShardPlan(units=())

    def test_unit_order_is_canonical(self):
        a = ShardPlan(
            units=(
                ShardUnit(app="b"),
                ShardUnit(app="a", slice_index=1, n_slices=2),
                ShardUnit(app="a", slice_index=0, n_slices=2),
            )
        )
        b = ShardPlan(
            units=(
                ShardUnit(app="a", slice_index=0, n_slices=2),
                ShardUnit(app="a", slice_index=1, n_slices=2),
                ShardUnit(app="b"),
            )
        )
        assert a == b

    def test_assignments_cover_all_units_once(self):
        plan = ShardPlan.for_apps(["a", "b"], n_shards=3, slices_per_app=3)
        groups = plan.assignments()
        assert len(groups) == 3
        flat = [u for g in groups for u in g]
        assert sorted(u.key for u in flat) == [u.key for u in plan.units]

    def test_assignments_drop_empty_shards(self):
        plan = ShardPlan.for_apps(["a"], n_shards=8, slices_per_app=2)
        assert len(plan.assignments()) == 2


class TestClamp:
    def test_no_clamp(self):
        assert clamp_shard_workers(2, cpu_count=8) == (2, None)

    def test_clamp_with_note(self):
        effective, note = clamp_shard_workers(8, cpu_count=2)
        assert effective == 2
        assert "8 -> 2" in note

    def test_invalid(self):
        with pytest.raises(ValueError, match=">= 1"):
            clamp_shard_workers(0)


class TestSliceSeeds:
    def test_single_slice_collapses_to_app_seed(self):
        assert derive_slice_seed(3, "a", 0, 1) == derive_app_seed(3, "a")

    def test_slices_get_distinct_seeds(self):
        seeds = {derive_slice_seed(3, "a", i, 4) for i in range(4)}
        assert len(seeds) == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="slice_index"):
            derive_slice_seed(3, "a", 4, 4)


# --------------------------------------------------------------------------
# Synthetic unit snapshots for the merge-algebra property tests: real
# accumulator states (sketch/stats/billing round-tripped through to_state)
# without paying for simulations.
# --------------------------------------------------------------------------


def _synthetic_unit(
    app: str, slice_index: int, n_slices: int, latencies: list[float]
) -> UnitSnapshot:
    sketch = QuantileSketch()
    stats = StreamingStats()
    for lat in latencies:
        sketch.add(lat)
        stats.add(lat)
    billing = BillingFold(
        total_cost=0.25 * (slice_index + 1),
        cpu_cost=0.25 * (slice_index + 1),
        instances=len(latencies),
    )
    return UnitSnapshot(
        app=app,
        policy="p",
        sla=2.0,
        slice_index=slice_index,
        n_slices=n_slices,
        duration=100.0,
        counters=tuple(
            (slice_index + 1) * (i + 1) for i in range(12)
        ),
        sketch_state=sketch.to_state(),
        stats_state=stats.to_state(),
        billing_state=billing.to_state(),
        events_processed=7 * (slice_index + 1),
        wall_clock=0.5,
    )


@st.composite
def unit_sets(draw):
    """A complete unit set: 1-3 apps, each fully sliced 1-4 ways."""
    n_apps = draw(st.integers(min_value=1, max_value=3))
    units = []
    for a in range(n_apps):
        n_slices = draw(st.integers(min_value=1, max_value=4))
        for i in range(n_slices):
            lats = draw(
                st.lists(
                    st.floats(
                        min_value=0.01,
                        max_value=50.0,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    min_size=1,
                    max_size=20,
                )
            )
            units.append(_synthetic_unit(f"app{a}", i, n_slices, lats))
    return units


@st.composite
def shard_partitions(draw):
    """A unit set partitioned into shards in a random order."""
    units = draw(unit_sets())
    shuffled = draw(st.permutations(units))
    n_shards = draw(st.integers(min_value=1, max_value=len(units)))
    groups = [shuffled[i::n_shards] for i in range(n_shards)]
    return units, [g for g in groups if g]


def _random_merge_tree(snapshots, draw):
    """Merge a list of snapshots pairwise in a random tree shape."""
    nodes = list(snapshots)
    while len(nodes) > 1:
        i = draw(st.integers(min_value=0, max_value=len(nodes) - 2))
        left = nodes.pop(i)
        right = nodes.pop(i)
        nodes.insert(i, merge_snapshots(left, right))
    return nodes[0]


def _summaries(snapshot: ShardSnapshot) -> dict:
    return snapshot.summary()


def _assert_summary_equal(a: dict, b: dict) -> None:
    assert a.keys() == b.keys()
    for app in a:
        for key in a[app]:
            x, y = a[app][key], b[app][key]
            assert x == y or (math.isnan(x) and math.isnan(y)), (app, key)


class TestMergeAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_commutative_and_associative_over_merge_trees(self, data):
        units, groups = data.draw(shard_partitions())
        shards = [ShardSnapshot(units=tuple(g)) for g in groups]
        # Reference: one left-fold in the given order.
        reference = reduce(merge_snapshots, shards)
        # Any permutation, any tree shape: identical snapshot object
        # (dataclass equality covers every unit's accumulator states
        # bit for bit) and identical collapsed metrics.
        permuted = data.draw(st.permutations(shards))
        tree_merged = _random_merge_tree(permuted, data.draw)
        assert tree_merged == reference
        assert tree_merged == ShardSnapshot(units=tuple(units))
        _assert_summary_equal(_summaries(tree_merged), _summaries(reference))

    def test_duplicate_units_rejected(self):
        unit = _synthetic_unit("a", 0, 1, [1.0])
        snap = ShardSnapshot(units=(unit,))
        with pytest.raises(ValueError, match="duplicate"):
            merge_snapshots(snap, snap)

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_snapshots()

    def test_incomplete_collapse_rejected(self):
        snap = ShardSnapshot(units=(_synthetic_unit("a", 0, 2, [1.0]),))
        with pytest.raises(ValueError, match="incomplete"):
            snap.per_app_metrics()

    def test_counter_sums_are_exact(self):
        units = [_synthetic_unit("a", i, 3, [1.0]) for i in range(3)]
        snap = ShardSnapshot(units=tuple(units))
        metrics = snap.per_app_metrics()["a"]
        # counters were (slice+1)*(i+1): summed over slices = 6*(i+1).
        assert metrics.unfinished == 6 * 1
        assert metrics.stage_executions == 6 * 3
        assert metrics.completed_count == 6 * 10
        assert metrics.duration == 300.0
        assert snap.events_processed == 7 * (1 + 2 + 3)


class TestUnitSnapshotRoundTrip:
    def test_from_metrics_requires_sketch_retention(self):
        from repro.simulator.metrics import RunMetrics

        full = RunMetrics(app="a", policy="p", sla=2.0, retention="full")
        with pytest.raises(ValueError, match="retention='sketch'"):
            UnitSnapshot.from_metrics(full)

    def test_to_metrics_is_exact(self):
        unit = _synthetic_unit("a", 0, 1, [0.5, 1.5, 2.5])
        metrics = unit.to_metrics()
        assert metrics.retention == "sketch"
        assert metrics.latency_stats.to_state() == unit.stats_state
        assert metrics.latency_sketch.to_state() == unit.sketch_state
        assert metrics.billing.to_state() == unit.billing_state
        assert UnitSnapshot.from_metrics(metrics).sketch_state == (
            unit.sketch_state
        )


class TestSpawnSafety:
    """Everything crossing a process boundary pickles and round-trips."""

    @pytest.mark.parametrize(
        "obj",
        [
            ShardPlan.for_apps(["image-query", "amber-alert"], n_shards=2,
                               slices_per_app=2),
            ShardSnapshot(units=(_synthetic_unit("a", 0, 1, [1.0, 2.0]),)),
            ScenarioSpec(
                apps=("image-query",),
                policies=("grandslam",),
                retention="sketch",
                shards=2,
                slices_per_app=2,
            ),
            FaultPlan(
                execution_faults=(ExecutionFault(rate=0.1),),
                resilience=ResilienceSpec(max_retries=2),
            ),
            ShardTask(
                shard_index=0,
                units=(ShardUnit(app="image-query"),),
                envs=(EnvSpec(app="image-query"),),
                policy="grandslam",
            ),
        ],
        ids=["plan", "snapshot", "scenario", "faults", "task"],
    )
    def test_pickle_round_trip(self, obj):
        for protocol in (pickle.HIGHEST_PROTOCOL, pickle.DEFAULT_PROTOCOL):
            clone = pickle.loads(pickle.dumps(obj, protocol=protocol))
            assert clone == obj

    def test_run_sharded_under_spawn_context(self):
        # The real spawn transport: worker processes start from a clean
        # interpreter and must rebuild everything from pickled tasks.
        plan = ShardPlan.for_apps(
            ["image-query"], n_shards=2, slices_per_app=2
        )
        envs = (EnvSpec(app="image-query", duration=40.0),)
        spawned = run_sharded(
            plan, envs, "grandslam", processes=2, mp_context="spawn"
        )
        serial = run_sharded(plan, envs, "grandslam", processes=1)
        assert spawned == serial
        _assert_summary_equal(spawned.summary(), serial.summary())

    def test_serial_fallback_warns_from_daemonic_process(self, monkeypatch):
        import multiprocessing

        class FakeProcess:
            daemon = True

        monkeypatch.setattr(
            multiprocessing, "current_process", lambda: FakeProcess()
        )
        plan = ShardPlan.for_apps(["image-query"], n_shards=2,
                                  slices_per_app=2)
        envs = (EnvSpec(app="image-query", duration=20.0),)
        with pytest.warns(RuntimeWarning, match="daemonic"):
            snap = run_sharded(plan, envs, "grandslam")
        assert len(snap.units) == 2


class TestScenarioValidation:
    def test_sharded_requires_sketch(self):
        with pytest.raises(ValueError, match="sketch"):
            ScenarioSpec(
                apps=("image-query",),
                policies=("grandslam",),
                shards=2,
            )

    def test_sharded_rejects_trace_dir(self):
        with pytest.raises(ValueError, match="telemetry"):
            ScenarioSpec(
                apps=("image-query",),
                policies=("grandslam",),
                retention="sketch",
                shards=2,
                trace_dir="/tmp/x",
            )

    def test_axes_round_trip_from_dict(self):
        spec = ScenarioSpec.from_dict(
            {
                "apps": ["image-query"],
                "policies": ["grandslam"],
                "retention": "sketch",
                "shards": 4,
                "slices_per_app": 2,
            }
        )
        assert spec.shards == 4
        (cell,) = spec.cells()
        assert cell.shards == 4
        assert cell.slices_per_app == 2


class TestCliBenchGuards:
    def test_bench_without_mode_is_argparse_error(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["bench"])
        assert exc.value.code == 2
        assert "--macro is required" in capsys.readouterr().err

    def test_bench_unknown_mode_is_argparse_error(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["bench", "--micro"])
        assert exc.value.code == 2

    def test_sharded_bench_requires_sketch_retention(self, capsys):
        from repro.cli import main

        code = main(
            ["bench", "--macro", "--retention", "full", "--shards", "2"]
        )
        assert code == 2
        assert "sketch" in capsys.readouterr().err


def test_run_sharded_requires_env_for_every_app():
    plan = ShardPlan.for_apps(["image-query", "amber-alert"])
    with pytest.raises(ValueError, match="amber-alert"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            run_sharded(plan, (EnvSpec(app="image-query"),), "grandslam")

"""Tests for the Offline Profiler: store, fitting, init estimates, campaigns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import voice_assistant
from repro.dag.models import get_profile
from repro.hardware import Backend, GroundTruthPerformance, HardwareConfig
from repro.profiler import (
    FunctionProfile,
    InitTimeEstimate,
    MetricKind,
    MetricSample,
    MetricStore,
    OfflineProfiler,
    ProfilingPlan,
    estimate_init_time,
    fit_latency_model,
    oracle_profile,
    smape,
)
from repro.profiler.fitting import FittedLatencyModel, mape


class TestMetricStore:
    def test_record_and_query_by_labels(self):
        store = MetricStore()
        store.record_timing("f1", "cpu-4", MetricKind.INFERENCE, 0.5, batch=2)
        store.record_timing("f1", "gpu-10", MetricKind.INIT, 5.0)
        store.record_timing("f2", "cpu-4", MetricKind.INFERENCE, 0.7)
        assert len(store) == 3
        assert len(store.query(function="f1")) == 2
        assert len(store.query(kind=MetricKind.INIT)) == 1
        assert len(store.query(function="f1", config_key="cpu-4", batch=2)) == 1

    def test_values_array(self):
        store = MetricStore()
        store.record_timing("f", "cpu-1", MetricKind.INIT, 1.0)
        store.record_timing("f", "cpu-1", MetricKind.INIT, 3.0)
        np.testing.assert_allclose(store.values(function="f"), [1.0, 3.0])

    def test_functions_listing(self):
        store = MetricStore()
        store.record_timing("b", "cpu-1", MetricKind.INIT, 1.0)
        store.record_timing("a", "cpu-1", MetricKind.INIT, 1.0)
        store.record_timing("b", "cpu-1", MetricKind.INIT, 1.0)
        assert store.functions() == ("b", "a")

    def test_clear(self):
        store = MetricStore()
        store.record_timing("f", "cpu-1", MetricKind.INIT, 1.0)
        store.clear()
        assert len(store) == 0

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            MetricSample("f", "cpu-1", 1, MetricKind.INIT, -1.0)
        with pytest.raises(ValueError):
            MetricSample("f", "cpu-1", 0, MetricKind.INIT, 1.0)


class TestFitting:
    def test_recovers_exact_law(self):
        # exact synthetic data from t = 2*B/r + 0.1*B + 0.05
        rng = np.random.default_rng(0)
        r = rng.choice([1, 2, 4, 8], size=40).astype(float)
        b = rng.choice([1, 2, 4], size=40).astype(float)
        t = 2.0 * b / r + 0.1 * b + 0.05
        model = fit_latency_model(r, b, t)
        assert model.a == pytest.approx(2.0, rel=1e-6)
        assert model.b == pytest.approx(0.1, rel=1e-6)
        assert model.c == pytest.approx(0.05, rel=1e-6)

    def test_prediction_interface_matches(self):
        model = FittedLatencyModel(a=1.0, b=0.1, c=0.02)
        assert model.latency(4, 2) == pytest.approx(1.0 * 2 / 4 + 0.1 * 2 + 0.02)
        np.testing.assert_allclose(
            model.predict(np.array([4.0]), np.array([2.0])), [model.latency(4, 2)]
        )

    def test_requires_two_resource_levels(self):
        with pytest.raises(ValueError, match="resource levels"):
            fit_latency_model(
                np.array([4.0, 4.0, 4.0]), np.array([1.0, 2.0, 4.0]), np.ones(3)
            )

    def test_requires_three_samples(self):
        with pytest.raises(ValueError, match="3 samples"):
            fit_latency_model(np.array([1.0, 2.0]), np.ones(2), np.ones(2))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_latency_model(np.ones(3), np.ones(4), np.ones(3))

    def test_noisy_fit_is_close(self):
        profile = get_profile("TRS")
        rng = np.random.default_rng(1)
        cores = rng.choice([1, 2, 4, 8, 16], size=100).astype(float)
        batch = rng.choice([2, 4, 8, 16, 32], size=100).astype(float)
        truth = np.array(
            [profile.cpu.latency(c, b) for c, b in zip(cores, batch)]
        )
        noisy = truth * rng.lognormal(0.0, 0.08, size=100)
        model = fit_latency_model(cores, batch, noisy)
        pred = model.predict(cores, batch)
        assert smape(truth, pred) < 20.0  # the paper's per-function bound


class TestErrorMetrics:
    def test_smape_zero_on_perfect(self):
        assert smape(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_smape_symmetry(self):
        a, p = np.array([1.0, 2.0]), np.array([2.0, 1.0])
        assert smape(a, p) == pytest.approx(smape(p, a))

    def test_smape_both_zero_pairs_ignored(self):
        assert smape(np.array([0.0, 1.0]), np.array([0.0, 1.0])) == 0.0

    def test_smape_bounded_by_200(self):
        assert smape(np.array([1.0]), np.array([0.0])) == pytest.approx(200.0)

    def test_mape_basic(self):
        assert mape(np.array([2.0]), np.array([1.0])) == pytest.approx(50.0)

    def test_mape_skips_zero_actuals(self):
        assert mape(np.array([0.0, 2.0]), np.array([5.0, 2.0])) == 0.0

    def test_mape_all_zero_raises(self):
        with pytest.raises(ValueError):
            mape(np.zeros(3), np.ones(3))

    @given(
        st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_smape_nonnegative_and_bounded(self, values):
        a = np.array(values)
        p = a * 1.3
        s = smape(a, p)
        assert 0.0 <= s <= 200.0


class TestInitEstimate:
    def test_mean_and_robust(self):
        est = estimate_init_time(np.array([4.0, 5.0, 6.0]))
        assert est.mean == pytest.approx(5.0)
        assert est.robust(0.0) == pytest.approx(5.0)
        assert est.robust(3.0) == pytest.approx(5.0 + 3 * est.std)
        assert est.n_samples == 3

    def test_robust_monotone_in_sigma(self):
        est = InitTimeEstimate(mean=5.0, std=0.5, n_samples=10)
        assert est.robust(1.0) < est.robust(2.0) < est.robust(3.0)

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            estimate_init_time(np.array([1.0]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            estimate_init_time(np.array([1.0, -2.0]))


class TestProfilingPlan:
    def test_paper_default_budget(self):
        plan = ProfilingPlan.paper_default()
        assert len(plan.cpu_grid()) == 25  # 5 batch sizes x 5 core counts
        assert len(plan.gpu_grid()) == 50  # 5 batch sizes x 10 fractions
        assert plan.init_repeats == 10

    def test_cpu_only_plan(self):
        plan = ProfilingPlan.cpu_only()
        assert plan.gpu_grid() == ()
        assert len(plan.cpu_grid()) == 25

    def test_validation(self):
        with pytest.raises(ValueError):
            ProfilingPlan(init_repeats=1)
        with pytest.raises(ValueError):
            ProfilingPlan(cpu_cores=(), gpu_fractions=())


class TestOfflineProfiler:
    @pytest.fixture
    def profiler(self):
        return OfflineProfiler()

    def test_profile_function_accuracy(self, profiler):
        """Fitted latency models reach the paper's SMAPE target (<20 %)."""
        perf = get_profile("SR")
        oracle = GroundTruthPerformance(perf, rng=0)
        prof = profiler.profile_function("SR", oracle)
        configs = [HardwareConfig.cpu(c) for c in (1, 2, 4, 8, 16)]
        configs += [HardwareConfig.gpu(f / 10) for f in range(1, 11)]
        actual = np.array([perf.expected_inference_time(c, 4) for c in configs])
        pred = np.array([prof.inference_time(c, 4) for c in configs])
        assert smape(actual, pred) < 20.0

    def test_profile_records_measurements(self, profiler):
        oracle = GroundTruthPerformance(get_profile("IR"), rng=1)
        profiler.profile_function("IR", oracle)
        # 25 CPU + 50 GPU inference samples + 2 x 10 init samples
        assert len(profiler.store.query(kind=MetricKind.INFERENCE)) == 75
        assert len(profiler.store.query(kind=MetricKind.INIT)) == 20

    def test_robust_init_above_mean(self, profiler):
        oracle = GroundTruthPerformance(get_profile("TG"), rng=2)
        prof = profiler.profile_function("TG", oracle)
        cfg = HardwareConfig.gpu(0.1)
        assert prof.init_time(cfg) > prof.mean_init_time(cfg)

    def test_profile_app_covers_all_functions(self, profiler):
        app = voice_assistant()
        profiles = profiler.profile_app(app, rng=3)
        assert set(profiles) == set(app.function_names)
        for p in profiles.values():
            assert isinstance(p, FunctionProfile)

    def test_cpu_only_profile_rejects_gpu_queries(self):
        profiler = OfflineProfiler(plan=ProfilingPlan.cpu_only())
        oracle = GroundTruthPerformance(get_profile("IR"), rng=4)
        prof = profiler.profile_function("IR", oracle)
        assert prof.supports(Backend.CPU)
        assert not prof.supports(Backend.GPU)
        with pytest.raises(ValueError):
            prof.inference_time(HardwareConfig.gpu(0.1))

    def test_with_n_sigma(self, profiler):
        oracle = GroundTruthPerformance(get_profile("QA"), rng=5)
        prof = profiler.profile_function("QA", oracle)
        relaxed = prof.with_n_sigma(0.0)
        cfg = HardwareConfig.cpu(1)
        assert relaxed.init_time(cfg) == pytest.approx(relaxed.mean_init_time(cfg))
        assert relaxed.init_time(cfg) < prof.init_time(cfg)


class TestOracleProfile:
    def test_matches_ground_truth_exactly(self):
        perf = get_profile("TRS")
        prof = oracle_profile(perf)
        for cfg in (HardwareConfig.cpu(4), HardwareConfig.gpu(0.5)):
            assert prof.inference_time(cfg, 3) == pytest.approx(
                perf.expected_inference_time(cfg, 3)
            )

    def test_zero_sigma_init_is_true_mean(self):
        perf = get_profile("TRS")
        prof = oracle_profile(perf)
        assert prof.init_time(HardwareConfig.gpu(0.2)) == pytest.approx(
            perf.init_gpu.mean
        )

"""Tests for the top-K path search and the reference searches (§V-C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.path_search import (
    DpSearch,
    ExhaustiveSearch,
    PathSearchOptimizer,
    build_candidates,
)
from repro.dag import image_query, linear_pipeline
from repro.hardware import ConfigurationSpace
from repro.profiler import oracle_profile


def make_setup(length=3, models=None):
    app = linear_pipeline(length, models=models)
    profiles = {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}
    return app, profiles


SPACE = ConfigurationSpace.default()


class TestCandidates:
    def test_sorted_by_cost(self):
        app, profiles = make_setup(2)
        cands = build_candidates(app.function_names, profiles, SPACE, 5.0)
        for fn, lst in cands.items():
            costs = [c.cost for c in lst]
            assert costs == sorted(costs)
            assert len(lst) == len(SPACE)

    def test_cpu_only_space_restricts(self):
        app, profiles = make_setup(2)
        cands = build_candidates(
            app.function_names, profiles, ConfigurationSpace.cpu_only(), 5.0
        )
        assert all(len(lst) == 5 for lst in cands.values())

    def test_invalid_it(self):
        app, profiles = make_setup(1)
        with pytest.raises(ValueError):
            build_candidates(app.function_names, profiles, SPACE, 0.0)


class TestTop1:
    def test_lenient_sla_picks_all_cheapest(self):
        """With a loose SLA the root node T^0 wins immediately (§V-C1)."""
        app, profiles = make_setup(3)
        opt = PathSearchOptimizer(SPACE)
        res = opt.optimize_path(app.function_names, profiles, 5.0, sla=60.0)
        cands = build_candidates(app.function_names, profiles, SPACE, 5.0)
        for fn in app.function_names:
            assert res.assignment[fn] == cands[fn][0].config
        assert res.feasible
        assert res.nodes_explored == 1

    def test_tight_sla_is_feasible(self):
        app, profiles = make_setup(4, models=("TRS", "TG", "SR", "OD"))
        opt = PathSearchOptimizer(SPACE)
        res = opt.optimize_path(app.function_names, profiles, 2.0, sla=2.5)
        assert res.feasible
        assert res.latency <= 2.5

    def test_impossible_sla_returns_fastest_infeasible(self):
        app, profiles = make_setup(3, models=("TRS", "TG", "SR"))
        opt = PathSearchOptimizer(SPACE)
        res = opt.optimize_path(app.function_names, profiles, 2.0, sla=0.01)
        assert not res.feasible
        # each function runs its minimum-latency configuration
        cands = build_candidates(app.function_names, profiles, SPACE, 2.0)
        for fn in app.function_names:
            fastest = min(cands[fn], key=lambda c: c.inference_time)
            assert res.assignment[fn] == fastest.config

    def test_stricter_sla_never_cheaper_for_exact_search(self):
        """Tightening the SLA can only raise the *optimal* cost."""
        app, profiles = make_setup(3, models=("TRS", "SR", "OD"))
        opt = ExhaustiveSearch(SPACE)
        costs = []
        for sla in (6.0, 4.0, 3.0, 2.0, 1.5):
            res = opt.optimize_path(app.function_names, profiles, 3.0, sla=sla)
            assert res.feasible
            costs.append(res.cost)
        assert all(later >= earlier - 1e-12 for earlier, later in zip(costs, costs[1:]))

    def test_empty_path_raises(self):
        _, profiles = make_setup(1)
        with pytest.raises(ValueError):
            PathSearchOptimizer(SPACE).optimize_path([], profiles, 1.0, 1.0)

    def test_nodes_explored_linear_in_path(self):
        """Fig. 16a: overhead grows ~linearly with the longest path."""
        opt = PathSearchOptimizer(SPACE)
        nodes = []
        for n in (2, 6, 12):
            app, profiles = make_setup(n)
            res = opt.optimize_path(app.function_names, profiles, 1.5, sla=2.0)
            nodes.append(res.nodes_explored)
        # O(N * M) bound: never more than path length x space size nodes
        assert nodes[2] <= 12 * len(SPACE) + 1
        assert nodes[0] < nodes[1] < nodes[2]


class TestAgainstExhaustive:
    @pytest.mark.parametrize("sla", [1.5, 2.0, 3.0, 6.0])
    def test_top1_feasible_whenever_exhaustive_is(self, sla):
        app, profiles = make_setup(3, models=("TRS", "SR", "QA"))
        greedy = PathSearchOptimizer(SPACE).optimize_path(
            app.function_names, profiles, 2.0, sla=sla
        )
        exact = ExhaustiveSearch(SPACE).optimize_path(
            app.function_names, profiles, 2.0, sla=sla
        )
        assert greedy.feasible == exact.feasible
        if exact.feasible:
            assert greedy.cost >= exact.cost - 1e-15  # exact is a lower bound

    def test_topk_at_least_as_good_as_top1(self):
        app, profiles = make_setup(4, models=("TRS", "TG", "SR", "OD"))
        top1 = PathSearchOptimizer(SPACE, top_k=1).optimize_path(
            app.function_names, profiles, 2.0, sla=2.5
        )
        top8 = PathSearchOptimizer(SPACE, top_k=8).optimize_path(
            app.function_names, profiles, 2.0, sla=2.5
        )
        assert top8.feasible
        assert top8.cost <= top1.cost + 1e-15

    def test_large_topk_matches_exhaustive(self):
        app, profiles = make_setup(3, models=("TRS", "SR", "QA"))
        beam = PathSearchOptimizer(SPACE, top_k=len(SPACE) ** 3).optimize_path(
            app.function_names, profiles, 2.0, sla=2.5
        )
        exact = ExhaustiveSearch(SPACE).optimize_path(
            app.function_names, profiles, 2.0, sla=2.5
        )
        assert beam.cost == pytest.approx(exact.cost)

    def test_dp_close_to_exhaustive(self):
        app, profiles = make_setup(3, models=("TRS", "SR", "QA"))
        dp = DpSearch(SPACE, n_bins=400).optimize_path(
            app.function_names, profiles, 2.0, sla=2.5
        )
        exact = ExhaustiveSearch(SPACE).optimize_path(
            app.function_names, profiles, 2.0, sla=2.5
        )
        assert dp.feasible
        # DP rounds latency up, so cost is within a small factor of exact
        assert dp.cost <= exact.cost * 1.25 + 1e-12

    @given(
        sla=st.floats(1.2, 8.0),
        it=st.floats(0.5, 30.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_greedy_always_sla_compliant_when_feasible(self, sla, it):
        app, profiles = make_setup(3, models=("TRS", "SR", "QA"))
        res = PathSearchOptimizer(SPACE).optimize_path(
            app.function_names, profiles, it, sla=sla
        )
        if res.feasible:
            assert res.latency <= sla + 1e-9


class TestExhaustiveApp:
    def test_dag_optimum_uses_critical_path(self):
        app = image_query()
        profiles = {
            s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs
        }
        res = ExhaustiveSearch(SPACE).optimize_app(app, profiles, 5.0)
        assert res.feasible
        assert res.latency <= app.sla
        # parallel branches share the fork latency: cheaper than summing
        # over the chain of all four functions
        chain_like = ExhaustiveSearch(SPACE).optimize_path(
            app.function_names, profiles, 5.0, sla=app.sla
        )
        assert res.cost <= chain_like.cost + 1e-15

"""Azure Functions CSV ingestion: parsing, scaling, replay, threading.

Builds tiny CSVs in the published dataset format — ``HashOwner,HashApp,
HashFunction,Trigger`` metadata followed by 1440 per-minute counts — and
pins the full pipeline: row parsing, the paper's minute→2 s compression,
deterministic replay/tiling through :class:`AzureTraceWorkload`, and the
``--azure-trace`` threading through environments and scenarios.
"""

import numpy as np
import pytest

from repro.experiments import EnvSpec, ScenarioSpec
from repro.experiments.runners import build_environment
from repro.workload.azure import AzureTraceWorkload
from repro.workload.dataset import (
    MINUTES_PER_DAY,
    PAPER_SCALE_FACTOR,
    load_invocation_counts,
    load_scaled_trace,
)

#: Scaled length of one replayed day: 1440 minutes compressed by 2/60.
SCALED_DAY = MINUTES_PER_DAY * 60.0 * PAPER_SCALE_FACTOR


def write_csv(path, rows):
    """``rows`` maps function hash -> {minute_index: count}."""
    header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
        str(i) for i in range(1, MINUTES_PER_DAY + 1)
    ]
    lines = [",".join(header)]
    for i, (fn_hash, counts) in enumerate(rows.items()):
        minute = ["0"] * MINUTES_PER_DAY
        for idx, count in counts.items():
            minute[idx] = str(count)
        lines.append(",".join([f"owner{i}", f"app{i}", fn_hash, "timer"] + minute))
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture
def csv_path(tmp_path):
    return write_csv(
        tmp_path / "invocations.csv",
        {
            # Busiest function: 3 invocations/minute for the first 200 min.
            "fbusy": {i: 3 for i in range(200)},
            "fsparse": {0: 1, 700: 2},
            "fnever": {},
        },
    )


# ----------------------------------------------------------------- parsing
def test_load_invocation_counts_parses_and_filters(csv_path):
    rows = load_invocation_counts(csv_path)
    assert set(rows) == {"fbusy", "fsparse"}  # never-invoked row dropped
    assert rows["fbusy"].sum() == 600
    assert rows["fsparse"].sum() == 3
    assert rows["fbusy"].shape == (MINUTES_PER_DAY,)


def test_load_invocation_counts_rejects_ragged_rows(tmp_path):
    path = tmp_path / "bad.csv"
    header = ",".join(
        ["HashOwner", "HashApp", "HashFunction", "Trigger"]
        + [str(i) for i in range(1, MINUTES_PER_DAY + 1)]
    )
    path.write_text(header + "\no,a,f,timer,1,2,3\n")
    with pytest.raises(ValueError, match="ragged"):
        load_invocation_counts(path)


def test_load_scaled_trace_defaults_to_busiest_function(csv_path):
    day = load_scaled_trace(csv_path)
    assert len(day) == 600  # fbusy selected
    assert day.duration == pytest.approx(SCALED_DAY)
    # The 200 busy minutes compress to the first 200 * 2 s of the day.
    assert day.times.max() < 200 * 60.0 * PAPER_SCALE_FACTOR
    with pytest.raises(KeyError, match="not in"):
        load_scaled_trace(csv_path, "missing")


# ------------------------------------------------------------------ replay
def test_azure_workload_replay_is_deterministic(csv_path):
    w = AzureTraceWorkload(str(csv_path))
    a = w.generate(300.0, seed=5)
    b = w.generate(300.0, seed=5)
    c = w.generate(300.0, seed=6)
    assert a == b
    assert a != c
    assert a.duration == 300.0
    assert np.all(a.times < 300.0)


def test_azure_workload_tiles_past_one_day(csv_path):
    w = AzureTraceWorkload(str(csv_path), function_hash="fbusy")
    duration = SCALED_DAY * 2.5
    trace = w.generate(duration, seed=0)
    assert trace.duration == pytest.approx(duration)
    # Two full days plus the leading half of a third.
    day = w.generate(SCALED_DAY, seed=0)
    assert len(trace) > 2 * len(day)
    # Tiling shifts whole days: the second day repeats the first.
    second_day = trace.slice(SCALED_DAY, 2 * SCALED_DAY)
    assert np.allclose(second_day.times, day.times)


def test_azure_workload_custom_scale(csv_path):
    paper = AzureTraceWorkload(str(csv_path)).generate(100.0, seed=1)
    slower = AzureTraceWorkload(
        str(csv_path), scale=2 * PAPER_SCALE_FACTOR
    ).generate(100.0, seed=1)
    # Half the compression → roughly half the arrivals in the same window.
    assert len(slower) < len(paper)


def test_azure_workload_rejects_empty_function(tmp_path):
    path = write_csv(tmp_path / "one.csv", {"only": {0: 1}})
    w = AzureTraceWorkload(str(path), function_hash="only")
    assert len(w.generate(10.0)) >= 0  # busiest row replays fine
    bad = write_csv(tmp_path / "none.csv", {"empty": {}})
    with pytest.raises(ValueError, match="no functions above"):
        AzureTraceWorkload(str(bad)).generate(10.0)


# --------------------------------------------------------------- threading
def test_build_environment_replays_csv_for_eval_only(csv_path):
    env = build_environment(
        "image-query",
        sla=2.0,
        duration=120.0,
        train_duration=600.0,
        seed=0,
        azure_trace=str(csv_path),
    )
    expected = AzureTraceWorkload(str(csv_path)).generate(120.0, seed=1000)
    assert env.trace == expected
    # Training history stays synthetic (one replayed day for both would
    # leak the eval arrivals into predictor training).
    assert env.train_counts.sum() != len(env.trace)
    assert env.spec.azure_trace == str(csv_path)


def test_scenario_spec_threads_azure_trace(csv_path):
    spec = ScenarioSpec.from_dict(
        {
            "apps": ["image-query"],
            "policies": ["on-demand"],
            "duration": 60.0,
            "azure_trace": str(csv_path),
        }
    )
    cells = spec.cells()
    assert all(c.env.azure_trace == str(csv_path) for c in cells)
    env = EnvSpec(app="image-query", azure_trace=str(csv_path))
    again = ScenarioSpec.for_environment(env, policies=("on-demand",))
    assert again.azure_trace == str(csv_path)


def test_scenario_runs_on_azure_trace_end_to_end(csv_path):
    from repro.experiments.parallel import CellSpec, run_cell

    spec = CellSpec(
        env=EnvSpec(
            app="image-query",
            sla=2.0,
            duration=120.0,
            train_duration=600.0,
            azure_trace=str(csv_path),
        ),
        policy="on-demand",
    )
    res = run_cell(spec)
    x = res.extras
    assert x["arrivals"] == x["completed"] + x["unfinished"] + x["timed_out"]
    assert x["arrivals"] == len(
        AzureTraceWorkload(str(csv_path)).generate(120.0, seed=1000)
    )

"""Tests for timer cancellation, lazy deletion and sequence reservation."""

import pytest

from repro.simulator import EventQueue
from repro.simulator.events import COMPACT_MIN_DEAD


class TestTimerCancellation:
    def test_cancelled_timer_never_fires(self):
        q = EventQueue()
        fired = []
        handle = q.schedule(1.0, lambda: fired.append("cancelled"))
        q.schedule(2.0, lambda: fired.append("kept"))
        assert handle.cancel() is True
        q.run()
        assert fired == ["kept"]

    def test_cancel_reports_pending_state(self):
        q = EventQueue()
        handle = q.schedule(1.0, lambda: None)
        assert handle.active
        assert handle.cancel() is True
        assert not handle.active

    def test_double_cancel_is_noop(self):
        q = EventQueue()
        handle = q.schedule(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False
        assert len(q) == 0

    def test_cancel_after_fire_is_noop(self):
        q = EventQueue()
        handle = q.schedule(1.0, lambda: None)
        q.run()
        assert not handle.active
        assert handle.cancel() is False

    def test_len_counts_live_events_only(self):
        q = EventQueue()
        handles = [q.schedule(float(i), lambda: None) for i in range(1, 6)]
        handles[0].cancel()
        handles[3].cancel()
        assert len(q) == 3
        assert q.heap_size >= 3

    def test_cancelled_head_skipped_by_run_until(self):
        q = EventQueue()
        fired = []
        head = q.schedule(1.0, lambda: fired.append("head"))
        q.schedule(2.0, lambda: fired.append("tail"))
        head.cancel()
        q.run_until(5.0)
        assert fired == ["tail"]
        assert q.now == 5.0

    def test_interleaved_cancel_preserves_order(self):
        q = EventQueue()
        fired = []
        handles = {}
        for tag in "abcdef":
            handles[tag] = q.schedule(1.0, lambda t=tag: fired.append(t))
        handles["b"].cancel()
        handles["e"].cancel()
        q.run()
        assert fired == ["a", "c", "d", "f"]


class TestHeapCompaction:
    def test_compaction_triggers_when_dead_dominate(self):
        q = EventQueue()
        keep = [q.schedule(100.0 + i, lambda: None) for i in range(4)]
        doomed = [
            q.schedule(50.0 + i, lambda: None)
            for i in range(2 * COMPACT_MIN_DEAD)
        ]
        for h in doomed:
            h.cancel()
        assert q.compactions >= 1
        # Compaction swept the majority-dead heap; lazy deletion may leave
        # a sub-threshold remainder of dead entries behind.
        assert q.heap_size < len(keep) + len(doomed)
        assert len(q) == len(keep)

    def test_no_compaction_below_dead_floor(self):
        q = EventQueue()
        for i in range(4):
            q.schedule(float(i + 1), lambda: None)
        q.schedule(99.0, lambda: None).cancel()  # 1 dead of 5: majority-dead
        assert q.compactions == 0

    def test_queue_correct_after_compaction(self):
        q = EventQueue()
        fired = []
        q.schedule(10.0, lambda: fired.append("late"))
        doomed = [
            q.schedule(1.0 + i, lambda: fired.append("dead"))
            for i in range(2 * COMPACT_MIN_DEAD)
        ]
        q.schedule(5.0, lambda: fired.append("mid"))
        for h in doomed:
            h.cancel()
        q.run()
        assert fired == ["mid", "late"]

    def test_processed_counts_fired_events(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None).cancel()
        q.schedule(3.0, lambda: None)
        q.run()
        assert q.processed == 2


class TestSequenceReservation:
    def test_reserved_seqs_win_time_ties_over_later_schedules(self):
        q = EventQueue()
        fired = []
        base = q.reserve(2)
        q.schedule(1.0, lambda: fired.append("fresh"))  # seq after the block
        q.schedule(1.0, lambda: fired.append("r0"), seq=base)
        q.schedule(1.0, lambda: fired.append("r1"), seq=base + 1)
        q.run()
        assert fired == ["r0", "r1", "fresh"]

    def test_reserve_blocks_are_contiguous_and_disjoint(self):
        q = EventQueue()
        a = q.reserve(3)
        b = q.reserve(2)
        assert b == a + 3
        handle = q.schedule(1.0, lambda: None)
        assert handle.seq == b + 2

    def test_reserve_rejects_negative(self):
        with pytest.raises(ValueError):
            EventQueue().reserve(-1)

    def test_streamed_chain_matches_prepushed_order(self):
        """A lazily streamed producer ties exactly like a pre-pushed one."""

        def run_prepushed():
            q = EventQueue()
            fired = []
            for i in range(3):
                q.schedule(1.0 * (i + 1), lambda i=i: fired.append(("a", i)))
            for k in range(3):
                q.schedule(1.0 * (k + 1), lambda k=k: fired.append(("t", k)))
            q.run()
            return fired

        def run_streamed():
            q = EventQueue()
            fired = []
            a_base = q.reserve(3)
            t_base = q.reserve(3)

            def arrival(i):
                def fire():
                    if i + 1 < 3:
                        q.schedule(
                            1.0 * (i + 2), arrival(i + 1), seq=a_base + i + 1
                        )
                    fired.append(("a", i))

                return fire

            def tick(k):
                def fire():
                    if k + 1 < 3:
                        q.schedule(
                            1.0 * (k + 2), tick(k + 1), seq=t_base + k + 1
                        )
                    fired.append(("t", k))

                return fire

            q.schedule(1.0, arrival(0), seq=a_base)
            q.schedule(1.0, tick(0), seq=t_base)
            q.run()
            return fired

        assert run_streamed() == run_prepushed()

"""Behavioural tests for the fault-injection plane and resilience machinery.

Each fault family gets a targeted scenario — machine outages, mid-flight
execution failures, deadlines, init-failure crash loops, GPU starvation —
plus the acceptance property: under a mid-run machine outage with
execution faults, every registered policy completes the trace with *no
lost invocations* (``arrivals == completed + unfinished + timed_out``),
bit-exact trace reconstruction, balanced per-instance billing and an
empty cluster afterwards.
"""

import math

import pytest

from repro.dag import linear_pipeline
from repro.experiments import build_environment
from repro.experiments.parallel import CellSpec, EnvSpec, cell_trace_path, run_grid
from repro.experiments.runners import POLICY_NAMES
from repro.faults import (
    ExecutionFault,
    FaultPlan,
    InitFailureBurst,
    LatencyStraggler,
    MachineOutage,
    ResilienceSpec,
)
from repro.hardware import HardwareConfig
from repro.policies import AlwaysOnPolicy, OnDemandPolicy
from repro.policies.base import Policy
from repro.simulator import (
    Cluster,
    Deployment,
    FunctionDirective,
    MultiAppSimulator,
    ServerlessSimulator,
)
from repro.telemetry import TraceRecorder, aggregate, aggregate_all, read_jsonl
from repro.telemetry.events import (
    ExecutionFailed,
    FallbackActivated,
    InstanceExpired,
    InvocationTimedOut,
    MachineDown,
    MachineUp,
    PrewarmMiss,
    StageRetried,
)
from repro.workload import Trace, constant_rate_process


def assert_conserved(trace, metrics):
    """No invocation is ever lost: every arrival lands in exactly one bin."""
    assert len(trace) == (
        len(metrics.invocations) + metrics.unfinished + metrics.timed_out
    )


def assert_reconstructs(live, rebuilt):
    """Trace-derived metrics equal the live counters, faults included."""
    assert rebuilt.timed_out == live.timed_out
    assert rebuilt.stage_retries == live.stage_retries
    assert rebuilt.failed_executions == live.failed_executions
    assert rebuilt.fallbacks == live.fallbacks
    assert rebuilt.failed_initializations == live.failed_initializations
    a, b = rebuilt.summary(), live.summary()
    assert a.keys() == b.keys()
    for key in a:
        if isinstance(a[key], float) and math.isnan(a[key]):
            assert math.isnan(b[key])
        else:
            assert a[key] == b[key], key


def expiry_reasons(rec):
    return [e.reason for e in rec if isinstance(e, InstanceExpired)]


class FixedConfigPolicy(Policy):
    """Minimal policy: one fixed config, demand-driven launches only."""

    name = "fixed-config"

    def __init__(self, config, keep_alive=5.0):
        self.config = config
        self.keep_alive = keep_alive

    def on_register(self, app, ctx):
        for fn in app.function_names:
            ctx.set_directive(
                fn,
                FunctionDirective(
                    config=self.config,
                    keep_alive=self.keep_alive,
                    warm_grace=0.0,
                ),
            )


class PrewarmOncePolicy(FixedConfigPolicy):
    """Fixed config plus one pre-warm of the first function at ``fire_at``."""

    name = "prewarm-once"

    def __init__(self, config, keep_alive, fire_at):
        super().__init__(config, keep_alive)
        self.fire_at = fire_at

    def on_register(self, app, ctx):
        super().on_register(app, ctx)
        ctx.schedule_warmup(app.function_names[0], self.fire_at)


# --------------------------------------------------------------- outages
class TestMachineOutages:
    def test_outage_evicts_requeues_and_recovers(self):
        app = linear_pipeline(2, models=("IR", "DB"))
        trace = constant_rate_process(5.0, 60.0, offset=5.0)
        plan = FaultPlan(
            outages=(MachineOutage(machine=0, start=20.05, end=32.0),),
            resilience=ResilienceSpec(max_retries=10, retry_backoff=0.1),
        )
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app, trace, AlwaysOnPolicy(), seed=0, faults=plan, recorder=rec
        ).run()
        # No invocation lost: the displaced work retried and completed.
        assert_conserved(trace, m)
        assert m.unfinished == 0 and m.timed_out == 0
        reasons = expiry_reasons(rec)
        assert reasons.count("machine-failed") > 0
        assert m.stage_retries > 0
        assert any(isinstance(e, MachineDown) for e in rec)
        assert any(isinstance(e, MachineUp) for e in rec)
        assert_reconstructs(m, aggregate(rec.events, app=app.name))

    def test_outage_on_unknown_machine_rejected(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([5.0], duration=20.0)
        plan = FaultPlan(outages=(MachineOutage(machine=99, start=1.0),))
        with pytest.raises(ValueError, match="only"):
            ServerlessSimulator(
                app, trace, AlwaysOnPolicy(), seed=0, faults=plan
            ).run()


# ------------------------------------------------------- execution faults
class TestExecutionFaults:
    def test_faults_retry_and_conserve(self):
        app = linear_pipeline(2, models=("IR", "DB"))
        trace = constant_rate_process(4.0, 80.0, offset=4.0)
        plan = FaultPlan(
            execution_faults=(ExecutionFault(rate=0.3),),
            resilience=ResilienceSpec(max_retries=20, retry_backoff=0.05),
        )
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app, trace, AlwaysOnPolicy(), seed=0, faults=plan, recorder=rec
        ).run()
        assert m.failed_executions > 0
        assert m.stage_retries > 0
        assert m.timed_out == 0
        assert_conserved(trace, m)
        assert sum(isinstance(e, ExecutionFailed) for e in rec) == (
            m.failed_executions
        )
        assert sum(isinstance(e, StageRetried) for e in rec) == m.stage_retries
        assert "execution-failed" in expiry_reasons(rec)
        assert_reconstructs(m, aggregate(rec.events, app=app.name))

    def test_retry_budget_exhaustion_abandons(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([5.0, 15.0, 25.0], duration=40.0)
        plan = FaultPlan(
            execution_faults=(ExecutionFault(rate=1.0),),
            resilience=ResilienceSpec(max_retries=2, retry_backoff=0.0),
        )
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app, trace, OnDemandPolicy(), seed=0, faults=plan, recorder=rec
        ).run()
        # Every invocation burns its full budget, then is abandoned.
        assert len(m.invocations) == 0
        assert m.timed_out == len(trace)
        assert m.unfinished == 0
        assert_conserved(trace, m)
        assert m.failed_executions == len(trace) * 3  # initial + 2 retries
        assert m.stage_retries == len(trace) * 2
        timeouts = [e for e in rec if isinstance(e, InvocationTimedOut)]
        assert [e.reason for e in timeouts] == ["retries-exhausted"] * 3
        assert_reconstructs(m, aggregate(rec.events, app=app.name))


# ------------------------------------------------------------- deadlines
class TestDeadlines:
    def test_deadline_abandons_straggling_invocations(self):
        app = linear_pipeline(2, models=("IR", "DB"))  # sla = 2.0
        trace = Trace([5.0, 15.0], duration=40.0)
        plan = FaultPlan(
            stragglers=(LatencyStraggler(factor=40.0),),
            resilience=ResilienceSpec(deadline_factor=2.0),
        )
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app, trace, AlwaysOnPolicy(), seed=0, faults=plan, recorder=rec
        ).run()
        assert m.timed_out == len(trace)
        assert len(m.invocations) == 0
        assert_conserved(trace, m)
        timeouts = [e for e in rec if isinstance(e, InvocationTimedOut)]
        assert all(e.reason == "deadline" for e in timeouts)
        # Abandonment fires exactly at deadline_factor x SLA after arrival.
        assert all(e.age == pytest.approx(2.0 * app.sla) for e in timeouts)
        assert_reconstructs(m, aggregate(rec.events, app=app.name))

    def test_deadline_cancelled_on_timely_completion(self):
        app = linear_pipeline(2, models=("IR", "DB"))
        trace = constant_rate_process(10.0, 40.0, offset=5.0)
        plan = FaultPlan(resilience=ResilienceSpec(deadline_factor=10.0))
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app, trace, AlwaysOnPolicy(), seed=0, faults=plan, recorder=rec
        ).run()
        assert m.timed_out == 0
        assert len(m.invocations) == len(trace)
        assert not any(isinstance(e, InvocationTimedOut) for e in rec)


# ----------------------------------------------- init bursts / crash loops
class TestInitFailureBursts:
    def test_crash_loop_capped_then_falls_back(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([5.0], duration=30.0)
        plan = FaultPlan(
            init_failure_bursts=(InitFailureBurst(rate=1.0),),
            resilience=ResilienceSpec(
                max_crash_loop=3, fallback_after=1, fallback_config="cpu-16"
            ),
        )
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app,
            trace,
            FixedConfigPolicy(HardwareConfig.cpu(4)),
            seed=0,
            faults=plan,
            recorder=rec,
        ).run()
        # 3 cpu-4 attempts, crash-loop fallback, 3 cpu-16 attempts, stop:
        # the loop terminates instead of relaunching forever.
        assert m.failed_initializations == 6
        assert m.fallbacks == 1
        fallbacks = [e for e in rec if isinstance(e, FallbackActivated)]
        assert [e.reason for e in fallbacks] == ["crash-loop"]
        assert fallbacks[0].from_config == "cpu-4"
        assert fallbacks[0].to_config == "cpu-16"
        # The invocation never ran but is still accounted for.
        assert m.unfinished == 1
        assert_conserved(trace, m)
        assert_reconstructs(m, aggregate(rec.events, app=app.name))

    def test_burst_window_passes_and_service_recovers(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([12.0], duration=30.0)
        plan = FaultPlan(
            init_failure_bursts=(InitFailureBurst(rate=1.0, start=0.0, end=10.0),)
        )
        m = ServerlessSimulator(
            app,
            trace,
            FixedConfigPolicy(HardwareConfig.cpu(4)),
            seed=0,
            faults=plan,
        ).run()
        # Launch happens after the burst window: init succeeds first try.
        assert m.failed_initializations == 0
        assert len(m.invocations) == 1


# ------------------------------------------------------- GPU starvation
class TestGpuStarvationFallback:
    def test_starved_gpu_function_degrades_to_cpu(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace([5.0], duration=30.0)
        cluster = Cluster.build(n_machines=1, gpu_slots_per_machine=0)
        plan = FaultPlan(
            resilience=ResilienceSpec(fallback_after=1, fallback_config="cpu-16")
        )
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app,
            trace,
            FixedConfigPolicy(HardwareConfig.gpu(0.3)),
            seed=0,
            cluster=cluster,
            faults=plan,
            recorder=rec,
        ).run()
        assert m.fallbacks == 1
        fallbacks = [e for e in rec if isinstance(e, FallbackActivated)]
        assert [e.reason for e in fallbacks] == ["gpu-starvation"]
        assert fallbacks[0].from_config == "gpu-30"
        assert fallbacks[0].to_config == "cpu-16"
        # Degraded service still completes the invocation on CPU.
        assert len(m.invocations) == 1
        assert m.unfinished == 0
        assert_reconstructs(m, aggregate(rec.events, app=app.name))


# --------------------------------------------------- PrewarmMiss emission
class TestPrewarmMissPin:
    """A PrewarmMiss means the warm-up *prediction* was wrong — shutdown
    and fault-injected kills must not count (satellite fix)."""

    APP = ("IR",)

    def run(self, policy, faults=None, duration=30.0):
        app = linear_pipeline(1, models=self.APP)
        trace = Trace([1.0], duration=duration)
        rec = TraceRecorder()
        m = ServerlessSimulator(
            app, trace, policy, seed=0, faults=faults, recorder=rec
        ).run()
        return m, rec

    def test_no_miss_at_run_shutdown(self):
        policy = PrewarmOncePolicy(
            HardwareConfig.cpu(4), keep_alive=1000.0, fire_at=20.0
        )
        m, rec = self.run(policy)
        assert "shutdown" in expiry_reasons(rec)
        assert not any(isinstance(e, PrewarmMiss) for e in rec)

    def test_no_miss_when_machine_fails(self):
        plan = FaultPlan(
            outages=(MachineOutage(machine=0, start=25.0, end=28.0),)
        )
        policy = PrewarmOncePolicy(
            HardwareConfig.cpu(4), keep_alive=1000.0, fire_at=20.0
        )
        m, rec = self.run(policy, faults=plan)
        assert "machine-failed" in expiry_reasons(rec)
        assert not any(isinstance(e, PrewarmMiss) for e in rec)

    def test_genuine_expiry_still_a_miss(self):
        policy = PrewarmOncePolicy(
            HardwareConfig.cpu(4), keep_alive=3.0, fire_at=15.0
        )
        m, rec = self.run(policy)
        misses = [e for e in rec if isinstance(e, PrewarmMiss)]
        assert len(misses) == 1


# --------------------------------------------------- acceptance property
@pytest.fixture(scope="module")
def chaos_env():
    return build_environment(
        "image-query", preset="steady", sla=2.0, duration=60.0,
        train_duration=400.0, seed=0,
    )


@pytest.fixture(scope="module")
def chaos_plan(chaos_env):
    # Outage lands just after a mid-trace arrival, so work is in flight.
    trace = chaos_env.trace
    t0 = float(trace.times[len(trace) // 2]) + 0.05
    return FaultPlan(
        outages=(MachineOutage(machine=0, start=t0, end=t0 + 8.0),),
        execution_faults=(ExecutionFault(rate=0.15),),
        resilience=ResilienceSpec(max_retries=8, retry_backoff=0.2),
    )


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_no_invocation_lost_under_chaos(chaos_env, chaos_plan, policy):
    """Acceptance: mid-run outage + execution faults under every policy."""
    env = chaos_env
    rec = TraceRecorder()
    sim = ServerlessSimulator(
        env.app,
        env.trace,
        env.make_policy(policy),
        seed=3,
        faults=chaos_plan,
        recorder=rec,
    )
    live = sim.run()
    # Conservation: every arrival is completed, unfinished or timed out.
    assert_conserved(env.trace, live)
    # The chaos actually bit and was absorbed.
    assert live.stage_retries > 0
    assert expiry_reasons(rec).count("machine-failed") > 0
    # Trace-derived metrics equal the live counters exactly.
    assert_reconstructs(live, aggregate(rec.events, app=env.app.name))
    # Per-instance billing stays balanced through evictions and retries.
    for usage in live.instances:
        assert usage.lifetime == pytest.approx(
            usage.init_seconds + usage.busy_seconds + usage.idle_seconds
        )
    # Every allocation was released: the cluster ends empty.
    assert sim.cluster.cores_used() == 0
    assert sim.cluster.gpu_slots_used() == 0


def test_multiapp_conservation_under_chaos(chaos_env):
    envs = [
        chaos_env,
        build_environment(
            "amber-alert", preset="steady", sla=2.0, duration=60.0,
            train_duration=400.0, seed=1,
        ),
    ]
    plan = FaultPlan(
        outages=(MachineOutage(machine=0, start=20.05, end=28.0),),
        execution_faults=(ExecutionFault(rate=0.15),),
        resilience=ResilienceSpec(max_retries=8, retry_backoff=0.2),
    )
    rec = TraceRecorder()
    sim = MultiAppSimulator(
        [Deployment(e.app, e.trace, e.make_policy("on-demand")) for e in envs],
        seed=3,
        faults=plan,
        recorder=rec,
    )
    live = sim.run()
    rebuilt = aggregate_all(rec.events)
    assert set(rebuilt) == set(live)
    for env in envs:
        m = live[env.app.name]
        assert_conserved(env.trace, m)
        assert_reconstructs(m, rebuilt[env.app.name])
    assert sum(m.stage_retries for m in live.values()) > 0
    assert sim.cluster.cores_used() == 0
    assert sim.cluster.gpu_slots_used() == 0


# ------------------------------------------------------ chaos determinism
def test_chaos_grid_bit_identical_serial_vs_parallel(tmp_path):
    """Same seed + same plan => identical summaries and JSONL bytes,
    whether cells run serially or fan across worker processes."""
    plan = FaultPlan(
        outages=(MachineOutage(machine=0, start=20.05, end=28.0),),
        execution_faults=(ExecutionFault(rate=0.2),),
        resilience=ResilienceSpec(max_retries=6, retry_backoff=0.1),
    )
    env = EnvSpec(app="image-query", duration=60.0, train_duration=400.0)

    def cells(trace_dir):
        return [
            CellSpec(
                env=env, policy=p, sim_seed=3,
                trace_dir=str(trace_dir), faults=plan,
            )
            for p in ("always-on", "on-demand")
        ]

    serial = run_grid(cells(tmp_path / "serial"), workers=1)
    parallel = run_grid(cells(tmp_path / "parallel"), workers=2)
    assert [r.summary for r in serial] == [r.summary for r in parallel]
    for cs, cp in zip(cells(tmp_path / "serial"), cells(tmp_path / "parallel")):
        assert cell_trace_path(cs).read_bytes() == cell_trace_path(cp).read_bytes()
    # The runs really were chaotic, not trivially identical no-fault runs.
    events = read_jsonl(cell_trace_path(cells(tmp_path / "serial")[0]))
    assert any(isinstance(e, StageRetried) for e in events)
    assert any(isinstance(e, MachineDown) for e in events)

"""Pluggable service-time / residency models (the perf-model seam).

Differential tests pin the refactor's bit-identity claim (the extracted
:class:`FixedServiceTime` equals the inline Eq. 1/2 evaluation exactly),
property tests pin the beyond-paper regimes' invariants: token-driven
service times are strictly monotone in both token counts, and swap-in is
strictly cheaper than a GPU cold start wherever swapping is allowed.
"""

import dataclasses

import numpy as np
import pytest

from repro.dag.apps import image_query_swap, llm_chat, llm_profile
from repro.dag.models import get_model, model_names
from repro.hardware.configs import Backend, ConfigurationSpace, HardwareConfig
from repro.hardware.perfmodel import (
    GroundTruthPerformance,
    InitTimeParams,
    LatencyParams,
    PerfProfile,
)
from repro.hardware.servicetime import (
    FixedServiceTime,
    PerformanceOracle,
    ServiceTimeModel,
    TokenServiceTime,
    WorkUnit,
    resources_of,
)
from repro.workload.generator import TokenWorkModel

SPACE = ConfigurationSpace.default()


# --------------------------------------------------------- differential
@pytest.mark.parametrize("name", model_names())
def test_fixed_model_matches_inline_law_bitwise(name):
    """FixedServiceTime is the Eq. 1/2 law, float for float.

    Registry profiles carry no ``service_model``, so
    ``expected_inference_time`` takes the inline path; the extracted model
    must reproduce it exactly (same expression, same operation order) for
    every configuration and batch size.
    """
    profile = get_model(name).profile
    assert profile.service_model is None
    model = FixedServiceTime(cpu=profile.cpu, gpu=profile.gpu)
    for config in SPACE.configs:
        for batch in (1, 2, 7, profile.max_batch):
            assert model.expected(config, batch) == (
                profile.expected_inference_time(config, batch)
            )


def test_protocol_conformance():
    fixed = FixedServiceTime(cpu=None, gpu=None)
    token = llm_profile().service_model
    assert isinstance(fixed, ServiceTimeModel)
    assert isinstance(token, ServiceTimeModel)
    oracle = GroundTruthPerformance(get_model("TRS").profile, rng=0)
    assert isinstance(oracle, PerformanceOracle)


def test_resources_of_selects_backend_quantity():
    assert resources_of(HardwareConfig.cpu(4)) == 4.0
    assert resources_of(HardwareConfig.gpu(0.3)) == 0.3


# ----------------------------------------------------------- work units
def test_work_unit_validation_and_combine():
    with pytest.raises(ValueError):
        WorkUnit(tokens_in=0, tokens_out=0)
    with pytest.raises(ValueError):
        WorkUnit(tokens_in=-1, tokens_out=4)
    combined = WorkUnit.combine(
        [WorkUnit(10, 200), WorkUnit(80, 30), WorkUnit(5, 5)]
    )
    assert combined == WorkUnit(tokens_in=80, tokens_out=200)
    with pytest.raises(ValueError):
        WorkUnit.combine([])


def test_token_work_model_is_seed_deterministic_and_bounded():
    model = TokenWorkModel()
    a = [model.sample(np.random.default_rng(11)) for _ in range(1)]
    b = [model.sample(np.random.default_rng(11)) for _ in range(1)]
    assert a == b
    rng = np.random.default_rng(7)
    for _ in range(500):
        w = model.sample(rng)
        assert 1 <= w.tokens_in <= model.max_tokens
        assert 1 <= w.tokens_out <= model.max_tokens


# --------------------------------------------------- token monotonicity
def _token_model() -> TokenServiceTime:
    model = llm_profile().service_model
    assert isinstance(model, TokenServiceTime)
    return model


@pytest.mark.parametrize("config", SPACE.configs, ids=lambda c: c.key)
def test_token_service_time_monotone_in_both_token_counts(config):
    """More tokens can never be faster — strictly, in each dimension."""
    model = _token_model()
    rng = np.random.default_rng(42)
    for _ in range(50):
        t_in = int(rng.integers(1, 2000))
        t_out = int(rng.integers(1, 2000))
        d_in = int(rng.integers(1, 500))
        d_out = int(rng.integers(1, 500))
        base = model.expected(config, 1, WorkUnit(t_in, t_out))
        assert model.expected(config, 1, WorkUnit(t_in + d_in, t_out)) > base
        assert model.expected(config, 1, WorkUnit(t_in, t_out + d_out)) > base


def test_token_split_sums_to_expected_minus_overhead():
    model = _token_model()
    config = HardwareConfig.gpu(0.5)
    work = WorkUnit(tokens_in=333, tokens_out=77)
    prefill, decode = model.split(config, 2, work)
    assert prefill > 0 and decode > 0
    total = model.expected(config, 2, work)
    assert total == pytest.approx(prefill + decode + model.gpu.gamma)


def test_token_equivalent_law_matches_typical_work():
    """Collapsing the token model at typical work is exactly Eq. 1/2."""
    model = _token_model()
    for backend in (Backend.CPU, Backend.GPU):
        lam, alpha, beta, gamma = model.equivalent_law(backend)
        params = LatencyParams(lam=lam, alpha=alpha, beta=beta, gamma=gamma)
        configs = (
            SPACE.cpu_configs() if backend is Backend.CPU else SPACE.gpu_configs()
        )
        for config in configs:
            for batch in (1, 3, 8):
                assert params.latency(resources_of(config), batch) == (
                    pytest.approx(model.expected(config, batch))
                )


def test_llm_profile_carries_its_own_equivalent_law():
    """The profile's LatencyParams answer planning queries consistently."""
    profile = llm_profile()
    for config in SPACE.configs:
        assert profile.expected_inference_time(config, 4) == pytest.approx(
            profile.service_model.expected(config, 4)
        )
        inline = (
            profile.cpu.latency(config.cpu_cores, 4)
            if config.backend is Backend.CPU
            else profile.gpu.latency(config.gpu_fraction, 4)
        )
        assert inline == pytest.approx(profile.expected_inference_time(config, 4))


# ------------------------------------------------------- swap invariants
def test_swap_in_must_beat_cold_start_validated():
    base = get_model("TRS").profile
    with pytest.raises(ValueError, match="swap-in must beat a cold start"):
        dataclasses.replace(
            base,
            swap_gpu=InitTimeParams(
                mean=base.init_gpu.mean * 2.0, std=0.1
            ),
        )


def test_swap_capable_profiles_swap_strictly_faster():
    app = image_query_swap()
    for spec in app.specs:
        profile = spec.profile
        assert profile.swap_capable
        assert profile.swap_gpu.mean < profile.init_gpu.mean
        oracle = GroundTruthPerformance(profile, rng=0, noisy=False)
        for config in SPACE.gpu_configs():
            assert oracle.swap_in_time(config) < oracle.init_time(config)
            assert profile.expected_swap_time(config) == profile.swap_gpu.mean
        assert profile.expected_swap_time(HardwareConfig.cpu(4)) is None


def test_swap_time_refused_off_gpu_and_on_fixed_profiles():
    swap_profile = image_query_swap().specs[0].profile
    oracle = GroundTruthPerformance(swap_profile, rng=0)
    with pytest.raises(ValueError, match="cannot swap"):
        oracle.swap_in_time(HardwareConfig.cpu(4))
    fixed = GroundTruthPerformance(get_model("TRS").profile, rng=0)
    assert not fixed.supports_swap
    with pytest.raises(ValueError, match="cannot swap"):
        fixed.swap_in_time(HardwareConfig.gpu(0.3))


def test_llm_app_carries_work_model_and_swap_app_does_not():
    llm = llm_chat()
    assert isinstance(llm.work_model, TokenWorkModel)
    assert image_query_swap().work_model is None


def test_work_aware_oracle_consumes_one_draw_per_call():
    """Passing work must not perturb the noise stream of other calls."""
    profile = llm_profile()
    config = HardwareConfig.gpu(0.5)
    work = WorkUnit(tokens_in=500, tokens_out=100)
    a = GroundTruthPerformance(profile, rng=123)
    b = GroundTruthPerformance(profile, rng=123)
    # Interleave a work-carrying call; the *second* draw of each oracle
    # must still match (same position in the noise stream).
    a.inference_time(config, 1)
    b.inference_time(config, 1, work=work)
    assert a.inference_time(config, 2) == b.inference_time(config, 2)

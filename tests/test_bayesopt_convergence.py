"""Convergence tests for the Bayesian optimizer on known optima.

Pins :class:`repro.bayesopt.BayesianOptimizer` against analytically known
1-D minima: after a modest iteration budget the incumbent must land near
the optimum, improve on random initialization, and be reproducible for a
fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesopt import BayesianOptimizer


def quadratic(x: np.ndarray) -> float:
    """Smooth 1-D bowl with its minimum at x = 0.7."""
    return float((x[0] - 0.7) ** 2)


class TestKnownOptimum1D:
    def test_converges_to_quadratic_minimum(self):
        result = BayesianOptimizer(dim=1, seed=0).minimize(quadratic, n_iter=30)
        assert result.best_y <= 1e-3
        assert abs(result.best_x[0] - 0.7) <= 0.05
        # The incumbent is consistent with its own history.
        assert result.best_y == min(result.ys)

    def test_beats_random_initialization(self):
        opt = BayesianOptimizer(dim=1, n_initial=8, seed=1)
        result = opt.minimize(quadratic, n_iter=30)
        best_initial = min(result.ys[:8])
        assert result.best_y <= best_initial

    def test_seeded_runs_reproducible(self):
        a = BayesianOptimizer(dim=1, seed=7).minimize(quadratic, n_iter=15)
        b = BayesianOptimizer(dim=1, seed=7).minimize(quadratic, n_iter=15)
        assert a.best_y == b.best_y
        assert np.array_equal(a.best_x, b.best_x)

    def test_multimodal_finds_global_basin(self):
        # Two basins; the global minimum (depth -1) sits at x = 0.15,
        # the decoy (depth -0.6) at x = 0.8.
        def two_wells(x: np.ndarray) -> float:
            x0 = float(x[0])
            return (
                -1.0 * np.exp(-((x0 - 0.15) ** 2) / 0.002)
                - 0.6 * np.exp(-((x0 - 0.8) ** 2) / 0.002)
            )

        result = BayesianOptimizer(
            dim=1, n_initial=12, length_scale=0.1, seed=3
        ).minimize(two_wells, n_iter=40)
        assert result.best_y <= -0.9
        assert abs(result.best_x[0] - 0.15) <= 0.05

    def test_evaluation_budget_respected(self):
        calls = []

        def counting(x: np.ndarray) -> float:
            calls.append(float(x[0]))
            return quadratic(x)

        BayesianOptimizer(dim=1, n_initial=5, seed=0).minimize(
            counting, n_iter=12
        )
        # n_initial random probes, then n_iter model-guided evaluations.
        assert len(calls) == 5 + 12

    def test_dim_validated(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(dim=0)

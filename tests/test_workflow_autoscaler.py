"""Tests for the Workflow Manager, Auto-scaler and Optimizer Engine."""

import pytest

from repro.core import AutoScaler, ExhaustiveSearch, OptimizerEngine, WorkflowManager
from repro.dag import amber_alert, image_query, linear_pipeline, voice_assistant
from repro.hardware import Backend, ConfigurationSpace, HardwareConfig
from repro.profiler import oracle_profile

SPACE = ConfigurationSpace.default()


def oracle_profiles(app):
    return {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}


class TestWorkflowManager:
    @pytest.mark.parametrize("factory", [amber_alert, image_query, voice_assistant])
    def test_strategy_meets_sla(self, factory):
        app = factory()
        strategy = WorkflowManager(SPACE).optimize(app, oracle_profiles(app), 5.0)
        assert strategy.feasible
        assert strategy.latency <= app.sla + 1e-9
        assert set(strategy.assignment) == set(app.function_names)

    def test_near_optimal_on_small_dag(self):
        """Fig. 8: SMIless stays close to the exhaustive optimum."""
        app = image_query()
        profiles = oracle_profiles(app)
        for it in (1.0, 5.0, 30.0):
            strategy = WorkflowManager(SPACE).optimize(app, profiles, it)
            opt = ExhaustiveSearch(SPACE).optimize_app(app, profiles, it)
            assert strategy.cost <= opt.cost * 1.5 + 1e-15

    def test_single_function_app(self):
        app = linear_pipeline(1)
        strategy = WorkflowManager(SPACE).optimize(app, oracle_profiles(app), 10.0)
        assert strategy.feasible
        assert len(strategy.assignment) == 1

    def test_infeasible_sla_reported(self):
        app = linear_pipeline(4, models=("TRS", "TG", "SR", "TRS")).with_sla(0.05)
        strategy = WorkflowManager(SPACE).optimize(app, oracle_profiles(app), 2.0)
        assert not strategy.feasible
        assert strategy.latency > app.sla

    def test_sla_override(self):
        app = image_query()
        strategy = WorkflowManager(SPACE).optimize(
            app, oracle_profiles(app), 5.0, sla=10.0
        )
        relaxed_cost = strategy.cost
        tight = WorkflowManager(SPACE).optimize(app, oracle_profiles(app), 5.0, sla=1.5)
        assert tight.feasible
        assert relaxed_cost <= tight.cost + 1e-12

    def test_cpu_only_space(self):
        """SMIless-Homo: everything lands on CPU configurations."""
        app = voice_assistant(sla=6.0)
        strategy = WorkflowManager(ConfigurationSpace.cpu_only()).optimize(
            app, oracle_profiles(app), 5.0
        )
        assert all(c.backend is Backend.CPU for c in strategy.assignment.values())

    def test_plans_consistent_with_assignment(self):
        app = voice_assistant()
        strategy = WorkflowManager(SPACE).optimize(app, oracle_profiles(app), 3.0)
        for fn, cfg in strategy.assignment.items():
            assert strategy.plan(fn).config == cfg
            assert strategy.plan(fn).cost > 0


class TestAutoScaler:
    @pytest.fixture
    def profile(self):
        return oracle_profile(image_query().spec("TG").profile, n_sigma=1.0)

    def test_max_feasible_batch_monotone_in_budget(self, profile):
        scaler = AutoScaler(SPACE)
        cfg = HardwareConfig.gpu(0.5)
        batches = [
            scaler.max_feasible_batch(profile, cfg, budget)
            for budget in (0.3, 0.6, 1.2, 2.4)
        ]
        assert all(a <= b for a, b in zip(batches, batches[1:]))

    def test_max_feasible_batch_zero_when_impossible(self, profile):
        scaler = AutoScaler(SPACE)
        assert scaler.max_feasible_batch(profile, HardwareConfig.cpu(1), 0.05) == 0

    def test_batch_respects_budget(self, profile):
        scaler = AutoScaler(SPACE)
        cfg = HardwareConfig.gpu(1.0)
        b = scaler.max_feasible_batch(profile, cfg, 1.0)
        assert profile.inference_time(cfg, b) <= 1.0
        assert profile.inference_time(cfg, b + 1) > 1.0

    def test_plan_covers_demand(self, profile):
        scaler = AutoScaler(SPACE)
        decision = scaler.plan("TG", profile, predicted_invocations=40,
                               inter_arrival=1.0, budget=1.0)
        assert decision.feasible
        assert decision.batch * decision.instances >= 40
        assert decision.inference_time <= 1.0

    def test_plan_prefers_batching_over_scaleout(self, profile):
        """GPUs absorb batches: few instances needed under burst (Fig. 14b)."""
        scaler = AutoScaler(SPACE)
        decision = scaler.plan("TG", profile, 32, 1.0, budget=2.0)
        assert decision.batch > 1
        assert decision.instances < 32

    def test_plan_infeasible_budget_scales_out_fastest(self, profile):
        scaler = AutoScaler(SPACE)
        decision = scaler.plan("TG", profile, 5, 1.0, budget=0.01)
        assert not decision.feasible
        assert decision.batch == 1
        assert decision.instances == 5

    def test_plan_single_invocation(self, profile):
        scaler = AutoScaler(SPACE)
        decision = scaler.plan("TG", profile, 1, 2.0, budget=1.5)
        assert decision.instances == 1
        assert decision.batch == 1

    def test_plan_validation(self, profile):
        scaler = AutoScaler(SPACE)
        with pytest.raises(ValueError):
            scaler.plan("TG", profile, 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            scaler.plan("TG", profile, 1, 0.0, 1.0)

    def test_plan_all(self):
        app = image_query()
        profiles = oracle_profiles(app)
        scaler = AutoScaler(SPACE)
        budgets = {fn: 1.0 for fn in app.function_names}
        decisions = scaler.plan_all(profiles, budgets, 8, 1.0)
        assert set(decisions) == set(app.function_names)


class TestOptimizerEngine:
    def test_end_to_end(self):
        app = voice_assistant()
        profiles = oracle_profiles(app)
        engine = OptimizerEngine(SPACE)
        strategy = engine.strategy(app, profiles, 4.0)
        assert strategy.feasible
        decisions = engine.scale(app, profiles, strategy, 16, 1.0)
        for fn, d in decisions.items():
            assert d.batch >= 1 and d.instances >= 1

    def test_needs_scaling_logic(self):
        app = voice_assistant()
        profiles = oracle_profiles(app)
        engine = OptimizerEngine(SPACE)
        strategy = engine.strategy(app, profiles, 1.0)
        assert not engine.needs_scaling(strategy, 1)
        assert engine.needs_scaling(strategy, 100)

    def test_scale_validation(self):
        app = image_query()
        profiles = oracle_profiles(app)
        engine = OptimizerEngine(SPACE)
        strategy = engine.strategy(app, profiles, 2.0)
        with pytest.raises(ValueError):
            engine.scale(app, profiles, strategy, 0, 1.0)

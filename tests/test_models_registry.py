"""Tests for the Table I model registry and its calibration targets."""

import pytest

from repro.dag.models import MODEL_REGISTRY, get_model, get_profile, model_names
from repro.hardware import HardwareConfig

EXPECTED_MODELS = {
    "IR", "FR", "HAP", "DB", "NER", "TM", "TRS", "TG", "SR", "TTS", "OD", "QA",
}


class TestRegistry:
    def test_all_twelve_models_present(self):
        assert set(model_names()) == EXPECTED_MODELS

    def test_get_model_fields_match_table1(self):
        ir = get_model("IR")
        assert ir.architecture == "ResNet50"
        assert ir.dataset == "ImageNet"
        od = get_model("OD")
        assert od.architecture == "YOLOv5"
        assert od.dataset == "COCO"
        assert get_model("QA").architecture == "Roberta"

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("LLAMA")

    def test_profiles_have_consistent_name(self):
        for name, info in MODEL_REGISTRY.items():
            assert info.profile.name == name

    def test_fields_cover_table1_categories(self):
        fields = {m.field for m in MODEL_REGISTRY.values()}
        assert {
            "Image Classification",
            "Language Modeling",
            "Text Generation",
            "Audio Processing",
            "Object Detection",
            "Question Answering",
        } <= fields


class TestCalibration:
    """The registry must reproduce the hardware trade-offs of Fig. 2 / §II-B."""

    @pytest.mark.parametrize("name", sorted(EXPECTED_MODELS))
    def test_gpu_warm_faster_than_cpu_warm(self, name):
        p = get_profile(name)
        cpu16 = p.expected_inference_time(HardwareConfig.cpu(16))
        gpu = p.expected_inference_time(HardwareConfig.gpu(1.0))
        assert gpu < cpu16

    @pytest.mark.parametrize("name", sorted(EXPECTED_MODELS))
    def test_gpu_init_slower_than_cpu_init(self, name):
        p = get_profile(name)
        assert p.init_gpu.mean > p.init_cpu.mean

    def test_trs_gpu_speedup_near_10x(self):
        p = get_profile("TRS")
        cpu16 = p.expected_inference_time(HardwareConfig.cpu(16))
        gpu = p.expected_inference_time(HardwareConfig.gpu(1.0))
        assert 7.0 <= cpu16 / gpu <= 13.0

    @pytest.mark.parametrize("name", ["HAP", "TG", "TRS"])
    def test_fig2_cold_start_inverts_advantage(self, name):
        """On a cold start the GPU loses its edge for the Fig. 2 models."""
        p = get_profile(name)
        cpu16, gpu = HardwareConfig.cpu(16), HardwareConfig.gpu(1.0)
        warm_gpu = p.expected_inference_time(gpu)
        warm_cpu = p.expected_inference_time(cpu16)
        cold_gpu = p.expected_init_time(gpu) + warm_gpu
        cold_cpu = p.expected_init_time(cpu16) + warm_cpu
        assert warm_gpu < warm_cpu
        assert cold_gpu > cold_cpu

    @pytest.mark.parametrize("name", sorted(EXPECTED_MODELS))
    def test_batch_sizes_sane(self, name):
        p = get_profile(name)
        assert 1 <= p.min_batch <= p.max_batch

    @pytest.mark.parametrize("name", sorted(EXPECTED_MODELS))
    def test_memory_knee_positive(self, name):
        assert get_profile(name).mem_knee_gb > 0

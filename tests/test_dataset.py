"""Tests for the Azure dataset loading pipeline."""

import csv

import numpy as np
import pytest

from repro.workload.dataset import (
    MINUTES_PER_DAY,
    PAPER_SCALE_FACTOR,
    counts_to_trace,
    load_invocation_counts,
    load_scaled_trace,
    scale_down,
)
from repro.workload.trace import Trace


@pytest.fixture
def azure_csv(tmp_path):
    """A miniature CSV in the Azure invocation-trace layout."""
    path = tmp_path / "invocations.csv"
    header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
        str(i) for i in range(1, MINUTES_PER_DAY + 1)
    ]
    rng = np.random.default_rng(0)
    rows = []
    busy = rng.poisson(3.0, MINUTES_PER_DAY)
    quiet = np.zeros(MINUTES_PER_DAY, dtype=int)
    quiet[::240] = 1
    silent = np.zeros(MINUTES_PER_DAY, dtype=int)
    for name, counts in (("busyfn", busy), ("quietfn", quiet), ("deadfn", silent)):
        rows.append(["own", "app", name, "http"] + [str(c) for c in counts])
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path, {"busyfn": busy, "quietfn": quiet}


class TestLoad:
    def test_parses_rows(self, azure_csv):
        path, expected = azure_csv
        rows = load_invocation_counts(path)
        assert set(rows) == {"busyfn", "quietfn"}  # deadfn dropped
        np.testing.assert_array_equal(rows["busyfn"], expected["busyfn"])

    def test_threshold_filters(self, azure_csv):
        path, _ = azure_csv
        rows = load_invocation_counts(path, min_daily_invocations=100)
        assert set(rows) == {"busyfn"}

    def test_all_filtered_raises(self, azure_csv):
        path, _ = azure_csv
        with pytest.raises(ValueError, match="threshold"):
            load_invocation_counts(path, min_daily_invocations=10**9)

    def test_short_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="columns"):
            load_invocation_counts(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "ragged.csv"
        header = ",".join(["h"] * (MINUTES_PER_DAY + 1))
        path.write_text(header + "\n1,2,3\n")
        with pytest.raises(ValueError, match="ragged"):
            load_invocation_counts(path)


class TestConversion:
    def test_counts_to_trace_totals(self):
        counts = np.array([2, 0, 3])
        trace = counts_to_trace(counts, interval=60.0, rng=0)
        assert len(trace) == 5
        np.testing.assert_array_equal(trace.counts_per_window(60.0), counts)

    def test_deterministic_placement_without_rng(self):
        trace = counts_to_trace(np.array([1, 1]), interval=60.0)
        np.testing.assert_allclose(trace.times, [0.0, 60.0])

    def test_scale_down_factor(self):
        trace = Trace([60.0, 120.0], duration=180.0)
        scaled = scale_down(trace)
        np.testing.assert_allclose(scaled.times, [2.0, 4.0])
        assert scaled.duration == pytest.approx(180.0 * PAPER_SCALE_FACTOR)

    def test_load_scaled_trace_pipeline(self, azure_csv):
        path, expected = azure_csv
        trace = load_scaled_trace(path)  # busiest function by default
        assert len(trace) == expected["busyfn"].sum()
        # a day compresses to 48 minutes of simulated time
        assert trace.duration == pytest.approx(
            MINUTES_PER_DAY * 60.0 * PAPER_SCALE_FACTOR
        )

    def test_load_scaled_trace_unknown_function(self, azure_csv):
        path, _ = azure_csv
        with pytest.raises(KeyError, match="not in"):
            load_scaled_trace(path, "missing")

    def test_scaled_trace_drives_simulator(self, azure_csv):
        """End-to-end: dataset pipeline output feeds the platform."""
        from repro.dag import linear_pipeline
        from repro.policies import AlwaysOnPolicy
        from repro.simulator import ServerlessSimulator

        path, _ = azure_csv
        trace = load_scaled_trace(path, "quietfn").slice(0.0, 600.0)
        app = linear_pipeline(1, models=("IR",))
        m = ServerlessSimulator(app, trace, AlwaysOnPolicy(), seed=0).run()
        assert len(m.invocations) == len(trace)

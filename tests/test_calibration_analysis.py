"""Tests for the calibration API, cost-curve analysis, and MMPP workloads."""

import numpy as np
import pytest

from repro.core.analysis import (
    config_frontier,
    cost_vs_inter_arrival,
    regime_boundary,
    sla_cost_curve,
)
from repro.core.prewarming import ColdStartPolicy
from repro.dag import image_query
from repro.dag.models import get_profile
from repro.hardware import ConfigurationSpace, HardwareConfig
from repro.hardware.calibration import (
    CalibrationResult,
    Measurement,
    init_params_from_samples,
    latency_params_from_measurements,
    profile_from_measurements,
    speedup_curve,
)
from repro.profiler import oracle_profile
from repro.workload import mmpp_process


def synthetic_measurements(alpha, beta, gamma, resources, batches, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for r in resources:
        for b in batches:
            t = b * (alpha / r + beta) + gamma
            if noise:
                t *= float(rng.lognormal(0.0, noise))
            out.append(Measurement(resources=r, batch=b, seconds=t))
    return out


class TestCalibration:
    def test_recovers_known_law(self):
        ms = synthetic_measurements(2.0, 0.1, 0.05, (1, 2, 4, 8), (1, 2, 4))
        result = latency_params_from_measurements(ms)
        assert isinstance(result, CalibrationResult)
        assert result.params.alpha == pytest.approx(2.0, rel=1e-4)
        assert result.params.beta == pytest.approx(0.1, rel=1e-3)
        assert result.params.gamma == pytest.approx(0.05, rel=1e-3)
        assert result.smape_percent < 0.1
        assert result.n_measurements == 12

    def test_needs_three_measurements(self):
        ms = synthetic_measurements(1.0, 0.1, 0.0, (1,), (1, 2))
        with pytest.raises(ValueError, match="3 measurements"):
            latency_params_from_measurements(ms)

    def test_measurement_validation(self):
        with pytest.raises(ValueError):
            Measurement(resources=0.0, batch=1, seconds=1.0)
        with pytest.raises(ValueError):
            Measurement(resources=1.0, batch=1, seconds=-1.0)

    def test_init_params_from_samples(self):
        params = init_params_from_samples([2.0, 2.2, 1.8])
        assert params.mean == pytest.approx(2.0)
        assert params.std > 0

    def test_init_params_validation(self):
        with pytest.raises(ValueError):
            init_params_from_samples([1.0])
        with pytest.raises(ValueError):
            init_params_from_samples([1.0, -1.0])

    def test_profile_from_measurements_end_to_end(self):
        cpu_ms = synthetic_measurements(2.0, 0.1, 0.02, (1, 4, 16), (1, 4), noise=0.02)
        gpu_ms = synthetic_measurements(0.05, 0.01, 0.02, (0.1, 0.5, 1.0), (1, 4), noise=0.02)
        profile = profile_from_measurements(
            "custom", cpu_ms, gpu_ms, [2.0, 2.1, 1.9], [6.0, 6.5, 5.5]
        )
        assert profile.name == "custom"
        # the resulting profile plugs straight into the optimizer machinery
        fp = oracle_profile(profile, n_sigma=1.0)
        assert fp.inference_time(HardwareConfig.cpu(4)) > 0
        assert fp.init_time(HardwareConfig.gpu(0.1)) > 5.0

    def test_profile_rejects_lawless_measurements(self):
        rng = np.random.default_rng(1)
        bad = [
            Measurement(r, b, float(rng.uniform(0.1, 5.0)))
            for r in (1, 2, 4)
            for b in (1, 2, 4)
        ]
        good = synthetic_measurements(0.05, 0.01, 0.02, (0.1, 0.5, 1.0), (1, 4))
        with pytest.raises(ValueError, match="SMAPE"):
            profile_from_measurements(
                "junk", bad, good, [2.0, 2.1], [6.0, 6.1], max_smape=10.0
            )

    def test_speedup_curve(self):
        result = latency_params_from_measurements(
            synthetic_measurements(2.0, 0.1, 0.0, (1, 2, 4, 8), (1,))
        )
        rows = speedup_curve(result.params, [1, 2, 4, 8])
        assert rows[0][2] == pytest.approx(1.0)
        speedups = [s for _, _, s in rows]
        assert speedups == sorted(speedups)

    def test_speedup_curve_empty(self):
        result = latency_params_from_measurements(
            synthetic_measurements(2.0, 0.1, 0.0, (1, 2), (1, 2))
        )
        with pytest.raises(ValueError):
            speedup_curve(result.params, [])


class TestCostAnalysis:
    @pytest.fixture
    def profile(self):
        return oracle_profile(get_profile("TG"), n_sigma=1.0)

    def test_regime_boundary(self, profile):
        cfg = HardwareConfig.cpu(8)
        boundary = regime_boundary(profile, cfg)
        assert boundary == pytest.approx(
            profile.init_time(cfg) + profile.inference_time(cfg)
        )

    def test_cost_curve_crosses_boundary(self, profile):
        cfg = HardwareConfig.cpu(8)
        boundary = regime_boundary(profile, cfg)
        points = cost_vs_inter_arrival(
            profile, cfg, [boundary * f for f in (0.3, 0.8, 1.2, 3.0)]
        )
        assert points[0].policy is ColdStartPolicy.KEEP_ALIVE
        assert points[-1].policy is ColdStartPolicy.PREWARM
        # pre-warm cost is flat in IT; keep-alive cost grows with IT
        assert points[2].cost == pytest.approx(points[3].cost)
        assert points[0].cost < points[1].cost

    def test_cost_curve_validation(self, profile):
        with pytest.raises(ValueError):
            cost_vs_inter_arrival(profile, HardwareConfig.cpu(1), [])

    def test_frontier_marks_dominated_points(self, profile):
        points = config_frontier(profile, ConfigurationSpace.default(), 5.0)
        assert len(points) == 15
        non_dominated = [p for p in points if not p.dominated]
        assert 1 <= len(non_dominated) < len(points)
        # the frontier is monotone: faster non-dominated points cost more
        lat = [p.inference_time for p in non_dominated]
        cost = [p.cost for p in non_dominated]
        assert lat == sorted(lat)
        assert cost == sorted(cost, reverse=True)

    def test_sla_cost_curve_monotone(self):
        app = image_query()
        profiles = {
            s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs
        }
        rows = sla_cost_curve(app, profiles, 5.0, [0.5, 1.0, 2.0, 4.0])
        assert all(f for _, _, f in rows)  # all feasible with GPUs available
        costs = [c for _, c, _ in rows]
        assert costs[0] >= costs[-1]


class TestMmpp:
    def test_rate_between_states(self):
        t = mmpp_process((0.2, 2.0), transition_rate=0.05, duration=4000.0, rng=0)
        assert 0.2 < t.rate < 2.0

    def test_more_bursty_than_poisson(self):
        from repro.workload import poisson_process

        mmpp = mmpp_process((0.1, 3.0), 0.05, 3000.0, rng=1)
        pois = poisson_process(mmpp.rate, 3000.0, rng=1)
        assert mmpp.variance_to_mean_ratio() > pois.variance_to_mean_ratio()

    def test_validation(self):
        with pytest.raises(ValueError):
            mmpp_process((1.0,), 0.1, 10.0)
        with pytest.raises(ValueError):
            mmpp_process((1.0, 2.0), 0.0, 10.0)

    def test_deterministic(self):
        a = mmpp_process((0.5, 2.0), 0.1, 500.0, rng=7)
        b = mmpp_process((0.5, 2.0), 0.1, 500.0, rng=7)
        assert a == b

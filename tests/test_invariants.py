"""Property-based invariants of the simulator and the cost model.

These run randomized scenarios through the full engine and check the
conservation laws that hold regardless of policy, workload, or seed:

- billing: every instance's lifetime splits exactly into init + busy + idle;
- work: every invocation executes every DAG stage exactly once, in order;
- capacity: all cluster allocations are returned by the end of the run;
- Theorem 5.1: the adaptive cold-start policy is cost-minimal among the
  candidate strategies in its own regime.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prewarming import cost_per_invocation
from repro.dag import linear_pipeline, random_dag
from repro.hardware import HardwareConfig
from repro.policies import AlwaysOnPolicy, OnDemandPolicy
from repro.policies.base import Policy
from repro.simulator import FunctionDirective, ServerlessSimulator
from repro.workload import Trace, poisson_process


class RandomDirectivePolicy(Policy):
    """Arbitrary-but-valid directives: stresses the engine's generality."""

    name = "random-directives"

    def __init__(self, seed: int):
        self.rng = np.random.default_rng(seed)

    def on_register(self, app, ctx):
        configs = [HardwareConfig.cpu(4), HardwareConfig.cpu(8), HardwareConfig.gpu(0.2)]
        for fn in app.function_names:
            ctx.set_directive(
                fn,
                FunctionDirective(
                    config=configs[int(self.rng.integers(len(configs)))],
                    keep_alive=float(self.rng.choice([0.0, 2.0, 10.0, math.inf])),
                    batch=int(self.rng.integers(1, 5)),
                    min_warm=int(self.rng.integers(0, 2)),
                    warm_grace=float(self.rng.uniform(0, 8)),
                ),
            )


def run_random_scenario(n_functions, seed, rate=0.4, duration=80.0):
    app = random_dag(n_functions, rng=seed)
    trace = poisson_process(rate, duration, rng=seed + 1)
    sim = ServerlessSimulator(
        app, trace, RandomDirectivePolicy(seed + 2), seed=seed + 3
    )
    return app, trace, sim, sim.run()


class TestEngineInvariants:
    @given(n=st.integers(1, 6), seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_billing_conservation(self, n, seed):
        _, _, _, m = run_random_scenario(n, seed)
        for usage in m.instances:
            assert usage.lifetime >= -1e-9
            split = usage.init_seconds + usage.busy_seconds + usage.idle_seconds
            assert split == pytest.approx(usage.lifetime, abs=1e-6)
            assert usage.cost == pytest.approx(
                usage.lifetime * usage.config.unit_cost
            )

    @given(n=st.integers(1, 6), seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_every_stage_runs_once_in_order(self, n, seed):
        app, trace, _, m = run_random_scenario(n, seed)
        completed = [inv for inv in m.invocations if inv.finished]
        for inv in completed:
            assert set(inv.stages) == set(app.function_names)
            for fn in app.function_names:
                rec = inv.stages[fn]
                assert rec.ready_at <= rec.started_at + 1e-9
                assert rec.started_at <= rec.finished_at
                for pred in app.predecessors(fn):
                    assert inv.stages[pred].finished_at <= rec.ready_at + 1e-9

    @given(n=st.integers(1, 6), seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_cluster_capacity_restored(self, n, seed):
        _, _, sim, _ = run_random_scenario(n, seed)
        assert sim.cluster.cores_used() == 0
        assert sim.cluster.gpu_slots_used() == 0

    @given(n=st.integers(1, 5), seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_stage_execution_accounting(self, n, seed):
        app, _, _, m = run_random_scenario(n, seed)
        completed = [inv for inv in m.invocations if inv.finished]
        # completed invocations contribute exactly one execution per stage;
        # unfinished ones at most one per stage
        lo = len(completed) * len(app)
        hi = (len(completed) + m.unfinished) * len(app)
        assert lo <= m.stage_executions <= hi

    @given(n=st.integers(1, 5), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_latencies_positive_and_causal(self, n, seed):
        _, _, _, m = run_random_scenario(n, seed)
        lat = m.latencies()
        assert (lat > 0).all()
        for inv in m.invocations:
            assert inv.completed_at >= inv.arrival


class TestFailureInjection:
    def test_failed_inits_retried_and_counted(self):
        app = linear_pipeline(1, models=("IR",))
        trace = poisson_process(0.3, 120.0, rng=0)
        m = ServerlessSimulator(
            app, trace, OnDemandPolicy(), seed=1, init_failure_rate=0.4
        ).run()
        assert m.failed_initializations > 0
        # every completed invocation still executed despite the crash-loops
        assert all(inv.finished for inv in m.invocations)

    def test_failure_rate_zero_means_no_failures(self):
        app = linear_pipeline(1, models=("IR",))
        trace = poisson_process(0.3, 60.0, rng=0)
        m = ServerlessSimulator(app, trace, OnDemandPolicy(), seed=1).run()
        assert m.failed_initializations == 0

    def test_failures_raise_cost(self):
        app = linear_pipeline(1, models=("IR",))
        trace = Trace(list(np.arange(5.0, 120.0, 10.0)), duration=120.0)
        clean = ServerlessSimulator(
            app, trace, OnDemandPolicy(), seed=2
        ).run()
        faulty = ServerlessSimulator(
            app, trace, OnDemandPolicy(), seed=2, init_failure_rate=0.5
        ).run()
        assert faulty.failed_initializations > 0
        # crash-looped attempts are billed, so total cost can only rise
        assert faulty.total_cost() > clean.total_cost()

    def test_invalid_rate_rejected(self):
        app = linear_pipeline(1, models=("IR",))
        with pytest.raises(ValueError):
            ServerlessSimulator(
                app, Trace([1.0], duration=5.0), OnDemandPolicy(),
                init_failure_rate=1.0,
            )


class TestTheorem51:
    """Theorem 5.1: in the pre-warm regime the adaptive policy is cheapest."""

    @given(
        t=st.floats(0.1, 8.0),
        i=st.floats(0.05, 4.0),
        slack=st.floats(0.01, 20.0),
        u=st.floats(1e-6, 1e-3),
    )
    @settings(max_examples=200, deadline=None)
    def test_prewarm_beats_alternatives_in_its_regime(self, t, i, slack, u):
        it = t + i + slack  # Case I: T + I < IT
        adaptive = cost_per_invocation(t, i, it, u)
        keep_alive_forever = it * u  # billed through the whole gap
        recreate = (t + i) * u  # terminate-and-recreate cycle
        assert adaptive <= keep_alive_forever + 1e-15
        assert adaptive <= recreate + 1e-15

    @given(
        t=st.floats(0.1, 8.0),
        i=st.floats(0.05, 4.0),
        frac=st.floats(0.05, 0.99),
        u=st.floats(1e-6, 1e-3),
    )
    @settings(max_examples=200, deadline=None)
    def test_keepalive_beats_recreate_in_its_regime(self, t, i, frac, u):
        it = (t + i) * frac  # Case II: T + I >= IT
        adaptive = cost_per_invocation(t, i, it, u)
        recreate = (t + i) * u
        assert adaptive <= recreate + 1e-15

"""Tests for the Trace container and its windowing utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import Trace


class TestConstruction:
    def test_sorts_times(self):
        t = Trace([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(t.times, [1.0, 2.0, 3.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Trace([-1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Trace([np.nan])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Trace(np.zeros((2, 2)))

    def test_duration_default_is_last_arrival(self):
        assert Trace([1.0, 5.0]).duration == 5.0

    def test_duration_cannot_truncate(self):
        with pytest.raises(ValueError):
            Trace([1.0, 5.0], duration=3.0)

    def test_empty_trace(self):
        t = Trace([], duration=10.0)
        assert len(t) == 0
        assert t.rate == 0.0

    def test_times_read_only(self):
        t = Trace([1.0])
        with pytest.raises(ValueError):
            t.times[0] = 9.0

    def test_equality_and_hash(self):
        assert Trace([1.0, 2.0]) == Trace([2.0, 1.0])
        assert hash(Trace([1.0], duration=2.0)) == hash(Trace([1.0], duration=2.0))


class TestWindowing:
    def test_counts_per_window(self):
        t = Trace([0.1, 0.5, 1.2, 3.9], duration=4.0)
        np.testing.assert_array_equal(t.counts_per_window(1.0), [2, 1, 0, 1])

    def test_counts_sum_matches_len(self):
        t = Trace(np.linspace(0, 9.9, 57), duration=10.0)
        assert t.counts_per_window(1.0).sum() == len(t)

    def test_counts_empty_trace(self):
        t = Trace([], duration=3.0)
        np.testing.assert_array_equal(t.counts_per_window(1.0), [0, 0, 0])

    def test_inter_arrival_times(self):
        t = Trace([1.0, 2.5, 4.0])
        np.testing.assert_allclose(t.inter_arrival_times(), [1.5, 1.5])

    def test_inter_arrival_short_trace(self):
        assert Trace([1.0]).inter_arrival_times().size == 0

    def test_window_inter_arrivals(self):
        # non-empty windows: 0, 3, 5 → gaps 3s, 2s
        t = Trace([0.2, 3.7, 5.1], duration=6.0)
        np.testing.assert_allclose(t.window_inter_arrivals(1.0), [3.0, 2.0])

    def test_variance_to_mean_ratio_poisson_near_one(self):
        rng = np.random.default_rng(0)
        t = Trace(np.sort(rng.random(5000) * 5000), duration=5000.0)
        assert t.variance_to_mean_ratio(1.0) == pytest.approx(1.0, abs=0.15)


class TestTransforms:
    def test_slice_rebases(self):
        t = Trace([1.0, 2.0, 3.0], duration=4.0)
        s = t.slice(1.5, 3.5)
        np.testing.assert_allclose(s.times, [0.5, 1.5])
        assert s.duration == 2.0

    def test_slice_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            Trace([1.0]).slice(2.0, 2.0)

    def test_time_scaled(self):
        # the paper's 60s->2s compression is factor 1/30
        t = Trace([30.0, 60.0], duration=60.0).time_scaled(1 / 30)
        np.testing.assert_allclose(t.times, [1.0, 2.0])
        assert t.duration == pytest.approx(2.0)

    def test_merged(self):
        m = Trace([1.0], duration=5.0).merged(Trace([2.0], duration=3.0))
        np.testing.assert_allclose(m.times, [1.0, 2.0])
        assert m.duration == 5.0

    def test_shifted(self):
        s = Trace([1.0], duration=2.0).shifted(3.0)
        np.testing.assert_allclose(s.times, [4.0])
        assert s.duration == 5.0

    def test_from_counts_deterministic(self):
        t = Trace.from_counts([2, 0, 1], window=1.0)
        np.testing.assert_allclose(t.times, [0.0, 0.0, 2.0])
        assert t.duration == 3.0

    def test_from_counts_random_spread(self):
        rng = np.random.default_rng(0)
        t = Trace.from_counts([5, 5], window=2.0, rng=rng)
        assert len(t) == 10
        np.testing.assert_array_equal(t.counts_per_window(2.0), [5, 5])

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            Trace.from_counts([1, -1])


class TestRoundTrips:
    @given(
        counts=st.lists(st.integers(0, 5), min_size=1, max_size=50),
        window=st.sampled_from([0.5, 1.0, 2.0]),
    )
    @settings(max_examples=50, deadline=None)
    def test_counts_roundtrip(self, counts, window):
        """from_counts → counts_per_window is the identity."""
        t = Trace.from_counts(counts, window=window)
        np.testing.assert_array_equal(t.counts_per_window(window), counts)

    @given(seed=st.integers(0, 100), factor=st.sampled_from([0.5, 2.0]))
    @settings(max_examples=20, deadline=None)
    def test_scaling_preserves_count(self, seed, factor):
        rng = np.random.default_rng(seed)
        t = Trace(np.sort(rng.random(50) * 100), duration=100.0)
        assert len(t.time_scaled(factor)) == len(t)

"""End-to-end CLI tests for the telemetry commands and --json outputs."""

import json

import pytest

from repro.cli import main
from repro.experiments.parallel import CellSpec, EnvSpec, cell_trace_path, run_cell
from repro.experiments.scenario import ScenarioSpec
from repro.telemetry import aggregate, read_jsonl

ARGS = ["--preset", "steady", "--duration", "60", "--seed", "0"]


class TestTraceCommand:
    def test_trace_writes_jsonl_chrome_and_audit(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.trace.json"
        rc = main(
            ["trace", "image-query", "--policy", "smiless",
             "--out", str(out), "--chrome", str(chrome), *ARGS]
        )
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "decision audit:" in stdout
        assert "Perfetto" in stdout

        events = read_jsonl(out)
        assert events and events[0].type == "run_started"
        # The trace must be rebuildable into metrics offline.
        assert aggregate(events).app == "image-query"

        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_trace_then_report_from_trace_json(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main(["trace", "image-query", "--out", str(out), *ARGS]) == 0
        capsys.readouterr()

        assert main(["report", "--from-trace", str(out), "--json"]) == 0
        offline = json.loads(capsys.readouterr().out)

        assert main(["report", "image-query", "--json", "--sla", "2.0", *ARGS]) == 0
        live = json.loads(capsys.readouterr().out)
        assert offline == live  # offline rebuild equals the live run

    def test_report_from_trace_text(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main(["trace", "image-query", "--out", str(out), *ARGS]) == 0
        capsys.readouterr()
        assert main(["report", "--from-trace", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "rebuilt from trace" in stdout
        assert "run report" in stdout

    def test_report_requires_app_without_trace(self, capsys):
        assert main(["report"]) == 2
        assert "app is required" in capsys.readouterr().out


class TestReportJson:
    def test_summary_keys(self, capsys):
        assert main(["report", "image-query", "--json", *ARGS]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert {"total_cost", "p50_latency", "p99_latency"} <= set(summary)


class TestScenarioJson:
    def test_scenario_json_and_trace_dir(self, tmp_path, capsys):
        spec = {
            "apps": ["image-query"],
            "policies": ["on-demand"],
            "duration": 60.0,
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        traces = tmp_path / "traces"
        rc = main(
            ["scenario", str(spec_path), "--json", "--trace-dir", str(traces)]
        )
        assert rc == 0
        cells = json.loads(capsys.readouterr().out)
        assert len(cells) == 1
        assert cells[0]["app"] == "image-query"
        assert "total_cost" in cells[0]["summary"]
        written = list(traces.glob("*.jsonl"))
        assert len(written) == 1
        assert aggregate(read_jsonl(written[0])).app == "image-query"


class TestChaosFlags:
    def write_plan(self, tmp_path):
        plan = {
            "outages": [{"machine": 0, "start": 20.05, "end": 28.0}],
            "execution_faults": [{"rate": 0.2}],
            "resilience": {"max_retries": 8, "retry_backoff": 0.2},
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        return path

    def test_trace_with_fault_plan(self, tmp_path, capsys):
        """`trace --faults` records the chaos and still reconstructs exactly
        (a non-zero exit would mean schema or reconstruction failure)."""
        out = tmp_path / "chaos.jsonl"
        plan = self.write_plan(tmp_path)
        rc = main(
            ["trace", "image-query", "--policy", "on-demand",
             "--out", str(out), "--faults", str(plan), *ARGS]
        )
        assert rc == 0
        tags = {e.type for e in read_jsonl(out)}
        assert {"machine_down", "machine_up", "stage_retried"} <= tags

    def test_compare_with_chaos_flags(self, tmp_path, capsys):
        plan = self.write_plan(tmp_path)
        rc = main(
            ["compare", "image-query", "--policies", "on-demand",
             "--faults", str(plan), "--init-failure-rate", "0.1", *ARGS]
        )
        assert rc == 0
        assert "on-demand" in capsys.readouterr().out


class TestGridTracing:
    def test_cell_trace_path_and_run_cell(self, tmp_path):
        spec = CellSpec(
            env=EnvSpec(app="image-query", duration=60.0),
            policy="on-demand",
            trace_dir=str(tmp_path),
        )
        path = cell_trace_path(spec)
        assert path.name == "image-query-steady-sla2-on-demand-seed3.jsonl"
        result = run_cell(spec)
        assert path.exists()
        summary = aggregate(read_jsonl(path)).summary()
        for key, value in result.summary.items():
            if value != value:  # NaN
                assert summary[key] != summary[key]
            else:
                assert summary[key] == value

    def test_scenario_spec_accepts_trace_dir(self, tmp_path):
        spec = ScenarioSpec.from_dict(
            {
                "apps": ["image-query"],
                "policies": ["on-demand", "always-on"],
                "trace_dir": str(tmp_path),
            }
        )
        cells = spec.cells()
        assert all(c.trace_dir == str(tmp_path) for c in cells)

    def test_untraced_cell_writes_nothing(self, tmp_path):
        spec = CellSpec(env=EnvSpec(app="image-query", duration=60.0), policy="on-demand")
        run_cell(spec)
        assert list(tmp_path.iterdir()) == []

"""AMBER Alert (Fig. 7 WL1): SMIless against the baseline systems.

Serves the six-function emergency-alert pipeline under five schedulers and
prints the cost / SLA trade-off table of the paper's §VII-B evaluation.

Run:  python examples/amber_alert_comparison.py
"""

from repro.dag import amber_alert
from repro.policies import (
    GrandSLAmPolicy,
    IceBreakerPolicy,
    OptimalPolicy,
    OrionPolicy,
    SMIlessPolicy,
)
from repro.profiler import OfflineProfiler, oracle_profile
from repro.simulator import ServerlessSimulator
from repro.workload import AzureLikeWorkload


def main() -> None:
    app = amber_alert(sla=2.0)
    profiles = OfflineProfiler().profile_app(app, rng=1)
    oracle = {s.name: oracle_profile(s.profile, n_sigma=1.0) for s in app.specs}

    workload = AzureLikeWorkload.preset("steady", seed=6)
    train_counts = workload.generate(3600.0).counts_per_window(1.0)
    trace = AzureLikeWorkload.preset("steady", seed=7).generate(600.0)

    policies = [
        SMIlessPolicy(profiles, train_counts=train_counts, seed=0),
        OrionPolicy(profiles),
        IceBreakerPolicy(profiles, train_counts=train_counts),
        GrandSLAmPolicy(profiles),
        OptimalPolicy(oracle, trace),
    ]

    print(f"{app.name}: {len(trace)} invocations over {trace.duration:.0f}s, "
          f"SLA {app.sla}s\n")
    print(f"{'policy':<12} {'cost':>9} {'violations':>11} {'mean lat':>9} "
          f"{'reinit':>7} {'cpu$':>8} {'gpu$':>8}")
    rows = []
    for policy in policies:
        metrics = ServerlessSimulator(app, trace, policy, seed=3).run()
        s = metrics.summary()
        rows.append((policy.name, s))
        print(
            f"{policy.name:<12} ${s['total_cost']:>8.4f} "
            f"{s['violation_ratio']:>10.1%} {s['mean_latency']:>8.2f}s "
            f"{s['reinit_fraction']:>6.1%} ${s['cpu_cost']:>7.4f} "
            f"${s['gpu_cost']:>7.4f}"
        )

    smiless_cost = dict(rows)["smiless"]["total_cost"]
    print("\nCost relative to SMIless:")
    for name, s in rows:
        print(f"  {name:<12} {s['total_cost'] / smiless_cost:5.2f}x")


if __name__ == "__main__":
    main()

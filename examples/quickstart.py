"""Quickstart: serve one application with SMIless and read the bill.

Walks the full pipeline on the paper's Image Query workload (Fig. 7 WL2):

1. build the application DAG,
2. run the Offline Profiler to learn per-function latency/init models,
3. synthesize an Azure-like invocation trace,
4. serve the trace on the simulated cluster under the SMIless policy,
5. print cost, latency and SLA statistics.

Run:  python examples/quickstart.py
"""

from repro.dag import image_query
from repro.policies import SMIlessPolicy
from repro.profiler import OfflineProfiler
from repro.simulator import ServerlessSimulator
from repro.workload import AzureLikeWorkload


def main() -> None:
    # 1. The application: IR -> {DB, TM} -> TG, SLA 2 s end-to-end.
    app = image_query(sla=2.0)
    print(f"Application: {app.name}, {len(app)} functions, SLA {app.sla}s")
    for fn in app:
        succ = ", ".join(app.successors(fn)) or "-"
        print(f"  {fn:4s} -> {succ}")

    # 2. Offline profiling (25 CPU + 50 GPU samples per function, §IV-A).
    profiler = OfflineProfiler()
    profiles = profiler.profile_app(app, rng=1)
    print(f"\nProfiled {len(profiles)} functions "
          f"({len(profiler.store)} timing samples collected)")

    # 3. A 10-minute Azure-like trace plus an hour of training history.
    workload = AzureLikeWorkload.preset("steady", seed=6)
    train_counts = workload.generate(3600.0).counts_per_window(1.0)
    trace = AzureLikeWorkload.preset("steady", seed=7).generate(600.0)
    print(f"\nWorkload: {len(trace)} invocations over {trace.duration:.0f}s "
          f"(mean gap {trace.inter_arrival_times().mean():.1f}s)")

    # 4. Serve under SMIless (LSTM predictors trained on the history).
    policy = SMIlessPolicy(profiles, train_counts=train_counts, seed=0)
    metrics = ServerlessSimulator(app, trace, policy, seed=3).run()

    # 5. Results.
    assert policy.strategy is not None
    print("\nChosen execution strategy (per function):")
    for fn in app.function_names:
        plan = policy.strategy.plan(fn)
        print(
            f"  {fn:4s} {plan.config.key:7s} {plan.policy.value:10s} "
            f"T={plan.init_time:.2f}s I={plan.inference_time:.2f}s"
        )

    s = metrics.summary()
    breakdown = metrics.cost_breakdown()
    print(f"\nTotal cost          ${s['total_cost']:.4f}")
    print(f"  initialization    ${breakdown['init']:.4f}")
    print(f"  inference         ${breakdown['inference']:.4f}")
    print(f"  keep-alive idle   ${breakdown['keepalive']:.4f}")
    print(f"Mean E2E latency    {s['mean_latency']:.2f}s (p99 {s['p99_latency']:.2f}s)")
    print(f"SLA violations      {s['violation_ratio']:.1%}")
    print(f"Cold (re)inits      {s['reinit_fraction']:.1%} of stage executions")


if __name__ == "__main__":
    main()

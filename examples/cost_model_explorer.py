"""Exploring the adaptive cost model and calibrating your own models.

Three short studies, no simulation required:

1. the Fig. 5 trade-off: per-invocation cost of a function/configuration
   pair across inter-arrival times, with the pre-warm / keep-alive boundary;
2. the configuration frontier the path search walks: (inference time,
   adaptive cost) points and which of them are dominated;
3. bring-your-own-model calibration: fit Eq. (1)/(2) from a handful of
   wall-clock measurements and plug the result into the optimizer.

Run:  python examples/cost_model_explorer.py
"""

import numpy as np

from repro.core import config_frontier, cost_vs_inter_arrival, regime_boundary
from repro.dag.models import get_profile
from repro.hardware import (
    ConfigurationSpace,
    HardwareConfig,
    Measurement,
    latency_params_from_measurements,
    speedup_curve,
)
from repro.profiler import oracle_profile


def study_cost_curve() -> None:
    print("=== 1. adaptive cost vs inter-arrival time (TG on cpu-8) ===")
    profile = oracle_profile(get_profile("TG"), n_sigma=1.0)
    cfg = HardwareConfig.cpu(8)
    boundary = regime_boundary(profile, cfg)
    its = [round(boundary * f, 2) for f in (0.25, 0.5, 0.9, 1.1, 2.0, 4.0)]
    print(f"regime boundary T+I = {boundary:.2f}s\n")
    print(f"{'IT':>7} {'policy':<11} {'cost/invocation':>16}")
    for point in cost_vs_inter_arrival(profile, cfg, its):
        print(
            f"{point.inter_arrival:>6.2f}s {point.policy.value:<11} "
            f"{point.cost:>15.3e}$"
        )
    print("keep-alive cost grows with the gap; pre-warm cost is flat.\n")


def study_frontier() -> None:
    print("=== 2. configuration frontier (TRS, IT = 5s) ===")
    profile = oracle_profile(get_profile("TRS"), n_sigma=1.0)
    points = config_frontier(profile, ConfigurationSpace.default(), 5.0)
    print(f"{'config':>8} {'I':>7} {'cost':>12} {'dominated':>10}")
    for p in points:
        print(
            f"{p.config.key:>8} {p.inference_time:>6.2f}s {p.cost:>11.3e}$ "
            f"{'yes' if p.dominated else '':>10}"
        )
    kept = sum(1 for p in points if not p.dominated)
    print(f"\n{kept} of {len(points)} configurations are Pareto-relevant.\n")


def study_calibration() -> None:
    print("=== 3. calibrate a custom model from measurements ===")
    # pretend these came from `time python serve.py --cores N --batch B`
    rng = np.random.default_rng(0)
    truth = lambda r, b: b * (3.0 / r + 0.08) + 0.03
    measurements = [
        Measurement(r, b, truth(r, b) * float(rng.lognormal(0, 0.05)))
        for r in (1, 2, 4, 8, 16)
        for b in (1, 2, 4)
    ]
    result = latency_params_from_measurements(measurements)
    print(
        f"fitted alpha={result.params.alpha:.3f} beta={result.params.beta:.3f} "
        f"gamma={result.params.gamma:.3f} (SMAPE {result.smape_percent:.1f}% "
        f"over {result.n_measurements} measurements)"
    )
    print(f"\n{'cores':>6} {'seconds':>8} {'speedup':>8}")
    for r, t, s in speedup_curve(result.params, [1, 2, 4, 8, 16]):
        print(f"{r:>6g} {t:>7.2f}s {s:>7.1f}x")


if __name__ == "__main__":
    study_cost_curve()
    study_frontier()
    study_calibration()

"""Inside the Offline Profiler and Online Predictor (paper §IV).

Demonstrates the two learning components in isolation:

- profiling: fit the Eq. (1)/(2) latency law from 75 noisy samples and
  compare the predictions against ground truth (the Fig. 11b SMAPE view),
  plus the mu + 3*sigma initialization rule of Fig. 11a;
- prediction: train the bucketized LSTM classifier and the dual-LSTM
  inter-arrival regressor on an hour of traffic and score them on held-out
  data against ARIMA and IceBreaker's Fourier predictor (the Fig. 12 view).

Run:  python examples/profiling_and_prediction.py
"""

import numpy as np

from repro.dag.models import get_profile
from repro.hardware import GroundTruthPerformance, HardwareConfig
from repro.predictor import (
    ArimaPredictor,
    FipPredictor,
    InterArrivalPredictor,
    InvocationPredictor,
)
from repro.predictor.interarrival import gaps_from_counts
from repro.predictor.metrics import (
    mean_absolute_percentage_error,
    overestimation_rate,
    underestimation_rate,
)
from repro.profiler import OfflineProfiler, smape
from repro.workload import AzureLikeWorkload


def profiling_demo() -> None:
    print("=== Offline profiling (TRS / T5 translation model) ===")
    perf = get_profile("TRS")
    oracle = GroundTruthPerformance(perf, rng=0)
    profile = OfflineProfiler().profile_function("TRS", oracle)

    configs = [HardwareConfig.cpu(c) for c in (1, 4, 16)]
    configs += [HardwareConfig.gpu(f) for f in (0.1, 0.5, 1.0)]
    print(f"{'config':>8} {'truth':>8} {'fitted':>8}")
    actual, fitted = [], []
    for cfg in configs:
        t = perf.expected_inference_time(cfg, batch=4)
        f = profile.inference_time(cfg, batch=4)
        actual.append(t)
        fitted.append(f)
        print(f"{cfg.key:>8} {t:>7.3f}s {f:>7.3f}s")
    print(f"SMAPE over grid: {smape(np.array(actual), np.array(fitted)):.1f}% "
          "(paper: <20% per function, <8% average)")

    gpu = HardwareConfig.gpu(0.1)
    print(f"\nInit time on GPU: mean={profile.mean_init_time(gpu):.2f}s, "
          f"robust mu+3sigma={profile.init_time(gpu):.2f}s  "
          "(the mean alone caused 34% SLA violations, Fig. 11a)")


def prediction_demo() -> None:
    print("\n=== Online prediction (spiky workload, 1h train / 1h test) ===")
    train = AzureLikeWorkload.preset("spiky", seed=1).generate(3600.0)
    test = AzureLikeWorkload.preset("spiky", seed=2).generate(3600.0)
    train_counts = train.counts_per_window(1.0)
    test_counts = test.counts_per_window(1.0)

    print("\nInvocation-number predictors (under-estimation causes violations):")
    lstm = InvocationPredictor(bucket_size=1, n_buckets=16, epochs=4, seed=0)
    lstm.fit(train_counts)
    a, p = lstm.rolling_predict(test_counts)
    print(f"  {'SMIless LSTM':<14} under={underestimation_rate(a, p):6.1%}")
    for name, model in (
        ("ARIMA", ArimaPredictor(p=8)),
        ("FIP", FipPredictor(n_harmonics=8)),
    ):
        model.fit(train_counts)
        a, p = model.rolling_predict(test_counts)
        print(f"  {name:<14} under={underestimation_rate(a, np.round(p)):6.1%}")

    print("\nInter-arrival predictors (over-estimation delays pre-warming):")
    for name, dual in (("SMIless (dual)", True), ("SMIless-S", False)):
        model = InterArrivalPredictor(dual_input=dual, epochs=15, seed=0)
        model.fit(train_counts)
        a, p = model.evaluate(test_counts)
        print(
            f"  {name:<14} MAPE={mean_absolute_percentage_error(a, p):5.1f}% "
            f"over={overestimation_rate(a, p):6.1%}"
        )
    gaps_train = gaps_from_counts(train_counts)
    gaps_test = gaps_from_counts(test_counts)
    arima = ArimaPredictor(p=6).fit(gaps_train)
    a, p = arima.rolling_predict(gaps_test)
    print(
        f"  {'ARIMA':<14} MAPE={mean_absolute_percentage_error(a, p):5.1f}% "
        f"over={overestimation_rate(a, p):6.1%}"
    )


if __name__ == "__main__":
    profiling_demo()
    prediction_demo()

"""Bring your own application: custom DAG, SLA sweep, strategy inspection.

Shows the library as a downstream user would adopt it: compose an
application from the Table I model registry (or your own
:class:`~repro.hardware.PerfProfile`), then ask the Optimizer Engine how the
cost-minimal strategy shifts as the SLA tightens (the Fig. 10 effect).

Run:  python examples/custom_application.py
"""

from repro.core import OptimizerEngine
from repro.dag import AppDAG, FunctionSpec
from repro.dag.models import get_profile
from repro.hardware import ConfigurationSpace
from repro.profiler import OfflineProfiler


def build_app(sla: float) -> AppDAG:
    """A custom video-moderation pipeline: OD fans into NER + QA, then TTS."""
    functions = [
        FunctionSpec("detect", get_profile("OD")),
        FunctionSpec("entities", get_profile("NER")),
        FunctionSpec("answer", get_profile("QA")),
        FunctionSpec("speak", get_profile("TTS")),
    ]
    edges = [
        ("detect", "entities"),
        ("detect", "answer"),
        ("entities", "speak"),
        ("answer", "speak"),
    ]
    return AppDAG("video-moderation", functions, edges, sla=sla)


def main() -> None:
    profiles = OfflineProfiler().profile_app(build_app(2.0), rng=5)
    engine = OptimizerEngine(ConfigurationSpace.default())

    inter_arrival = 6.0
    print(f"Strategy vs SLA at inter-arrival time {inter_arrival:.0f}s\n")
    print(f"{'SLA':>5} {'feasible':>9} {'latency':>8} {'cost/inv':>12}  assignment")
    for sla in (4.0, 2.0, 1.5, 1.0, 0.6, 0.3):
        app = build_app(sla)
        strategy = engine.strategy(app, profiles, inter_arrival)
        assignment = " ".join(
            f"{fn}={cfg.key}" for fn, cfg in strategy.assignment.items()
        )
        print(
            f"{sla:>5.1f} {str(strategy.feasible):>9} "
            f"{strategy.latency:>7.2f}s ${strategy.cost:>10.3e}  {assignment}"
        )

    print(
        "\nTighter SLAs shift functions to faster (more expensive) hardware;"
        "\npast the fastest configuration the SLA becomes infeasible."
    )

    # The Auto-scaler's view: a burst of 12 invocations in one window.
    app = build_app(2.0)
    strategy = engine.strategy(app, profiles, inter_arrival)
    decisions = engine.scale(app, profiles, strategy, 12, 1.0)
    print("\nBurst of 12 invocations/window -> batching + scale-out:")
    for fn, d in decisions.items():
        print(
            f"  {fn:9s} {d.config.key:7s} batch={d.batch:<2d} "
            f"instances={d.instances:<2d} stage={d.inference_time:.2f}s"
        )


if __name__ == "__main__":
    main()

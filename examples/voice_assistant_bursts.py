"""Voice Assistant (Fig. 7 WL3) under bursty traffic: watch the Auto-scaler.

Replays a bursty trace and prints, per second, the arrival count alongside
the live CPU/GPU pod counts — the Fig. 14 view of SMIless tracking load —
followed by the burst-window cost/violation comparison of Fig. 15.

Run:  python examples/voice_assistant_bursts.py
"""

import numpy as np

from repro.dag import voice_assistant
from repro.policies import GrandSLAmPolicy, OrionPolicy, SMIlessPolicy
from repro.profiler import OfflineProfiler
from repro.simulator import ServerlessSimulator
from repro.workload import AzureLikeWorkload


def main() -> None:
    app = voice_assistant(sla=2.0)
    profiles = OfflineProfiler().profile_app(app, rng=1)
    workload = AzureLikeWorkload.preset("bursty", seed=6)
    train_counts = workload.generate(3600.0).counts_per_window(1.0)
    trace = AzureLikeWorkload.preset("bursty", seed=9).generate(600.0)

    policy = SMIlessPolicy(profiles, train_counts=train_counts, seed=0)
    metrics = ServerlessSimulator(app, trace, policy, seed=3).run()

    pods = metrics.pods_over_time()
    arrivals = metrics.arrivals_over_time()
    # find the busiest 60-second window (the paper samples one such window)
    counts = arrivals[:, 1]
    window = 60
    sums = np.convolve(counts, np.ones(window), mode="valid")
    peak = int(np.argmax(counts))
    start = max(0, peak - 10)
    print(f"Busiest 60s window starts at t={start}s "
          f"({int(sums[min(start, len(sums) - 1)])} invocations)\n")
    print(f"{'t':>5} {'arrivals':>9} {'cpu pods':>9} {'gpu pods':>9}")
    for k in range(start, min(start + 60, len(counts)), 2):
        print(f"{arrivals[k, 0]:>5.0f} {int(arrivals[k, 1]):>9} "
              f"{int(pods[k, 1]):>9} {int(pods[k, 2]):>9}")

    in_burst = slice(start, start + window)
    calm = counts.copy()
    calm[in_burst] = 0
    print(f"\nCPU:GPU pod ratio — burst window: "
          f"{pods[in_burst, 1].sum() / max(pods[in_burst, 2].sum(), 1):.1f}, "
          f"whole run: {pods[:, 1].sum() / max(pods[:, 2].sum(), 1):.1f}")

    print("\nBurst-handling comparison (Fig. 15):")
    print(f"{'policy':<12} {'cost':>9} {'violations':>11}")
    for p in (
        SMIlessPolicy(profiles, train_counts=train_counts, seed=0),
        OrionPolicy(profiles),
        GrandSLAmPolicy(profiles),
    ):
        m = ServerlessSimulator(app, trace, p, seed=3).run()
        print(f"{p.name:<12} ${m.total_cost():>8.4f} {m.violation_ratio():>10.1%}")


if __name__ == "__main__":
    main()

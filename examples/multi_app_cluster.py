"""Co-running all three Fig. 7 applications on one shared cluster (§VII-A).

The paper's evaluation drives a dedicated load generator per application,
all against the same 8-machine cluster.  This example reproduces that
setting with :class:`~repro.simulator.MultiAppSimulator`: a single
simulated clock and a shared capacity pool, so one application's fleet
pressure is visible to the others.

Run:  python examples/multi_app_cluster.py
"""

from repro.experiments import build_environment, run_multi_app

PRESETS = {
    "amber-alert": "steady",
    "image-query": "diurnal",
    "voice-assistant": "steady",
}


def main() -> None:
    envs = [
        build_environment(
            name,
            preset=preset,
            duration=400.0,
            train_duration=1800.0,
            seed=60 + i,
        )
        for i, (name, preset) in enumerate(PRESETS.items())
    ]
    total_invocations = sum(len(env.trace) for env in envs)
    print(
        f"Co-running {len(envs)} applications "
        f"({total_invocations} invocations total) on one 8-machine cluster\n"
    )

    for policy in ("smiless", "grandslam"):
        rows = run_multi_app(envs, policy)
        total = sum(r.total_cost for r in rows.values())
        print(f"[{policy}]  cluster bill ${total:.4f}")
        for name, row in rows.items():
            print(
                f"  {name:<16} ${row.total_cost:.4f} "
                f"viol={row.violation_ratio:.1%} "
                f"mean lat={row.mean_latency:.2f}s"
            )
        print()


if __name__ == "__main__":
    main()

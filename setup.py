"""Legacy setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 517 editable installs (which build a wheel) are unavailable.  This shim
lets ``pip install -e . --no-build-isolation`` and ``python setup.py
develop`` work with plain setuptools.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Seeded asyncio load generator for the live serving façade.

Drives ``repro serve`` in closed loop with stdlib-only HTTP (raw
``asyncio.open_connection``, no third-party client): ``--concurrency``
workers each draw seeded exponential think-time gaps and app choices,
POST to ``/invoke/<app>``, and wait for the simulated invocation's
terminal status before sending their next request.

Two modes:

- **external** (default): target a running server via ``--host/--port``.
- **``--inline``**: spin the whole serving session up in-process from a
  scenario spec (time-warp pacing, ephemeral port), drive it, stop it,
  and optionally ``--verify-replay`` the captured request log — the CI
  closed-loop harness.  Exit status is non-zero when an ``--expect-*``
  assertion or replay verification fails.

Examples::

    python tools/loadgen.py --host 127.0.0.1 --port 8080 \
        --apps image-query --requests 100 --seed 7

    python tools/loadgen.py --inline --scenario spec.json \
        --requests 200 --concurrency 8 --seed 7 \
        --log serve_log.jsonl --verify-replay --expect-429 --expect-200
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from collections import Counter
from pathlib import Path


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
) -> tuple[int, dict]:
    """One HTTP/1.1 exchange over a fresh connection; returns (status, JSON)."""
    payload = json.dumps(body).encode() if body is not None else b""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            + payload
        )
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            if key.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await reader.readexactly(length) if length else b"{}"
        return status, json.loads(raw)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_load(
    host: str,
    port: int,
    *,
    apps: list[str],
    requests: int,
    concurrency: int = 4,
    rate: float = 50.0,
    seed: int = 0,
    tenant: str | None = None,
) -> dict:
    """Closed-loop seeded load; returns client-side statistics.

    The full schedule (inter-request gap + target app per request) is
    drawn up front from one seeded RNG, so a given seed always produces
    the same request sequence regardless of worker interleaving.
    """
    rng = random.Random(seed)
    schedule = [
        (rng.expovariate(rate) if rate > 0 else 0.0, rng.choice(apps))
        for _ in range(requests)
    ]
    queue: asyncio.Queue = asyncio.Queue()
    for item in schedule:
        queue.put_nowait(item)
    status_counts: Counter = Counter()
    disposition_counts: Counter = Counter()
    per_app: dict[str, Counter] = {app: Counter() for app in apps}
    wall_latencies: list[float] = []
    errors: list[str] = []

    async def worker() -> None:
        while True:
            try:
                gap, app = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if gap:
                await asyncio.sleep(gap)
            t0 = time.monotonic()
            try:
                status, payload = await http_request(
                    host,
                    port,
                    "POST",
                    f"/invoke/{app}",
                    {"tenant": tenant} if tenant else None,
                )
            except OSError as exc:
                errors.append(f"{app}: {exc!r}")
                continue
            wall_latencies.append(time.monotonic() - t0)
            status_counts[status] += 1
            disposition = payload.get("status", "error")
            disposition_counts[disposition] += 1
            per_app[app][disposition] += 1

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    wall_latencies.sort()
    return {
        "requests": requests,
        "errors": errors,
        "status": {str(k): v for k, v in sorted(status_counts.items())},
        "dispositions": dict(sorted(disposition_counts.items())),
        "per_app": {app: dict(c) for app, c in per_app.items()},
        "wall_latency_ms": {
            "mean": (
                sum(wall_latencies) / len(wall_latencies) * 1000.0
                if wall_latencies
                else None
            ),
            "p99": (
                wall_latencies[int(0.99 * (len(wall_latencies) - 1))] * 1000.0
                if wall_latencies
                else None
            ),
        },
    }


async def _inline_session(args) -> tuple[dict, dict]:
    """Run server + load in one process; returns (stats, final summary)."""
    from repro.experiments.scenario import ScenarioSpec
    from repro.serving import (
        LiveServer,
        RequestLogWriter,
        SimDriver,
        make_pacer,
    )

    spec = ScenarioSpec.from_json(args.scenario)
    driver = SimDriver(spec.serve_cell(), horizon=spec.duration)
    server = LiveServer(
        driver,
        make_pacer(args.pacing, time_scale=args.time_scale),
        port=0,
        log=RequestLogWriter(args.log) if args.log else None,
    )
    await server.start()
    apps = args.apps or sorted(driver.gateways)
    stats = await run_load(
        server.host,
        server.port,
        apps=apps,
        requests=args.requests,
        concurrency=args.concurrency,
        rate=args.rate,
        seed=args.seed,
        tenant=args.tenant,
    )
    _, summary = await http_request(
        server.host, server.port, "POST", "/control/stop"
    )
    await server.run()
    return stats, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--apps",
        nargs="+",
        default=None,
        help="target applications (inline mode defaults to all served apps)",
    )
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="mean request rate per worker stream (1/mean think-time gap)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tenant", default=None)
    parser.add_argument(
        "--stop",
        action="store_true",
        help="POST /control/stop after the load completes (external mode)",
    )
    parser.add_argument(
        "--inline",
        action="store_true",
        help="run the serving session in-process (needs --scenario)",
    )
    parser.add_argument("--scenario", default=None, metavar="SPEC.json")
    parser.add_argument(
        "--pacing", default="time-warp", choices=["time-warp", "wall-clock"]
    )
    parser.add_argument("--time-scale", type=float, default=1.0)
    parser.add_argument("--log", default=None, metavar="LOG.jsonl")
    parser.add_argument(
        "--verify-replay",
        action="store_true",
        help="after an inline session, replay --log and require "
        "bit-identical RunMetrics",
    )
    parser.add_argument(
        "--expect-429",
        action="store_true",
        help="fail unless at least one request was admission-rejected",
    )
    parser.add_argument(
        "--expect-200",
        action="store_true",
        help="fail unless at least one request completed",
    )
    args = parser.parse_args(argv)

    if args.inline:
        if args.scenario is None:
            parser.error("--inline requires --scenario")
        # Allow running straight from a checkout without PYTHONPATH.
        repo_src = Path(__file__).resolve().parent.parent / "src"
        if repo_src.is_dir() and str(repo_src) not in sys.path:
            sys.path.insert(0, str(repo_src))
        stats, summary = asyncio.run(_inline_session(args))
        stats["final_summary"] = summary.get("summary")
    else:

        async def external() -> dict:
            stats = await run_load(
                args.host,
                args.port,
                apps=args.apps or [],
                requests=args.requests,
                concurrency=args.concurrency,
                rate=args.rate,
                seed=args.seed,
                tenant=args.tenant,
            )
            if args.stop:
                _, summary = await http_request(
                    args.host, args.port, "POST", "/control/stop"
                )
                stats["final_summary"] = summary.get("summary")
            return stats

        if not args.apps:
            parser.error("external mode requires --apps")
        stats = asyncio.run(external())

    failures: list[str] = []
    if stats["errors"]:
        failures.append(f"{len(stats['errors'])} transport errors")
    if args.expect_429 and stats["dispositions"].get("rejected", 0) == 0:
        failures.append("expected at least one 429 (rejected), saw none")
    if args.expect_200 and stats["dispositions"].get("completed", 0) == 0:
        failures.append("expected at least one 200 (completed), saw none")
    if args.verify_replay:
        if not (args.inline and args.log):
            parser.error("--verify-replay requires --inline and --log")
        from repro.serving import verify_replay

        _, diffs = verify_replay(args.log)
        stats["replay_parity"] = "ok" if not diffs else diffs
        if diffs:
            failures.append(f"replay parity failed: {diffs}")

    print(json.dumps(stats, indent=2, sort_keys=True))
    if failures:
        print("LOADGEN FAILURES:", "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Import-cycle check: every ``repro`` module must import from a cold start.

For each module under ``src/repro`` this script purges every ``repro*``
entry from ``sys.modules`` and imports the module fresh, so the module is
the *first* thing the package loads.  A genuine import cycle (e.g. the
simulator importing policies at module level while policies import the
simulator) only bites when the "wrong" side is imported first — a plain
test run that happens to import packages in a benign order never notices.
This check exercises every entry point.

Run from the repository root::

    PYTHONPATH=src python tools/check_imports.py

Exit status is non-zero if any module fails to import.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"


def discover_modules() -> list[str]:
    """All repro.* module names, sorted for a stable report."""
    modules = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        rel = path.relative_to(SRC).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules.append(".".join(parts))
    return modules


def purge_repro() -> None:
    """Drop all repro modules so the next import starts cold.

    Third-party modules (numpy et al.) stay cached — only the package
    under test is re-imported, which keeps the sweep fast.
    """
    for name in [m for m in sys.modules if m == "repro" or m.startswith("repro.")]:
        del sys.modules[name]


def main() -> int:
    sys.path.insert(0, str(SRC))
    failures: list[tuple[str, Exception]] = []
    modules = discover_modules()
    for name in modules:
        purge_repro()
        try:
            importlib.import_module(name)
        except Exception as exc:  # noqa: BLE001 - report every failure mode
            failures.append((name, exc))
    if failures:
        print(f"{len(failures)}/{len(modules)} modules failed cold import:")
        for name, exc in failures:
            print(f"  {name}: {type(exc).__name__}: {exc}")
        return 1
    print(f"ok: {len(modules)} modules import cleanly from a cold start")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Declarative, seed-deterministic overload-resilience specs.

An :class:`OverloadSpec` describes how a gateway defends itself against
its *own traffic* — the missing half of the robustness story next to the
injected-fault plane (:mod:`repro.faults`):

- **bounded queues** — ``queue_limit`` caps every per-function ready
  queue; when an arrival would exceed it, one invocation is *shed*
  according to ``shed_policy`` (emitting ``invocation_shed`` and counting
  in the ``shed`` counter, disjoint from ``completed`` / ``unfinished`` /
  ``timed_out``);
- **admission control** — ``admission_rate`` / ``admission_burst``
  parameterize a per-app token bucket at the gateway front door; an
  arrival that finds the bucket empty is *rejected* before it enters the
  system (``invocation_rejected``, the future HTTP 429);
- **circuit breakers** — ``breaker_failures`` consecutive batch failures
  of one function open its breaker: dispatch stops, the function degrades
  to ``degraded_config``, and after ``breaker_cooldown`` seconds a single
  half-open probe decides between closing and re-opening;
- **brownout** — when a function's head-of-queue delay exceeds
  ``brownout_queue_delay`` at a window tick, the function switches to
  ``degraded_config`` until the delay recedes below
  ``brownout_recover_delay``.

Like a :class:`~repro.faults.FaultPlan`, the spec is frozen, hashable,
picklable and JSON-loadable, attaches to every entry point, and holds no
randomness — every decision is a pure function of simulated time and
queue state, so same seed + same spec → the same sheds, rejections and
trace, serial or sharded.  With no spec attached the gateway takes none
of these code paths and a run is bit-identical to the pre-overload
engine (the determinism goldens pin this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "SHED_POLICIES",
    "OverloadSpec",
    "TokenBucket",
]

#: Valid ``shed_policy`` values: who gets dropped when a bounded queue
#: overflows.
SHED_POLICIES = ("reject-newest", "drop-oldest", "deadline-aware")


@dataclass(frozen=True)
class OverloadSpec:
    """Parameters of the gateway's overload-protection machinery.

    Every mechanism is independently optional: the default of each
    enabling knob (``queue_limit``, ``admission_rate``,
    ``breaker_failures``, ``brownout_queue_delay``) is ``None`` =
    disabled, so a spec enables exactly the mechanisms it names.
    """

    queue_limit: int | None = None
    shed_policy: str = "reject-newest"
    admission_rate: float | None = None
    admission_burst: float = 10.0
    breaker_failures: int | None = None
    breaker_cooldown: float = 30.0
    brownout_queue_delay: float | None = None
    brownout_recover_delay: float = 0.0
    degraded_config: str = "cpu-16"

    def __post_init__(self) -> None:
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )
        if self.admission_rate is not None and self.admission_rate <= 0:
            raise ValueError(
                f"admission_rate must be > 0, got {self.admission_rate}"
            )
        if self.admission_burst < 1.0:
            raise ValueError(
                f"admission_burst must be >= 1, got {self.admission_burst}"
            )
        if self.breaker_failures is not None and self.breaker_failures < 1:
            raise ValueError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be > 0, got {self.breaker_cooldown}"
            )
        if (
            self.brownout_queue_delay is not None
            and self.brownout_queue_delay <= 0
        ):
            raise ValueError(
                "brownout_queue_delay must be > 0, "
                f"got {self.brownout_queue_delay}"
            )
        if self.brownout_recover_delay < 0:
            raise ValueError(
                "brownout_recover_delay must be >= 0, "
                f"got {self.brownout_recover_delay}"
            )
        if (
            self.brownout_queue_delay is not None
            and self.brownout_recover_delay >= self.brownout_queue_delay
        ):
            raise ValueError(
                "brownout_recover_delay must be < brownout_queue_delay "
                "(hysteresis), got "
                f"{self.brownout_recover_delay} >= {self.brownout_queue_delay}"
            )

    # ------------------------------------------------------------- loading
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OverloadSpec":
        """Build a spec from a plain dict; unknown keys are rejected."""
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise KeyError(
                f"unknown overload-spec keys {sorted(unknown)}; "
                f"valid keys: {sorted(valid)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, path: str | Path) -> "OverloadSpec":
        """Load a spec from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_dict(self) -> dict[str, Any]:
        """Round-trippable plain-dict form (JSON-serializable)."""
        import dataclasses

        return dataclasses.asdict(self)

    # ------------------------------------------------------------- queries
    @property
    def bounds_queues(self) -> bool:
        return self.queue_limit is not None

    @property
    def admits(self) -> bool:
        return self.admission_rate is not None

    @property
    def breaks_circuits(self) -> bool:
        return self.breaker_failures is not None

    @property
    def browns_out(self) -> bool:
        return self.brownout_queue_delay is not None

    def make_bucket(self) -> "TokenBucket | None":
        """A fresh token bucket (``None`` when admission is disabled)."""
        if self.admission_rate is None:
            return None
        return TokenBucket(rate=self.admission_rate, burst=self.admission_burst)


class TokenBucket:
    """A deterministic token bucket: ``rate`` tokens/s, ``burst`` capacity.

    Starts full.  :meth:`admit` refills by elapsed simulated time, then
    admits (consuming one token) iff at least one whole token is
    available.  No randomness and no wall-clock: decisions are a pure
    function of the admission timestamps, which is what makes admission
    commute with sharding (each trace slice replays the same instants).
    """

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, *, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = 0.0

    def admit(self, t: float) -> bool:
        """Admit one arrival at simulated time ``t`` (monotone calls)."""
        if t > self.last:
            self.tokens = min(self.burst, self.tokens + (t - self.last) * self.rate)
            self.last = t
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

"""Overload-resilience plane (see ``docs/robustness.md``).

An :class:`OverloadSpec` is a JSON-loadable, seed-deterministic
description of how a gateway defends itself against its own traffic —
bounded per-function queues with pluggable shedding policies, per-app
token-bucket admission control, per-function circuit breakers, and
brownout degradation tiers.  Attach a spec to a
:class:`~repro.simulator.runtime.Runtime`, a simulator facade, a
:class:`~repro.experiments.scenario.ScenarioSpec`, or any runner / CLI
entry point (``--overload``); with no spec attached every overload code
path is skipped and runs are bit-identical to the pre-overload engine.
"""

from repro.overload.spec import SHED_POLICIES, OverloadSpec, TokenBucket

__all__ = [
    "SHED_POLICIES",
    "OverloadSpec",
    "TokenBucket",
]

"""Live serving façade: the simulator as a load-testable HTTP service.

``repro serve`` exposes one endpoint per application over a stdlib
asyncio HTTP front door; each POST becomes an invocation injected into a
shared :class:`~repro.simulator.runtime.Runtime`, paced either in
wall-clock (Revati-style time scaling) or time-warp mode, with
token-bucket admission surfacing as HTTP 429.  Every front-door request
is appended to a JSONL request log that replays offline into
bit-identical :class:`~repro.simulator.metrics.RunMetrics` — see
``docs/serving.md``.

This package is intentionally *above* the simulator/experiments layers:
nothing in the offline stack imports it, so pure-simulation runs never
load it (pinned by the zero-cost regression test).
"""

from repro.serving.driver import (
    DEFAULT_CAPACITY,
    HorizonPassed,
    LiveGateway,
    SimDriver,
    Ticket,
)
from repro.serving.pacing import (
    PACING_MODES,
    TimeWarpPacer,
    WallClockPacer,
    make_pacer,
)
from repro.serving.replay import (
    ReplayResult,
    cell_from_header,
    replay_request_log,
    verify_replay,
)
from repro.serving.requestlog import (
    LOG_VERSION,
    ParsedLog,
    RequestLogWriter,
    read_request_log,
)
from repro.serving.server import LiveServer

__all__ = [
    "DEFAULT_CAPACITY",
    "HorizonPassed",
    "LOG_VERSION",
    "LiveGateway",
    "LiveServer",
    "PACING_MODES",
    "ParsedLog",
    "ReplayResult",
    "RequestLogWriter",
    "SimDriver",
    "Ticket",
    "TimeWarpPacer",
    "WallClockPacer",
    "cell_from_header",
    "make_pacer",
    "read_request_log",
    "replay_request_log",
    "verify_replay",
]

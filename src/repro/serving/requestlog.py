"""JSONL request-log persistence for the live serving façade.

A request log is the serving plane's durable record of one live session,
written as one JSON object per line so it can be tailed, grepped and
truncated safely:

- ``{"kind": "header", ...}`` — first line: the full recipe needed to
  rebuild the session offline (environment specs, policy, seeds, overload
  spec, horizon, pacing mode).
- ``{"kind": "request", ...}`` — one line per front-door request in stamp
  order: the application, the simulated arrival time assigned by the
  driver, and the client-supplied tenant label.  *Every* request is
  recorded — including ones the token bucket later rejects — because the
  bucket is a pure function of the arrival timestamps: replaying the full
  stamp sequence reproduces the identical 429 decisions.
- ``{"kind": "response", ...}`` — one line per resolved request: terminal
  status, invocation id, latency and the request-level audit fields.
- ``{"kind": "summary", ...}`` — final line: per-app ``RunMetrics``
  summaries and counters from the live run, letting ``repro serve
  --replay`` verify bit-identical reproduction without the original
  process.

:func:`read_request_log` parses a log back into a :class:`ParsedLog`;
:meth:`repro.workload.Trace.from_request_log` consumes the same format
independently (the workload layer never imports this package).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO

__all__ = [
    "LOG_VERSION",
    "ParsedLog",
    "RequestLogWriter",
    "read_request_log",
]

#: Format version stamped into every header line.
LOG_VERSION = 1


class RequestLogWriter:
    """Append-only JSONL writer for one live serving session."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")

    def _write(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"request log {self.path} is already closed")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")

    def header(self, payload: dict[str, Any]) -> None:
        """Write the session-recipe header (must be the first record)."""
        self._write({"kind": "header", "version": LOG_VERSION, **payload})
        self._fh.flush()

    def request(self, payload: dict[str, Any]) -> None:
        """Record one front-door request (accepted *or* later rejected)."""
        self._write({"kind": "request", **payload})

    def response(self, payload: dict[str, Any]) -> None:
        """Record one resolved request (terminal status + audit fields)."""
        self._write({"kind": "response", **payload})

    def summary(self, payload: dict[str, Any]) -> None:
        """Write the final per-app metrics footer and flush."""
        self._write({"kind": "summary", **payload})
        self._fh.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


@dataclass
class ParsedLog:
    """A request log parsed back into its typed record streams."""

    header: dict[str, Any]
    requests: list[dict[str, Any]] = field(default_factory=list)
    responses: list[dict[str, Any]] = field(default_factory=list)
    summary: dict[str, Any] | None = None

    @property
    def apps(self) -> list[str]:
        """Application names hosted by the recorded session."""
        return [env["app"] for env in self.header["envs"]]

    def request_times(self, app: str) -> list[float]:
        """Arrival stamps for one app, in recorded (= sorted) order."""
        return [
            float(r["t"]) for r in self.requests if r["app"] == app
        ]


def read_request_log(path: str | Path) -> ParsedLog:
    """Parse a JSONL request log; validates the header line."""
    parsed: ParsedLog | None = None
    with Path(path).open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("kind", None)
            if parsed is None:
                if kind != "header":
                    raise ValueError(
                        f"{path}:{lineno}: expected a header record first, "
                        f"got kind={kind!r}"
                    )
                version = record.get("version")
                if version != LOG_VERSION:
                    raise ValueError(
                        f"{path}: unsupported request-log version {version!r} "
                        f"(expected {LOG_VERSION})"
                    )
                parsed = ParsedLog(header=record)
            elif kind == "request":
                parsed.requests.append(record)
            elif kind == "response":
                parsed.responses.append(record)
            elif kind == "summary":
                parsed.summary = record
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown record kind {kind!r}"
                )
    if parsed is None:
        raise ValueError(f"{path}: empty request log")
    return parsed

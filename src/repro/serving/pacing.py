"""Pacing modes for the live serving façade.

Two ways of mapping wall-clock request traffic onto the simulated clock
(after Revati's emulated-serving modes; see PAPERS.md):

- **wall-clock** — simulated time tracks real time through a fixed
  ``time_scale`` (simulated seconds per wall second).  A scale of 1.0 is
  real-time emulation; 60.0 compresses a one-hour session into a minute.
  The simulation is advanced up to the wall-mapped instant whether or not
  work is pending, so keep-alive windows and predictor ticks burn real
  time exactly as a deployed gateway's would.
- **time-warp** — simulated time advances only while the runtime has
  work: pending injections or open invocations.  Between requests the
  clock *parks*, so a load generator in closed loop sweeps through hours
  of simulated keep-alive decisions in milliseconds.  This is the CI
  mode: wall-clock jitter never leaks into the recorded stamps' ordering
  guarantees (stamps remain driver-assigned and strictly increasing
  either way).

Pacing changes *when* the driver steps and which stamps requests get; it
never changes the simulation semantics themselves, which is why a
recorded session replays bit-identically regardless of the mode it was
captured under.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["PACING_MODES", "TimeWarpPacer", "WallClockPacer", "make_pacer"]

#: Recognised pacing-mode names (CLI ``--pacing``).
PACING_MODES = ("time-warp", "wall-clock")


class TimeWarpPacer:
    """Advance the simulation as fast as pending work allows."""

    mode = "time-warp"
    #: Simulated seconds per wall second; ``None`` marks "unpaced", which
    #: callers use to skip wall-clock sleeps entirely.
    time_scale: float | None = None

    def start(self) -> None:  # symmetric API with WallClockPacer
        """Mark the session start (a no-op for time-warp)."""

    def sim_target(self, horizon: float) -> float:
        """Furthest simulated instant the driver may advance to."""
        return horizon


class WallClockPacer:
    """Map wall time onto simulated time through a fixed scale factor."""

    mode = "wall-clock"

    def __init__(
        self,
        time_scale: float = 1.0,
        *,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {time_scale}")
        self.time_scale = float(time_scale)
        self._clock = clock if clock is not None else time.monotonic
        self._t0: float | None = None

    def start(self) -> None:
        """Pin wall-clock zero to the current instant."""
        self._t0 = self._clock()

    def sim_now(self) -> float:
        """The simulated instant corresponding to the current wall time."""
        if self._t0 is None:
            raise ValueError("pacer not started; call start() first")
        return (self._clock() - self._t0) * self.time_scale

    def sim_target(self, horizon: float) -> float:
        """Furthest simulated instant the driver may advance to."""
        return min(horizon, self.sim_now())


def make_pacer(
    mode: str,
    *,
    time_scale: float = 1.0,
    clock: Callable[[], float] | None = None,
) -> TimeWarpPacer | WallClockPacer:
    """Build a pacer by mode name (CLI entry point)."""
    if mode == "time-warp":
        return TimeWarpPacer()
    if mode == "wall-clock":
        return WallClockPacer(time_scale, clock=clock)
    raise ValueError(
        f"unknown pacing mode {mode!r}; expected one of {PACING_MODES}"
    )

"""Asyncio HTTP front door for the live serving façade.

A deliberately minimal HTTP/1.1 layer over ``asyncio.start_server`` — no
third-party dependencies — exposing the simulated runtime as a traffic
target:

- ``POST /invoke/<app>`` — inject one invocation; the response returns
  when the *simulated* invocation reaches a terminal disposition:
  ``200`` completed (per-stage timing in the body), ``429`` rejected by
  token-bucket admission (with ``Retry-After``), ``503`` shed under
  overload or past the session horizon, ``504`` simulated timeout or
  unfinished at shutdown.
- ``GET /healthz`` — liveness plus the simulated clock.
- ``GET /stats`` — live per-app counters (open, completed, rejected…).
- ``POST /control/stop`` — finalize the session (drain + seal metrics,
  write the request-log footer) and return the final summaries.

The single pump task owns the simulation: connection handlers only queue
requests and await their tickets, so the event heap is never touched
concurrently.  Everything below runs in one thread on one event loop.
"""

from __future__ import annotations

import asyncio
import json
import math
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.serving.driver import HorizonPassed, SimDriver, Ticket
from repro.serving.pacing import TimeWarpPacer, WallClockPacer
from repro.serving.requestlog import RequestLogWriter

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.simulator.metrics import RunMetrics

__all__ = ["LiveServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: HTTP status for each terminal ticket disposition.
_STATUS_CODES = {
    "completed": 200,
    "rejected": 429,
    "shed": 503,
    "timed_out": 504,
    "unfinished": 504,
}


class LiveServer:
    """One live serving session: HTTP front door + simulation pump."""

    def __init__(
        self,
        driver: SimDriver,
        pacer: TimeWarpPacer | WallClockPacer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        log: RequestLogWriter | None = None,
        max_requests: int | None = None,
        idle_poll: float = 0.02,
    ) -> None:
        self.driver = driver
        self.pacer = pacer
        self.host = host
        self._requested_port = port
        self.log = log
        self.max_requests = max_requests
        self._idle_poll = idle_poll
        self._inbox: deque[tuple[str, str | None, asyncio.Future]] = deque()
        self._wake = asyncio.Event()
        self._done = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._active_conns = 0
        self._stop_requested = False
        self._finalized = False
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self.metrics: "dict[str, RunMetrics] | None" = None

    # ------------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's choice)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the socket, start the driver and the pump task."""
        if not self.driver._started:
            self.driver.start()
        self.pacer.start()
        if self.log is not None:
            self.log.header(
                self.driver.header_payload(
                    pacing=self.pacer.mode,
                    time_scale=self.pacer.time_scale,
                )
            )
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self._requested_port
        )
        self._pump_task = asyncio.create_task(self._pump())

    def request_stop(self) -> None:
        """Ask the pump to drain and finalize (idempotent, signal-safe)."""
        self._stop_requested = True
        self._wake.set()

    async def run(self) -> "dict[str, RunMetrics]":
        """Serve until stopped; returns the finalized per-app metrics."""
        await self._done.wait()
        if self._pump_task is not None:
            await self._pump_task
        await self._shutdown()
        assert self.metrics is not None
        return self.metrics

    async def stop(self) -> "dict[str, RunMetrics]":
        """Programmatic stop: request, drain, shut down, return metrics."""
        self.request_stop()
        return await self.run()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._drained.wait(), timeout=5.0)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------ pump
    def _advance(self) -> int:
        if isinstance(self.pacer, WallClockPacer):
            return self.driver.advance_to(
                self.pacer.sim_target(self.driver.horizon)
            )
        return self.driver.advance_while_busy()

    def _should_stop(self) -> bool:
        if self._inbox:
            return False
        if self._stop_requested:
            # Drain only what the serve phase can still advance; work
            # straddling the horizon is finish()'s to resolve.
            return True
        if self.driver.actionable_work():
            return False
        if self.driver.pending_work():
            # Horizon saturation: open invocations whose remaining
            # events all lie past the horizon.  The serve phase can
            # never resolve them, so the session is over — finish()'s
            # drain window delivers their terminal responses.
            return True
        if (
            self.max_requests is not None
            and len(self.driver.tickets) >= self.max_requests
        ):
            return True
        if (
            isinstance(self.pacer, WallClockPacer)
            and self.pacer.sim_now() >= self.driver.horizon
        ):
            # A wall-clock session naturally ends at its horizon.
            return True
        return False

    async def _pump(self) -> None:
        driver = self.driver
        try:
            while True:
                progressed = False
                while self._inbox:
                    app, tenant, future = self._inbox.popleft()
                    self._inject(app, tenant, future)
                    progressed = True
                progressed |= self._advance() > 0
                if self._should_stop():
                    break
                if progressed:
                    await asyncio.sleep(0)
                else:
                    self._wake.clear()
                    try:
                        await asyncio.wait_for(
                            self._wake.wait(), timeout=self._idle_poll
                        )
                    except asyncio.TimeoutError:
                        pass
        finally:
            self._finalize()
            self._done.set()

    def _inject(
        self, app: str, tenant: str | None, future: asyncio.Future
    ) -> None:
        try:
            ticket = self.driver.submit(
                app,
                tenant=tenant,
                on_done=lambda t, fut=future: self._resolve(fut, t),
            )
        except HorizonPassed as exc:
            if not future.done():
                future.set_result((503, {"error": str(exc)}, {}))
            return
        if self.log is not None:
            self.log.request(
                {
                    "index": ticket.index,
                    "app": ticket.app,
                    "t": ticket.t,
                    "tenant": ticket.tenant,
                }
            )

    def _resolve(self, future: asyncio.Future, ticket: Ticket) -> None:
        status_code = _STATUS_CODES[ticket.status]
        payload = self._ticket_payload(ticket)
        headers: dict[str, str] = {}
        if ticket.status == "rejected":
            retry_sim = self.driver.retry_after(ticket.app)
            scale = self.pacer.time_scale
            retry_wall = retry_sim / scale if scale else retry_sim
            payload["retry_after"] = retry_wall
            headers["Retry-After"] = str(max(0, math.ceil(retry_wall)))
        if self.log is not None:
            self.log.response(payload)
        if not future.done():
            future.set_result((status_code, payload, headers))

    def _ticket_payload(self, ticket: Ticket) -> dict[str, Any]:
        """Request-level audit fields shared by responses and the log."""
        inv = ticket.inv
        payload: dict[str, Any] = {
            "index": ticket.index,
            "app": ticket.app,
            "status": ticket.status,
            "invocation_id": ticket.invocation_id,
            "tenant": ticket.tenant,
            "arrival": ticket.t,
            "resolved_at": ticket.resolved_at,
        }
        if inv is not None and ticket.status == "completed":
            sla = self.driver.gateways[ticket.app].app.sla
            latency = inv.completed_at - inv.arrival
            payload.update(
                {
                    "completed_at": inv.completed_at,
                    "latency": latency,
                    "sla": sla,
                    "sla_violated": latency > sla + 1e-9,
                    "stages": {
                        name: {
                            "ready_at": stage.ready_at,
                            "started_at": stage.started_at,
                            "finished_at": stage.finished_at,
                            "queue_wait": stage.queue_wait,
                            "cold_start": stage.cold_start,
                            "batch": stage.batch,
                            "instance_id": stage.instance_id,
                        }
                        for name, stage in inv.stages.items()
                    },
                }
            )
        return payload

    def _finalize(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        # finish() resolves leftover tickets first (their response
        # records land in the log), then the footer seals the file.
        self.metrics = self.driver.finish()
        for app, tenant, future in self._inbox:
            if not future.done():
                future.set_result(
                    (503, {"error": "session is shutting down"}, {})
                )
        self._inbox.clear()
        if self.log is not None:
            self.log.summary(self.driver.summary_payload())
            self.log.close()

    # ------------------------------------------------------------- dispatch
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if path.startswith("/invoke/"):
            if method != "POST":
                return 405, {"error": "POST required"}, {}
            return await self._invoke(path[len("/invoke/"):], body)
        if path == "/healthz":
            return 200, {
                "status": "ok",
                "sim_now": self.driver.now,
                "pacing": self.pacer.mode,
                "apps": sorted(self.driver.gateways),
            }, {}
        if path == "/stats":
            return 200, self.driver.stats(), {}
        if path == "/control/stop":
            if method != "POST":
                return 405, {"error": "POST required"}, {}
            self.request_stop()
            await self._done.wait()
            return 200, {
                "stopped": True,
                "summary": self.driver.summary_payload(),
            }, {}
        return 404, {"error": f"unknown path {path!r}"}, {}

    async def _invoke(
        self, app: str, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if app not in self.driver.gateways:
            return 404, {
                "error": f"unknown application {app!r}",
                "apps": sorted(self.driver.gateways),
            }, {}
        if self._stop_requested or self._finalized:
            return 503, {"error": "session is shutting down"}, {}
        if (
            self.max_requests is not None
            and len(self.driver.tickets) + len(self._inbox)
            >= self.max_requests
        ):
            return 503, {"error": "session request limit reached"}, {}
        tenant: str | None = None
        if body:
            try:
                parsed = json.loads(body)
                if isinstance(parsed, dict):
                    tenant = parsed.get("tenant")
            except json.JSONDecodeError:
                return 400, {"error": "body must be JSON"}, {}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inbox.append((app, tenant, future))
        self._wake.set()
        return await future

    # ---------------------------------------------------------------- http
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._active_conns += 1
        self._drained.clear()
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, path, _ = (
                        request_line.decode("latin-1").strip().split(" ", 2)
                    )
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"}, {}
                    )
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                body = await reader.readexactly(length) if length else b""
                try:
                    status, payload, extra = await self._dispatch(
                        method.upper(), path, body
                    )
                except Exception as exc:  # pragma: no cover - defensive
                    status, payload, extra = 500, {"error": repr(exc)}, {}
                await self._respond(writer, status, payload, extra)
                if headers.get("connection", "").lower() == "close":
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._active_conns -= 1
            if self._active_conns == 0:
                self._drained.set()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        extra: dict[str, str],
    ) -> None:
        data = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
        )
        for key, value in extra.items():
            head += f"{key}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + data)
        await writer.drain()

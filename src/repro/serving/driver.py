"""Live simulation driver: inject HTTP requests into a shared Runtime.

The :class:`SimDriver` hosts one multi-tenant :class:`~repro.simulator
.runtime.Runtime` whose arrivals come from a *live* front door instead of
a pre-built trace.  Each accepted request is stamped with a simulated
arrival time and scheduled as a real arrival event, so admission control,
queueing, batching and billing all run through the exact machinery an
offline replay uses — which is what makes a captured session reproduce
bit-identically (see ``docs/serving.md`` for the full argument).

Determinism contract (the replay-parity invariants):

- **Stamps are globally strictly increasing** in submission order
  (``nextafter(max(now, last_stamp))``), so the live global arrival order
  equals the replayed per-app-sorted merge order and invocation ids — and
  with them every per-app RNG stream — coincide.
- **Stamps are strictly after the current simulated instant**, so an
  injection never sorts before an event that already fired.
- **Arrival sequence slots are reserved up front** (a fixed per-gateway
  ``capacity``, claimed in :meth:`LiveGateway._arrival_capacity` before
  the window-tick block), so equal-time events keep the offline
  tie-breaking classes: arrivals < window ticks < dynamic events, per
  gateway in registration order.
- **The serve phase never advances past the horizon**; :meth:`SimDriver
  .finish` then replays ``Runtime.run``'s exact tail (``run_until`` to
  the horizon, the bounded drain loop, per-gateway finalization).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.experiments.parallel import MultiAppCellSpec, _environment
from repro.simulator.gateway import Gateway
from repro.simulator.runtime import Runtime, derive_app_seed
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.dag.graph import AppDAG
    from repro.policies.base import Policy
    from repro.simulator.invocation import Invocation
    from repro.simulator.metrics import RunMetrics

__all__ = [
    "DEFAULT_CAPACITY",
    "HorizonPassed",
    "LiveGateway",
    "SimDriver",
    "Ticket",
]

#: Arrival-sequence slots reserved per live gateway.  Reservation is a
#: counter bump, not an allocation, so the default is deliberately roomy.
DEFAULT_CAPACITY = 1_000_000

#: Terminal request dispositions a ticket can resolve to.
TERMINAL_STATUSES = (
    "completed",
    "timed_out",
    "shed",
    "rejected",
    "unfinished",
)


class HorizonPassed(RuntimeError):
    """The session's simulated horizon has been reached; no more arrivals."""


@dataclass
class Ticket:
    """One front-door request tracked from injection to terminal status."""

    app: str
    index: int
    t: float
    tenant: str | None = None
    invocation_id: int | None = None
    inv: "Invocation | None" = None
    #: One of :data:`TERMINAL_STATUSES`, or ``None`` while in flight.
    status: str | None = None
    #: Simulated instant the terminal disposition landed.
    resolved_at: float | None = None
    on_done: Callable[["Ticket"], None] | None = field(
        default=None, repr=False
    )

    @property
    def done(self) -> bool:
        return self.status is not None


class LiveGateway(Gateway):
    """A gateway whose arrivals are injected one request at a time.

    Construction mirrors an offline gateway with an *empty* trace whose
    ``duration`` is the session horizon, so window-tick count, horizon
    math and finalization all match the eventual replay.
    """

    def __init__(
        self,
        app: "AppDAG",
        policy: "Policy",
        *,
        runtime: Runtime,
        horizon: float,
        capacity: int = DEFAULT_CAPACITY,
        window: float = 1.0,
        seed: int = 0,
        noisy: bool = True,
        init_failure_rate: float = 0.0,
        retention: str = "full",
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(
            app,
            Trace(np.empty(0), duration=float(horizon)),
            policy,
            runtime=runtime,
            window=window,
            seed=seed,
            noisy=noisy,
            init_failure_rate=init_failure_rate,
            retention=retention,
        )
        self._capacity = int(capacity)
        self._injected = 0

    def _arrival_capacity(self) -> int:
        return self._capacity

    def _schedule_arrival(self, index: int) -> None:
        # ``setup`` streams the first trace arrival whenever capacity is
        # non-zero; live arrivals come from :meth:`inject` instead.
        return

    def inject(
        self,
        t: float,
        on_arrival: Callable[["Invocation"], None] | None = None,
    ) -> None:
        """Schedule one live arrival at simulated time ``t``.

        ``t`` must be strictly after the current simulated instant (so
        the event sorts after everything that already fired) and at or
        before the horizon.  The arrival fires through the ordinary
        ``_handle_arrival`` path on the next reserved sequence slot.
        """
        if self._injected >= self._capacity:
            raise RuntimeError(
                f"live gateway {self.app.name!r} exhausted its arrival "
                f"capacity of {self._capacity}"
            )
        if t <= self.events.now:
            raise ValueError(
                f"arrival stamp {t} must be strictly after the current "
                f"simulated instant {self.events.now}"
            )
        if t > self.trace.duration:
            raise HorizonPassed(
                f"arrival stamp {t} is past the horizon "
                f"{self.trace.duration}"
            )
        seq = self._arrival_seq_base + self._injected
        self._injected += 1

        def fire() -> None:
            inv = self._handle_arrival(t)
            if on_arrival is not None:
                on_arrival(inv)

        self.events.schedule(t, fire, seq=seq)


class SimDriver:
    """Drive one live co-run cell: inject, step, finish, report.

    The driver is pacing- and transport-agnostic: the HTTP server (or a
    test) calls :meth:`submit` to stamp and inject requests and one of
    the advance methods to step the shared event heap; terminal
    dispositions come back through each ticket's ``on_done`` callback,
    wired into the gateway's ``_on_done`` hook.
    """

    def __init__(
        self,
        cell: MultiAppCellSpec,
        *,
        horizon: float,
        capacity: int = DEFAULT_CAPACITY,
        window: float = 1.0,
        drain_timeout: float = 300.0,
        noisy: bool = True,
    ) -> None:
        if cell.faults is not None:
            raise ValueError(
                "live serving does not support fault plans yet "
                "(flash crowds and retry storms would inject arrivals "
                "outside the request log)"
            )
        if cell.shards != 1 or cell.slices_per_app != 1:
            raise ValueError("live serving requires shards=1, slices_per_app=1")
        if cell.trace_dir is not None:
            raise ValueError("live serving does not record telemetry traces")
        names = [spec.app for spec in cell.envs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate application names: {names}")
        self.cell = cell
        self.horizon = float(horizon)
        self.window = float(window)
        self.capacity = int(capacity)
        self.runtime = Runtime(
            drain_timeout=drain_timeout, overload=cell.overload
        )
        self.gateways: dict[str, LiveGateway] = {}
        for i, spec in enumerate(cell.envs):
            env = _environment(spec)
            seed = (
                cell.sim_seed + i
                if cell.seeding == "legacy"
                else derive_app_seed(cell.sim_seed, env.app.name)
            )
            gateway = LiveGateway(
                env.app,
                env.make_policy(cell.policy),
                runtime=self.runtime,
                horizon=self.horizon,
                capacity=capacity,
                window=window,
                seed=seed,
                noisy=noisy,
                init_failure_rate=cell.init_failure_rate,
                retention=cell.retention,
            )
            gateway._on_done = self._handle_done
            self.runtime.gateways.append(gateway)
            self.gateways[env.app.name] = gateway
        self.tickets: list[Ticket] = []
        self._pending: dict[int, Ticket] = {}
        self._early: dict[int, str] = {}
        self._last_stamp = 0.0
        self._unfired = 0
        self._started = False
        self._metrics: "dict[str, RunMetrics] | None" = None
        #: Per-app terminal-status counts (live /stats view).
        self.status_counts: dict[str, dict[str, int]] = {
            name: {status: 0 for status in TERMINAL_STATUSES}
            for name in self.gateways
        }

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Register policies and reserve event-sequence blocks."""
        if self._started:
            raise RuntimeError("driver already started")
        self.runtime.setup()
        self._started = True

    @property
    def finished(self) -> bool:
        return self._metrics is not None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.runtime.events.now

    def pending_work(self) -> bool:
        """Whether unfired injections or open invocations remain."""
        return self._unfired > 0 or self.runtime.open_invocations > 0

    def actionable_work(self) -> bool:
        """Pending work the serve phase can still advance.

        An open invocation whose remaining events all lie past the
        horizon is *pending* but not *actionable*: only :meth:`finish`'s
        drain window may fire those events, so a pump waiting for
        :meth:`pending_work` to clear would spin forever.
        """
        if self._unfired > 0:
            return True
        if self.runtime.open_invocations == 0:
            return False
        when = self.runtime.events.next_time()
        return when is not None and when <= self.horizon

    # ------------------------------------------------------------- injection
    def submit(
        self,
        app: str,
        *,
        tenant: str | None = None,
        on_done: Callable[[Ticket], None] | None = None,
    ) -> Ticket:
        """Stamp and inject one request; returns its in-flight ticket."""
        if not self._started:
            raise RuntimeError("driver not started; call start() first")
        if self.finished:
            raise RuntimeError("driver already finished")
        gateway = self.gateways[app]  # KeyError -> unknown app (HTTP 404)
        stamp = float(
            np.nextafter(max(self.now, self._last_stamp), math.inf)
        )
        if stamp > self.horizon:
            raise HorizonPassed(
                f"session horizon {self.horizon} reached at t={self.now}"
            )
        ticket = Ticket(
            app=app,
            index=len(self.tickets),
            t=stamp,
            tenant=tenant,
            on_done=on_done,
        )
        gateway.inject(stamp, lambda inv: self._register(ticket, inv))
        self._last_stamp = stamp
        self.tickets.append(ticket)
        self._unfired += 1
        return ticket

    def _register(self, ticket: Ticket, inv: "Invocation") -> None:
        """Bind the fired arrival's invocation to its ticket."""
        self._unfired -= 1
        ticket.invocation_id = inv.invocation_id
        ticket.inv = inv
        early = self._early.pop(inv.invocation_id, None)
        if early is not None:
            # Terminal disposition landed synchronously inside
            # _handle_arrival (admission rejection or bounded-queue shed).
            self._resolve(ticket, early)
        else:
            self._pending[inv.invocation_id] = ticket

    def _handle_done(self, inv: "Invocation", status: str) -> None:
        ticket = self._pending.pop(inv.invocation_id, None)
        if ticket is not None:
            self._resolve(ticket, status)
        else:
            self._early[inv.invocation_id] = status

    def _resolve(self, ticket: Ticket, status: str) -> None:
        ticket.status = status
        ticket.resolved_at = self.now
        self.status_counts[ticket.app][status] += 1
        if ticket.on_done is not None:
            ticket.on_done(ticket)

    # ------------------------------------------------------------- stepping
    def advance_while_busy(self, max_steps: int = 500) -> int:
        """Time-warp stepping: fire events only while work is pending.

        The clock *parks* the instant the system goes idle (no unfired
        injections, no open invocations), so between requests no window
        ticks burn and the next stamp hugs the last completion.  Events
        past the horizon are left for :meth:`finish`.
        """
        events = self.runtime.events
        steps = 0
        while steps < max_steps and self.pending_work():
            when = events.next_time()
            if when is None or when > self.horizon:
                break
            events.step()
            steps += 1
        return steps

    def advance_to(self, sim_t: float, max_steps: int = 500) -> int:
        """Wall-clock stepping: advance to the wall-mapped instant.

        Fires everything due at or before ``min(sim_t, horizon)`` whether
        or not work is pending — keep-alive windows and predictor ticks
        burn exactly as a deployed gateway's would — then bumps the clock
        to the target so subsequent stamps track wall time.
        """
        events = self.runtime.events
        limit = min(float(sim_t), self.horizon)
        steps = 0
        while steps < max_steps:
            when = events.next_time()
            if when is None or when > limit:
                if limit > events.now:
                    events.run_until(limit)  # fires nothing; bumps the clock
                break
            events.step()
            steps += 1
        return steps

    # ------------------------------------------------------------- shutdown
    def finish(self) -> "dict[str, RunMetrics]":
        """Drain and finalize, mirroring ``Runtime.run``'s tail exactly.

        Any ticket still unresolved after the bounded drain window is
        resolved as ``unfinished`` (the HTTP layer's 504 at shutdown).
        """
        if self._metrics is not None:
            return self._metrics
        if not self._started:
            raise RuntimeError("driver not started; call start() first")
        events = self.runtime.events
        events.run_until(self.horizon)
        deadline = self.horizon + self.runtime.drain_timeout
        while (
            any(gw.open_invocations > 0 for gw in self.runtime.gateways)
            and events.now < deadline
        ):
            if not events.step():
                break
        self._metrics = {
            gw.app.name: gw.finalize() for gw in self.runtime.gateways
        }
        for ticket in list(self._pending.values()):
            self._resolve(ticket, "unfinished")
        self._pending.clear()
        return self._metrics

    # ------------------------------------------------------------- reporting
    def retry_after(self, app: str) -> float:
        """Simulated seconds until the app's token bucket refills one token."""
        bucket = self.gateways[app]._admission
        if bucket is None:
            return 0.0
        deficit = max(0.0, 1.0 - bucket.tokens)
        return deficit / bucket.rate

    def stats(self) -> dict[str, Any]:
        """Live per-app counters for the ``/stats`` endpoint."""
        return {
            "sim_now": self.now,
            "horizon": self.horizon,
            "finished": self.finished,
            "requests": len(self.tickets),
            "apps": {
                name: {
                    "open": gw.open_invocations,
                    "rejected": gw.metrics.rejected,
                    "shed": gw.metrics.shed,
                    "timed_out": gw.metrics.timed_out,
                    **self.status_counts[name],
                }
                for name, gw in self.gateways.items()
            },
        }

    def header_payload(
        self, *, pacing: str, time_scale: float | None = None
    ) -> dict[str, Any]:
        """The request-log header recipe for this session."""
        cell = self.cell
        return {
            "envs": [asdict(spec) for spec in cell.envs],
            "policy": cell.policy,
            "sim_seed": cell.sim_seed,
            "seeding": cell.seeding,
            "init_failure_rate": cell.init_failure_rate,
            "retention": cell.retention,
            "overload": (
                cell.overload.to_dict() if cell.overload is not None else None
            ),
            "horizon": self.horizon,
            "window": self.window,
            "drain_timeout": self.runtime.drain_timeout,
            "capacity": self.capacity,
            "pacing": pacing,
            "time_scale": time_scale,
        }

    def summary_payload(self) -> dict[str, Any]:
        """The request-log footer: final metrics for replay verification."""
        metrics = self.finish()
        return {
            "metrics": {name: m.summary() for name, m in metrics.items()},
            "counters": {
                name: {
                    "completed": m.n_completed,
                    "unfinished": m.unfinished,
                    "timed_out": m.timed_out,
                    "shed": m.shed,
                    "rejected": m.rejected,
                    "injected_arrivals": m.injected_arrivals,
                }
                for name, m in metrics.items()
            },
        }

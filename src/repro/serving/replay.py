"""Offline replay of recorded live-serving sessions.

A request log's header carries the full session recipe (environment
specs, policy, seeds, overload spec, horizon) and its request records
carry every front-door arrival stamp — including arrivals the token
bucket rejected, because the bucket is a pure function of the stamp
sequence.  Rebuilding the same :class:`~repro.simulator.multiapp
.MultiAppSimulator` over :meth:`Trace.from_request_log
<repro.workload.trace.Trace.from_request_log>` traces therefore
reproduces the live run's RunMetrics bit for bit: same invocation ids,
same RNG streams, same admission decisions, same billing.

:func:`verify_replay` compares the replayed metrics against the log's
recorded footer field by field — the closed-loop CI check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.experiments.parallel import (
    EnvSpec,
    MultiAppCellSpec,
    _environment,
)
from repro.overload.spec import OverloadSpec
from repro.serving.requestlog import ParsedLog, read_request_log
from repro.simulator.metrics import RunMetrics
from repro.simulator.multiapp import Deployment, MultiAppSimulator
from repro.workload.trace import Trace

__all__ = ["ReplayResult", "cell_from_header", "replay_request_log", "verify_replay"]


def cell_from_header(header: dict[str, Any]) -> MultiAppCellSpec:
    """Rebuild the recorded session's co-run cell from a log header."""
    overload = header.get("overload")
    return MultiAppCellSpec(
        envs=tuple(EnvSpec(**env) for env in header["envs"]),
        policy=header["policy"],
        sim_seed=header["sim_seed"],
        seeding=header.get("seeding", "name"),
        init_failure_rate=header.get("init_failure_rate", 0.0),
        overload=(
            OverloadSpec.from_dict(overload) if overload is not None else None
        ),
        retention=header.get("retention", "full"),
    )


@dataclass
class ReplayResult:
    """Replayed metrics next to the log's recorded live outcome."""

    metrics: dict[str, RunMetrics]
    parsed: ParsedLog

    def summaries(self) -> dict[str, dict[str, float]]:
        return {name: m.summary() for name, m in self.metrics.items()}


def replay_request_log(path: str | Path) -> ReplayResult:
    """Re-run a recorded session offline; returns per-app metrics."""
    parsed = read_request_log(path)
    cell = cell_from_header(parsed.header)
    deployments = []
    for spec in cell.envs:
        env = _environment(spec)
        deployments.append(
            Deployment(
                env.app,
                Trace.from_request_log(path, app=env.app.name),
                env.make_policy(cell.policy),
            )
        )
    sim = MultiAppSimulator(
        deployments,
        window=parsed.header.get("window", 1.0),
        drain_timeout=parsed.header.get("drain_timeout", 300.0),
        seed=cell.sim_seed,
        seeding=cell.seeding,
        init_failure_rate=cell.init_failure_rate,
        overload=cell.overload,
        retention=cell.retention,
    )
    return ReplayResult(metrics=sim.run(), parsed=parsed)


def _values_match(a: float, b: float) -> bool:
    """Bitwise-exact float equality, treating NaN as equal to NaN."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def verify_replay(path: str | Path) -> tuple[ReplayResult, list[str]]:
    """Replay a log and diff it against its recorded footer.

    Returns the replay result and a list of human-readable mismatches
    (empty = bit-identical reproduction).  Raises if the log carries no
    footer to verify against.
    """
    result = replay_request_log(path)
    recorded = result.parsed.summary
    if recorded is None:
        raise ValueError(
            f"{path}: no summary footer to verify against (was the live "
            "session finalized?)"
        )
    diffs: list[str] = []
    replayed = result.summaries()
    for app, live_summary in recorded["metrics"].items():
        if app not in replayed:
            diffs.append(f"{app}: present in footer but not in replay")
            continue
        for key, live_value in live_summary.items():
            replay_value = replayed[app].get(key)
            if not _values_match(live_value, replay_value):
                diffs.append(
                    f"{app}.{key}: live={live_value!r} replay={replay_value!r}"
                )
    for app, live_counters in recorded.get("counters", {}).items():
        metrics = result.metrics.get(app)
        if metrics is None:
            continue
        replay_counters = {
            "completed": metrics.n_completed,
            "unfinished": metrics.unfinished,
            "timed_out": metrics.timed_out,
            "shed": metrics.shed,
            "rejected": metrics.rejected,
            "injected_arrivals": metrics.injected_arrivals,
        }
        for key, live_value in live_counters.items():
            if replay_counters.get(key) != live_value:
                diffs.append(
                    f"{app}.{key}: live={live_value!r} "
                    f"replay={replay_counters.get(key)!r}"
                )
    return result, diffs

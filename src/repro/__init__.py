"""SMIless reproduction: DAG-based ML inference serving under serverless computing.

A from-scratch reproduction of *SMIless: Serving DAG-based Inference with
Dynamic Invocations under Serverless Computing* (SC 2024).  The library
contains the paper's contribution -- co-optimization of heterogeneous
resource configuration and cold-start management through adaptive
pre-warming and path search -- plus every substrate it depends on: a
discrete-event serverless platform simulator, ground-truth performance
models for the Table I workloads, an Azure-like workload generator, the
offline profiler, the LSTM-based online predictors, and the baseline systems
(Orion, IceBreaker, GrandSLAm, Aquatope, exhaustive-search OPT).

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from repro.dag import AppDAG, FunctionSpec, amber_alert, image_query, voice_assistant
from repro.hardware import Backend, ConfigurationSpace, HardwareConfig
from repro.workload import AzureLikeWorkload, Trace

__all__ = [
    "__version__",
    "AppDAG",
    "FunctionSpec",
    "amber_alert",
    "image_query",
    "voice_assistant",
    "Backend",
    "ConfigurationSpace",
    "HardwareConfig",
    "AzureLikeWorkload",
    "Trace",
]

"""Trace analytics: the statistics the Online Predictor's design rests on.

The paper's predictor choices are driven by workload structure — bucketized
classification works because counts are small integers; the dual-LSTM works
because inter-arrival times are near-periodic; FIP works (only) on strongly
harmonic traffic.  This module quantifies those properties for any trace:

- dispersion (variance-to-mean ratio of windowed counts, §VII-C2's > 2);
- gap regularity (coefficient of variation of inter-arrival times);
- dominant periods (FFT peaks of the windowed count series);
- burst episodes (maximal runs of above-threshold windows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive
from repro.workload.trace import Trace


@dataclass(frozen=True)
class BurstEpisode:
    """One contiguous stretch of burst-level traffic."""

    start: float
    end: float
    invocations: int
    peak_rate: float

    @property
    def duration(self) -> float:
        """Episode length in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class TraceSummary:
    """Headline statistics of one trace."""

    invocations: int
    duration: float
    mean_rate: float
    mean_gap: float
    gap_cv: float
    dispersion: float
    dominant_period: float | None
    burst_count: int
    burst_share: float


def gap_cv(trace: Trace) -> float:
    """Coefficient of variation of inter-arrival times (0 = deterministic)."""
    gaps = trace.inter_arrival_times()
    if gaps.size < 2:
        return 0.0
    mean = gaps.mean()
    return float(gaps.std() / mean) if mean > 0 else 0.0


def dominant_period(
    trace: Trace, window: float = 1.0, *, min_strength: float = 6.0
) -> float | None:
    """Strongest periodic component of the windowed counts, in seconds.

    Returns ``None`` when no FFT peak stands ``min_strength`` times above the
    mean spectral magnitude — i.e. the trace has no usable periodicity.
    (White noise peaks at roughly 4x the mean over a few hundred bins, so
    the default threshold rejects Poisson-like traffic.)
    """
    check_positive("min_strength", min_strength)
    counts = trace.counts_per_window(window).astype(float)
    if counts.size < 8:
        return None
    spectrum = np.abs(np.fft.rfft(counts - counts.mean()))[1:]
    freqs = np.fft.rfftfreq(counts.size, d=window)[1:]
    if spectrum.size == 0:
        return None
    mean = float(spectrum.mean())
    idx = int(np.argmax(spectrum))
    if mean <= 0 or spectrum[idx] < min_strength * mean:
        return None
    return float(1.0 / freqs[idx])


def burst_episodes(
    trace: Trace, window: float = 1.0, *, threshold: int = 2
) -> list[BurstEpisode]:
    """Maximal runs of windows with at least ``threshold`` arrivals."""
    check_positive("threshold", threshold)
    counts = trace.counts_per_window(window)
    episodes: list[BurstEpisode] = []
    start = None
    for k, c in enumerate(list(counts) + [0]):  # sentinel closes a trailing run
        if c >= threshold and start is None:
            start = k
        elif c < threshold and start is not None:
            seg = counts[start:k]
            episodes.append(
                BurstEpisode(
                    start=start * window,
                    end=k * window,
                    invocations=int(seg.sum()),
                    peak_rate=float(seg.max() / window),
                )
            )
            start = None
    return episodes


def summarize(trace: Trace, window: float = 1.0) -> TraceSummary:
    """All analytics in one pass."""
    gaps = trace.inter_arrival_times()
    episodes = burst_episodes(trace, window)
    burst_invocations = sum(e.invocations for e in episodes)
    return TraceSummary(
        invocations=len(trace),
        duration=trace.duration,
        mean_rate=trace.rate,
        mean_gap=float(gaps.mean()) if gaps.size else float("nan"),
        gap_cv=gap_cv(trace),
        dispersion=trace.variance_to_mean_ratio(window),
        dominant_period=dominant_period(trace, window),
        burst_count=len(episodes),
        burst_share=burst_invocations / len(trace) if len(trace) else 0.0,
    )


def format_summary(summary: TraceSummary) -> str:
    """One-screen text rendering of a :class:`TraceSummary`."""
    period = (
        f"{summary.dominant_period:.0f}s"
        if summary.dominant_period is not None
        else "none"
    )
    return "\n".join(
        [
            f"invocations      {summary.invocations} over {summary.duration:.0f}s "
            f"({summary.mean_rate:.3f}/s)",
            f"inter-arrival    mean {summary.mean_gap:.2f}s, cv {summary.gap_cv:.2f}",
            f"dispersion (VMR) {summary.dispersion:.2f}",
            f"dominant period  {period}",
            f"bursts           {summary.burst_count} episodes, "
            f"{summary.burst_share:.0%} of traffic",
        ]
    )

"""Synthetic Azure-Functions-like workload generation.

The paper replays scaled-down Azure Function traces [61]: minute-level
invocation counts compressed to two-second intervals, driving each
application for two hours.  The dataset cannot be shipped here, so
:class:`AzureLikeWorkload` synthesizes traces with the characteristics the
paper relies on (see DESIGN.md §1):

- **near-periodic base traffic**: production Azure traffic is dominated by
  timer-triggered and pipeline functions, so inter-arrival times are highly
  regular — this is what makes the paper's inter-arrival predictor reach a
  2.45 % MAPE (§VII-C2) and what makes pre-warming possible at all.  The
  base process is a gamma renewal process with a small coefficient of
  variation and a slow sinusoidal drift of the mean gap;
- **burst episodes**: occasional clusters of invocations landing within a
  couple of seconds (the Fig. 14/15 regime), with heavy-tailed sizes;
- **idle phases**: stretches with no arrivals, so keep-alive costs matter;
- dispersion: the bursty presets exceed the paper's variance-to-mean ratio
  of two (§VII-C2).

Patterns are small declarative recipes so experiments can state their
workload in one line, e.g. ``AzureLikeWorkload.preset("bursty", seed=7)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive
from repro.workload.trace import Trace


@dataclass(frozen=True)
class WorkloadPattern:
    """Declarative description of one application's invocation dynamics.

    ``mean_gap`` / ``gap_cv`` define the gamma-renewal base process;
    ``drift`` modulates the mean gap sinusoidally with period
    ``drift_period`` (relative amplitude).  Bursts start as a Poisson
    process of rate ``burst_frequency`` and add ``burst_size``-ish extra
    arrivals within ``burst_spread`` seconds.  ``idle_fraction`` of each
    ``idle_period`` is silent (arrivals dropped).
    """

    mean_gap: float = 4.0
    gap_cv: float = 0.1
    drift: float = 0.0
    drift_period: float = 600.0
    burst_frequency: float = 0.0
    burst_size: float = 0.0
    burst_spread: float = 2.0
    idle_fraction: float = 0.0
    idle_period: float = 300.0

    def __post_init__(self) -> None:
        check_positive("mean_gap", self.mean_gap)
        check_positive("gap_cv", self.gap_cv)
        check_positive("drift_period", self.drift_period)
        check_positive("burst_spread", self.burst_spread)
        check_positive("idle_period", self.idle_period)
        check_positive("burst_frequency", self.burst_frequency, strict=False)
        check_positive("burst_size", self.burst_size, strict=False)
        if not 0.0 <= self.drift < 1.0:
            raise ValueError(f"drift must be in [0, 1), got {self.drift}")
        if not 0.0 <= self.idle_fraction < 1.0:
            raise ValueError(
                f"idle_fraction must be in [0, 1), got {self.idle_fraction}"
            )

    def gap_at(self, t: float) -> float:
        """Instantaneous mean inter-arrival time at ``t`` (drift applied)."""
        return self.mean_gap * (
            1.0 + self.drift * np.sin(2 * np.pi * t / self.drift_period)
        )

    def in_idle_phase(self, t: np.ndarray) -> np.ndarray:
        """Boolean mask of times falling into an idle phase."""
        if self.idle_fraction <= 0:
            return np.zeros_like(np.asarray(t, dtype=float), dtype=bool)
        phase = np.mod(np.asarray(t, dtype=float), self.idle_period) / self.idle_period
        return phase < self.idle_fraction


#: Named presets spanning the regimes the paper evaluates.
PRESETS: dict[str, WorkloadPattern] = {
    # Regular timer-like traffic — the Fig. 8 steady-state regime.
    "steady": WorkloadPattern(mean_gap=4.0, gap_cv=0.08, drift=0.2),
    # Slow daily-cycle modulation with idle stretches.
    "diurnal": WorkloadPattern(
        mean_gap=6.0,
        gap_cv=0.12,
        drift=0.45,
        drift_period=900.0,
        idle_fraction=0.2,
        idle_period=240.0,
    ),
    # Regular base plus ramping spikes — the Fig. 14/15 burst regime.
    "bursty": WorkloadPattern(
        mean_gap=5.0,
        gap_cv=0.12,
        drift=0.25,
        burst_frequency=1 / 60.0,
        burst_size=5.0,
        burst_spread=15.0,
    ),
    # Sharp rare spikes — the §VII-C2 prediction-study regime, whose
    # windowed counts have a variance-to-mean ratio above two.
    "spiky": WorkloadPattern(
        mean_gap=4.0,
        gap_cv=0.12,
        drift=0.25,
        burst_frequency=1 / 80.0,
        burst_size=12.0,
        burst_spread=2.0,
    ),
    # Sparse invocations — the low-arrival-rate Case I regime (§V-B1).
    "sparse": WorkloadPattern(
        mean_gap=25.0,
        gap_cv=0.1,
        drift=0.3,
        idle_fraction=0.25,
        idle_period=400.0,
    ),
    # Unpredictable Poisson-like gaps (stress test, not an Azure regime).
    "irregular": WorkloadPattern(mean_gap=4.0, gap_cv=1.0),
    # Heavy sustained traffic (~6.7 arrivals/s per app, ~20/s aggregate in
    # the three-app co-run — the highest rate the 8-machine cluster serves
    # with stable latencies): the macro-bench regime driving
    # million-invocation runs (`repro bench --macro`).
    "flood": WorkloadPattern(mean_gap=0.15, gap_cv=0.15, drift=0.1),
}


@dataclass
class AzureLikeWorkload:
    """Synthesizes invocation traces following a :class:`WorkloadPattern`."""

    pattern: WorkloadPattern
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.seed)

    @classmethod
    def preset(cls, name: str, seed: int | None = None) -> "AzureLikeWorkload":
        """Build a generator from a named preset pattern."""
        try:
            pattern = PRESETS[name]
        except KeyError:
            raise KeyError(
                f"unknown preset {name!r}; available: {', '.join(PRESETS)}"
            ) from None
        return cls(pattern=pattern, seed=seed)

    def generate(self, duration: float) -> Trace:
        """Sample a trace of ``duration`` seconds.

        Arrival times accumulate straight into a geometrically-grown
        float64 buffer — never a Python list of boxed floats — so a
        million-arrival trace costs 8 bytes per arrival end-to-end (the
        buffer here, the immutable array inside
        :class:`~repro.workload.trace.Trace`, and the gateway's streamed
        arrival chain, which holds only the *next* arrival in the heap).
        The scalar draw sequence is unchanged, so traces are bit-identical
        to the historical list-based generator.
        """
        check_positive("duration", duration)
        p = self.pattern
        shape = 1.0 / p.gap_cv**2
        buf = np.empty(1024)
        n = 0
        t = 0.0
        while True:
            local_mean = p.gap_at(t)
            t += float(self._rng.gamma(shape, local_mean / shape))
            if t >= duration:
                break
            if n == buf.size:
                grown = np.empty(buf.size * 2)
                grown[:n] = buf
                buf = grown
            buf[n] = t
            n += 1
        base = buf[:n]
        if base.size:
            base = base[~p.in_idle_phase(base)]
        pieces = [base]
        if p.burst_frequency > 0 and p.burst_size > 0:
            n_bursts = self._rng.poisson(p.burst_frequency * duration)
            for start in np.sort(self._rng.random(n_bursts) * duration):
                span = min(p.burst_spread, duration - start)
                if span <= 0:
                    continue
                # Heavy-tailed burst magnitude: occasional very large spikes.
                size = self._rng.poisson(p.burst_size * (1.0 + self._rng.pareto(3.0)))
                if size:
                    # Triangular ramp: arrival density grows to a peak and
                    # decays, as load ramps do in production — predictors can
                    # then anticipate the peak from the leading edge.
                    offsets = self._rng.triangular(0.0, 0.45 * span, span, size)
                    pieces.append(start + np.sort(offsets))
        return Trace(np.concatenate(pieces), duration=duration)

    def generate_counts(self, duration: float, window: float = 1.0) -> np.ndarray:
        """Sample a trace and return per-window counts (predictor input)."""
        return self.generate(duration).counts_per_window(window)


@dataclass(frozen=True)
class AzureTraceWorkload:
    """Measured arrival processes from the published Azure Functions CSV.

    Wraps the :mod:`repro.workload.dataset` parsers behind the same
    ``generate(duration)`` surface as :class:`AzureLikeWorkload`, so
    scenarios can swap the synthetic generator for the real dataset
    (``repro scenario --azure-trace PATH``).  The published format is one
    row per function — ``HashOwner,HashApp,HashFunction,Trigger`` metadata
    followed by 1440 per-minute invocation counts — and the paper's
    pipeline compresses each minute to two seconds; we reproduce exactly
    that, then tile the scaled day as needed to cover ``duration``.

    ``function_hash`` selects a row (default: the busiest function);
    ``seed`` spreads arrivals uniformly at random within each count
    window, deterministically.
    """

    path: str
    function_hash: str | None = None
    scale: float | None = None  # None → the paper's minute→2 s factor

    def generate(self, duration: float, *, seed: int | None = 0) -> Trace:
        """Replay the CSV row as an arrival trace covering ``duration`` s."""
        from repro.workload.dataset import PAPER_SCALE_FACTOR, load_scaled_trace

        check_positive("duration", duration)
        factor = PAPER_SCALE_FACTOR if self.scale is None else self.scale
        check_positive("scale", factor)
        day = load_scaled_trace(
            self.path, self.function_hash, seed=seed
        )
        if self.scale is not None and self.scale != PAPER_SCALE_FACTOR:
            # load_scaled_trace applies the paper factor; rescale to ours.
            day = day.time_scaled(factor / PAPER_SCALE_FACTOR)
        if day.duration <= 0 or len(day) == 0:
            raise ValueError(
                f"{self.path}: selected function has no invocations to replay"
            )
        piece = day
        while piece.duration < duration:
            piece = piece.merged(day.shifted(piece.duration))
        return piece.slice(0.0, duration)

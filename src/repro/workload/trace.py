"""Invocation trace container and windowing utilities.

A :class:`Trace` is an immutable, sorted array of invocation arrival times
(seconds).  Both the Online Predictor (which consumes per-window counts) and
the simulator (which consumes raw arrival events) read from this single
representation, mirroring how the Gateway feeds both consumers in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class Trace:
    """Sorted sequence of invocation arrival times for one application."""

    __slots__ = ("_times", "duration")

    def __init__(self, times: np.ndarray | list[float], duration: float | None = None):
        arr = np.asarray(times, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"times must be 1-D, got shape {arr.shape}")
        if arr.size and not np.all(np.isfinite(arr)):
            raise ValueError("times contains non-finite values")
        if arr.size and arr.min() < 0:
            raise ValueError("times must be non-negative")
        arr = np.sort(arr)
        self._times = arr
        self._times.setflags(write=False)
        inferred = float(arr[-1]) if arr.size else 0.0
        self.duration = float(duration) if duration is not None else inferred
        if self.duration < inferred:
            raise ValueError(
                f"duration {self.duration} is shorter than the last arrival {inferred}"
            )

    # -- basics ------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._times.size)

    def __iter__(self):
        return iter(self._times)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Trace) and np.array_equal(self._times, other._times)

    def __hash__(self) -> int:  # immutable container
        return hash((self._times.tobytes(), self.duration))

    @property
    def times(self) -> np.ndarray:
        """Read-only arrival-time array."""
        return self._times

    @property
    def rate(self) -> float:
        """Mean arrival rate (invocations per second)."""
        return len(self) / self.duration if self.duration > 0 else 0.0

    # -- windowing ----------------------------------------------------------
    def counts_per_window(self, window: float = 1.0) -> np.ndarray:
        """Invocation counts per fixed window (the Gateway's 1 s counting).

        Returns an integer array of length ``ceil(duration / window)``.
        """
        check_positive("window", window)
        n_windows = max(1, int(np.ceil(self.duration / window)))
        if not len(self):
            return np.zeros(n_windows, dtype=int)
        idx = np.minimum((self._times / window).astype(int), n_windows - 1)
        return np.bincount(idx, minlength=n_windows)

    def inter_arrival_times(self) -> np.ndarray:
        """Gaps between consecutive arrivals (empty for < 2 arrivals)."""
        if len(self) < 2:
            return np.empty(0)
        return np.diff(self._times)

    def window_inter_arrivals(self, window: float = 1.0) -> np.ndarray:
        """Gaps between consecutive *non-empty* windows, in seconds.

        This is the paper's notion of inter-arrival time IT: the interval
        between two consecutive non-zero invocation-count windows (§IV-B2).
        """
        counts = self.counts_per_window(window)
        nz = np.flatnonzero(counts)
        if nz.size < 2:
            return np.empty(0)
        return np.diff(nz).astype(float) * window

    def variance_to_mean_ratio(self, window: float = 1.0) -> float:
        """Index of dispersion of windowed counts (burstiness measure)."""
        counts = self.counts_per_window(window)
        mean = counts.mean()
        return float(counts.var() / mean) if mean > 0 else 0.0

    # -- transforms -----------------------------------------------------------
    def slice(self, start: float, end: float) -> "Trace":
        """Arrivals in ``[start, end)``, re-based so the slice starts at 0."""
        if end <= start:
            raise ValueError(f"empty slice [{start}, {end})")
        mask = (self._times >= start) & (self._times < end)
        return Trace(self._times[mask] - start, duration=end - start)

    def time_scaled(self, factor: float) -> "Trace":
        """Compress (factor < 1) or stretch arrival times by ``factor``.

        The paper scales Azure's one-minute intervals down to two seconds —
        a ``factor`` of ``2/60``.
        """
        check_positive("factor", factor)
        return Trace(self._times * factor, duration=self.duration * factor)

    def merged(self, other: "Trace") -> "Trace":
        """Union of two traces (e.g. co-running applications)."""
        return Trace(
            np.concatenate([self._times, other._times]),
            duration=max(self.duration, other.duration),
        )

    def shifted(self, offset: float) -> "Trace":
        """Trace delayed by ``offset`` seconds."""
        check_positive("offset", offset, strict=False)
        return Trace(self._times + offset, duration=self.duration + offset)

    @classmethod
    def from_request_log(
        cls,
        path,
        *,
        app: str,
        duration: float | None = None,
    ) -> "Trace":
        """Arrival stamps of one app from a serving request log (JSONL).

        The live serving façade (:mod:`repro.serving`) appends one
        ``{"kind": "request", "app": ..., "t": ...}`` record per
        front-door request — *including* requests its token bucket
        rejected, because admission is a pure function of the stamp
        sequence and replaying every stamp reproduces the identical
        rejections.  The trace duration defaults to the session horizon
        recorded in the log's header, so the replay schedules the same
        number of window ticks as the live run.

        This parser is deliberately self-contained (plain ``json``, no
        :mod:`repro.serving` import): the workload layer stays below the
        serving layer, and importing it never loads the serving package.
        """
        import json
        from pathlib import Path

        times: list[float] = []
        header_duration: float | None = None
        with Path(path).open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("kind")
                if kind == "header":
                    header_duration = record.get("horizon")
                elif kind == "request" and record.get("app") == app:
                    times.append(float(record["t"]))
        if duration is None:
            duration = header_duration
        if duration is None:
            raise ValueError(
                f"{path}: no horizon in the log header and no explicit "
                "duration given"
            )
        return cls(np.asarray(times, dtype=float), duration=float(duration))

    @classmethod
    def from_counts(
        cls,
        counts: np.ndarray | list[int],
        window: float = 1.0,
        *,
        rng: np.random.Generator | None = None,
    ) -> "Trace":
        """Build a trace from per-window counts.

        Arrivals are spread uniformly at random inside each window when an
        ``rng`` is supplied, or placed at the window start otherwise.
        """
        counts_arr = np.asarray(counts, dtype=int)
        if counts_arr.ndim != 1:
            raise ValueError("counts must be 1-D")
        if (counts_arr < 0).any():
            raise ValueError("counts must be non-negative")
        times: list[np.ndarray] = []
        for i, c in enumerate(counts_arr):
            if c == 0:
                continue
            if rng is None:
                times.append(np.full(c, i * window))
            else:
                times.append(i * window + np.sort(rng.random(c)) * window)
        flat = np.concatenate(times) if times else np.empty(0)
        return cls(flat, duration=len(counts_arr) * window)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Trace(n={len(self)}, duration={self.duration:.1f}s, rate={self.rate:.3f}/s)"

"""Workload substrate: invocation traces and Azure-like trace generation.

The paper drives its evaluation with scaled-down invocation traces from the
Azure Functions dataset [61] (minute-level counts compressed to 2-second
intervals).  The dataset is not redistributable here, so
:mod:`repro.workload.azure` synthesizes traces with the published
characteristics — diurnal periodicity, bursts, idle gaps, and a
variance-to-mean ratio above two (§VII-C2).
"""

from repro.workload.analysis import (
    BurstEpisode,
    TraceSummary,
    burst_episodes,
    dominant_period,
    gap_cv,
    summarize,
)
from repro.workload.azure import (
    AzureLikeWorkload,
    AzureTraceWorkload,
    WorkloadPattern,
)
from repro.workload.generator import (
    TokenWorkModel,
    bursty_process,
    constant_rate_process,
    gamma_renewal_process,
    mmpp_process,
    poisson_process,
    renewal_process,
)
from repro.workload.trace import Trace

__all__ = [
    "Trace",
    "poisson_process",
    "constant_rate_process",
    "bursty_process",
    "renewal_process",
    "gamma_renewal_process",
    "mmpp_process",
    "AzureLikeWorkload",
    "AzureTraceWorkload",
    "WorkloadPattern",
    "TokenWorkModel",
    "TraceSummary",
    "BurstEpisode",
    "summarize",
    "gap_cv",
    "dominant_period",
    "burst_episodes",
]

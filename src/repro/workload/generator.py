"""Arrival-process generators for synthetic invocation workloads.

Primitives used by the Azure-like workload builder and directly by tests:
homogeneous/nonhomogeneous Poisson processes (thinning), deterministic
constant-rate arrivals, general renewal processes, and a bursty process that
superimposes heavy spikes on a Poisson base — the paper's "multiple
invocations arriving within a short timeframe" regime (§V-B2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hardware.servicetime import WorkUnit
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive
from repro.workload.trace import Trace


@dataclass(frozen=True)
class TokenWorkModel:
    """Seeded per-invocation token-count distribution (LLM workloads).

    Prompt and generation lengths are drawn from independent lognormal
    distributions (the standard heavy-tailed fit for production LLM
    traffic), clamped to ``[1, max_tokens]``.  Sampling consumes exactly
    two draws from the supplied generator per invocation, so token streams
    are deterministic under a fixed seed and independent of arrival-time
    generation.
    """

    mean_tokens_in: float = 256.0
    mean_tokens_out: float = 128.0
    cv: float = 0.6
    max_tokens: int = 4096

    def __post_init__(self) -> None:
        check_positive("mean_tokens_in", self.mean_tokens_in)
        check_positive("mean_tokens_out", self.mean_tokens_out)
        check_positive("cv", self.cv)
        check_positive("max_tokens", self.max_tokens)

    def _sample_one(self, mean: float, rng: np.random.Generator) -> int:
        # Lognormal with the requested mean and coefficient of variation.
        sigma2 = float(np.log1p(self.cv**2))
        mu = float(np.log(mean)) - 0.5 * sigma2
        n = int(round(float(rng.lognormal(mu, np.sqrt(sigma2)))))
        return max(1, min(self.max_tokens, n))

    def sample(self, rng: np.random.Generator) -> WorkUnit:
        """Draw one invocation's token counts."""
        return WorkUnit(
            tokens_in=self._sample_one(self.mean_tokens_in, rng),
            tokens_out=self._sample_one(self.mean_tokens_out, rng),
        )

    @property
    def typical(self) -> WorkUnit:
        """The mean-work unit (planning-time stand-in)."""
        return WorkUnit(
            tokens_in=max(1, int(round(self.mean_tokens_in))),
            tokens_out=max(1, int(round(self.mean_tokens_out))),
        )


def poisson_process(
    rate: float,
    duration: float,
    rng: int | np.random.Generator | None = None,
) -> Trace:
    """Homogeneous Poisson arrivals at ``rate``/s over ``duration`` seconds."""
    check_positive("rate", rate, strict=False)
    check_positive("duration", duration)
    gen = ensure_rng(rng)
    if rate == 0:
        return Trace([], duration=duration)
    n = gen.poisson(rate * duration)
    return Trace(np.sort(gen.random(n) * duration), duration=duration)


def nonhomogeneous_poisson(
    rate_fn: Callable[[np.ndarray], np.ndarray],
    duration: float,
    rate_max: float,
    rng: int | np.random.Generator | None = None,
) -> Trace:
    """Nonhomogeneous Poisson arrivals via thinning.

    ``rate_fn`` maps an array of times to instantaneous rates, all of which
    must lie below ``rate_max``.
    """
    check_positive("duration", duration)
    check_positive("rate_max", rate_max)
    gen = ensure_rng(rng)
    n_candidates = gen.poisson(rate_max * duration)
    candidates = np.sort(gen.random(n_candidates) * duration)
    if candidates.size == 0:
        return Trace([], duration=duration)
    rates = np.asarray(rate_fn(candidates), dtype=float)
    if (rates > rate_max + 1e-9).any():
        raise ValueError("rate_fn exceeds rate_max; thinning would be biased")
    keep = gen.random(candidates.size) < np.clip(rates, 0.0, None) / rate_max
    return Trace(candidates[keep], duration=duration)


def constant_rate_process(
    interval: float,
    duration: float,
    *,
    offset: float = 0.0,
) -> Trace:
    """Deterministic arrivals every ``interval`` seconds (motivating examples)."""
    check_positive("interval", interval)
    check_positive("duration", duration)
    times = np.arange(offset, duration, interval)
    return Trace(times, duration=duration)


def renewal_process(
    sampler: Callable[[np.random.Generator], float],
    duration: float,
    rng: int | np.random.Generator | None = None,
) -> Trace:
    """Renewal arrivals with inter-arrival gaps drawn from ``sampler``."""
    check_positive("duration", duration)
    gen = ensure_rng(rng)
    times: list[float] = []
    t = 0.0
    while True:
        gap = float(sampler(gen))
        if gap <= 0:
            raise ValueError(f"sampler returned non-positive gap {gap}")
        t += gap
        if t >= duration:
            break
        times.append(t)
    return Trace(times, duration=duration)


def mmpp_process(
    rates: tuple[float, ...],
    transition_rate: float,
    duration: float,
    rng: int | np.random.Generator | None = None,
) -> Trace:
    """Markov-modulated Poisson process over hidden rate states.

    A continuous-time Markov chain switches uniformly among ``rates`` with
    exponential holding times of mean ``1 / transition_rate``; within each
    state arrivals are Poisson at the state's rate.  The classic model for
    regime-switching traffic (calm vs busy phases).
    """
    if len(rates) < 2:
        raise ValueError("mmpp needs at least two rate states")
    for r in rates:
        check_positive("rate state", r, strict=False)
    check_positive("transition_rate", transition_rate)
    check_positive("duration", duration)
    gen = ensure_rng(rng)
    times: list[np.ndarray] = []
    t = 0.0
    state = int(gen.integers(len(rates)))
    while t < duration:
        hold = float(gen.exponential(1.0 / transition_rate))
        end = min(t + hold, duration)
        span = end - t
        if rates[state] > 0 and span > 0:
            n = gen.poisson(rates[state] * span)
            times.append(t + np.sort(gen.random(n) * span))
        # jump to a different state uniformly
        others = [s for s in range(len(rates)) if s != state]
        state = others[int(gen.integers(len(others)))]
        t = end
    flat = np.concatenate(times) if times else np.empty(0)
    return Trace(flat, duration=duration)


def gamma_renewal_process(
    mean_gap: float,
    cv: float,
    duration: float,
    rng: int | np.random.Generator | None = None,
    *,
    period_drift: float = 0.0,
    drift_period: float = 600.0,
) -> Trace:
    """Near-periodic arrivals: gamma-distributed gaps with coefficient of
    variation ``cv`` around ``mean_gap``.

    Real Azure Functions traffic is dominated by timer-triggered functions
    whose inter-arrival times are close to deterministic [61]; this process
    reproduces that regularity (low ``cv``) with an optional slow sinusoidal
    drift of the mean gap (``period_drift`` as a relative amplitude).
    """
    check_positive("mean_gap", mean_gap)
    check_positive("cv", cv)
    check_positive("duration", duration)
    if not 0.0 <= period_drift < 1.0:
        raise ValueError(f"period_drift must be in [0, 1), got {period_drift}")
    gen = ensure_rng(rng)
    shape = 1.0 / cv**2
    times: list[float] = []
    t = 0.0
    while True:
        local_mean = mean_gap * (
            1.0 + period_drift * np.sin(2 * np.pi * t / drift_period)
        )
        t += float(gen.gamma(shape, local_mean / shape))
        if t >= duration:
            break
        times.append(t)
    return Trace(times, duration=duration)


def bursty_process(
    base_rate: float,
    duration: float,
    *,
    burst_rate: float = 10.0,
    burst_duration: float = 3.0,
    burst_frequency: float = 1 / 60.0,
    rng: int | np.random.Generator | None = None,
) -> Trace:
    """Poisson base traffic plus Poisson-timed bursts of elevated rate.

    Bursts start as a Poisson process of intensity ``burst_frequency`` and
    hold ``burst_rate`` for ``burst_duration`` seconds, producing the wide
    fluctuations sampled in the paper's 60-second burst window (Fig. 14).
    """
    check_positive("base_rate", base_rate, strict=False)
    check_positive("burst_rate", burst_rate)
    gen = ensure_rng(rng)
    base = poisson_process(base_rate, duration, gen)
    n_bursts = gen.poisson(burst_frequency * duration)
    starts = np.sort(gen.random(n_bursts) * duration)
    pieces = [base.times]
    for s in starts:
        span = min(burst_duration, duration - s)
        if span <= 0:
            continue
        n = gen.poisson(burst_rate * span)
        pieces.append(s + np.sort(gen.random(n) * span))
    return Trace(np.concatenate(pieces), duration=duration)

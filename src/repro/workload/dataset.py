"""Azure Functions dataset loading (paper §VII-A "Load generator").

The paper drives its evaluation from the public Azure Functions 2019
invocation dataset [61]: per-function rows with 1440 per-minute invocation
counts, which the authors scale down from one-minute to two-second
intervals.  The dataset is not redistributable here, but users who have it
can reproduce the exact pipeline:

- :func:`load_invocation_counts` parses the per-minute CSV format
  (``HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440``);
- :func:`counts_to_trace` turns a counts row into an arrival
  :class:`~repro.workload.trace.Trace`;
- :func:`scale_down` applies the paper's minute→2 s compression.

Without the dataset, :class:`~repro.workload.azure.AzureLikeWorkload`
synthesizes statistically matched traces (see DESIGN.md §1).
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive
from repro.workload.trace import Trace

#: Minutes per day in the Azure CSV layout.
MINUTES_PER_DAY = 1440

#: The paper compresses one-minute intervals to two seconds.
PAPER_SCALE_FACTOR = 2.0 / 60.0


def load_invocation_counts(
    path: str | pathlib.Path,
    *,
    min_daily_invocations: int = 1,
) -> dict[str, np.ndarray]:
    """Parse an Azure-format invocation CSV into per-function count rows.

    Returns ``{function_hash: counts}`` with one integer per minute.
    Functions below ``min_daily_invocations`` total are dropped (the usual
    preprocessing — the dataset is dominated by never-invoked functions).
    """
    path = pathlib.Path(path)
    out: dict[str, np.ndarray] = {}
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        n_meta = len(header) - MINUTES_PER_DAY
        if n_meta < 1:
            raise ValueError(
                f"{path}: expected >= {MINUTES_PER_DAY + 1} columns, got {len(header)}"
            )
        for row in reader:
            if len(row) != len(header):
                raise ValueError(f"{path}: ragged row of length {len(row)}")
            key = row[min(2, n_meta - 1)]  # HashFunction when present
            counts = np.array([int(v) for v in row[n_meta:]], dtype=int)
            if counts.sum() >= min_daily_invocations:
                out[key] = counts
    if not out:
        raise ValueError(f"{path}: no functions above the invocation threshold")
    return out


def counts_to_trace(
    counts: np.ndarray,
    *,
    interval: float = 60.0,
    rng: int | np.random.Generator | None = None,
) -> Trace:
    """Expand per-interval counts into arrival times.

    Arrivals are spread uniformly at random within each interval when an
    ``rng`` is given (the usual replay convention), or placed at interval
    starts otherwise.
    """
    check_positive("interval", interval)
    gen = ensure_rng(rng) if rng is not None else None
    return Trace.from_counts(np.asarray(counts, dtype=int), window=interval, rng=gen)


def scale_down(trace: Trace, factor: float = PAPER_SCALE_FACTOR) -> Trace:
    """The paper's time compression: one-minute intervals become two seconds."""
    return trace.time_scaled(factor)


def load_scaled_trace(
    path: str | pathlib.Path,
    function_hash: str | None = None,
    *,
    seed: int | None = 0,
) -> Trace:
    """One-call pipeline: CSV row → arrivals → paper-scaled trace.

    ``function_hash`` selects a row; ``None`` takes the busiest function.
    """
    rows = load_invocation_counts(path)
    if function_hash is None:
        function_hash = max(rows, key=lambda k: rows[k].sum())
    try:
        counts = rows[function_hash]
    except KeyError:
        raise KeyError(
            f"function {function_hash!r} not in {path} "
            f"(available: {len(rows)} rows)"
        ) from None
    return scale_down(counts_to_trace(counts, rng=seed))

"""Gaussian-process regression with an RBF kernel.

Minimal, numerically careful implementation: Cholesky-based posterior,
jitter on the diagonal, standardized targets.  Used by the Aquatope
baseline's Bayesian optimizer.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.utils.validation import check_positive


def rbf_kernel(a: np.ndarray, b: np.ndarray, length_scale: float) -> np.ndarray:
    """Squared-exponential kernel matrix between row sets ``a`` and ``b``."""
    check_positive("length_scale", length_scale)
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    return np.exp(-0.5 * sq / length_scale**2)


class GaussianProcess:
    """GP regressor with zero mean (after target standardization)."""

    def __init__(self, length_scale: float = 0.3, noise: float = 1e-4) -> None:
        check_positive("length_scale", length_scale)
        check_positive("noise", noise)
        self.length_scale = float(length_scale)
        self.noise = float(noise)
        self._X: np.ndarray | None = None
        self._chol = None
        self._alpha: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations ``(X, y)``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have matching first dimension")
        if X.shape[0] < 1:
            raise ValueError("need at least one observation")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yn = (y - self._y_mean) / self._y_std
        K = rbf_kernel(X, X, self.length_scale)
        K[np.diag_indices_from(K)] += self.noise
        self._chol = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._chol, yn)
        self._X = X
        return self

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points ``X``."""
        if self._X is None or self._alpha is None:
            raise RuntimeError("GP must be fit() before prediction")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = rbf_kernel(X, self._X, self.length_scale)
        mean = Ks @ self._alpha
        v = cho_solve(self._chol, Ks.T)
        var = 1.0 + self.noise - np.einsum("ij,ji->i", Ks, v)
        std = np.sqrt(np.clip(var, 1e-12, None))
        return mean * self._y_std + self._y_mean, std * self._y_std

"""Expected-improvement Bayesian optimization over a unit box.

The optimizer minimizes a black-box objective ``f : [0, 1]^d -> R``:
random initial design, GP surrogate, expected improvement maximized over a
random candidate pool (plus local perturbations of the incumbent).  This is
the acquisition loop Aquatope runs over workflow configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.stats import norm

from repro.bayesopt.gp import GaussianProcess
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BOResult:
    """Outcome of a BO run."""

    best_x: np.ndarray
    best_y: float
    xs: np.ndarray
    ys: np.ndarray


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI for *minimization* with exploration margin ``xi``."""
    improvement = best - mean - xi
    z = improvement / np.clip(std, 1e-12, None)
    return improvement * norm.cdf(z) + std * norm.pdf(z)


class BayesianOptimizer:
    """Minimize a black-box function over ``[0, 1]^dim``."""

    def __init__(
        self,
        dim: int,
        *,
        n_initial: int = 8,
        n_candidates: int = 256,
        length_scale: float = 0.3,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_positive("dim", dim)
        check_positive("n_initial", n_initial)
        check_positive("n_candidates", n_candidates)
        self.dim = int(dim)
        self.n_initial = int(n_initial)
        self.n_candidates = int(n_candidates)
        self.length_scale = float(length_scale)
        self._rng = ensure_rng(seed)

    def minimize(
        self, objective: Callable[[np.ndarray], float], n_iter: int = 30
    ) -> BOResult:
        """Run the EI loop for ``n_iter`` evaluations after the design."""
        check_positive("n_iter", n_iter)
        xs = list(self._rng.random((self.n_initial, self.dim)))
        ys = [float(objective(x)) for x in xs]
        for _ in range(n_iter):
            gp = GaussianProcess(length_scale=self.length_scale).fit(
                np.array(xs), np.array(ys)
            )
            best = min(ys)
            pool = self._rng.random((self.n_candidates, self.dim))
            incumbent = xs[int(np.argmin(ys))]
            local = np.clip(
                incumbent + self._rng.normal(0, 0.1, (self.n_candidates // 4, self.dim)),
                0.0,
                1.0,
            )
            cand = np.vstack([pool, local])
            mean, std = gp.predict(cand)
            ei = expected_improvement(mean, std, best)
            x_next = cand[int(np.argmax(ei))]
            xs.append(x_next)
            ys.append(float(objective(x_next)))
        best_idx = int(np.argmin(ys))
        return BOResult(
            best_x=np.array(xs[best_idx]),
            best_y=ys[best_idx],
            xs=np.array(xs),
            ys=np.array(ys),
        )

"""Gaussian-process Bayesian optimization (the Aquatope substrate).

Aquatope [24] tunes serverless workflow configurations with uncertainty-
aware Bayesian optimization.  This package provides the from-scratch
machinery its policy reproduction uses: an RBF-kernel GP regressor with
analytic posterior and an expected-improvement loop over a bounded box
(configurations are encoded as per-function ordinals in [0, 1]).
"""

from repro.bayesopt.bo import BayesianOptimizer, BOResult
from repro.bayesopt.gp import GaussianProcess, rbf_kernel

__all__ = ["GaussianProcess", "rbf_kernel", "BayesianOptimizer", "BOResult"]

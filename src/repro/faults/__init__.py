"""Declarative fault-injection plane (see ``docs/robustness.md``).

A :class:`FaultPlan` is a JSON-loadable, seed-deterministic chaos
schedule — machine outages, mid-flight execution faults, latency
stragglers, init-failure bursts — plus the :class:`ResilienceSpec` that
parameterizes the gateway machinery absorbing it (retries with backoff,
crash-loop caps, deadlines, CPU fallback).  Attach a plan to a
:class:`~repro.simulator.runtime.Runtime`, a simulator facade, a
:class:`~repro.experiments.scenario.ScenarioSpec`, or any runner / CLI
entry point; with no plan attached every fault code path is skipped and
runs are bit-identical to the pre-fault engine.
"""

from repro.faults.plan import (
    ExecutionFault,
    FaultPlan,
    FlashCrowd,
    InitFailureBurst,
    LatencyStraggler,
    MachineOutage,
    ResilienceSpec,
    RetryStorm,
)

__all__ = [
    "FaultPlan",
    "MachineOutage",
    "ExecutionFault",
    "LatencyStraggler",
    "InitFailureBurst",
    "FlashCrowd",
    "RetryStorm",
    "ResilienceSpec",
]

"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` composes typed fault specs into one JSON-loadable
description of the chaos a run should endure — the simulator analogue of
the failure toolkit a serverless platform is evaluated against:

- :class:`MachineOutage` — a crash window: at ``start`` the machine's
  capacity disappears and every live instance on it is evicted with the
  ``machine-failed`` termination reason; at ``end`` capacity returns;
- :class:`ExecutionFault` — a per-function probability that a running
  batch fails mid-flight (the instance crashes, stages are requeued);
- :class:`LatencyStraggler` — a windowed multiplicative slowdown on
  selected functions / backends (degraded node, noisy neighbour);
- :class:`InitFailureBurst` — additional time-varying init-failure
  probability on top of the gateway's base ``init_failure_rate`` (an
  image-registry brownout, a flaky model download);
- :class:`FlashCrowd` — a deterministic arrival-rate spike injected on
  top of the trace (the overload plane's pressure source, see
  :mod:`repro.overload`);
- :class:`RetryStorm` — clients that blindly resubmit shed/rejected
  invocations after a fixed delay, amplifying an overload.

All windows are half-open ``[start, end)``.  Overlapping probability
specs compose by saturating addition (capped below 1), overlapping
stragglers multiply.

The plan also carries the :class:`ResilienceSpec` that parameterizes the
gateway's absorption machinery — retry budget and backoff, crash-loop
cap, deadline enforcement, CPU fallback.  Resilience is active exactly
when a plan is attached; with no plan the gateway takes none of these
code paths and a run is bit-identical to one on the pre-fault engine.

Determinism: the plan itself holds no randomness.  Every probabilistic
draw it induces comes from the gateway's existing per-app fault RNG
stream (derived from the root seed), so same seed + same plan → the same
failures, the same retries, the same trace — serial or parallel.

Plans are frozen, hashable and picklable, so they ride inside grid cell
specs (:mod:`repro.experiments.parallel`) unchanged.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "MachineOutage",
    "ExecutionFault",
    "LatencyStraggler",
    "InitFailureBurst",
    "FlashCrowd",
    "RetryStorm",
    "ResilienceSpec",
    "FaultPlan",
]

#: Saturation cap for composed failure probabilities: keep a crash-loop
#: terminable even under overlapping always-fail specs.
_MAX_RATE = 0.999999


def _check_window(start: float, end: float) -> None:
    if start < 0:
        raise ValueError(f"window start must be >= 0, got {start}")
    if end <= start:
        raise ValueError(f"window end must be > start, got [{start}, {end})")


def _in_window(start: float, end: float, t: float) -> bool:
    return start <= t < end


@dataclass(frozen=True)
class MachineOutage:
    """One machine crashes at ``start`` and recovers at ``end``."""

    machine: int
    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ValueError(f"machine index must be >= 0, got {self.machine}")
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class ExecutionFault:
    """Probability that a running batch fails mid-flight.

    An empty ``functions`` tuple matches every function of every app.
    """

    rate: float
    functions: tuple[str, ...] = ()
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        _check_window(self.start, self.end)

    def matches(self, function: str, t: float) -> bool:
        """Whether this spec applies to ``function`` at time ``t``."""
        if not _in_window(self.start, self.end, t):
            return False
        return not self.functions or function in self.functions


@dataclass(frozen=True)
class LatencyStraggler:
    """Multiplicative slowdown of matching executions inside the window.

    ``backend`` restricts the spec to ``"cpu"`` or ``"gpu"`` instances;
    ``None`` matches both.  An empty ``functions`` tuple matches all.
    """

    factor: float
    functions: tuple[str, ...] = ()
    backend: str | None = None
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(
                f"straggler factor must be >= 1 (a slowdown), got {self.factor}"
            )
        if self.backend not in (None, "cpu", "gpu"):
            raise ValueError(
                f"backend must be 'cpu', 'gpu' or null, got {self.backend!r}"
            )
        _check_window(self.start, self.end)

    def matches(self, function: str, backend: str, t: float) -> bool:
        """Whether this spec slows ``function`` on ``backend`` at ``t``."""
        if not _in_window(self.start, self.end, t):
            return False
        if self.backend is not None and self.backend != backend:
            return False
        return not self.functions or function in self.functions


@dataclass(frozen=True)
class InitFailureBurst:
    """Extra init-failure probability inside the window (adds to the base
    ``init_failure_rate`` knob, saturating below 1)."""

    rate: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class FlashCrowd:
    """A deterministic arrival-rate spike injected on top of the trace.

    Inside the (finite) window extra invocations arrive at exactly
    ``rate`` per second, spaced ``1/rate`` apart starting at ``start``.
    The spike holds no randomness — injected arrivals go through the
    gateway's ordinary arrival path (admission control applies) and are
    counted in ``RunMetrics.injected_arrivals``.
    """

    rate: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError(f"flash-crowd rate must be > 0, got {self.rate}")
        _check_window(self.start, self.end)
        if not math.isfinite(self.end):
            raise ValueError(
                "flash-crowd window end must be finite "
                f"(the spike injects rate * (end - start) arrivals), got {self.end}"
            )

    def times(self) -> tuple[float, ...]:
        """The exact injected arrival instants (``start + k/rate < end``)."""
        n = math.ceil((self.end - self.start) * self.rate - 1e-12)
        return tuple(self.start + k / self.rate for k in range(max(n, 0)))


@dataclass(frozen=True)
class RetryStorm:
    """Clients that blindly resubmit shed/rejected invocations.

    Inside the window, every invocation the gateway sheds or rejects is
    re-submitted as a *fresh* arrival ``delay`` seconds later, up to
    ``resubmits`` generations deep per original invocation.  Resubmissions
    count as ``injected_arrivals`` and go through admission control — the
    mechanism that turns a transient overload into a sustained one unless
    the shedding machinery dampens it.
    """

    resubmits: int = 1
    delay: float = 1.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.resubmits < 1:
            raise ValueError(f"resubmits must be >= 1, got {self.resubmits}")
        if self.delay <= 0.0:
            raise ValueError(f"retry-storm delay must be > 0, got {self.delay}")
        _check_window(self.start, self.end)

    def matches(self, t: float) -> bool:
        """Whether a shed/rejected invocation at ``t`` is resubmitted."""
        return _in_window(self.start, self.end, t)


@dataclass(frozen=True)
class ResilienceSpec:
    """Parameters of the gateway's fault-absorption machinery.

    ``max_retries`` is a per-invocation budget shared across its stages;
    once exhausted the invocation is abandoned (counted ``timed_out``).
    ``retry_backoff`` seeds exponential backoff: retry *k* waits
    ``min(retry_backoff * 2**(k-1), retry_backoff_max)`` seconds — the cap
    keeps a generous retry budget from scheduling events arbitrarily far
    past the run horizon.  ``max_crash_loop`` caps the
    consecutive automatic relaunches after init failures of one function;
    at the cap the gateway stops crash-looping (falling back to the CPU
    config when enabled) and leaves relaunching to demand-driven
    dispatch.  ``deadline_factor`` — when set — abandons any invocation
    older than ``deadline_factor * SLA``.  ``fallback_after`` is the
    consecutive GPU-allocation-failure count that triggers graceful
    degradation to ``fallback_config`` (``None`` disables degradation).
    """

    max_retries: int = 3
    retry_backoff: float = 0.5
    retry_backoff_max: float = 60.0
    max_crash_loop: int = 5
    deadline_factor: float | None = None
    fallback_after: int | None = 3
    fallback_config: str = "cpu-16"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.retry_backoff_max <= 0:
            raise ValueError(
                f"retry_backoff_max must be > 0, got {self.retry_backoff_max}"
            )
        if self.max_crash_loop < 1:
            raise ValueError(
                f"max_crash_loop must be >= 1, got {self.max_crash_loop}"
            )
        if self.deadline_factor is not None and self.deadline_factor <= 0:
            raise ValueError(
                f"deadline_factor must be > 0, got {self.deadline_factor}"
            )
        if self.fallback_after is not None and self.fallback_after < 1:
            raise ValueError(
                f"fallback_after must be >= 1, got {self.fallback_after}"
            )


def _tuple_of(cls: type, value: Any, what: str) -> tuple:
    """Normalize a JSON list of spec dicts to a tuple of dataclasses."""
    if value is None:
        return ()
    if isinstance(value, Mapping):
        value = [value]
    out = []
    for item in value:
        if isinstance(item, cls):
            out.append(item)
        elif isinstance(item, Mapping):
            out.append(_from_mapping(cls, item, what))
        else:
            raise TypeError(f"{what} entries must be dicts, got {type(item).__name__}")
    return tuple(out)


def _from_mapping(cls: type, data: Mapping[str, Any], what: str):
    valid = {f.name for f in fields(cls)}
    unknown = set(data) - valid
    if unknown:
        raise KeyError(
            f"unknown {what} keys {sorted(unknown)}; valid keys: {sorted(valid)}"
        )
    kwargs = dict(data)
    if "functions" in kwargs and kwargs["functions"] is not None:
        fns = kwargs["functions"]
        kwargs["functions"] = (fns,) if isinstance(fns, str) else tuple(fns)
    return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A full chaos schedule plus the resilience parameters absorbing it."""

    outages: tuple[MachineOutage, ...] = ()
    execution_faults: tuple[ExecutionFault, ...] = ()
    stragglers: tuple[LatencyStraggler, ...] = ()
    init_failure_bursts: tuple[InitFailureBurst, ...] = ()
    flash_crowds: tuple[FlashCrowd, ...] = ()
    retry_storms: tuple[RetryStorm, ...] = ()
    resilience: ResilienceSpec = field(default_factory=ResilienceSpec)

    # ------------------------------------------------------------- loading
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from a plain dict (e.g. parsed JSON).

        Spec lists accept single dicts (promoted to one-element tuples);
        unknown keys anywhere are rejected with the valid alternatives.
        """
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise KeyError(
                f"unknown fault-plan keys {sorted(unknown)}; "
                f"valid keys: {sorted(valid)}"
            )
        resilience = data.get("resilience", ResilienceSpec())
        if isinstance(resilience, Mapping):
            resilience = _from_mapping(ResilienceSpec, resilience, "resilience")
        return cls(
            outages=_tuple_of(MachineOutage, data.get("outages"), "outage"),
            execution_faults=_tuple_of(
                ExecutionFault, data.get("execution_faults"), "execution_fault"
            ),
            stragglers=_tuple_of(
                LatencyStraggler, data.get("stragglers"), "straggler"
            ),
            init_failure_bursts=_tuple_of(
                InitFailureBurst, data.get("init_failure_bursts"),
                "init_failure_burst",
            ),
            flash_crowds=_tuple_of(
                FlashCrowd, data.get("flash_crowds"), "flash_crowd"
            ),
            retry_storms=_tuple_of(
                RetryStorm, data.get("retry_storms"), "retry_storm"
            ),
            resilience=resilience,
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_dict(self) -> dict[str, Any]:
        """Round-trippable plain-dict form (JSON-serializable)."""
        import dataclasses

        return dataclasses.asdict(self)

    # ------------------------------------------------------------- queries
    def execution_fault_rate(self, function: str, t: float) -> float:
        """Composed mid-flight failure probability for one execution."""
        rate = 0.0
        for spec in self.execution_faults:
            if spec.matches(function, t):
                rate += spec.rate
        return min(rate, _MAX_RATE)

    def straggler_factor(self, function: str, backend: str, t: float) -> float:
        """Composed execution-time multiplier (1.0 when unaffected)."""
        factor = 1.0
        for spec in self.stragglers:
            if spec.matches(function, backend, t):
                factor *= spec.factor
        return factor

    def extra_init_failure_rate(self, t: float) -> float:
        """Composed burst probability added to the base init-failure rate."""
        rate = 0.0
        for spec in self.init_failure_bursts:
            if _in_window(spec.start, spec.end, t):
                rate += spec.rate
        return min(rate, _MAX_RATE)

    def injected_times(self) -> tuple[float, ...]:
        """Merged, sorted arrival instants of every flash crowd."""
        times: list[float] = []
        for crowd in self.flash_crowds:
            times.extend(crowd.times())
        return tuple(sorted(times))

    def storm_for(self, t: float) -> RetryStorm | None:
        """The first retry storm whose window covers ``t`` (or ``None``)."""
        for storm in self.retry_storms:
            if storm.matches(t):
                return storm
        return None

    @property
    def max_machine(self) -> int:
        """Highest machine index any outage targets (-1 with no outages)."""
        return max((o.machine for o in self.outages), default=-1)

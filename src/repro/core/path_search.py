"""Top-K path search over the multi-way configuration tree (paper §V-C1).

A *path* here is a chain of functions with sequential dependencies (the
Workflow Manager hands the Strategy Optimizer one such chain at a time).
Each tree node fixes the hardware configuration — and therefore, through the
adaptive policy, the cold-start management — of every function; the search
walks nodes in cost order until it finds the cheapest SLA-feasible
combination.

The default ``top_k = 1`` variant is the one the paper deploys: starting
from the all-cheapest combination, it finalizes functions one at a time,
giving each the cheapest configuration that still allows the *remaining*
functions (running at their fastest) to meet the SLA.  Candidates are
pre-sorted by cost, giving the paper's ``O(N * M * log M)`` complexity.

Two reference searches are included for the Fig. 16 overhead comparison:
:class:`ExhaustiveSearch` (exact, exponential) and :class:`DpSearch` (the
classic constrained-shortest-path dynamic program over a discretized
latency budget).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.dag.graph import AppDAG
from repro.hardware.configs import ConfigurationSpace, HardwareConfig
from repro.core.prewarming import evaluate_assignment
from repro.profiler.profiles import FunctionProfile
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Candidate:
    """One (configuration, inference time, adaptive cost) option."""

    config: HardwareConfig
    inference_time: float
    cost: float


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a search: assignment plus bookkeeping for Fig. 16."""

    assignment: dict[str, HardwareConfig]
    latency: float
    cost: float
    feasible: bool
    nodes_explored: int


def build_candidates(
    functions: Sequence[str],
    profiles: Mapping[str, FunctionProfile],
    space: ConfigurationSpace,
    inter_arrival: float,
    batch: int = 1,
) -> dict[str, list[Candidate]]:
    """Per-function candidate lists sorted by adaptive cost (cheapest first).

    Candidate evaluation is vectorized over the whole space: the adaptive
    per-invocation cost (Eq. 5: ``(T+I)*U`` pre-warm, ``IT*U`` keep-alive)
    is computed elementwise on the profile's config arrays and ordered with
    a single stable lexsort — elementwise IEEE arithmetic and a stable sort
    make the result bit-identical to the per-config scalar loop it replaced.

    Lists are memoized per (profile, space, inter_arrival, batch): the
    Auto-scaler rebuilds identical candidate sets on every control window
    for the same inter-arrival bucket.  Cached lists are shared — callers
    treat them as read-only (all in-tree consumers do).
    """
    check_positive("inter_arrival", inter_arrival)
    out: dict[str, list[Candidate]] = {}
    for fn in functions:
        profile = profiles[fn]
        # The space is keyed by identity and verified, since
        # ConfigurationSpace is a plain (identity-hashed, mutable-looking)
        # container and id() values can be recycled.
        key = ("cands", id(space), inter_arrival, batch)
        cached = profile._memo.get(key)
        if cached is not None and cached[0] is space:
            out[fn] = cached[1]
            continue
        configs, init_a, inf_a, unit_a = profile.config_arrays(space, batch)
        if not configs:
            raise ValueError(f"no feasible configurations for function {fn!r}")
        cycle = init_a + inf_a
        costs = np.where(
            cycle < inter_arrival, cycle * unit_a, inter_arrival * unit_a
        )
        order = np.lexsort((inf_a, costs))
        cands = [
            Candidate(configs[j], float(inf_a[j]), float(costs[j]))
            for j in order
        ]
        if len(profile._memo) > 16384:  # unbounded-IT safety valve
            profile._memo.clear()
        profile._memo[key] = (space, cands, inf_a[order], costs[order])
        out[fn] = cands
    return out


def candidate_arrays(
    functions: Sequence[str],
    profiles: Mapping[str, FunctionProfile],
    space: ConfigurationSpace,
    inter_arrival: float,
    batch: int = 1,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Sorted ``(inference_times, costs)`` arrays per function.

    Aligned elementwise with the candidate lists of
    :func:`build_candidates` (same memo entry), so array index ``j``
    describes ``cands[fn][j]`` — the feasibility scans of the search can
    then run as array comparisons.
    """
    build_candidates(functions, profiles, space, inter_arrival, batch)
    key = ("cands", id(space), inter_arrival, batch)
    return {
        fn: (profiles[fn]._memo[key][2], profiles[fn]._memo[key][3])
        for fn in functions
    }


class PathSearchOptimizer:
    """The paper's top-K path search (top-1 by default, as deployed)."""

    def __init__(self, space: ConfigurationSpace, top_k: int = 1) -> None:
        check_positive("top_k", top_k)
        self.space = space
        self.top_k = int(top_k)

    def optimize_path(
        self,
        functions: Sequence[str],
        profiles: Mapping[str, FunctionProfile],
        inter_arrival: float,
        sla: float,
        batch: int = 1,
    ) -> SearchResult:
        """Cheapest SLA-feasible assignment along a sequential chain."""
        check_positive("sla", sla)
        if not functions:
            raise ValueError("path must contain at least one function")
        cands = build_candidates(functions, profiles, self.space, inter_arrival, batch)
        if self.top_k == 1:
            arrays = candidate_arrays(
                functions, profiles, self.space, inter_arrival, batch
            )
            return self._top1(list(functions), cands, arrays, sla)
        return self._beam(list(functions), cands, sla)

    # -- top-1 (the deployed variant) --------------------------------------
    def _top1(
        self,
        functions: list[str],
        cands: dict[str, list[Candidate]],
        arrays: dict[str, tuple[np.ndarray, np.ndarray]],
        sla: float,
    ) -> SearchResult:
        """Finalize functions in order, each on its cheapest feasible config.

        The per-function feasibility scan over the cost-ordered candidates
        is an array comparison: ``argmax`` of ``inference <= budget`` is
        the first (cheapest) feasible index, exactly the candidate the
        scalar scan stopped at, and the node count charges the same
        ``index + 1`` examined candidates.
        """
        nodes = 1
        # Root T^0: the all-cheapest combination (Eq. 6).
        cheapest = {fn: cands[fn][0] for fn in functions}
        latency = sum(c.inference_time for c in cheapest.values())
        if latency <= sla:
            return self._result(functions, cheapest, sla, nodes)

        fastest_idx = {
            fn: int(np.argmin(arrays[fn][0])) for fn in functions
        }
        min_latency = {
            fn: cands[fn][fastest_idx[fn]].inference_time for fn in functions
        }
        if sum(min_latency.values()) > sla:
            # No combination can meet the SLA: report the fastest one.
            fastest = {fn: cands[fn][fastest_idx[fn]] for fn in functions}
            return self._result(functions, fastest, sla, nodes + 1)

        chosen: dict[str, Candidate] = {}
        prefix_latency = 0.0
        remaining_min = sum(min_latency.values())
        for fn in functions:
            remaining_min -= min_latency[fn]
            budget = sla - prefix_latency - remaining_min
            # Cost order: the first feasible candidate is the cheapest.
            feasible = arrays[fn][0] <= budget
            idx = int(np.argmax(feasible))
            nodes += idx + 1
            assert feasible[idx], "fastest config always fits the budget"
            pick = cands[fn][idx]
            chosen[fn] = pick
            prefix_latency += pick.inference_time
        return self._result(functions, chosen, sla, nodes)

    # -- top-K beam over tree layers ----------------------------------------
    def _beam(
        self,
        functions: list[str],
        cands: dict[str, list[Candidate]],
        sla: float,
    ) -> SearchResult:
        nodes = 0
        min_latency = {
            fn: min(c.inference_time for c in cands[fn]) for fn in functions
        }
        suffix_min = [0.0] * (len(functions) + 1)
        for i in range(len(functions) - 1, -1, -1):
            suffix_min[i] = suffix_min[i + 1] + min_latency[functions[i]]
        if suffix_min[0] > sla:
            fastest = {
                fn: min(cands[fn], key=lambda c: c.inference_time) for fn in functions
            }
            return self._result(functions, fastest, sla, 1)

        # Beam states: (cost so far, latency so far, picks)
        beam: list[tuple[float, float, dict[str, Candidate]]] = [(0.0, 0.0, {})]
        for i, fn in enumerate(functions):
            expansions: list[tuple[float, float, dict[str, Candidate]]] = []
            for cost, lat, picks in beam:
                for cand in cands[fn]:
                    nodes += 1
                    if lat + cand.inference_time + suffix_min[i + 1] > sla:
                        continue
                    expansions.append(
                        (cost + cand.cost, lat + cand.inference_time, {**picks, fn: cand})
                    )
            expansions.sort(key=lambda s: s[0])
            beam = expansions[: self.top_k]
            assert beam, "suffix bound guarantees at least one feasible expansion"
        best = beam[0]
        return self._result(functions, best[2], sla, nodes)

    @staticmethod
    def _result(
        functions: list[str],
        picks: Mapping[str, Candidate],
        sla: float,
        nodes: int,
    ) -> SearchResult:
        latency = sum(picks[fn].inference_time for fn in functions)
        return SearchResult(
            assignment={fn: picks[fn].config for fn in functions},
            latency=latency,
            cost=sum(picks[fn].cost for fn in functions),
            feasible=latency <= sla + 1e-12,
            nodes_explored=nodes,
        )


class ExhaustiveSearch:
    """Exact minimum-cost search by full enumeration (the OPT reference).

    Exponential in the function count — usable for the small evaluation
    DAGs, and as ground truth in tests and the Fig. 16 overhead comparison.
    """

    def __init__(self, space: ConfigurationSpace) -> None:
        self.space = space

    def optimize_path(
        self,
        functions: Sequence[str],
        profiles: Mapping[str, FunctionProfile],
        inter_arrival: float,
        sla: float,
        batch: int = 1,
    ) -> SearchResult:
        """Exact cheapest feasible assignment along a chain."""
        cands = build_candidates(functions, profiles, self.space, inter_arrival, batch)
        best: tuple[float, float, dict[str, Candidate]] | None = None
        fallback: tuple[float, dict[str, Candidate]] | None = None
        nodes = 0
        for combo in itertools.product(*(cands[fn] for fn in functions)):
            nodes += 1
            picks = dict(zip(functions, combo))
            latency = sum(c.inference_time for c in combo)
            cost = sum(c.cost for c in combo)
            if latency <= sla:
                if best is None or cost < best[0]:
                    best = (cost, latency, picks)
            if fallback is None or latency < fallback[0]:
                fallback = (latency, picks)
        if best is not None:
            cost, latency, picks = best
            return SearchResult(
                assignment={fn: picks[fn].config for fn in functions},
                latency=latency,
                cost=cost,
                feasible=True,
                nodes_explored=nodes,
            )
        assert fallback is not None
        latency, picks = fallback
        return SearchResult(
            assignment={fn: picks[fn].config for fn in functions},
            latency=latency,
            cost=sum(picks[fn].cost for fn in functions),
            feasible=False,
            nodes_explored=nodes,
        )

    def optimize_app(
        self,
        app: AppDAG,
        profiles: Mapping[str, FunctionProfile],
        inter_arrival: float,
        batch: int = 1,
    ) -> SearchResult:
        """Exact cheapest feasible assignment over a whole DAG."""
        functions = list(app.function_names)
        nodes = 0
        best = None
        fallback = None
        config_lists = []
        for fn in functions:
            profile = profiles[fn]
            cfgs = [c for c in self.space if profile.supports(c.backend)]
            config_lists.append(cfgs)
        for combo in itertools.product(*config_lists):
            nodes += 1
            assignment = dict(zip(functions, combo))
            ev = evaluate_assignment(
                app, assignment, profiles, inter_arrival, batch=batch
            )
            if ev.feasible and (best is None or ev.cost < best[1].cost):
                best = (assignment, ev)
            if fallback is None or ev.latency < fallback[1].latency:
                fallback = (assignment, ev)
        pick, ev = best if best is not None else fallback  # type: ignore[misc]
        return SearchResult(
            assignment=pick,
            latency=ev.latency,
            cost=ev.cost,
            feasible=ev.feasible,
            nodes_explored=nodes,
        )


class DpSearch:
    """Constrained-shortest-path dynamic program over discretized latency.

    The textbook approach to the NP-hard CSP formulation (§V-A): quantize
    the latency budget into ``n_bins`` levels and run
    ``dp[k][lat] = min cost``.  Exact up to discretization; slower than the
    paper's search by a large constant — the Fig. 16 comparison point.
    """

    def __init__(self, space: ConfigurationSpace, n_bins: int = 200) -> None:
        check_positive("n_bins", n_bins)
        self.space = space
        self.n_bins = int(n_bins)

    def optimize_path(
        self,
        functions: Sequence[str],
        profiles: Mapping[str, FunctionProfile],
        inter_arrival: float,
        sla: float,
        batch: int = 1,
    ) -> SearchResult:
        """DP solution of the chain-constrained cheapest assignment."""
        cands = build_candidates(functions, profiles, self.space, inter_arrival, batch)
        step = sla / self.n_bins
        INF = float("inf")
        # dp maps latency bin -> (cost, picks)
        dp: list[tuple[float, dict[str, Candidate]] | None] = [None] * (self.n_bins + 1)
        dp[0] = (0.0, {})
        nodes = 0
        for fn in functions:
            ndp: list[tuple[float, dict[str, Candidate]] | None] = [None] * (
                self.n_bins + 1
            )
            for lat_bin, state in enumerate(dp):
                if state is None:
                    continue
                cost, picks = state
                for cand in cands[fn]:
                    nodes += 1
                    nb = lat_bin + int(-(-cand.inference_time // step))  # ceil
                    if nb > self.n_bins:
                        continue
                    if ndp[nb] is None or cost + cand.cost < ndp[nb][0]:
                        ndp[nb] = (cost + cand.cost, {**picks, fn: cand})
            dp = ndp
        best = None
        for state in dp:
            if state is not None and (best is None or state[0] < best[0]):
                best = state
        if best is None:
            fastest = {
                fn: min(cands[fn], key=lambda c: c.inference_time) for fn in functions
            }
            return PathSearchOptimizer._result(list(functions), fastest, sla, nodes)
        cost, picks = best
        return PathSearchOptimizer._result(list(functions), picks, sla, nodes)

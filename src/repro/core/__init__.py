"""SMIless core: the paper's contribution (§V).

- :mod:`repro.core.prewarming` — adaptive cold-start management: pre-warming
  window sizes, the per-invocation cost law of Eq. (3)/(5), and plan
  evaluation (E2E latency + total cost) for a configuration assignment;
- :mod:`repro.core.path_search` — the top-K path search over the multi-way
  configuration tree (§V-C1), plus an exhaustive-search reference;
- :mod:`repro.core.workflow` — the Workflow Manager: DAG decomposition into
  simple paths, parallel per-path optimization, branch combining (§V-C2);
- :mod:`repro.core.autoscaler` — adaptive batching and scale-out via the
  bisection solution of Eq. (7)/(8) (§V-D);
- :mod:`repro.core.engine` — the Optimizer Engine facade tying the pieces
  into the per-window control loop.
"""

from repro.core.analysis import (
    CostPoint,
    FrontierPoint,
    config_frontier,
    cost_vs_inter_arrival,
    regime_boundary,
    sla_cost_curve,
)
from repro.core.autoscaler import AutoScaler, ScalingDecision
from repro.core.engine import OptimizerEngine
from repro.core.path_search import (
    ExhaustiveSearch,
    PathSearchOptimizer,
    SearchResult,
)
from repro.core.prewarming import (
    ColdStartPolicy,
    FunctionPlan,
    PlanEvaluation,
    cost_per_invocation,
    evaluate_assignment,
    policy_for,
    prewarm_window,
)
from repro.core.workflow import ExecutionStrategy, WorkflowManager

__all__ = [
    "ColdStartPolicy",
    "FunctionPlan",
    "PlanEvaluation",
    "policy_for",
    "prewarm_window",
    "cost_per_invocation",
    "evaluate_assignment",
    "PathSearchOptimizer",
    "ExhaustiveSearch",
    "SearchResult",
    "WorkflowManager",
    "ExecutionStrategy",
    "AutoScaler",
    "ScalingDecision",
    "OptimizerEngine",
    "CostPoint",
    "FrontierPoint",
    "cost_vs_inter_arrival",
    "regime_boundary",
    "config_frontier",
    "sla_cost_curve",
]

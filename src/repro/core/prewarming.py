"""Adaptive cold-start management (paper §V-B).

Given a function's initialization time ``T``, inference time ``I`` (both
functions of its hardware configuration) and the predicted inter-arrival
time ``IT`` of application invocations, SMIless picks between:

- **adaptive pre-warming** (Case I, ``T + I < IT``): unload the instance
  after each inference and re-warm it ``T`` seconds before it is next
  needed, sized so initialization fully overlaps upstream execution.  The
  pre-warming *window* (idle, unbilled gap) is ``IT - T - I``; each
  invocation is billed ``(T + I) * U`` (Eq. 5);
- **keep-alive** (Case II, ``T + I >= IT``): keep the instance warm across
  invocations, billing ``IT * U`` per invocation — provably cheaper than
  terminate-and-recreate, which would bill ``(T + I) * U > IT * U``.

Because initialization is hidden behind upstream inference (or, for source
functions, behind the predicted arrival lead time), the application's E2E
latency is the critical-path sum of inference times alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.dag.graph import AppDAG
from repro.hardware.configs import HardwareConfig
from repro.profiler.profiles import FunctionProfile
from repro.utils.validation import check_positive


class ColdStartPolicy(enum.Enum):
    """Cold-start management choices available to a function (the set S)."""

    PREWARM = "prewarm"
    KEEP_ALIVE = "keep-alive"
    ON_DEMAND = "on-demand"  # no management — used only by baselines

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def policy_for(init_time: float, inference_time: float, inter_arrival: float) -> ColdStartPolicy:
    """The adaptive choice of §V-B1: pre-warm when the cycle fits in IT."""
    check_positive("init_time", init_time, strict=False)
    check_positive("inference_time", inference_time)
    check_positive("inter_arrival", inter_arrival)
    if init_time + inference_time < inter_arrival:
        return ColdStartPolicy.PREWARM
    return ColdStartPolicy.KEEP_ALIVE


def prewarm_window(init_time: float, inference_time: float, inter_arrival: float) -> float:
    """Idle (unbilled) window between unload and the next warm-up.

    ``IT - T - I`` under pre-warming, zero under keep-alive (§V-B1).
    """
    if policy_for(init_time, inference_time, inter_arrival) is ColdStartPolicy.PREWARM:
        return inter_arrival - init_time - inference_time
    return 0.0


def cost_per_invocation(
    init_time: float,
    inference_time: float,
    inter_arrival: float,
    unit_cost: float,
) -> float:
    """Per-invocation execution cost ``C_k`` under the adaptive policy (Eq. 5)."""
    check_positive("unit_cost", unit_cost)
    if policy_for(init_time, inference_time, inter_arrival) is ColdStartPolicy.PREWARM:
        return (init_time + inference_time) * unit_cost
    return inter_arrival * unit_cost


@dataclass(frozen=True)
class FunctionPlan:
    """Resolved execution plan for one function under one configuration."""

    function: str
    config: HardwareConfig
    policy: ColdStartPolicy
    init_time: float
    inference_time: float
    prewarm_window: float
    cost: float

    @classmethod
    def build(
        cls,
        function: str,
        config: HardwareConfig,
        profile: FunctionProfile,
        inter_arrival: float,
        batch: int = 1,
    ) -> "FunctionPlan":
        """Evaluate the adaptive policy for ``function`` on ``config``.

        Plans are pure functions of the (immutable) profile and the
        arguments, so they are memoized on the profile: every control
        window re-evaluates the same assignments for the current
        inter-arrival estimate.
        """
        key = ("plan", function, config, inter_arrival, batch)
        cached = profile._memo.get(key)
        if cached is not None:
            return cached
        t = profile.init_time(config)
        i = profile.inference_time(config, batch)
        plan = cls(
            function=function,
            config=config,
            policy=policy_for(t, i, inter_arrival),
            init_time=t,
            inference_time=i,
            prewarm_window=prewarm_window(t, i, inter_arrival),
            cost=cost_per_invocation(t, i, inter_arrival, config.unit_cost),
        )
        if len(profile._memo) > 16384:  # unbounded-IT safety valve
            profile._memo.clear()
        profile._memo[key] = plan
        return plan


@dataclass(frozen=True)
class PlanEvaluation:
    """Whole-application evaluation of a configuration assignment."""

    plans: Mapping[str, FunctionPlan]
    latency: float
    cost: float
    sla: float

    @property
    def feasible(self) -> bool:
        """Whether the E2E latency meets the SLA."""
        return self.latency <= self.sla + 1e-12


def evaluate_assignment(
    app: AppDAG,
    assignment: Mapping[str, HardwareConfig],
    profiles: Mapping[str, FunctionProfile],
    inter_arrival: float,
    *,
    sla: float | None = None,
    batch: int = 1,
) -> PlanEvaluation:
    """Evaluate E2E latency and total per-invocation cost of an assignment.

    Latency is the critical-path sum of inference times (initialization is
    overlapped by adaptive pre-warming); cost is the sum of per-function
    adaptive costs — the objective of Eq. (4).
    """
    missing = [f for f in app.function_names if f not in assignment]
    if missing:
        raise ValueError(f"assignment missing functions: {missing}")
    plans = {
        name: FunctionPlan.build(
            name, assignment[name], profiles[name], inter_arrival, batch
        )
        for name in app.function_names
    }
    latency = app.critical_path_latency(
        {name: plan.inference_time for name, plan in plans.items()}
    )
    cost = sum(plan.cost for plan in plans.values())
    return PlanEvaluation(
        plans=plans, latency=latency, cost=cost, sla=app.sla if sla is None else sla
    )

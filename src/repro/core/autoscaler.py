"""Container auto-scaling via adaptive batching (paper §V-D).

Given the predicted invocation count ``G`` for the next window, the
inter-arrival time ``IT`` and the per-stage inference budget ``I_s`` (from
the Strategy Optimizer), the Auto-scaler solves Eq. (7)/(8):

    min over (config, B)  of  ceil(G / B) * IT * U(config)
    subject to             inference_time(config, B) <= I_s

For each configuration the largest feasible batch size is found by bisection
(inference time is monotone increasing in B under the Eq. 1/2 law); the
configuration with the lowest resulting cost wins.  If no configuration can
meet ``I_s`` even at batch 1, the fastest configuration is returned with
``feasible=False`` — the caller then scales out at batch 1 (§V-B2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.hardware.configs import ConfigurationSpace, HardwareConfig
from repro.profiler.profiles import FunctionProfile
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ScalingDecision:
    """Resolved scaling plan for one function in one window."""

    function: str
    config: HardwareConfig
    batch: int
    instances: int
    inference_time: float
    cost: float
    feasible: bool


class AutoScaler:
    """Solves the per-function batching/scale-out optimization."""

    def __init__(
        self,
        space: ConfigurationSpace,
        max_batch: int = 32,
        *,
        include_init_cost: bool = True,
    ) -> None:
        check_positive("max_batch", max_batch)
        self.space = space
        self.max_batch = int(max_batch)
        # Burst responses launch *new* instances whose initialization is
        # billed and delays availability; charging ``T`` alongside ``IT``
        # steers scale-out toward fast-starting backends — the reason the
        # CPU-to-GPU ratio climbs during bursts (Fig. 14b).
        self.include_init_cost = bool(include_init_cost)

    def max_feasible_batch(
        self,
        profile: FunctionProfile,
        config: HardwareConfig,
        budget: float,
    ) -> int:
        """Largest batch size meeting ``budget`` on ``config`` (0 if none).

        Bisection over the integer range [1, max_batch]; the latency law is
        monotone in B so the feasible set is a prefix.
        """
        check_positive("budget", budget)
        if profile.inference_time(config, 1) > budget:
            return 0
        lo, hi = 1, self.max_batch
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if profile.inference_time(config, mid) <= budget:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def plan(
        self,
        function: str,
        profile: FunctionProfile,
        predicted_invocations: int,
        inter_arrival: float,
        budget: float,
        *,
        max_init_time: float | None = None,
    ) -> ScalingDecision:
        """Optimal (config, batch, instance count) for the next window.

        ``max_init_time`` restricts candidates to configurations whose
        (robust) initialization fits a reaction budget — burst capacity that
        arrives after the burst is useless.  If no candidate qualifies the
        restriction is dropped.
        """
        check_positive("predicted_invocations", predicted_invocations)
        check_positive("inter_arrival", inter_arrival)
        candidates = [c for c in self.space if profile.supports(c.backend)]
        if max_init_time is not None:
            quick = [
                c
                for c in candidates
                if profile.init_time(c) <= max_init_time
                and self.max_feasible_batch(profile, c, budget) > 0
            ]
            if quick:
                candidates = quick
        best: ScalingDecision | None = None
        for config in candidates:
            batch = self.max_feasible_batch(profile, config, budget)
            if batch == 0:
                continue
            batch = min(batch, predicted_invocations)
            instances = math.ceil(predicted_invocations / batch)
            billed = inter_arrival + (
                profile.init_time(config) if self.include_init_cost else 0.0
            )
            cost = instances * billed * config.unit_cost
            decision = ScalingDecision(
                function=function,
                config=config,
                batch=batch,
                instances=instances,
                inference_time=profile.inference_time(config, batch),
                cost=cost,
                feasible=True,
            )
            if (
                best is None
                or decision.cost < best.cost
                or (decision.cost == best.cost and decision.instances < best.instances)
            ):
                best = decision
        if best is not None:
            return best
        # No configuration meets the budget even at batch 1: scale out on the
        # fastest configuration (§V-B2 "even higher-end hardware fails").
        fastest = min(
            (c for c in self.space if profile.supports(c.backend)),
            key=lambda c: profile.inference_time(c, 1),
        )
        return ScalingDecision(
            function=function,
            config=fastest,
            batch=1,
            instances=predicted_invocations,
            inference_time=profile.inference_time(fastest, 1),
            cost=predicted_invocations * inter_arrival * fastest.unit_cost,
            feasible=False,
        )

    def plan_all(
        self,
        profiles: Mapping[str, FunctionProfile],
        budgets: Mapping[str, float],
        predicted_invocations: int,
        inter_arrival: float,
    ) -> dict[str, ScalingDecision]:
        """Scaling decisions for every function (threads in the paper)."""
        return {
            fn: self.plan(fn, profiles[fn], predicted_invocations, inter_arrival, budgets[fn])
            for fn in profiles
        }

"""Container auto-scaling via adaptive batching (paper §V-D).

Given the predicted invocation count ``G`` for the next window, the
inter-arrival time ``IT`` and the per-stage inference budget ``I_s`` (from
the Strategy Optimizer), the Auto-scaler solves Eq. (7)/(8):

    min over (config, B)  of  ceil(G / B) * IT * U(config)
    subject to             inference_time(config, B) <= I_s

For each configuration the largest feasible batch size is found by bisection
(inference time is monotone increasing in B under the Eq. 1/2 law); the
configuration with the lowest resulting cost wins.  If no configuration can
meet ``I_s`` even at batch 1, the fastest configuration is returned with
``feasible=False`` — the caller then scales out at batch 1 (§V-B2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.hardware.configs import ConfigurationSpace, HardwareConfig
from repro.profiler.profiles import FunctionProfile
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ScalingDecision:
    """Resolved scaling plan for one function in one window."""

    function: str
    config: HardwareConfig
    batch: int
    instances: int
    inference_time: float
    cost: float
    feasible: bool


class AutoScaler:
    """Solves the per-function batching/scale-out optimization."""

    def __init__(
        self,
        space: ConfigurationSpace,
        max_batch: int = 32,
        *,
        include_init_cost: bool = True,
    ) -> None:
        check_positive("max_batch", max_batch)
        self.space = space
        self.max_batch = int(max_batch)
        # Burst responses launch *new* instances whose initialization is
        # billed and delays availability; charging ``T`` alongside ``IT``
        # steers scale-out toward fast-starting backends — the reason the
        # CPU-to-GPU ratio climbs during bursts (Fig. 14b).
        self.include_init_cost = bool(include_init_cost)

    def max_feasible_batch(
        self,
        profile: FunctionProfile,
        config: HardwareConfig,
        budget: float,
    ) -> int:
        """Largest batch size meeting ``budget`` on ``config`` (0 if none).

        Bisection over the integer range [1, max_batch]; the latency law is
        monotone in B so the feasible set is a prefix.  Results are
        memoized on the profile per (config, budget, max_batch): the
        control loop re-solves the same bisection every window for the
        standing budget shares.
        """
        check_positive("budget", budget)
        key = ("mfb", config, budget, self.max_batch)
        cached = profile._memo.get(key)
        if cached is not None:
            return cached
        if profile.inference_time(config, 1) > budget:
            lo = 0
        else:
            lo, hi = 1, self.max_batch
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if profile.inference_time(config, mid) <= budget:
                    lo = mid
                else:
                    hi = mid - 1
        if len(profile._memo) > 16384:  # unbounded-budget safety valve
            profile._memo.clear()
        profile._memo[key] = lo
        return lo

    def plan(
        self,
        function: str,
        profile: FunctionProfile,
        predicted_invocations: int,
        inter_arrival: float,
        budget: float,
        *,
        max_init_time: float | None = None,
    ) -> ScalingDecision:
        """Optimal (config, batch, instance count) for the next window.

        ``max_init_time`` restricts candidates to configurations whose
        (robust) initialization fits a reaction budget — burst capacity that
        arrives after the burst is useless.  If no candidate qualifies the
        restriction is dropped.
        """
        check_positive("predicted_invocations", predicted_invocations)
        check_positive("inter_arrival", inter_arrival)
        candidates = [c for c in self.space if profile.supports(c.backend)]
        if max_init_time is not None:
            quick = [
                c
                for c in candidates
                if profile.init_time(c) <= max_init_time
                and self.max_feasible_batch(profile, c, budget) > 0
            ]
            if quick:
                candidates = quick
        # Vectorized cost evaluation over the feasible candidates: the
        # elementwise products reproduce the scalar ``instances * billed *
        # unit_cost`` bit for bit, and the stable lexsort picks the same
        # (cost, instances, first-seen) lexicographic minimum the
        # one-at-a-time comparison loop did.
        feasible = [
            (c, b)
            for c in candidates
            if (b := self.max_feasible_batch(profile, c, budget)) > 0
        ]
        if feasible:
            batches = np.minimum(
                np.array([b for _, b in feasible]), predicted_invocations
            )
            instances_a = -(-predicted_invocations // batches)
            billed = inter_arrival + (
                np.array([profile.init_time(c) for c, _ in feasible])
                if self.include_init_cost
                else 0.0
            )
            costs = (
                instances_a * billed
            ) * np.array([c.unit_cost for c, _ in feasible])
            sel = int(np.lexsort((instances_a, costs))[0])
            config = feasible[sel][0]
            batch = int(batches[sel])
            return ScalingDecision(
                function=function,
                config=config,
                batch=batch,
                instances=int(instances_a[sel]),
                inference_time=profile.inference_time(config, batch),
                cost=float(costs[sel]),
                feasible=True,
            )
        # No configuration meets the budget even at batch 1: scale out on the
        # fastest configuration (§V-B2 "even higher-end hardware fails").
        fastest = min(
            (c for c in self.space if profile.supports(c.backend)),
            key=lambda c: profile.inference_time(c, 1),
        )
        return ScalingDecision(
            function=function,
            config=fastest,
            batch=1,
            instances=predicted_invocations,
            inference_time=profile.inference_time(fastest, 1),
            cost=predicted_invocations * inter_arrival * fastest.unit_cost,
            feasible=False,
        )

    def plan_all(
        self,
        profiles: Mapping[str, FunctionProfile],
        budgets: Mapping[str, float],
        predicted_invocations: int,
        inter_arrival: float,
    ) -> dict[str, ScalingDecision]:
        """Scaling decisions for every function (threads in the paper)."""
        return {
            fn: self.plan(fn, profiles[fn], predicted_invocations, inter_arrival, budgets[fn])
            for fn in profiles
        }

"""Workflow Manager: DAG decomposition and strategy combining (paper §V-C2).

Complex applications contain parallel branches; the Workflow Manager

1. decomposes the DAG into its source→sink *simple paths* (chains of
   sequential dependencies),
2. hands each chain to the Strategy Optimizer (in parallel on the real
   system; sequentially here — the algorithm is identical),
3. **combines** the per-path results: for functions shared by several paths
   (forks/joins of the minimal parallel substructures), it keeps the
   configuration with the shortest inference time among the per-path
   answers — so every path's latency can only decrease and stays within the
   SLA — and then
4. runs a greedy *cost-reduction pass*: functions are repeatedly downgraded
   to cheaper configurations whenever the whole-DAG critical-path latency
   still meets the SLA, recovering the cost the conservative merge left on
   the table.

Step 4 realizes the paper's "updates the configurations of other functions
along these parallel branches" refinement in a DAG-global way; see DESIGN.md
for the mapping.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Mapping

from repro.core.path_search import PathSearchOptimizer, build_candidates
from repro.core.prewarming import FunctionPlan, PlanEvaluation, evaluate_assignment
from repro.dag.graph import AppDAG
from repro.hardware.configs import ConfigurationSpace, HardwareConfig
from repro.profiler.profiles import FunctionProfile


@dataclass(frozen=True)
class ExecutionStrategy:
    """The Optimizer Engine's output: per-function plans plus totals."""

    app: str
    assignment: dict[str, HardwareConfig]
    plans: Mapping[str, FunctionPlan]
    latency: float
    cost: float
    sla: float
    inter_arrival: float
    feasible: bool

    def plan(self, function: str) -> FunctionPlan:
        """Per-function plan lookup."""
        return self.plans[function]

    @functools.cached_property
    def max_stage_inference(self) -> float:
        """Slowest stage's inference time — the drain-rate bottleneck.

        Cached: strategies are immutable, and the scaling check consults
        this bound every control window.
        """
        return max(p.inference_time for p in self.plans.values())


class WorkflowManager:
    """Optimizes a whole application by path decomposition and combining."""

    def __init__(
        self,
        space: ConfigurationSpace,
        optimizer: PathSearchOptimizer | None = None,
    ) -> None:
        self.space = space
        self.optimizer = optimizer or PathSearchOptimizer(space)

    def optimize(
        self,
        app: AppDAG,
        profiles: Mapping[str, FunctionProfile],
        inter_arrival: float,
        *,
        sla: float | None = None,
        batch: int = 1,
    ) -> ExecutionStrategy:
        """Produce the execution strategy for ``app`` at the predicted IT."""
        target_sla = app.sla if sla is None else sla
        # The downgrade/rebalance passes below re-evaluate the same
        # assignments many times (~85% duplicates on the Fig. 7 DAGs);
        # evaluate_assignment is pure given (assignment, it, sla, batch),
        # all fixed within this call, so memoize on the config tuple.
        eval_memo: dict[tuple[HardwareConfig, ...], PlanEvaluation] = {}

        def evaluate(a: dict[str, HardwareConfig]) -> PlanEvaluation:
            key = tuple(a[fn] for fn in app.function_names)
            ev = eval_memo.get(key)
            if ev is None:
                ev = evaluate_assignment(
                    app, a, profiles, inter_arrival, sla=target_sla, batch=batch
                )
                eval_memo[key] = ev
            return ev

        paths = app.simple_paths()
        per_path = [
            self.optimizer.optimize_path(
                path, profiles, inter_arrival, target_sla, batch
            )
            for path in paths
        ]

        # Combine: shared functions take the fastest per-path choice so no
        # path's latency can increase past its own optimized value.
        assignment: dict[str, HardwareConfig] = {}
        for path, result in zip(paths, per_path):
            for fn in path:
                new_cfg = result.assignment[fn]
                if fn not in assignment:
                    assignment[fn] = new_cfg
                else:
                    cur_i = profiles[fn].inference_time(assignment[fn], batch)
                    new_i = profiles[fn].inference_time(new_cfg, batch)
                    if new_i < cur_i:
                        assignment[fn] = new_cfg

        assignment = self._reduce_cost(
            app, assignment, profiles, inter_arrival, target_sla, batch, evaluate
        )
        assignment = self._rebalance(
            app, assignment, profiles, inter_arrival, target_sla, batch, evaluate
        )
        return self._strategy(app, assignment, evaluate(assignment), inter_arrival)

    def _reduce_cost(
        self,
        app: AppDAG,
        assignment: dict[str, HardwareConfig],
        profiles: Mapping[str, FunctionProfile],
        inter_arrival: float,
        sla: float,
        batch: int,
        evaluate,
    ) -> dict[str, HardwareConfig]:
        """Greedy downgrade pass: cheapest feasible config per function.

        Iterates over functions (most expensive first), re-checking the
        whole-DAG latency for each cheaper candidate; repeats until no
        single-function downgrade helps.  ``evaluate`` is the caller's
        (memoized) assignment evaluator.
        """
        cands = build_candidates(
            app.function_names, profiles, self.space, inter_arrival, batch
        )
        current = dict(assignment)
        improved = True
        while improved:
            improved = False
            ev = evaluate(current)
            if not ev.feasible:
                break  # nothing to reclaim; keep the fastest combination
            order = sorted(
                app.function_names, key=lambda f: -ev.plans[f].cost
            )
            for fn in order:
                cur_cost = ev.plans[fn].cost
                for cand in cands[fn]:  # cost ascending
                    if cand.cost >= cur_cost or cand.config == current[fn]:
                        continue
                    trial = {**current, fn: cand.config}
                    trial_ev = evaluate(trial)
                    if trial_ev.feasible:
                        current = trial
                        improved = True
                        break
                if improved:
                    break
        return current

    def _rebalance(
        self,
        app: AppDAG,
        assignment: dict[str, HardwareConfig],
        profiles: Mapping[str, FunctionProfile],
        inter_arrival: float,
        sla: float,
        batch: int,
        evaluate,
        max_rounds: int = 8,
    ) -> dict[str, HardwareConfig]:
        """Pairwise upgrade/downgrade moves to escape greedy imbalance.

        The per-path greedy finalizes functions in path order, which can
        leave an early function on slow/cheap hardware while a later one
        pays for very fast hardware.  Each round tries to *upgrade* one
        function (buying latency slack) and re-runs the downgrade pass;
        the move is kept only if the total cost drops.  This realizes the
        Workflow Manager's "combine ... to minimize the overall cost".
        """
        cands = build_candidates(
            app.function_names, profiles, self.space, inter_arrival, batch
        )
        current = assignment

        def total_cost(a: dict[str, HardwareConfig]) -> float:
            return evaluate(a).cost

        cur_cost = total_cost(current)
        for _ in range(max_rounds):
            best_move: tuple[float, dict[str, HardwareConfig]] | None = None
            for fn in app.function_names:
                cur_i = profiles[fn].inference_time(current[fn], batch)
                for cand in cands[fn]:
                    if cand.inference_time >= cur_i:
                        continue  # only upgrades create slack
                    trial = self._reduce_cost(
                        app,
                        {**current, fn: cand.config},
                        profiles,
                        inter_arrival,
                        sla,
                        batch,
                        evaluate,
                    )
                    c = total_cost(trial)
                    if c < cur_cost - 1e-12 and (
                        best_move is None or c < best_move[0]
                    ):
                        best_move = (c, trial)
            if best_move is None:
                break
            cur_cost, current = best_move
        return current

    @staticmethod
    def _strategy(
        app: AppDAG,
        assignment: dict[str, HardwareConfig],
        evaluation: PlanEvaluation,
        inter_arrival: float,
    ) -> ExecutionStrategy:
        return ExecutionStrategy(
            app=app.name,
            assignment=assignment,
            plans=evaluation.plans,
            latency=evaluation.latency,
            cost=evaluation.cost,
            sla=evaluation.sla,
            inter_arrival=inter_arrival,
            feasible=evaluation.feasible,
        )

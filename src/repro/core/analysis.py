"""Analytical views of the adaptive cold-start trade-off (Fig. 5 reasoning).

Helpers that tabulate the cost law of §V-B as a function of the
inter-arrival time, configuration, or SLA — the curves the paper reasons
about when motivating adaptive management:

- :func:`cost_vs_inter_arrival` — per-invocation cost of one (function,
  config) pair across IT values, with the pre-warm/keep-alive boundary;
- :func:`regime_boundary` — the IT at which the adaptive policy switches;
- :func:`config_frontier` — per-configuration (inference time, adaptive
  cost) points: the Pareto frontier the path search walks;
- :func:`sla_cost_curve` — the application's planned cost across SLAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.prewarming import ColdStartPolicy, cost_per_invocation, policy_for
from repro.core.workflow import WorkflowManager
from repro.dag.graph import AppDAG
from repro.hardware.configs import ConfigurationSpace, HardwareConfig
from repro.profiler.profiles import FunctionProfile
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CostPoint:
    """One point of a cost-vs-IT curve."""

    inter_arrival: float
    cost: float
    policy: ColdStartPolicy


def regime_boundary(
    profile: FunctionProfile, config: HardwareConfig, batch: int = 1
) -> float:
    """The IT below which keep-alive is chosen: ``T + I`` (§V-B1)."""
    return profile.init_time(config) + profile.inference_time(config, batch)


def cost_vs_inter_arrival(
    profile: FunctionProfile,
    config: HardwareConfig,
    inter_arrivals: list[float],
    batch: int = 1,
) -> list[CostPoint]:
    """Per-invocation adaptive cost across inter-arrival times."""
    if not inter_arrivals:
        raise ValueError("inter_arrivals must not be empty")
    t = profile.init_time(config)
    i = profile.inference_time(config, batch)
    points = []
    for it in inter_arrivals:
        check_positive("inter_arrival", it)
        points.append(
            CostPoint(
                inter_arrival=it,
                cost=cost_per_invocation(t, i, it, config.unit_cost),
                policy=policy_for(t, i, it),
            )
        )
    return points


@dataclass(frozen=True)
class FrontierPoint:
    """One configuration's (latency, cost) trade-off point."""

    config: HardwareConfig
    inference_time: float
    cost: float
    dominated: bool


def config_frontier(
    profile: FunctionProfile,
    space: ConfigurationSpace,
    inter_arrival: float,
    batch: int = 1,
) -> list[FrontierPoint]:
    """All configurations as (inference time, adaptive cost) points.

    A point is *dominated* when another configuration is at least as fast
    and cheaper — the path search never needs dominated points, which is
    why its cost-ordered scan terminates quickly.
    """
    check_positive("inter_arrival", inter_arrival)
    raw = []
    for config in space:
        if not profile.supports(config.backend):
            continue
        t = profile.init_time(config)
        i = profile.inference_time(config, batch)
        raw.append((config, i, cost_per_invocation(t, i, inter_arrival, config.unit_cost)))
    points = []
    for config, i, c in raw:
        dominated = any(
            (oi <= i and oc < c) or (oi < i and oc <= c)
            for _, oi, oc in raw
        )
        points.append(
            FrontierPoint(config=config, inference_time=i, cost=c, dominated=dominated)
        )
    points.sort(key=lambda p: p.inference_time)
    return points


def sla_cost_curve(
    app: AppDAG,
    profiles: Mapping[str, FunctionProfile],
    inter_arrival: float,
    slas: list[float],
    *,
    space: ConfigurationSpace | None = None,
) -> list[tuple[float, float, bool]]:
    """(sla, planned cost, feasible) rows across SLA targets (Fig. 10a)."""
    if not slas:
        raise ValueError("slas must not be empty")
    manager = WorkflowManager(space or ConfigurationSpace.default())
    out = []
    for sla in slas:
        check_positive("sla", sla)
        strategy = manager.optimize(app, profiles, inter_arrival, sla=sla)
        out.append((sla, strategy.cost, strategy.feasible))
    return out

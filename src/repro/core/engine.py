"""Optimizer Engine facade (paper §III-B, modules 4–6).

Ties the Workflow Manager, Strategy Optimizer and Auto-scaler into the
per-window control loop the SMIless policy runs inside the simulator:

1. on (re-)optimization, compute the :class:`ExecutionStrategy` for the
   application at the predicted inter-arrival time;
2. each window, if the predicted invocation count exceeds what single
   instances can absorb within their per-stage budget, compute batching and
   scale-out decisions for every function.

The per-stage budget handed to the Auto-scaler is the inference time the
Strategy Optimizer planned for that function (``I_s`` in §V-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.autoscaler import AutoScaler, ScalingDecision
from repro.core.path_search import PathSearchOptimizer
from repro.core.workflow import ExecutionStrategy, WorkflowManager
from repro.dag.graph import AppDAG
from repro.hardware.configs import ConfigurationSpace
from repro.profiler.profiles import FunctionProfile


@dataclass
class OptimizerEngine:
    """End-to-end optimizer: strategy generation plus window-level scaling."""

    space: ConfigurationSpace
    top_k: int = 1
    max_batch: int = 32
    workflow: WorkflowManager = field(init=False)
    autoscaler: AutoScaler = field(init=False)

    def __post_init__(self) -> None:
        optimizer = PathSearchOptimizer(self.space, top_k=self.top_k)
        self.workflow = WorkflowManager(self.space, optimizer)
        self.autoscaler = AutoScaler(self.space, max_batch=self.max_batch)

    def strategy(
        self,
        app: AppDAG,
        profiles: Mapping[str, FunctionProfile],
        inter_arrival: float,
        *,
        sla: float | None = None,
    ) -> ExecutionStrategy:
        """Compute the execution strategy (configs + cold-start policies)."""
        return self.workflow.optimize(app, profiles, inter_arrival, sla=sla)

    def scale(
        self,
        app: AppDAG,
        profiles: Mapping[str, FunctionProfile],
        strategy: ExecutionStrategy,
        predicted_invocations: int,
        inter_arrival: float,
        budgets: Mapping[str, float] | None = None,
        max_init_time: float | None = None,
    ) -> dict[str, ScalingDecision]:
        """Window-level batching/scale-out for a predicted burst of ``G``.

        Default budgets are the per-function inference times of the current
        strategy, so batched execution never stretches any stage beyond
        what the SLA plan allocated to it; callers may pass re-balanced
        burst budgets (§V-B2 "scales up to higher-end configurations").
        """
        if predicted_invocations < 1:
            raise ValueError("predicted_invocations must be >= 1")
        if budgets is None:
            budgets = {
                fn: strategy.plan(fn).inference_time
                for fn in app.function_names
            }
        return {
            fn: self.autoscaler.plan(
                fn,
                profiles[fn],
                predicted_invocations,
                inter_arrival,
                budgets[fn],
                max_init_time=max_init_time,
            )
            for fn in app.function_names
        }

    def needs_scaling(
        self,
        strategy: ExecutionStrategy,
        predicted_invocations: int,
        window: float = 1.0,
    ) -> bool:
        """Whether the window's load exceeds single sequential instances.

        Scaling is needed when the predicted invocations of one control
        window arrive faster than the slowest stage can drain them one at a
        time (Fig. 5c regime).
        """
        if predicted_invocations <= 1:
            return False
        return predicted_invocations * strategy.max_stage_inference > window

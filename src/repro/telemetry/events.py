"""Typed simulation events: the primary observability artifact.

Every observable thing the simulator does — an invocation arriving, a
stage dispatching onto an instance, a container launching or expiring, a
policy changing a standing directive — is one immutable event in this
taxonomy.  Metrics (:mod:`repro.telemetry.aggregate`), trace exports
(:mod:`repro.telemetry.chrome`) and decision audits
(:mod:`repro.telemetry.audit`) are all *derived views* over the event
stream; nothing downstream needs hooks in the simulator hot loop.

Events are flat frozen dataclasses with JSON-scalar fields only, so a
trace round-trips losslessly through JSONL: ``to_dict`` / ``from_dict``
use the class registry keyed by each event's ``type`` tag, and
:func:`validate_event` checks a decoded dict against the field schema
(:data:`EVENT_SCHEMA`) without instantiating it.

Common fields: ``t`` is simulation time in seconds, ``app`` the owning
application's name.  Hardware configurations travel as their stable
string ``key`` (``"cpu-4"``, ``"gpu-30"``); use
:meth:`repro.hardware.configs.HardwareConfig.from_key` to rehydrate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Mapping

__all__ = [
    "SimEvent",
    "RunStarted",
    "RunFinished",
    "Arrival",
    "StageReady",
    "StageStart",
    "StageFinish",
    "ColdStart",
    "InvocationFinished",
    "SlaViolation",
    "InstanceLaunched",
    "InstanceInitFailed",
    "InstanceExpired",
    "InstanceSwappedIn",
    "ModelEvicted",
    "TokenStage",
    "DirectiveChanged",
    "PrewarmScheduled",
    "PrewarmHit",
    "PrewarmMiss",
    "WindowTick",
    "MachineDown",
    "MachineUp",
    "ExecutionFailed",
    "StageRetried",
    "InvocationTimedOut",
    "FallbackActivated",
    "InvocationShed",
    "InvocationRejected",
    "CLUSTER_SCOPE",
    "EVENT_TYPES",
    "EVENT_SCHEMA",
    "to_dict",
    "from_dict",
    "validate_event",
]

#: ``app`` value of cluster-scoped events (machine outages affect every
#: tenant at once, so they belong to no single application's stream).
CLUSTER_SCOPE = "__cluster__"

#: ``type`` tag -> event class, populated by ``SimEvent.__init_subclass__``.
EVENT_TYPES: dict[str, type["SimEvent"]] = {}


@dataclass(frozen=True)
class SimEvent:
    """Base of all simulation events (time + owning application)."""

    #: JSON ``type`` tag; every concrete subclass overrides this.
    type: ClassVar[str] = ""

    t: float
    app: str

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        tag = cls.__dict__.get("type", "")
        if not tag:
            raise TypeError(f"{cls.__name__} must define a `type` tag")
        if tag in EVENT_TYPES:
            raise TypeError(f"duplicate event type tag {tag!r}")
        EVENT_TYPES[tag] = cls


# --------------------------------------------------------------------- run
@dataclass(frozen=True)
class RunStarted(SimEvent):
    """One gateway began serving its trace (carries the run's identity)."""

    type: ClassVar[str] = "run_started"

    policy: str
    sla: float
    window: float
    functions: tuple[str, ...]


@dataclass(frozen=True)
class RunFinished(SimEvent):
    """The gateway finalized: fleet torn down, metrics sealed.

    ``completed`` is the exact completed-invocation count.
    ``latency_sketch`` is non-empty only for ``retention="sketch"`` runs:
    the flat ``(mean, count, ...)`` centroid snapshot of the streaming
    latency sketch (see
    :meth:`repro.metrics.sketch.QuantileSketch.to_flat`), letting trace
    consumers answer quantile queries for runs whose per-invocation
    events were the only other record of the distribution.
    """

    type: ClassVar[str] = "run_finished"

    duration: float
    unfinished: int
    completed: int = 0
    latency_sketch: tuple[float, ...] = ()


# --------------------------------------------------------------- invocations
@dataclass(frozen=True)
class Arrival(SimEvent):
    """A user request reached the gateway."""

    type: ClassVar[str] = "arrival"

    invocation_id: int


@dataclass(frozen=True)
class StageReady(SimEvent):
    """All DAG predecessors of one stage finished; it is now queued."""

    type: ClassVar[str] = "stage_ready"

    invocation_id: int
    function: str


@dataclass(frozen=True)
class StageStart(SimEvent):
    """One stage of one invocation began executing on an instance."""

    type: ClassVar[str] = "stage_start"

    invocation_id: int
    function: str
    instance_id: int
    batch: int
    cold: bool


@dataclass(frozen=True)
class StageFinish(SimEvent):
    """One stage of one invocation finished executing."""

    type: ClassVar[str] = "stage_finish"

    invocation_id: int
    function: str
    instance_id: int


@dataclass(frozen=True)
class ColdStart(SimEvent):
    """A stage was served by an instance that was not warm when it became
    ready — the Fig. 9b (re)initialization measure."""

    type: ClassVar[str] = "cold_start"

    invocation_id: int
    function: str
    instance_id: int
    wait: float


@dataclass(frozen=True)
class InvocationFinished(SimEvent):
    """Every sink stage of one invocation completed."""

    type: ClassVar[str] = "invocation_finished"

    invocation_id: int
    latency: float


@dataclass(frozen=True)
class SlaViolation(SimEvent):
    """An invocation completed past the application's SLA."""

    type: ClassVar[str] = "sla_violation"

    invocation_id: int
    latency: float
    sla: float


# ----------------------------------------------------------------- instances
@dataclass(frozen=True)
class InstanceLaunched(SimEvent):
    """A container started initializing (resources allocated, billed)."""

    type: ClassVar[str] = "instance_launched"

    function: str
    instance_id: int
    config: str
    init_duration: float
    prewarm: bool


@dataclass(frozen=True)
class InstanceInitFailed(SimEvent):
    """Initialization failed; the container is torn down and replaced."""

    type: ClassVar[str] = "instance_init_failed"

    function: str
    instance_id: int


@dataclass(frozen=True)
class InstanceExpired(SimEvent):
    """A container terminated; carries its final billing snapshot."""

    type: ClassVar[str] = "instance_expired"

    function: str
    instance_id: int
    config: str
    reason: str
    lifetime: float
    init_seconds: float
    busy_seconds: float
    idle_seconds: float
    cost: float
    batches_served: int
    invocations_served: int


# ------------------------------------------------------------------ decisions
@dataclass(frozen=True)
class DirectiveChanged(SimEvent):
    """The policy replaced a function's standing directive.

    ``reason`` is the policy's own explanation for the change — the
    decision-audit view (:mod:`repro.telemetry.audit`) is built from it.
    """

    type: ClassVar[str] = "directive_changed"

    function: str
    config: str
    keep_alive: float
    batch: int
    min_warm: int
    warm_grace: float
    reason: str


@dataclass(frozen=True)
class PrewarmScheduled(SimEvent):
    """The policy asked for instances to be warming from ``fire_at``."""

    type: ClassVar[str] = "prewarm_scheduled"

    function: str
    fire_at: float
    count: int
    config: str


@dataclass(frozen=True)
class PrewarmHit(SimEvent):
    """A pre-warmed instance served its first batch (overlap succeeded)."""

    type: ClassVar[str] = "prewarm_hit"

    function: str
    instance_id: int
    idle_wait: float


@dataclass(frozen=True)
class PrewarmMiss(SimEvent):
    """A pre-warmed instance expired without ever serving a batch."""

    type: ClassVar[str] = "prewarm_miss"

    function: str
    instance_id: int
    idle_seconds: float


# -------------------------------------------------------------------- faults
@dataclass(frozen=True)
class MachineDown(SimEvent):
    """A cluster machine crashed: capacity removed, live instances evicted.

    Cluster-scoped (``app`` is :data:`CLUSTER_SCOPE`): the outage hits
    every tenant; per-app consequences surface as ``instance_expired``
    events with the ``machine-failed`` reason.
    """

    type: ClassVar[str] = "machine_down"

    machine: int


@dataclass(frozen=True)
class MachineUp(SimEvent):
    """A crashed machine recovered; its capacity is allocatable again.

    Cluster-scoped (``app`` is :data:`CLUSTER_SCOPE`).
    """

    type: ClassVar[str] = "machine_up"

    machine: int


@dataclass(frozen=True)
class ExecutionFailed(SimEvent):
    """A running batch failed mid-flight; the instance crashed and its
    stages were handed to the retry machinery."""

    type: ClassVar[str] = "execution_failed"

    function: str
    instance_id: int
    batch: int


@dataclass(frozen=True)
class StageRetried(SimEvent):
    """One stage of one invocation was requeued after a fault.

    ``attempt`` is the invocation's retry count so far (1 = first retry);
    ``delay`` the exponential-backoff wait before it re-enters the queue.
    """

    type: ClassVar[str] = "stage_retried"

    invocation_id: int
    function: str
    attempt: int
    delay: float


@dataclass(frozen=True)
class InvocationTimedOut(SimEvent):
    """An invocation was abandoned — deadline passed or retry budget
    exhausted — and counted ``timed_out`` instead of occupying capacity."""

    type: ClassVar[str] = "invocation_timed_out"

    invocation_id: int
    reason: str
    age: float


@dataclass(frozen=True)
class FallbackActivated(SimEvent):
    """Graceful degradation: the gateway swapped a function's launch
    configuration (GPU starvation or a capped crash-loop)."""

    type: ClassVar[str] = "fallback_activated"

    function: str
    from_config: str
    to_config: str
    reason: str


# ------------------------------------------------------------------ overload
@dataclass(frozen=True)
class InvocationShed(SimEvent):
    """A bounded queue overflowed and the shedding policy dropped this
    invocation (see :mod:`repro.overload`).  ``reason`` names the policy
    that chose the victim (``reject-newest`` / ``drop-oldest`` /
    ``deadline-aware``) or ``circuit-open`` when a breaker refused the
    stage.  Counted ``shed`` — disjoint from ``completed`` /
    ``unfinished`` / ``timed_out``."""

    type: ClassVar[str] = "invocation_shed"

    invocation_id: int
    function: str
    reason: str
    age: float


@dataclass(frozen=True)
class InvocationRejected(SimEvent):
    """Token-bucket admission control turned an arrival away at the
    gateway front door (the future HTTP 429).  The invocation never
    entered the system: no ``arrival`` event, no queue or demand entry —
    only the ``rejected`` counter."""

    type: ClassVar[str] = "invocation_rejected"

    invocation_id: int


# ------------------------------------------------------- swap / token regimes
@dataclass(frozen=True)
class InstanceSwappedIn(SimEvent):
    """A GPU container initialized by paging a host-resident model onto the
    device (swap-in, ≪ cold start) instead of a full cold initialization.

    Always follows the launch's ``instance_launched`` event, whose
    ``init_duration`` equals ``swap_duration`` here.
    """

    type: ClassVar[str] = "instance_swapped_in"

    function: str
    instance_id: int
    config: str
    swap_duration: float


@dataclass(frozen=True)
class ModelEvicted(SimEvent):
    """A model's weights left the bounded host-memory residency cache (LRU
    pressure from another admission); its next GPU launch is a full cold
    start again.  ``app`` is the *evicted* model's application — under
    multi-tenant runs one tenant's working set can evict another's."""

    type: ClassVar[str] = "model_evicted"

    function: str


@dataclass(frozen=True)
class TokenStage(SimEvent):
    """Token accounting of one stage execution under a token-work service
    model: the invocation's sampled token counts and the prefill/decode
    split of the batch's wall-clock execution time (the two phases sum to
    the sampled service time, fixed overhead apportioned pro rata)."""

    type: ClassVar[str] = "token_stage"

    invocation_id: int
    function: str
    tokens_in: int
    tokens_out: int
    prefill: float
    decode: float


# -------------------------------------------------------------------- windows
@dataclass(frozen=True)
class WindowTick(SimEvent):
    """One control window closed (arrival count + fleet size samples)."""

    type: ClassVar[str] = "window_tick"

    window_index: int
    arrivals: int
    cpu_pods: int
    gpu_pods: int


# ----------------------------------------------------------------- (de)coding
def _allowed_json_types(annotation: str) -> tuple[type, ...]:
    """Accepted JSON-decoded types for one dataclass field annotation."""
    return {
        "float": (int, float),  # JSON renders 2.0 and 2 interchangeably
        "int": (int,),
        "bool": (bool,),
        "str": (str,),
    }.get(annotation, (list, tuple))


#: ``type`` tag -> {field name -> allowed python types} for validation.
EVENT_SCHEMA: dict[str, dict[str, tuple[type, ...]]] = {
    tag: {f.name: _allowed_json_types(str(f.type)) for f in fields(cls)}
    for tag, cls in EVENT_TYPES.items()
}

#: ``type`` tag -> names of tuple-annotated fields (JSON lists round-trip
#: back to tuples so decoded events compare equal to the originals).
_TUPLE_FIELDS: dict[str, tuple[str, ...]] = {
    tag: tuple(
        f.name for f in fields(cls) if str(f.type).startswith("tuple")
    )
    for tag, cls in EVENT_TYPES.items()
}


def to_dict(event: SimEvent) -> dict[str, Any]:
    """Flat JSON-ready dict with the event's ``type`` tag first."""
    d: dict[str, Any] = {"type": event.type}
    d.update(dataclasses.asdict(event))
    for name in _TUPLE_FIELDS[event.type]:
        d[name] = list(d[name])
    return d


def from_dict(data: Mapping[str, Any]) -> SimEvent:
    """Rebuild the typed event a :func:`to_dict` dict came from."""
    payload = dict(data)
    tag = payload.pop("type", None)
    if tag not in EVENT_TYPES:
        raise ValueError(f"unknown event type {tag!r}")
    cls = EVENT_TYPES[tag]
    for name in _TUPLE_FIELDS[tag]:
        if name in payload:
            payload[name] = tuple(payload[name])
    return cls(**payload)


def validate_event(data: Mapping[str, Any]) -> list[str]:
    """Schema-check one decoded event dict; returns problems (empty = ok).

    Checks the ``type`` tag, the exact field set, and each field's JSON
    type — without instantiating the event class, so a trace file can be
    validated independently of simulator state.
    """
    problems: list[str] = []
    tag = data.get("type")
    if tag not in EVENT_SCHEMA:
        return [f"unknown event type {tag!r}"]
    schema = EVENT_SCHEMA[tag]
    got = set(data) - {"type"}
    missing = set(schema) - got
    extra = got - set(schema)
    if missing:
        problems.append(f"{tag}: missing fields {sorted(missing)}")
    if extra:
        problems.append(f"{tag}: unexpected fields {sorted(extra)}")
    for name, allowed in schema.items():
        if name not in data:
            continue
        value = data[name]
        # bool is an int subclass; keep int fields from accepting bools.
        if isinstance(value, bool) and bool not in allowed:
            problems.append(f"{tag}.{name}: bool not allowed")
        elif not isinstance(value, allowed):
            problems.append(
                f"{tag}.{name}: {type(value).__name__} not in "
                f"{sorted(t.__name__ for t in allowed)}"
            )
    return problems

"""Rebuild :class:`~repro.simulator.metrics.RunMetrics` from an event trace.

The inversion at the heart of the telemetry plane: the event stream is the
primary artifact and every counter the evaluation figures consume is a
*derived view* over it.  ``aggregate(events)`` folds one application's
events back into a ``RunMetrics`` whose counters equal the ones the live
gateway accumulated — exactly, not approximately — which
``tests/test_trace_reconstruction.py`` property-tests across (app, policy)
pairs and the ``repro trace`` command re-checks on every trace it writes.

Event-to-counter mapping:

====================  ====================================================
``run_started``       app / policy / SLA identity
``arrival``           one ``Invocation`` (arrival order preserved)
``stage_ready``       ``StageRecord.ready_at``
``stage_start``       ``started_at``/``instance_id``/``batch``/``cold``;
                      ``stage_executions`` and ``cold_stage_executions``
``stage_finish``      ``StageRecord.finished_at``
``invocation_finished``  ``Invocation.completed_at``
``instance_launched`` ``initializations``
``instance_init_failed``  ``failed_initializations``
``instance_swapped_in``  ``swap_ins``
``instance_expired``  one ``InstanceUsage`` billing row
``window_tick``       ``arrival_samples`` and ``pod_samples``
``run_finished``      ``duration`` and the ``unfinished`` count
``execution_failed``  ``failed_executions``
``stage_retried``     ``stage_retries`` (and ``Invocation.retries``)
``invocation_timed_out``  ``timed_out``
``fallback_activated``  ``fallbacks``
``invocation_shed``   ``shed``
``invocation_rejected``  ``rejected``
====================  ====================================================

Cluster-scoped events (``machine_down`` / ``machine_up``, whose ``app``
is :data:`~repro.telemetry.events.CLUSTER_SCOPE`) belong to no tenant:
they are excluded from single-app inference and from
:func:`aggregate_all`'s per-app fan-out; their per-app consequences are
already carried by ``instance_expired`` events with the
``machine-failed`` reason.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.hardware.configs import HardwareConfig
from repro.simulator.invocation import Invocation
from repro.simulator.metrics import InstanceUsage, RunMetrics
from repro.telemetry.events import (
    CLUSTER_SCOPE,
    Arrival,
    ExecutionFailed,
    FallbackActivated,
    InstanceExpired,
    InstanceInitFailed,
    InstanceLaunched,
    InstanceSwappedIn,
    InvocationFinished,
    InvocationRejected,
    InvocationShed,
    InvocationTimedOut,
    RunFinished,
    RunStarted,
    SimEvent,
    StageFinish,
    StageReady,
    StageRetried,
    StageStart,
    WindowTick,
)

__all__ = ["aggregate", "aggregate_all"]


def aggregate(events: Iterable[SimEvent], app: str | None = None) -> RunMetrics:
    """Fold one application's events into a reconstructed ``RunMetrics``.

    ``events`` may hold several applications' interleaved streams (a
    multi-tenant trace); pass ``app`` to select one.  With a single-app
    trace the selector may be omitted.  Raises ``ValueError`` when the
    trace has no ``run_started`` for the selected app.
    """
    events = list(events)
    if app is None:
        apps = tuple(
            dict.fromkeys(e.app for e in events if e.app != CLUSTER_SCOPE)
        )
        if len(apps) != 1:
            raise ValueError(
                f"trace holds {len(apps)} applications {list(apps)}; "
                "pass app= to select one"
            )
        app = apps[0]
    stream: Sequence[SimEvent] = [e for e in events if e.app == app]

    started = next((e for e in stream if isinstance(e, RunStarted)), None)
    if started is None:
        raise ValueError(f"trace has no run_started event for app {app!r}")

    metrics = RunMetrics(app=app, policy=started.policy, sla=started.sla)
    invocations: dict[int, Invocation] = {}

    for event in stream:
        if isinstance(event, Arrival):
            inv = Invocation(
                app=app, arrival=event.t, invocation_id=event.invocation_id
            )
            invocations[event.invocation_id] = inv
            metrics.invocations.append(inv)
        elif isinstance(event, StageReady):
            invocations[event.invocation_id].stage(event.function).ready_at = (
                event.t
            )
        elif isinstance(event, StageStart):
            rec = invocations[event.invocation_id].stage(event.function)
            rec.started_at = event.t
            rec.instance_id = event.instance_id
            rec.batch = event.batch
            rec.cold_start = event.cold
            metrics.stage_executions += 1
            if event.cold:
                metrics.cold_stage_executions += 1
        elif isinstance(event, StageFinish):
            invocations[event.invocation_id].stage(
                event.function
            ).finished_at = event.t
        elif isinstance(event, InvocationFinished):
            invocations[event.invocation_id].completed_at = event.t
        elif isinstance(event, InstanceLaunched):
            metrics.initializations += 1
        elif isinstance(event, InstanceInitFailed):
            metrics.failed_initializations += 1
        elif isinstance(event, InstanceSwappedIn):
            metrics.swap_ins += 1
        elif isinstance(event, ExecutionFailed):
            metrics.failed_executions += 1
        elif isinstance(event, StageRetried):
            metrics.stage_retries += 1
            invocations[event.invocation_id].retries = event.attempt
        elif isinstance(event, InvocationTimedOut):
            metrics.timed_out += 1
            invocations[event.invocation_id].abandoned_at = event.t
        elif isinstance(event, InvocationShed):
            metrics.shed += 1
            invocations[event.invocation_id].abandoned_at = event.t
        elif isinstance(event, InvocationRejected):
            # Rejected arrivals never entered the system: no `arrival`
            # event precedes this one, so only the counter moves.
            metrics.rejected += 1
        elif isinstance(event, FallbackActivated):
            metrics.fallbacks += 1
        elif isinstance(event, InstanceExpired):
            metrics.instances.append(
                InstanceUsage(
                    function=event.function,
                    config=HardwareConfig.from_key(event.config),
                    lifetime=event.lifetime,
                    init_seconds=event.init_seconds,
                    busy_seconds=event.busy_seconds,
                    idle_seconds=event.idle_seconds,
                    cost=event.cost,
                    batches_served=event.batches_served,
                    invocations_served=event.invocations_served,
                )
            )
        elif isinstance(event, WindowTick):
            metrics.arrival_samples.append((event.t, event.arrivals))
            metrics.pod_samples.append(
                (event.t, event.cpu_pods, event.gpu_pods)
            )
        elif isinstance(event, RunFinished):
            metrics.duration = event.duration
            metrics.unfinished = event.unfinished

    # Mirror Gateway._finalize: latency stats cover finished invocations
    # only; in-flight ones survive solely as the `unfinished` counter.
    metrics.invocations = [inv for inv in metrics.invocations if inv.finished]
    return metrics


def aggregate_all(events: Iterable[SimEvent]) -> dict[str, RunMetrics]:
    """Reconstruct every application's metrics from a multi-tenant trace."""
    events = list(events)
    apps = tuple(
        dict.fromkeys(e.app for e in events if e.app != CLUSTER_SCOPE)
    )
    return {app: aggregate(events, app) for app in apps}

"""Recorder protocol: where the simulator's event stream goes.

The :class:`~repro.simulator.runtime.Runtime` owns exactly one recorder
and every gateway emits through it.  Two implementations:

- :class:`NullRecorder` — the default.  ``enabled`` is ``False``, so the
  gateway skips event *construction* entirely (one attribute check per
  emission point); simulated outcomes are bit-identical to a run with no
  telemetry plane at all, and the hot loop pays nothing.
- :class:`TraceRecorder` — appends every event to an in-memory list and
  can persist it as JSONL (one event dict per line), the interchange
  format ``repro trace`` writes, :func:`read_jsonl` loads, and CI
  validates against :data:`repro.telemetry.events.EVENT_SCHEMA`.

Recorders are deliberately dumb: no filtering, no aggregation.  Derived
views (metrics, Chrome traces, decision audits) consume the recorded
stream after the run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.telemetry.events import SimEvent, from_dict, to_dict

__all__ = [
    "Recorder",
    "NullRecorder",
    "TraceRecorder",
    "write_jsonl",
    "read_jsonl",
]


@runtime_checkable
class Recorder(Protocol):
    """Sink for simulation events.

    ``enabled`` lets emitters skip building event objects when nobody is
    listening — the pay-for-what-you-use contract.  ``emit`` must be safe
    to call from inside the event loop (no I/O on the hot path).
    """

    enabled: bool

    def emit(self, event: SimEvent) -> None:
        """Record one event."""
        ...  # pragma: no cover - protocol stub


class NullRecorder:
    """Zero-overhead default recorder: drops everything."""

    enabled = False

    def emit(self, event: SimEvent) -> None:  # pragma: no cover - never called
        """Discard the event (emitters skip calling this when disabled)."""


class TraceRecorder:
    """In-memory event recorder with JSONL persistence."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[SimEvent] = []

    def emit(self, event: SimEvent) -> None:
        """Append one event to the in-memory trace."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self.events)

    def events_for(self, app: str) -> list[SimEvent]:
        """This trace restricted to one application's events."""
        return [e for e in self.events if e.app == app]

    @property
    def apps(self) -> tuple[str, ...]:
        """Application names present in the trace, in first-seen order."""
        return tuple(dict.fromkeys(e.app for e in self.events))

    def write_jsonl(self, path: str | Path) -> int:
        """Persist the trace as JSONL; returns the number of events."""
        return write_jsonl(self.events, path)


def write_jsonl(events: Iterable[SimEvent], path: str | Path) -> int:
    """Write events to ``path``, one JSON object per line."""
    n = 0
    with Path(path).open("w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(to_dict(event), separators=(",", ":")))
            fh.write("\n")
            n += 1
    return n


def read_jsonl(path: str | Path) -> list[SimEvent]:
    """Load a JSONL trace back into typed events."""
    events: list[SimEvent] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(from_dict(json.loads(line)))
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: bad event line: {exc}") from exc
    return events

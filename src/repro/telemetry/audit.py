"""Decision audit: why did the policy pick that config / keep-alive?

Debugging an optimizer run used to mean print-statements in the policy's
``on_window``.  With the telemetry plane every directive change is a
:class:`~repro.telemetry.events.DirectiveChanged` event carrying the
policy's own ``reason`` string, so the full decision history of a run —
each CPU/GPU choice, each keep-alive regime flip, each burst scale-out —
is a filter over the trace.  :func:`decision_audit` returns the typed
rows; :func:`format_decision_audit` renders the table ``repro trace``
prints after every traced run.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.telemetry.events import (
    DirectiveChanged,
    ExecutionFailed,
    FallbackActivated,
    InstanceInitFailed,
    InvocationTimedOut,
    MachineDown,
    MachineUp,
    PrewarmHit,
    PrewarmMiss,
    PrewarmScheduled,
    SimEvent,
    StageRetried,
)

__all__ = [
    "decision_audit",
    "prewarm_audit",
    "fault_audit",
    "format_decision_audit",
    "request_audit",
    "format_request_audit",
]

_PREWARM_EVENTS = (PrewarmScheduled, PrewarmHit, PrewarmMiss)

_FAULT_EVENTS = (
    MachineDown,
    MachineUp,
    InstanceInitFailed,
    ExecutionFailed,
    StageRetried,
    InvocationTimedOut,
    FallbackActivated,
)


def decision_audit(events: Iterable[SimEvent]) -> list[DirectiveChanged]:
    """Every directive change of the trace, in simulation order."""
    return [e for e in events if isinstance(e, DirectiveChanged)]


def prewarm_audit(events: Iterable[SimEvent]) -> list[SimEvent]:
    """The pre-warm lifecycle — scheduled / hit / miss — in trace order."""
    return [e for e in events if isinstance(e, _PREWARM_EVENTS)]


def fault_audit(events: Iterable[SimEvent]) -> list[SimEvent]:
    """The fault-and-recovery story of a run, in trace order.

    Machine outages, failed initializations and executions, retries,
    abandoned invocations and graceful-degradation fallbacks — everything
    the resilience machinery did, as one filtered view.
    """
    return [e for e in events if isinstance(e, _FAULT_EVENTS)]


#: Field order of one request-audit row (the serving plane's
#: request-level audit vocabulary; see ``docs/serving.md``).
REQUEST_AUDIT_FIELDS = (
    "index",
    "app",
    "tenant",
    "invocation_id",
    "arrival",
    "resolved_at",
    "status",
    "latency",
)


def request_audit(records: Iterable[dict]) -> list[dict]:
    """Request-level audit rows from serving response records.

    Consumes the ``response`` records of a live request log (plain dicts,
    e.g. ``ParsedLog.responses`` — this module deliberately does not
    import :mod:`repro.serving`) and normalizes each to the
    :data:`REQUEST_AUDIT_FIELDS` vocabulary: one row per front-door
    request with its terminal disposition and end-to-end latency
    (``None`` for requests that never completed).
    """
    rows = []
    for record in records:
        row = {key: record.get(key) for key in REQUEST_AUDIT_FIELDS}
        if row["latency"] is None and record.get("completed_at") is not None:
            row["latency"] = record["completed_at"] - record["arrival"]
        rows.append(row)
    return rows


def format_request_audit(records: Iterable[dict]) -> str:
    """Plain-text table of every front-door request's disposition."""
    rows = request_audit(records)
    if not rows:
        return "(no requests recorded)"
    lines = [
        f"{'idx':>5} {'app':<16} {'inv':>6} {'arrival':>10} "
        f"{'status':<10} {'latency':>8}"
    ]
    for row in rows:
        latency = row["latency"]
        inv_id = row["invocation_id"]
        lines.append(
            f"{row['index']:>5} {row['app']:<16} "
            f"{'-' if inv_id is None else inv_id:>6} "
            f"{row['arrival']:>10.3f} {row['status']:<10} "
            + (f"{latency:>8.3f}" if latency is not None else f"{'-':>8}")
        )
    return "\n".join(lines)


def _fmt_keep_alive(value: float) -> str:
    return "inf" if math.isinf(value) else f"{value:g}s"


def format_decision_audit(events: Iterable[SimEvent]) -> str:
    """Plain-text audit table of every directive change with its reason."""
    rows = decision_audit(events)
    if not rows:
        return "(no directive changes recorded)"
    multi_app = len({e.app for e in rows}) > 1
    lines = [
        (f"{'t':>8} " + (f"{'app':<16} " if multi_app else ""))
        + f"{'function':<14} {'config':>7} {'keep':>5} {'batch':>5} "
        f"{'warm':>4}  reason"
    ]
    for e in rows:
        lines.append(
            (f"{e.t:>7.1f}s " + (f"{e.app:<16} " if multi_app else ""))
            + f"{e.function:<14} {e.config:>7} "
            f"{_fmt_keep_alive(e.keep_alive):>5} {e.batch:>5} "
            f"{e.min_warm:>4}  {e.reason}"
        )
    return "\n".join(lines)

"""Chrome trace-event export: open a simulation run in Perfetto.

Converts a recorded event stream into the Trace Event Format JSON that
``chrome://tracing`` and https://ui.perfetto.dev load directly.  The
mapping renders the run the way an operator would want to scrub it:

- one *process* per application;
- one *thread* per container instance, carrying a ``lifetime`` span
  (launch → termination) with the ``init`` span and every batched
  execution span nested inside it;
- a ``requests`` thread per application with an instant marker for each
  arrival and each SLA violation;
- a ``policy`` thread with instant markers for directive changes (the
  recorded reason lands in ``args``) and scheduled pre-warms;
- a ``pods`` counter track from the per-window fleet samples.

Timestamps are microseconds (the format's native unit); simulation second
0 maps to ts 0.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable

from repro.telemetry.events import (
    CLUSTER_SCOPE,
    Arrival,
    DirectiveChanged,
    ExecutionFailed,
    FallbackActivated,
    InstanceExpired,
    InstanceLaunched,
    InvocationTimedOut,
    MachineDown,
    MachineUp,
    PrewarmScheduled,
    SimEvent,
    SlaViolation,
    StageFinish,
    StageRetried,
    StageStart,
    WindowTick,
)

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: Synthetic thread ids; real instance threads start at ``_TID_BASE``.
_TID_REQUESTS = 0
_TID_POLICY = 1
_TID_BASE = 2


def _us(t: float) -> float:
    """Simulation seconds -> trace microseconds."""
    return t * 1e6


def to_chrome_trace(events: Iterable[SimEvent]) -> dict[str, Any]:
    """Build the Trace Event Format document for a recorded run."""
    events = list(events)
    pids = {app: i + 1 for i, app in enumerate(dict.fromkeys(e.app for e in events))}
    out: list[dict[str, Any]] = []

    for app, pid in pids.items():
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                # Cluster-scoped events (machine outages) render as their
                # own "cluster" process rather than the internal scope tag.
                "args": {"name": "cluster" if app == CLUSTER_SCOPE else app},
            }
        )
        for tid, name in ((_TID_REQUESTS, "requests"), (_TID_POLICY, "policy")):
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )

    # Per-instance bookkeeping keyed by (app, instance_id): launch info for
    # the lifetime/init spans, and the currently executing batch.
    launches: dict[tuple[str, int], InstanceLaunched] = {}
    open_batches: dict[tuple[str, int], StageStart] = {}

    for event in events:
        pid = pids[event.app]
        if isinstance(event, InstanceLaunched):
            key = (event.app, event.instance_id)
            launches[key] = event
            tid = _TID_BASE + event.instance_id
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "name": (
                            f"{event.function}#{event.instance_id} "
                            f"({event.config})"
                        )
                    },
                }
            )
            out.append(
                {
                    "ph": "X",
                    "name": "init",
                    "cat": "init",
                    "pid": pid,
                    "tid": tid,
                    "ts": _us(event.t),
                    "dur": _us(event.init_duration),
                    "args": {"prewarm": event.prewarm},
                }
            )
        elif isinstance(event, InstanceExpired):
            key = (event.app, event.instance_id)
            launch = launches.pop(key, None)
            start = launch.t if launch is not None else event.t - event.lifetime
            out.append(
                {
                    "ph": "X",
                    "name": f"{event.function} lifetime",
                    "cat": "instance",
                    "pid": pid,
                    "tid": _TID_BASE + event.instance_id,
                    "ts": _us(start),
                    "dur": _us(event.lifetime),
                    "args": {
                        "config": event.config,
                        "reason": event.reason,
                        "cost": event.cost,
                        "batches_served": event.batches_served,
                    },
                }
            )
        elif isinstance(event, StageStart):
            # A batch emits one StageStart per member at the same (instance,
            # time); the first opens the span, the rest ride along.
            key = (event.app, event.instance_id)
            if key not in open_batches or open_batches[key].t != event.t:
                open_batches[key] = event
        elif isinstance(event, StageFinish):
            key = (event.app, event.instance_id)
            start = open_batches.pop(key, None)
            if start is not None:
                out.append(
                    {
                        "ph": "X",
                        "name": f"{start.function} x{start.batch}",
                        "cat": "exec",
                        "pid": pid,
                        "tid": _TID_BASE + event.instance_id,
                        "ts": _us(start.t),
                        "dur": _us(event.t - start.t),
                        "args": {"batch": start.batch, "cold": start.cold},
                    }
                )
        elif isinstance(event, Arrival):
            out.append(
                {
                    "ph": "i",
                    "name": f"arrival #{event.invocation_id}",
                    "cat": "request",
                    "s": "t",
                    "pid": pid,
                    "tid": _TID_REQUESTS,
                    "ts": _us(event.t),
                }
            )
        elif isinstance(event, SlaViolation):
            out.append(
                {
                    "ph": "i",
                    "name": f"SLA violation #{event.invocation_id}",
                    "cat": "sla",
                    "s": "t",
                    "pid": pid,
                    "tid": _TID_REQUESTS,
                    "ts": _us(event.t),
                    "args": {"latency": event.latency, "sla": event.sla},
                }
            )
        elif isinstance(event, DirectiveChanged):
            out.append(
                {
                    "ph": "i",
                    "name": f"directive {event.function} -> {event.config}",
                    "cat": "policy",
                    "s": "t",
                    "pid": pid,
                    "tid": _TID_POLICY,
                    "ts": _us(event.t),
                    "args": {
                        # inf (always-on) is not valid strict JSON; stringify.
                        "keep_alive": (
                            event.keep_alive
                            if math.isfinite(event.keep_alive)
                            else "inf"
                        ),
                        "batch": event.batch,
                        "min_warm": event.min_warm,
                        "reason": event.reason,
                    },
                }
            )
        elif isinstance(event, PrewarmScheduled):
            out.append(
                {
                    "ph": "i",
                    "name": f"prewarm {event.function}",
                    "cat": "policy",
                    "s": "t",
                    "pid": pid,
                    "tid": _TID_POLICY,
                    "ts": _us(event.t),
                    "args": {
                        "fire_at": event.fire_at,
                        "count": event.count,
                        "config": event.config,
                    },
                }
            )
        elif isinstance(event, (MachineDown, MachineUp)):
            down = isinstance(event, MachineDown)
            out.append(
                {
                    "ph": "i",
                    "name": (
                        f"machine {event.machine} "
                        f"{'down' if down else 'up'}"
                    ),
                    "cat": "cluster",
                    "s": "g",  # global scope: the outage hits every tenant
                    "pid": pid,
                    "tid": 0,
                    "ts": _us(event.t),
                }
            )
        elif isinstance(event, ExecutionFailed):
            out.append(
                {
                    "ph": "i",
                    "name": f"execution failed ({event.function})",
                    "cat": "fault",
                    "s": "t",
                    "pid": pid,
                    "tid": _TID_BASE + event.instance_id,
                    "ts": _us(event.t),
                    "args": {"batch": event.batch},
                }
            )
        elif isinstance(event, StageRetried):
            out.append(
                {
                    "ph": "i",
                    "name": f"retry #{event.invocation_id} {event.function}",
                    "cat": "fault",
                    "s": "t",
                    "pid": pid,
                    "tid": _TID_REQUESTS,
                    "ts": _us(event.t),
                    "args": {"attempt": event.attempt, "delay": event.delay},
                }
            )
        elif isinstance(event, InvocationTimedOut):
            out.append(
                {
                    "ph": "i",
                    "name": f"timed out #{event.invocation_id}",
                    "cat": "fault",
                    "s": "t",
                    "pid": pid,
                    "tid": _TID_REQUESTS,
                    "ts": _us(event.t),
                    "args": {"reason": event.reason, "age": event.age},
                }
            )
        elif isinstance(event, FallbackActivated):
            out.append(
                {
                    "ph": "i",
                    "name": (
                        f"fallback {event.function} "
                        f"{event.from_config} -> {event.to_config}"
                    ),
                    "cat": "policy",
                    "s": "t",
                    "pid": pid,
                    "tid": _TID_POLICY,
                    "ts": _us(event.t),
                    "args": {"reason": event.reason},
                }
            )
        elif isinstance(event, WindowTick):
            out.append(
                {
                    "ph": "C",
                    "name": "pods",
                    "pid": pid,
                    "tid": 0,
                    "ts": _us(event.t),
                    "args": {"cpu": event.cpu_pods, "gpu": event.gpu_pods},
                }
            )

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[SimEvent], path: str | Path) -> int:
    """Write the Chrome trace JSON; returns the number of trace entries.

    The document is strict JSON (non-finite keep-alives are stringified
    in ``to_chrome_trace``), so it loads in Perfetto without sanitizing.
    """
    doc = to_chrome_trace(events)
    Path(path).write_text(json.dumps(doc, allow_nan=False))
    return len(doc["traceEvents"])

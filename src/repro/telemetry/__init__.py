"""Event-sourced telemetry plane for the simulator.

The simulator's observation path is inverted here: instead of mutating
counters in the hot loop, :class:`~repro.simulator.gateway.Gateway` emits
typed :mod:`~repro.telemetry.events` through the runtime's
:class:`~repro.telemetry.recorder.Recorder`, and everything the
evaluation consumes is a *derived view* over the recorded stream:

- :func:`~repro.telemetry.aggregate.aggregate` folds a trace back into a
  :class:`~repro.simulator.metrics.RunMetrics` equal to the live one;
- :func:`~repro.telemetry.chrome.to_chrome_trace` renders per-instance
  spans for Perfetto / ``chrome://tracing``;
- :func:`~repro.telemetry.audit.decision_audit` explains every policy
  directive change with its recorded reason.

The default :class:`~repro.telemetry.recorder.NullRecorder` keeps the
plane pay-for-what-you-use: emission points check one flag and build
nothing, so untraced runs are bit-identical to the pre-telemetry engine.
See ``docs/observability.md`` for the event taxonomy and trace formats.
"""

from repro.telemetry.aggregate import aggregate, aggregate_all
from repro.telemetry.audit import (
    decision_audit,
    fault_audit,
    format_decision_audit,
    prewarm_audit,
)
from repro.telemetry.chrome import to_chrome_trace, write_chrome_trace
from repro.telemetry.events import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    SimEvent,
    from_dict,
    to_dict,
    validate_event,
)
from repro.telemetry.recorder import (
    NullRecorder,
    Recorder,
    TraceRecorder,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "SimEvent",
    "EVENT_TYPES",
    "EVENT_SCHEMA",
    "to_dict",
    "from_dict",
    "validate_event",
    "Recorder",
    "NullRecorder",
    "TraceRecorder",
    "write_jsonl",
    "read_jsonl",
    "aggregate",
    "aggregate_all",
    "to_chrome_trace",
    "write_chrome_trace",
    "decision_audit",
    "prewarm_audit",
    "fault_audit",
    "format_decision_audit",
]

"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands wrap the :mod:`repro.experiments` runners:

- ``compare``   — serve one application under several policies
- ``sweep``     — SLA sweep under one policy
- ``multiapp``  — co-run all three evaluation apps on one cluster
- ``scenario``  — run a declarative JSON scenario spec (apps × policies ×
  SLAs × presets × seeds, optionally co-run) through the experiment grid;
  ``--preset llm|gpu-swap|overload`` runs a built-in validated scenario
  pack instead, and ``--azure-trace PATH`` replays the published Azure
  Functions CSV as the evaluation trace
- ``trace``     — run one cell with telemetry on: JSONL event trace,
  optional Chrome/Perfetto export, decision audit, and a trace→metrics
  reconstruction check
- ``report``    — full text report for one run (live, or rebuilt offline
  from a JSONL trace with ``--from-trace``)
- ``bench``     — the macro benchmark: a million-invocation multi-app
  co-run with ``retention=sketch`` (bounded memory), recording wall-clock,
  event throughput and peak RSS to ``BENCH_macro.json``; ``--shards N``
  fans (app × trace-slice) units over worker processes and merges
  bit-identically at the barrier (``BENCH_macro_sharded.json``)
- ``serve``     — live serving façade: expose every app of a scenario as
  an HTTP endpoint (``POST /invoke/<app>``) backed by the simulated
  runtime, paced wall-clock or time-warp, with token-bucket admission
  (HTTP 429) and a JSONL request log; ``--replay log.jsonl`` re-runs a
  recorded session offline and verifies bit-identical RunMetrics
- ``profile``   — print a function's profiled latency/init models
- ``apps``      — list the built-in applications and workload presets

Examples::

    python -m repro.cli compare image-query --preset diurnal --duration 300
    python -m repro.cli sweep amber-alert --slas 1 2 4 8
    python -m repro.cli multiapp --policy smiless --workers 2
    python -m repro.cli scenario spec.json --workers 4 --json
    python -m repro.cli scenario --preset llm --workers 4
    python -m repro.cli scenario --preset gpu-swap
    python -m repro.cli scenario --preset overload --workers 4
    python -m repro.cli scenario spec.json --azure-trace azurefunctions.csv
    python -m repro.cli trace image-query --out run.jsonl --chrome run.trace.json
    python -m repro.cli report image-query --from-trace run.jsonl
    python -m repro.cli bench --macro --invocations 1000000
    python -m repro.cli bench --macro --invocations 10000000 --shards 4
    python -m repro.cli serve --scenario spec.json --pacing time-warp --log run.jsonl
    python -m repro.cli serve --replay run.jsonl
    python -m repro.cli profile TRS
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.experiments import (
    PACK_NAMES,
    ScenarioSpec,
    build_environment,
    run_comparison,
    run_multi_app,
    run_scenario,
    run_sla_sweep,
)
from repro.experiments.runners import APP_BUILDERS, POLICY_NAMES
from repro.simulator.metrics import RETENTION_MODES
from repro.workload.azure import PRESETS


def _load_faults(args):
    """Parse ``--faults <plan.json>`` into a FaultPlan (``None`` when absent)."""
    if getattr(args, "faults", None) is None:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.from_json(args.faults)


def _load_overload(args):
    """Parse ``--overload <spec.json>`` into an OverloadSpec (``None`` when absent)."""
    if getattr(args, "overload", None) is None:
        return None
    from repro.overload import OverloadSpec

    return OverloadSpec.from_json(args.overload)


def _print_rows(rows) -> None:
    print(
        f"{'policy':<16} {'cost':>9} {'violations':>11} {'mean lat':>9} "
        f"{'p99 lat':>8} {'reinit':>7}"
    )
    for r in rows:
        print(
            f"{r.policy:<16} ${r.total_cost:>8.4f} {r.violation_ratio:>10.1%} "
            f"{r.mean_latency:>8.2f}s {r.p99_latency:>7.2f}s "
            f"{r.reinit_fraction:>6.1%}"
        )


def cmd_compare(args) -> int:
    env = build_environment(
        args.app,
        preset=args.preset,
        sla=args.sla,
        duration=args.duration,
        seed=args.seed,
    )
    print(
        f"{args.app}: {len(env.trace)} invocations over "
        f"{env.trace.duration:.0f}s (preset {args.preset!r}, SLA {args.sla}s)\n"
    )
    _print_rows(
        run_comparison(
            env,
            tuple(args.policies),
            workers=args.workers,
            init_failure_rate=args.init_failure_rate,
            faults=_load_faults(args),
            overload=_load_overload(args),
            retention=args.retention,
        )
    )
    return 0


def cmd_sweep(args) -> int:
    env = build_environment(
        args.app, preset=args.preset, duration=args.duration, seed=args.seed
    )
    print(f"SLA sweep on {args.app} under {args.policy!r}\n")
    print(f"{'SLA':>6} {'cost':>9} {'violations':>11} {'mean lat':>9}")
    for sla, row in run_sla_sweep(
        env,
        tuple(args.slas),
        args.policy,
        workers=args.workers,
        init_failure_rate=args.init_failure_rate,
        faults=_load_faults(args),
        overload=_load_overload(args),
        retention=args.retention,
    ):
        print(
            f"{sla:>5.1f}s ${row.total_cost:>8.4f} "
            f"{row.violation_ratio:>10.1%} {row.mean_latency:>8.2f}s"
        )
    return 0


def cmd_multiapp(args) -> int:
    envs = [
        build_environment(
            name,
            preset=args.preset,
            duration=args.duration,
            seed=args.seed + i,
        )
        for i, name in enumerate(APP_BUILDERS)
    ]
    print(
        f"Co-running {len(envs)} applications on one shared cluster "
        f"under {args.policy!r}\n"
    )
    results = run_multi_app(
        envs,
        args.policy,
        workers=args.workers,
        init_failure_rate=args.init_failure_rate,
        faults=_load_faults(args),
        overload=_load_overload(args),
        retention=args.retention,
    )
    _print_rows(
        [row for _, row in sorted(results.items())]
    )
    total = sum(r.total_cost for r in results.values())
    print(f"\ntotal cluster bill: ${total:.4f}")
    return 0


def _print_scenario_rows(rows) -> None:
    print(
        f"{'app':<16} {'preset':<8} {'sla':>5} {'policy':<16} {'cost':>9} "
        f"{'violations':>11} {'mean lat':>9} {'p99 lat':>8} {'reinit':>7}"
    )
    for s in rows:
        r = s.row
        print(
            f"{s.app:<16} {s.preset:<8} {s.sla:>4.1f}s {s.policy:<16} "
            f"${r.total_cost:>8.4f} {r.violation_ratio:>10.1%} "
            f"{r.mean_latency:>8.2f}s {r.p99_latency:>7.2f}s "
            f"{r.reinit_fraction:>6.1%}"
        )


def _cmd_scenario_pack(args) -> int:
    from repro.experiments import run_pack

    report = run_pack(
        args.preset, workers=args.workers, azure_trace=args.azure_trace
    )
    if args.json:
        doc = {
            "pack": report.pack,
            "ok": report.ok,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in report.checks
            ],
            "cells": [
                {
                    "app": res.spec.env.app,
                    "policy": res.spec.policy,
                    "sim_seed": res.spec.sim_seed,
                    "summary": _json_safe(res.summary),
                    "extras": res.extras,
                }
                for res in report.results
            ],
        }
        print(json.dumps(doc, indent=2))
        return 0 if report.ok else 1
    n = len(report.results)
    print(f"scenario pack {report.pack!r}: {n} cell(s)\n")
    _print_scenario_rows(report.rows())
    print()
    for c in report.checks:
        mark = "PASS" if c.passed else "FAIL"
        print(f"[{mark}] {c.name}: {c.detail}")
    return 0 if report.ok else 1


def cmd_scenario(args) -> int:
    if (args.spec is None) == (args.preset is None):
        print(
            "scenario: provide exactly one of SPEC (a JSON file) or "
            f"--preset {{{','.join(PACK_NAMES)}}}",
            file=sys.stderr,
        )
        return 2
    if args.preset is not None:
        return _cmd_scenario_pack(args)
    spec = ScenarioSpec.from_json(args.spec)
    overrides = {}
    if args.azure_trace is not None:
        overrides["azure_trace"] = args.azure_trace
    if args.trace_dir is not None:
        overrides["trace_dir"] = args.trace_dir
    if args.retention is not None:
        overrides["retention"] = args.retention
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.slices_per_app is not None:
        overrides["slices_per_app"] = args.slices_per_app
    if overrides:
        import dataclasses

        spec = dataclasses.replace(spec, **overrides)
    if args.json:
        from repro.experiments.parallel import run_grid

        cells = []
        for res in run_grid(spec.cells(), workers=args.workers):
            cell = {
                "policy": res.spec.policy,
                "sim_seed": res.spec.sim_seed,
                "summary": _json_safe(res.summary),
            }
            if hasattr(res.spec, "envs"):
                cell["apps"] = [e.app for e in res.spec.envs]
                cell["preset"] = res.spec.envs[0].preset
                cell["sla"] = res.spec.envs[0].sla
            else:
                cell["app"] = res.spec.env.app
                cell["preset"] = res.spec.env.preset
                cell["sla"] = res.spec.env.sla
            cells.append(cell)
        print(json.dumps(cells, indent=2))
        return 0
    n_cells = len(spec.cells())
    print(
        f"scenario: {len(spec.apps)} app(s) x {len(spec.policies)} "
        f"policy(ies) x {len(spec.slas)} SLA(s) x {len(spec.presets)} "
        f"preset(s) x {len(spec.seeds)} seed(s) -> {n_cells} cell(s)"
        f"{' [co-run]' if spec.co_run else ''}\n"
    )
    rows = run_scenario(spec, workers=args.workers)
    _print_scenario_rows(rows)
    return 0


def cmd_profile(args) -> int:
    from repro.dag.models import get_model
    from repro.hardware import GroundTruthPerformance, HardwareConfig
    from repro.profiler import OfflineProfiler

    info = get_model(args.model)
    oracle = GroundTruthPerformance(info.profile, rng=args.seed)
    fitted = OfflineProfiler().profile_function(info.name, oracle)
    print(f"{info.name} — {info.full_name} ({info.architecture}, {info.dataset})\n")
    print(f"{'config':>8} {'truth':>8} {'fitted':>8}")
    for cfg in [HardwareConfig.cpu(c) for c in (1, 4, 16)] + [
        HardwareConfig.gpu(f) for f in (0.1, 0.5, 1.0)
    ]:
        print(
            f"{cfg.key:>8} {info.profile.expected_inference_time(cfg):>7.3f}s "
            f"{fitted.inference_time(cfg):>7.3f}s"
        )
    for backend, cfg in (("cpu", HardwareConfig.cpu(1)), ("gpu", HardwareConfig.gpu(0.1))):
        print(
            f"init {backend}: mean={fitted.mean_init_time(cfg):.2f}s "
            f"robust={fitted.init_time(cfg):.2f}s"
        )
    return 0


def _json_safe(value):
    """Recursively replace non-finite floats so ``--json`` emits strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None if math.isnan(value) else ("inf" if value > 0 else "-inf")
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def cmd_report(args) -> int:
    from repro.simulator.reporting import format_report

    if args.from_trace is not None:
        from repro.telemetry import aggregate, read_jsonl

        metrics = aggregate(read_jsonl(args.from_trace), app=args.app)
        if args.json:
            print(json.dumps(_json_safe(metrics.summary()), indent=2))
        else:
            print(f"rebuilt from trace: {args.from_trace}")
            print(format_report(metrics))
        return 0

    if args.app is None:
        print("error: app is required unless --from-trace is given")
        return 2
    from repro.simulator import ServerlessSimulator
    from repro.workload.analysis import format_summary, summarize

    env = build_environment(
        args.app,
        preset=args.preset,
        sla=args.sla,
        duration=args.duration,
        seed=args.seed,
    )
    metrics = ServerlessSimulator(
        env.app, env.trace, env.make_policy(args.policy), seed=args.seed + 3
    ).run()
    if args.json:
        print(json.dumps(_json_safe(metrics.summary()), indent=2))
        return 0
    print("workload:")
    print(format_summary(summarize(env.trace)))
    print()
    print(format_report(metrics))
    return 0


def _summaries_match(a: dict, b: dict) -> bool:
    """Exact summary equality, treating NaN as equal to NaN."""
    if a.keys() != b.keys():
        return False
    for k in a:
        x, y = a[k], b[k]
        both_nan = (
            isinstance(x, float)
            and isinstance(y, float)
            and math.isnan(x)
            and math.isnan(y)
        )
        if not both_nan and x != y:
            return False
    return True


def cmd_trace(args) -> int:
    from repro.simulator import ServerlessSimulator
    from repro.telemetry import (
        TraceRecorder,
        aggregate,
        format_decision_audit,
        to_dict,
        validate_event,
        write_chrome_trace,
        write_jsonl,
    )

    env = build_environment(
        args.app,
        preset=args.preset,
        sla=args.sla,
        duration=args.duration,
        seed=args.seed,
    )
    recorder = TraceRecorder()
    metrics = ServerlessSimulator(
        env.app,
        env.trace,
        env.make_policy(args.policy),
        seed=args.seed + 3,
        recorder=recorder,
        init_failure_rate=args.init_failure_rate,
        faults=_load_faults(args),
        overload=_load_overload(args),
    ).run()

    # Every emitted event must satisfy the published schema ...
    bad = 0
    for i, event in enumerate(recorder.events):
        errors = validate_event(to_dict(event))
        if errors:
            bad += 1
            print(f"schema violation in event {i}: {'; '.join(errors)}")
    if bad:
        print(f"error: {bad} event(s) failed schema validation")
        return 1
    # ... and the trace must reconstruct the live metrics exactly.
    if not _summaries_match(aggregate(recorder.events).summary(), metrics.summary()):
        print("error: trace does not reconstruct the live run metrics")
        return 1

    n = write_jsonl(recorder.events, args.out)
    print(f"wrote {n} events -> {args.out}")
    if args.chrome is not None:
        write_chrome_trace(recorder.events, args.chrome)
        print(f"wrote Chrome trace -> {args.chrome} (load in Perfetto)")
    print()
    print("decision audit:")
    print(format_decision_audit(recorder.events))
    return 0


def cmd_bench(args) -> int:
    import dataclasses
    import resource

    from repro.experiments.parallel import EnvSpec, MultiAppCellSpec, run_cell
    from repro.sharding import clamp_shard_workers

    # Mode selection (--macro) is enforced by the argparse group; by the
    # time we are here a mode is guaranteed.
    sharded = args.shards > 1 or (
        args.slices_per_app is not None and args.slices_per_app > 1
    )
    slices_per_app = (
        args.slices_per_app
        if args.slices_per_app is not None
        else (4 if sharded else 1)
    )
    if sharded and args.retention != "sketch":
        print(
            "error: bench --shards/--slices-per-app requires "
            "--retention sketch (shard snapshots extract streaming state)",
            file=sys.stderr,
        )
        return 2
    workers, clamp_note = clamp_shard_workers(args.shards)
    if clamp_note is not None:
        print(f"note: {clamp_note}")
    out = args.out or (
        "BENCH_macro_sharded.json" if sharded else "BENCH_macro.json"
    )
    apps = tuple(sorted(APP_BUILDERS))
    rate_per_app = 1.0 / PRESETS[args.preset].mean_gap
    aggregate_rate = rate_per_app * len(apps)
    duration = (
        float(args.duration)
        if args.duration is not None
        else math.ceil(args.invocations / aggregate_rate)
    )
    shard_banner = (
        f", shards={args.shards} (workers={workers}), "
        f"slices_per_app={slices_per_app}"
        if sharded
        else ""
    )
    print(
        f"macro bench: {len(apps)} apps x preset {args.preset!r} "
        f"(~{aggregate_rate:.0f} arrivals/s aggregate) for {duration:.0f}s "
        f"under {args.policy!r}, retention={args.retention!r}{shard_banner}"
    )
    spec = MultiAppCellSpec(
        envs=tuple(
            EnvSpec(
                app=name,
                preset=args.preset,
                sla=args.sla,
                duration=duration,
                seed=args.seed,
            )
            for name in apps
        ),
        policy=args.policy,
        sim_seed=args.seed + 3,
        retention=args.retention,
        shards=workers if sharded else 1,
        slices_per_app=slices_per_app,
    )
    res = run_cell(spec)
    # ru_maxrss is KiB on Linux: the process-lifetime peak, which is the
    # macro bench's headline (environment build + full co-run).
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    completed = sum(s["invocations"] for s in res.summary.values())
    record = {
        "generated_by": "repro bench --macro",
        "invocations_target": int(args.invocations),
        "completed": int(completed),
        "policy": args.policy,
        "preset": args.preset,
        "retention": args.retention,
        "sla": args.sla,
        "duration": duration,
        "seed": args.seed,
        "wall_clock_seconds": res.wall_clock,
        "events_processed": res.events_processed,
        "events_per_second": res.events_per_second,
        "peak_rss_mb": peak_rss_mb,
        "apps": _json_safe(res.summary),
    }
    if sharded:
        record["generated_by"] = "repro bench --macro --shards"
        record["shards_requested"] = int(args.shards)
        record["workers_effective"] = int(workers)
        record["slices_per_app"] = int(slices_per_app)
        if clamp_note is not None:
            record["clamp_note"] = clamp_note
        if workers > 1:
            # Parity gate: the same unit decomposition on one shard must
            # merge to the exact same metrics (NaN == NaN).  This is the
            # correctness bar — fail loudly, not quietly.
            print("running 1-shard reference pass for the parity gate ...")
            ref = run_cell(dataclasses.replace(spec, shards=1))
            mismatched = sorted(
                app
                for app in res.summary
                if not _summaries_match(res.summary[app], ref.summary[app])
            )
            if mismatched:
                print(
                    "error: sharded metrics diverge from the 1-shard "
                    f"reference for {mismatched}",
                    file=sys.stderr,
                )
                return 1
            record["parity"] = "exact"
            record["reference_wall_clock_seconds"] = ref.wall_clock
            record["speedup_vs_one_shard"] = (
                ref.wall_clock / res.wall_clock
                if res.wall_clock > 0
                else float("inf")
            )
            print(
                f"parity: exact; speedup vs 1 shard: "
                f"{record['speedup_vs_one_shard']:.2f}x"
            )
        else:
            # One effective worker runs the identical serial code path the
            # reference would — a second multi-hour pass would compare a
            # function with itself.
            record["parity"] = "skipped: single effective worker"
    with open(out, "w") as fh:
        json.dump(_json_safe(record), fh, indent=2)
        fh.write("\n")
    print(
        f"completed {int(completed)} invocations in {res.wall_clock:.1f}s "
        f"({res.events_per_second:,.0f} events/s), peak RSS {peak_rss_mb:.0f} MB"
    )
    print(f"wrote {out}")
    return 0


def cmd_apps(args) -> int:
    print("applications:")
    for name, builder in APP_BUILDERS.items():
        app = builder()
        print(
            f"  {name:<16} {len(app)} functions, longest path "
            f"{app.longest_path_length()}, default SLA {app.sla}s"
        )
    print("\nworkload presets:")
    for name, p in PRESETS.items():
        print(
            f"  {name:<10} mean_gap={p.mean_gap:g}s cv={p.gap_cv:g} "
            f"bursts={'yes' if p.burst_frequency else 'no'} "
            f"idle={'yes' if p.idle_fraction else 'no'}"
        )
    print("\npolicies:", ", ".join(POLICY_NAMES))
    return 0


def _serve_overload(args, spec):
    """Fold ``--admission-rate/--admission-burst`` into the spec's overload."""
    if args.admission_rate is None:
        return spec
    import dataclasses

    from repro.overload import OverloadSpec

    base = spec.overload.to_dict() if spec.overload is not None else {}
    base["admission_rate"] = args.admission_rate
    base["admission_burst"] = args.admission_burst
    return dataclasses.replace(spec, overload=OverloadSpec.from_dict(base))


def cmd_serve(args) -> int:
    from repro.simulator.reporting import format_report

    if (args.replay is None) == (args.scenario is None):
        print("error: serve needs exactly one of --scenario or --replay")
        return 2

    if args.replay is not None:
        from repro.serving import replay_request_log, verify_replay

        parsed_has_footer = True
        try:
            result, diffs = verify_replay(args.replay)
        except ValueError as exc:
            if "no summary footer" not in str(exc):
                raise
            parsed_has_footer = False
            result, diffs = replay_request_log(args.replay), []
        for app, metrics in result.metrics.items():
            print(f"=== {app} (replayed) ===")
            print(format_report(metrics))
            print()
        if not parsed_has_footer:
            print("no footer in the log; replayed without verification")
            return 0
        if diffs:
            print("replay parity FAILED:")
            for diff in diffs:
                print(f"  {diff}")
            return 1
        print(
            "replay parity: OK (RunMetrics bit-identical to the recorded "
            "live session)"
        )
        return 0

    import asyncio
    import signal

    from repro.serving import (
        LiveServer,
        RequestLogWriter,
        SimDriver,
        make_pacer,
    )

    spec = _serve_overload(args, ScenarioSpec.from_json(args.scenario))
    driver = SimDriver(spec.serve_cell(), horizon=spec.duration)
    pacer = make_pacer(args.pacing, time_scale=args.time_scale)
    log = RequestLogWriter(args.log) if args.log is not None else None

    async def session():
        server = LiveServer(
            driver,
            pacer,
            host=args.host,
            port=args.port,
            log=log,
            max_requests=args.max_requests,
        )
        await server.start()
        print(
            f"serving {', '.join(sorted(driver.gateways))} on "
            f"http://{server.host}:{server.port} "
            f"({args.pacing} pacing, horizon {driver.horizon:g}s) — "
            f"POST /invoke/<app>, /control/stop to finish",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGINT, server.request_stop)
            loop.add_signal_handler(signal.SIGTERM, server.request_stop)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
        return await server.run()

    metrics = asyncio.run(session())
    for app, m in metrics.items():
        print(f"=== {app} ===")
        print(format_report(m))
        print()
    if args.log is not None:
        print(f"request log: {args.log} (replay with: repro serve --replay)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.cli`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="SMIless reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, workers=False):
        p.add_argument("--preset", default="steady", choices=sorted(PRESETS))
        p.add_argument("--duration", type=float, default=600.0)
        p.add_argument("--seed", type=int, default=0)
        if workers:
            p.add_argument(
                "--workers",
                type=int,
                default=1,
                help="worker processes for the experiment grid (1 = serial)",
            )

    def retention_arg(p, default="full"):
        p.add_argument(
            "--retention",
            default=default,
            choices=sorted(RETENTION_MODES),
            help="record retention: 'full' keeps every record (exact), "
            "'sketch' streams latency into bounded-memory sketches",
        )

    def chaos(p):
        p.add_argument(
            "--init-failure-rate",
            type=float,
            default=0.0,
            help="probability that a container initialization fails (0..1)",
        )
        p.add_argument(
            "--faults",
            default=None,
            metavar="PLAN.json",
            help="attach a fault plan (machine outages, execution faults, "
            "stragglers, flash crowds, resilience knobs) from a JSON file",
        )
        p.add_argument(
            "--overload",
            default=None,
            metavar="SPEC.json",
            help="attach an overload spec (bounded queues with shedding, "
            "token-bucket admission, circuit breakers, brownout) from a "
            "JSON file",
        )

    p = sub.add_parser("compare", help="compare policies on one app")
    p.add_argument("app", choices=sorted(APP_BUILDERS))
    p.add_argument("--sla", type=float, default=2.0)
    p.add_argument(
        "--policies",
        nargs="+",
        default=["smiless", "orion", "icebreaker", "grandslam"],
        choices=POLICY_NAMES,
    )
    common(p, workers=True)
    chaos(p)
    retention_arg(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep", help="SLA sweep under one policy")
    p.add_argument("app", choices=sorted(APP_BUILDERS))
    p.add_argument("--policy", default="smiless", choices=POLICY_NAMES)
    p.add_argument("--slas", nargs="+", type=float, default=[1.0, 2.0, 4.0, 8.0])
    common(p, workers=True)
    chaos(p)
    retention_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("multiapp", help="co-run the three evaluation apps")
    p.add_argument("--policy", default="smiless", choices=POLICY_NAMES)
    common(p, workers=True)
    chaos(p)
    retention_arg(p)
    p.set_defaults(func=cmd_multiapp)

    p = sub.add_parser(
        "scenario",
        help="run a declarative JSON scenario spec or a built-in pack",
    )
    p.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="path to a ScenarioSpec JSON file (omit with --preset)",
    )
    p.add_argument(
        "--preset",
        default=None,
        choices=PACK_NAMES,
        help="run a built-in scenario pack (every registered policy, "
        "invariants validated) instead of a JSON spec",
    )
    p.add_argument(
        "--azure-trace",
        default=None,
        metavar="PATH",
        help="replay the published Azure Functions CSV at PATH as every "
        "cell's evaluation trace",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the experiment grid (1 = serial)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per cell (full RunMetrics summaries)",
    )
    p.add_argument(
        "--trace-dir",
        default=None,
        help="record every cell and write JSONL event traces here",
    )
    p.add_argument(
        "--retention",
        default=None,
        choices=sorted(RETENTION_MODES),
        help="override the spec's record-retention mode",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="override the spec's shard count (worker processes per cell; "
        "requires sketch retention)",
    )
    p.add_argument(
        "--slices-per-app",
        type=int,
        default=None,
        help="override the spec's trace slices per app (part of the "
        "experiment definition)",
    )
    p.set_defaults(func=cmd_scenario)

    p = sub.add_parser("report", help="serve one app and print the full report")
    p.add_argument("app", nargs="?", default=None, choices=sorted(APP_BUILDERS))
    p.add_argument("--policy", default="smiless", choices=POLICY_NAMES)
    p.add_argument("--sla", type=float, default=2.0)
    p.add_argument(
        "--from-trace",
        default=None,
        metavar="PATH",
        help="rebuild the report offline from a JSONL telemetry trace "
        "instead of running a simulation (app may be omitted for "
        "single-app traces)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the RunMetrics summary as JSON instead of the text report",
    )
    common(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "trace",
        help="run one app with telemetry on and export the event trace",
    )
    p.add_argument("app", choices=sorted(APP_BUILDERS))
    p.add_argument("--policy", default="smiless", choices=POLICY_NAMES)
    p.add_argument("--sla", type=float, default=2.0)
    p.add_argument(
        "--out",
        default="trace.jsonl",
        help="JSONL event trace output path (default: trace.jsonl)",
    )
    p.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="also export a Chrome trace-event file (open in Perfetto)",
    )
    common(p)
    chaos(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench",
        help="macro benchmark: million-invocation multi-app co-run",
    )
    # The benchmark mode is a required choice: invoking `bench` without a
    # mode (or with an unknown one) is an argparse error (exit code 2),
    # not a printed hint with a success-shaped exit path.
    mode = p.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--macro",
        action="store_true",
        help="run the macro benchmark (multi-app co-run at flood rates)",
    )
    p.add_argument(
        "--invocations",
        type=int,
        default=1_000_000,
        help="target aggregate arrival count (sets the horizon)",
    )
    p.add_argument("--preset", default="flood", choices=sorted(PRESETS))
    p.add_argument("--policy", default="grandslam", choices=POLICY_NAMES)
    p.add_argument("--sla", type=float, default=2.0)
    p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="horizon override in seconds (default: --invocations / rate)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="fan the run's (app x trace-slice) units over this many "
        "worker processes, merging bit-identically at the barrier "
        "(clamped to the host CPU count; requires --retention sketch)",
    )
    p.add_argument(
        "--slices-per-app",
        type=int,
        default=None,
        help="trace slices per app when sharding (part of the experiment "
        "definition; constant across shard counts). Default: 4 for "
        "sharded runs, 1 otherwise",
    )
    retention_arg(p, default="sketch")
    p.add_argument(
        "--out",
        default=None,
        help="benchmark record output path (default: BENCH_macro.json, "
        "or BENCH_macro_sharded.json for sharded runs)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="serve a scenario live over HTTP, or replay a request log",
    )
    p.add_argument(
        "--scenario",
        default=None,
        metavar="SPEC.json",
        help="ScenarioSpec JSON with one policy/SLA/preset/seed; every "
        "app gets a POST /invoke/<app> endpoint",
    )
    p.add_argument(
        "--replay",
        default=None,
        metavar="LOG.jsonl",
        help="replay a recorded request log offline and verify it against "
        "the recorded footer (bit-identical RunMetrics)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listening port (0 = let the kernel pick)",
    )
    p.add_argument(
        "--pacing",
        default="time-warp",
        # Literal list (not repro.serving.PACING_MODES): importing the CLI
        # must never load the serving package (zero-cost rule).
        choices=["time-warp", "wall-clock"],
        help="time-warp advances the simulated clock only while work is "
        "pending; wall-clock tracks real time through --time-scale",
    )
    p.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="simulated seconds per wall second (wall-clock pacing only)",
    )
    p.add_argument(
        "--log",
        default=None,
        metavar="LOG.jsonl",
        help="append every request to this JSONL request log for replay",
    )
    p.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="finalize the session automatically after this many requests",
    )
    p.add_argument(
        "--admission-rate",
        type=float,
        default=None,
        help="per-app token-bucket admission rate (requests per simulated "
        "second); rejected requests get HTTP 429 with Retry-After",
    )
    p.add_argument(
        "--admission-burst",
        type=float,
        default=10.0,
        help="token-bucket burst capacity (with --admission-rate)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("profile", help="profile one Table I model")
    p.add_argument("model")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("apps", help="list applications, presets and policies")
    p.set_defaults(func=cmd_apps)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

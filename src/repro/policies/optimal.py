"""OPT baseline: oracle policy determined through exhaustive search (§VII-B).

The paper's "OPT" lower bound knows everything SMIless must predict: it is
given the ground-truth performance model (no profiling error) and the full
future trace (no prediction error).  Configurations come from exhaustive
search over the whole DAG (path-exhaustive + combining for larger apps,
where full enumeration is impractical); cold-start decisions are made
per-gap with the *actual* next arrival time, so pre-warming lands exactly
when needed and keep-alive never outlives the true gap.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.engine import OptimizerEngine
from repro.core.path_search import ExhaustiveSearch
from repro.core.prewarming import evaluate_assignment, policy_for, ColdStartPolicy
from repro.core.workflow import WorkflowManager
from repro.dag.graph import AppDAG
from repro.hardware.configs import ConfigurationSpace, HardwareConfig
from repro.policies.base import Policy
from repro.policies.registry import register_policy
from repro.profiler.profiles import FunctionProfile
from repro.simulator.gateway import SimulationContext
from repro.simulator.invocation import FunctionDirective, Invocation
from repro.workload.trace import Trace

#: DAG size above which full enumeration is replaced by per-path exhaustive
#: search plus combining (15^5 whole-DAG evaluations already take ~30 s).
_FULL_ENUMERATION_LIMIT = 4


@register_policy("opt", args=("oracle", "trace"))
class OptimalPolicy(Policy):
    """Exhaustive-search configurations with clairvoyant cold-start timing."""

    name = "opt"

    def __init__(
        self,
        profiles: Mapping[str, FunctionProfile],
        trace: Trace,
        *,
        space: ConfigurationSpace | None = None,
        window: float = 1.0,
        init_slack: float = 1.0,
        sla_margin: float = 0.1,
    ) -> None:
        self.profiles = dict(profiles)
        self.trace = trace
        self.space = space or ConfigurationSpace.default()
        self.window = float(window)
        self.init_slack = float(init_slack)
        # Even the oracle plans with headroom: stage execution times are
        # stochastic, so a plan at exactly the SLA violates half the time.
        self.sla_margin = float(sla_margin)
        self.assignment: dict[str, HardwareConfig] = {}
        self._plans: dict[str, object] = {}
        self._offsets: dict[str, float] = {}
        self._true_counts = trace.counts_per_window(window)
        self._engine = OptimizerEngine(self.space)

    # -- planning ------------------------------------------------------------
    def _true_mean_it(self) -> float:
        gaps = self.trace.window_inter_arrivals(self.window)
        return float(gaps.mean()) if gaps.size else 10.0

    def plan_assignment(self, app: AppDAG) -> dict[str, HardwareConfig]:
        """Exhaustive (or path-exhaustive) minimum-cost feasible assignment."""
        it = self._true_mean_it()
        planning_app = app.with_sla(app.sla * (1.0 - self.sla_margin))
        if len(app) <= _FULL_ENUMERATION_LIMIT:
            result = ExhaustiveSearch(self.space).optimize_app(
                planning_app, self.profiles, it
            )
            return result.assignment
        manager = WorkflowManager(
            self.space, optimizer=ExhaustiveSearch(self.space)  # type: ignore[arg-type]
        )
        return manager.optimize(planning_app, self.profiles, it).assignment

    def on_register(self, app: AppDAG, ctx: SimulationContext) -> None:
        """Install the exhaustive assignment and clairvoyant directives."""
        self.assignment = self.plan_assignment(app)
        it = self._true_mean_it()
        ev = evaluate_assignment(app, self.assignment, self.profiles, it)
        finish: dict[str, float] = {}
        for fn in app.function_names:
            plan = ev.plans[fn]
            self._plans[fn] = plan
            start = max((finish[p] for p in app.predecessors(fn)), default=0.0)
            self._offsets[fn] = start
            finish[fn] = start + plan.inference_time
            ctx.set_directive(
                fn,
                FunctionDirective(
                    config=plan.config,
                    keep_alive=0.0,
                    batch=1,
                    warm_grace=2.0 * self.init_slack + 1.0,
                ),
                reason="oracle: exhaustive-search assignment, pre-warm regime",
            )
        # Clairvoyant pre-warm for the very first arrival of the trace.
        if len(self.trace):
            self._schedule_for_arrival(float(self.trace.times[0]), ctx)

    def _schedule_for_arrival(self, t_arrival: float, ctx: SimulationContext) -> None:
        for fn, plan in self._plans.items():
            start = t_arrival + self._offsets[fn] - plan.init_time - self.init_slack  # type: ignore[attr-defined]
            ctx.schedule_warmup(fn, start, config=plan.config)  # type: ignore[attr-defined]

    def on_arrival(self, invocation: Invocation, ctx: SimulationContext) -> None:
        """Per-gap clairvoyant decision: pre-warm or keep alive exactly."""
        idx = int(np.searchsorted(self.trace.times, ctx.now, side="right"))
        if idx >= len(self.trace):
            return  # last arrival: nothing left to manage
        t_next = float(self.trace.times[idx])
        gap = t_next - ctx.now
        if gap <= 0:
            return  # simultaneous arrivals share the burst handling below
        for fn, plan in self._plans.items():
            t, i = plan.init_time, plan.inference_time  # type: ignore[attr-defined]
            if policy_for(max(t, 1e-9), i, gap) is ColdStartPolicy.PREWARM:
                ctx.set_directive(
                    fn,
                    FunctionDirective(
                        config=plan.config,  # type: ignore[attr-defined]
                        keep_alive=0.0,
                        batch=1,
                        warm_grace=2.0 * self.init_slack + 1.0,
                    ),
                    reason=f"oracle: true gap {gap:.2f}s favors pre-warm",
                )
                start = t_next + self._offsets[fn] - t - self.init_slack
                ctx.schedule_warmup(fn, start, config=plan.config)  # type: ignore[attr-defined]
            else:
                ctx.set_directive(
                    fn,
                    FunctionDirective(
                        config=plan.config,  # type: ignore[attr-defined]
                        keep_alive=gap + self._offsets[fn] + 0.5,
                        batch=1,
                    ),
                    reason=f"oracle: true gap {gap:.2f}s favors keep-alive",
                )

    def on_window(self, t: float, ctx: SimulationContext) -> None:
        """Oracle burst handling with clairvoyant lookahead.

        Launching an instance takes its initialization time, so the oracle
        looks ``ceil(T_max) + 1`` windows ahead in the true trace and brings
        capacity up *before* the burst peaks.
        """
        k = len(ctx.counts_history())
        budgets = {fn: self._plans[fn].inference_time for fn in self._plans}  # type: ignore[attr-defined]
        t_max = max(self._plans[fn].init_time for fn in self._plans)  # type: ignore[attr-defined]
        lookahead = int(np.ceil(t_max / self.window)) + 1
        horizon = self._true_counts[k : k + lookahead]
        if horizon.size == 0:
            return
        g = int(horizon.max())
        if g <= 1 or g * max(budgets.values()) <= self.window:
            if getattr(self, "_burst_mode", False) and (
                horizon.size == 0 or horizon.max() <= 1
            ):
                # Burst fully over: restore the steady-state directives by
                # replaying the per-gap logic at the next arrival.
                self._burst_mode = False
            return
        self._burst_mode = True
        it = self._true_mean_it()
        for fn in ctx.app.function_names:
            decision = self._engine.autoscaler.plan(
                fn,
                self.profiles[fn],
                g,
                max(self.window, min(it, 5.0)),
                budgets[fn],
            )
            ctx.set_directive(
                fn,
                FunctionDirective(
                    config=decision.config,
                    keep_alive=self.window * 2,
                    batch=decision.batch,
                    min_warm=decision.instances,
                    warm_grace=t_max + 2.0,
                ),
                reason=f"oracle: burst of {g} seen in lookahead, scale out",
            )

"""Policy interface plus two trivial reference policies.

A policy supplies decisions to the simulator through four callbacks; the
engine supplies mechanism.  :class:`AlwaysOnPolicy` (one warm instance per
function forever) and :class:`OnDemandPolicy` (pure cold starts, no
keep-alive) bracket the design space and anchor the engine tests: always-on
never cold-starts but pays idle cost; on-demand pays no idle cost but puts
every initialization on the critical path.
"""

from __future__ import annotations

import abc
import math

from repro.dag.graph import AppDAG
from repro.hardware.configs import HardwareConfig
from repro.policies.registry import register_policy
from repro.simulator.gateway import SimulationContext
from repro.simulator.invocation import FunctionDirective, Invocation


class Policy(abc.ABC):
    """Scheduling decisions for one application run."""

    #: Human-readable policy name (used in metrics and bench tables).
    name: str = "policy"

    @abc.abstractmethod
    def on_register(self, app: AppDAG, ctx: SimulationContext) -> None:
        """Called once before the trace starts.

        Must install a :class:`FunctionDirective` for every function.
        """

    def on_window(self, t: float, ctx: SimulationContext) -> None:
        """Called at the end of every control window (1 s by default)."""

    def on_arrival(self, invocation: Invocation, ctx: SimulationContext) -> None:
        """Called when an invocation reaches the gateway."""

    def on_stage_complete(
        self, invocation: Invocation, function: str, ctx: SimulationContext
    ) -> None:
        """Called when one stage of an invocation finishes."""


@register_policy("always-on", args=())
class AlwaysOnPolicy(Policy):
    """Keep one warm instance per function forever on a fixed config."""

    name = "always-on"

    def __init__(self, config: HardwareConfig | None = None) -> None:
        self.config = config or HardwareConfig.cpu(16)

    def on_register(self, app: AppDAG, ctx: SimulationContext) -> None:
        for fn in app.function_names:
            ctx.set_directive(
                fn,
                FunctionDirective(
                    config=self.config,
                    keep_alive=math.inf,
                    batch=1,
                    min_warm=1,
                ),
                reason="always-on: one warm instance forever",
            )
            ctx.schedule_warmup(fn, 0.0)


@register_policy("on-demand", args=())
class OnDemandPolicy(Policy):
    """Cold-start every instance on demand; terminate as soon as idle."""

    name = "on-demand"

    def __init__(self, config: HardwareConfig | None = None) -> None:
        self.config = config or HardwareConfig.cpu(16)

    def on_register(self, app: AppDAG, ctx: SimulationContext) -> None:
        for fn in app.function_names:
            ctx.set_directive(
                fn,
                FunctionDirective(config=self.config, keep_alive=0.0, batch=1),
                reason="on-demand: cold start every request",
            )

"""IceBreaker baseline [17]: per-function warm-up with heterogeneity.

IceBreaker manages every function *independently*: a Fourier-based
predictor (FIP) forecasts each function's invocations, and the function is
kept warm on the hardware with the best speedup-per-dollar whenever
activity is predicted within the horizon.  Because the DAG is ignored:

- all functions warm up simultaneously at the start of a predicted-active
  period instead of staggered along the critical path;
- heavyweight models land on GPU slices (their speedup-to-cost ratio
  exceeds one) and stay warm for long stretches, so most billed time ends
  up on GPUs — the paper's Fig. 9a observation and the source of the up to
  5.73x cost gap (§VII-B).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.dag.graph import AppDAG
from repro.hardware.configs import ConfigurationSpace, HardwareConfig
from repro.policies.base import Policy
from repro.policies.registry import register_policy
from repro.predictor.baselines import FipPredictor
from repro.profiler.profiles import FunctionProfile
from repro.simulator.gateway import SimulationContext
from repro.simulator.invocation import FunctionDirective


@register_policy("icebreaker", kwargs={"train_counts": "train_counts"})
class IceBreakerPolicy(Policy):
    """DAG-oblivious per-function warm-up on speedup-per-dollar hardware."""

    name = "icebreaker"

    def __init__(
        self,
        profiles: Mapping[str, FunctionProfile],
        *,
        space: ConfigurationSpace | None = None,
        train_counts: np.ndarray | None = None,
        horizon: float = 60.0,
        n_harmonics: int = 8,
    ) -> None:
        self.profiles = dict(profiles)
        self.space = space or ConfigurationSpace.default()
        self.horizon = float(horizon)
        self.fip: FipPredictor | None = None
        if train_counts is not None and np.asarray(train_counts).size >= 4:
            self.fip = FipPredictor(n_harmonics=n_harmonics).fit(
                np.asarray(train_counts, dtype=float)
            )
        self._cpu_configs: dict[str, HardwareConfig | None] = {}
        self._gpu_configs: dict[str, HardwareConfig | None] = {}

    def choose_config(self, fn: str, latency_target: float) -> HardwareConfig:
        """Hardware with the best speedup-to-cost ratio for ``fn``.

        Speedup is measured against the cheapest configuration.  IceBreaker
        is DAG-oblivious, so the only latency awareness is a crude
        per-function share of the SLA (``latency_target``); among the
        configurations meeting it, the best speedup-per-dollar wins; if none
        meets it, the fastest is used.
        """
        profile = self.profiles[fn]
        baseline_cfg = self.space.cheapest()
        base_i = profile.inference_time(baseline_cfg)
        base_u = baseline_cfg.unit_cost
        best, best_score = None, -np.inf
        for cfg in self.space:
            if not profile.supports(cfg.backend):
                continue
            if profile.inference_time(cfg) > latency_target:
                continue
            speedup = base_i / profile.inference_time(cfg)
            cost_ratio = cfg.unit_cost / base_u
            score = speedup / cost_ratio
            if score > best_score + 1e-12:
                best, best_score = cfg, score
        if best is None:
            best = min(
                (c for c in self.space if profile.supports(c.backend)),
                key=lambda c: profile.inference_time(c),
            )
        return best

    def on_register(self, app: AppDAG, ctx: SimulationContext) -> None:
        """Pick per-function hardware and start with long keep-alives.

        Fig. 3b: IceBreaker warms a function on low-end *and* high-end
        hardware concurrently (the "concurrency" in the example), so both a
        CPU-pool and a GPU-pool configuration are maintained per function
        whenever activity is predicted.
        """
        target = app.sla / app.longest_path_length()
        for fn in app.function_names:
            profile = self.profiles[fn]
            cpu_space = ConfigurationSpace(
                cpu_cores=tuple(c.cpu_cores for c in self.space.cpu_configs()),
                gpu_fractions=(),
            )
            self._cpu_configs[fn] = (
                self._best_in(fn, cpu_space, target)
                if cpu_space and profile.supports(cpu_space.cheapest().backend)
                else None
            )
            gpu_cfgs = self.space.gpu_configs()
            self._gpu_configs[fn] = (
                self._best_in(
                    fn,
                    ConfigurationSpace(cpu_cores=(), gpu_fractions=tuple(
                        c.gpu_fraction for c in gpu_cfgs
                    )),
                    target,
                )
                if gpu_cfgs and profile.supports(gpu_cfgs[0].backend)
                else None
            )
            primary = self._gpu_configs[fn] or self._cpu_configs[fn]
            assert primary is not None
            ctx.set_directive(
                fn,
                FunctionDirective(
                    config=primary,
                    keep_alive=self.horizon,
                    batch=1,
                    warm_grace=self.horizon,
                ),
                reason=(
                    "icebreaker: "
                    + ("GPU" if self._gpu_configs[fn] else "CPU")
                    + " primary, keep warm over prediction horizon"
                ),
            )

    def _best_in(
        self, fn: str, space: ConfigurationSpace, target: float
    ) -> HardwareConfig:
        profile = self.profiles[fn]
        candidates = [
            c
            for c in space
            if profile.supports(c.backend)
            and profile.inference_time(c) <= target
        ]
        if not candidates:
            return min(
                (c for c in space if profile.supports(c.backend)),
                key=lambda c: profile.inference_time(c),
            )
        baseline = self.space.cheapest()
        base_i = self.profiles[fn].inference_time(baseline)
        base_u = baseline.unit_cost

        def score(c: HardwareConfig) -> float:
            return (base_i / profile.inference_time(c)) / (c.unit_cost / base_u)

        return max(candidates, key=score)

    def on_window(self, t: float, ctx: SimulationContext) -> None:
        """Warm both pools of every function when FIP predicts activity."""
        counts = ctx.counts_history()
        if self.fip is not None:
            future = self.fip.predict_at(
                counts.size + np.arange(int(self.horizon))
            )
            active = bool(future.sum() >= 0.5)
        else:
            active = counts.size > 0 and counts[-min(counts.size, 30):].sum() > 0
        if not active:
            return
        for fn in ctx.app.function_names:
            for cfg in (self._gpu_configs.get(fn), self._cpu_configs.get(fn)):
                if cfg is not None and ctx.live_count(fn, cfg) == 0:
                    ctx.schedule_warmup(fn, t, config=cfg)

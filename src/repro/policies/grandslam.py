"""GrandSLAm baseline [5]: slack division with always-on instances.

GrandSLAm divides the application SLA among stages proportionally to their
measured service times, picks for each stage the cheapest configuration
meeting its sub-SLA budget, and batches within the budget to maximize
throughput.  It performs **no cold-start management**: one instance per
function is kept always on (few initializations → low latency in Fig. 8b),
which is why its cost lands around 2.46x SMIless (§VII-B); and its resource
scaling is restricted (the always-on singleton), so bursts overflow into
SLA violations (Fig. 15).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.dag.graph import AppDAG
from repro.hardware.configs import ConfigurationSpace, HardwareConfig
from repro.policies.base import Policy
from repro.policies.registry import register_policy
from repro.profiler.profiles import FunctionProfile
from repro.simulator.gateway import SimulationContext
from repro.simulator.invocation import FunctionDirective


@register_policy("grandslam")
class GrandSLAmPolicy(Policy):
    """Per-stage slack budgets, cheapest-fit configs, always-on fleet."""

    name = "grandslam"

    def __init__(
        self,
        profiles: Mapping[str, FunctionProfile],
        *,
        space: ConfigurationSpace | None = None,
        reference: HardwareConfig | None = None,
        max_batch: int = 16,
    ) -> None:
        self.profiles = dict(profiles)
        self.space = space or ConfigurationSpace.default()
        self.reference = reference or HardwareConfig.cpu(4)
        self.max_batch = int(max_batch)

    def stage_budgets(self, app: AppDAG) -> dict[str, float]:
        """SLA split proportional to reference service times (per §VII-A).

        Each function's budget is its share of the *longest* path's total
        reference latency, so every path's budgeted sum stays within SLA.
        """
        ref = {
            fn: self.profiles[fn].inference_time(self.reference)
            for fn in app.function_names
        }
        budgets: dict[str, float] = {}
        for path in app.simple_paths():
            total = sum(ref[f] for f in path)
            for f in path:
                share = app.sla * ref[f] / total
                budgets[f] = min(budgets.get(f, math.inf), share)
        return budgets

    def choose_config(self, fn: str, budget: float) -> HardwareConfig:
        """Cheapest configuration whose service time fits the stage budget."""
        profile = self.profiles[fn]
        for cfg in self.space:  # cheapest-first
            if not profile.supports(cfg.backend):
                continue
            if profile.inference_time(cfg) <= budget:
                return cfg
        # Budget unreachable: fall back to the fastest option.
        return min(
            (c for c in self.space if profile.supports(c.backend)),
            key=lambda c: profile.inference_time(c),
        )

    def on_register(self, app: AppDAG, ctx: SimulationContext) -> None:
        """Install always-on singletons with batching within the budget."""
        budgets = self.stage_budgets(app)
        for fn in app.function_names:
            cfg = self.choose_config(fn, budgets[fn])
            profile = self.profiles[fn]
            batch = 1
            while (
                batch < self.max_batch
                and profile.inference_time(cfg, batch + 1) <= budgets[fn]
            ):
                batch += 1
            ctx.set_directive(
                fn,
                FunctionDirective(
                    config=cfg,
                    keep_alive=math.inf,
                    batch=batch,
                    min_warm=1,
                ),
                reason=(
                    f"grandslam: stage budget {budgets[fn]:.2f}s, "
                    f"batch {batch} fits budget"
                ),
            )
            ctx.schedule_warmup(fn, 0.0, config=cfg)

"""The SMIless policy: the paper's full system in simulator form.

Wires together the Optimizer Engine (strategy = configuration + adaptive
cold-start policy per function), the Online Predictor (LSTM invocation and
inter-arrival forecasts with conservative fallbacks while history is short)
and the Auto-scaler (batching + scale-out under bursts):

- functions in the *pre-warm* regime run with ``keep_alive = 0`` and get a
  warm-up scheduled per arrival at ``t_next + offset(fn) - T(fn)``, where
  ``offset(fn)`` is the function's start offset along the DAG critical path
  — initialization thereby overlaps upstream inference (§V-B1, Fig. 5a);
- functions in the *keep-alive* regime hold their instance for a little
  over the predicted inter-arrival time (§V-B1, Case II);
- when the predicted invocation count would overload sequential instances,
  the Auto-scaler's Eq. (7)/(8) solution installs batching and ``min_warm``
  scale-out directives for the next window (§V-D);
- the strategy is recomputed when the predicted inter-arrival time drifts
  out of the bucket it was optimized for (strategies are cached per
  log-scale IT bucket to bound optimizer invocations).
"""

from __future__ import annotations

import hashlib
import math
from typing import Mapping

import numpy as np

from repro.core.engine import OptimizerEngine
from repro.core.prewarming import ColdStartPolicy
from repro.core.workflow import ExecutionStrategy
from repro.dag.graph import AppDAG
from repro.hardware.configs import ConfigurationSpace
from repro.policies.base import Policy
from repro.policies.registry import register_policy
from repro.predictor.interarrival import InterArrivalPredictor, gaps_from_counts
from repro.predictor.invocation import InvocationPredictor
from repro.profiler.profiles import FunctionProfile
from repro.simulator.gateway import SimulationContext
from repro.simulator.invocation import FunctionDirective, Invocation

#: Keep-alive safety factor over the predicted inter-arrival time.
KEEP_ALIVE_MARGIN = 1.25
#: Grace period for a pre-warmed instance awaiting its predicted arrival.
WARM_GRACE = 6.0

#: Trained predictors keyed by (kind, training-series digest, seed).
#: Training is deterministic in those inputs (fixed default hyperparameters,
#: seeded RNG), so a cache hit returns bit-identical weights; experiment
#: grids that drive several applications with one workload regime then
#: train each predictor once instead of once per cell.  Predictors are
#: read-only after ``fit``, so sharing one instance across policies is safe.
#: Keys carry a blake2b digest of the training series, not the raw bytes,
#: so the cache's key memory stays bounded regardless of series length.
_PREDICTOR_CACHE: dict[tuple, object] = {}


def _cached_predictor(key: tuple, train):
    cached = _PREDICTOR_CACHE.get(key)
    if cached is None:
        if len(_PREDICTOR_CACHE) > 64:
            _PREDICTOR_CACHE.clear()
        cached = _PREDICTOR_CACHE[key] = train()
    return cached


def _train_key(kind: str, counts: np.ndarray, seed: int) -> tuple:
    digest = hashlib.blake2b(counts.tobytes(), digest_size=16).digest()
    return (kind, str(counts.dtype), counts.size, digest, seed)


def pretrain_predictors(train_counts: np.ndarray, seed: int = 0) -> None:
    """Train-and-cache the SMIless predictors for a training series.

    Uses the exact cache keys, hyperparameters and seed the policy's own
    lazy training path uses, so a later :class:`SMIlessPolicy` built with
    the same ``train_counts`` gets a cache hit instead of paying seconds
    of LSTM training inside the (timed) simulation run.  Called from
    environment construction, which is the natural home for deterministic
    offline preparation (profiling already lives there).
    """
    counts = np.asarray(train_counts)
    try:
        _cached_predictor(
            _train_key("invocation", counts, seed),
            lambda: InvocationPredictor(
                bucket_size=1, n_buckets=16, epochs=4, seed=seed
            ).fit(counts),
        )
    except ValueError:
        pass
    try:
        _cached_predictor(
            _train_key("interarrival", counts, seed),
            lambda: InterArrivalPredictor(epochs=15, seed=seed).fit(counts),
        )
    except ValueError:
        pass


@register_policy("smiless", kwargs={"train_counts": "train_counts"})
class SMIlessPolicy(Policy):
    """Co-optimized configuration and cold-start management (the paper)."""

    name = "smiless"

    def __init__(
        self,
        profiles: Mapping[str, FunctionProfile],
        *,
        space: ConfigurationSpace | None = None,
        train_counts: np.ndarray | None = None,
        invocation_predictor: InvocationPredictor | None = None,
        interarrival_predictor: InterArrivalPredictor | None = None,
        default_it: float = 10.0,
        it_rebucket_ratio: float = 1.8,
        prewarm_safety: float = 1.0,
        sla_margin: float = 0.1,
        burst_holdover: float = 20.0,
        seed: int = 0,
    ) -> None:
        self.profiles = dict(profiles)
        self.space = space or ConfigurationSpace.default()
        self.engine = OptimizerEngine(self.space)
        self.default_it = float(default_it)
        self.it_rebucket_ratio = float(it_rebucket_ratio)
        self.prewarm_safety = float(prewarm_safety)
        self.burst_holdover = float(burst_holdover)
        # Burst capacity must arrive while the burst is still running.
        self.burst_react_init = 4.0
        if not 0.0 <= sla_margin < 1.0:
            raise ValueError(f"sla_margin must be in [0, 1), got {sla_margin}")
        # Plan against a slightly tighter SLA so per-stage execution noise
        # (the profiler's ~8 % SMAPE) does not push real latencies over.
        self.sla_margin = float(sla_margin)
        self.invocation_predictor = invocation_predictor
        self.interarrival_predictor = interarrival_predictor
        if train_counts is not None:
            self._train(np.asarray(train_counts), seed)
        self.strategy: ExecutionStrategy | None = None
        self._strategy_cache: dict[int, ExecutionStrategy] = {}
        self._start_offsets: dict[str, float] = {}
        self._effective_policy: dict[str, ColdStartPolicy] = {}
        self._app: AppDAG | None = None
        self._current_it = self.default_it
        self._current_it_upper = self.default_it
        self._scaled_out = False
        self._last_arrival: float | None = None
        self._inactive = False
        # Memoized derivations of per-instance-constant inputs (profiles,
        # space, SLA): burst budgets per app, standing batch per (fn, config).
        self._budgets_cache: dict[str, dict[str, float]] = {}
        self._standing_batch_cache: dict[tuple, int] = {}
        self._reset_run_state()

    def _reset_run_state(self) -> None:
        """Reset per-run incremental state (fresh at registration).

        The gap tracker and prediction memo assume the count history they
        scan is append-only; registration starts a new history.
        """
        # Incremental gap tracker: gaps between non-empty windows, extended
        # by scanning only the yet-unseen suffix of the count history
        # (bit-identical to ``gaps_from_counts`` over the full series).
        self._gaps_buf = np.empty(256, dtype=float)
        self._gaps_len = 0
        self._gaps_scanned = 0
        self._gaps_last_nz = -1
        # Per-window prediction memo: the count history only changes at
        # window ticks, so all predictions are constant while its length is.
        self._pred_win = -1
        self._pred_cache: dict[str, float | int] = {}
        # Mirror of the directives this policy has issued, for the
        # unchanged-directive skip (the gateway holds the same mapping).
        self._issued_directives: dict[str, FunctionDirective] = {}

    # -- predictor training -------------------------------------------------
    def _train(self, counts: np.ndarray, seed: int) -> None:
        if self.invocation_predictor is None:
            try:
                self.invocation_predictor = _cached_predictor(
                    _train_key("invocation", counts, seed),
                    lambda: InvocationPredictor(
                        bucket_size=1, n_buckets=16, epochs=4, seed=seed
                    ).fit(counts),
                )
            except ValueError:
                self.invocation_predictor = None
        if self.interarrival_predictor is None:
            try:
                self.interarrival_predictor = _cached_predictor(
                    _train_key("interarrival", counts, seed),
                    lambda: InterArrivalPredictor(epochs=15, seed=seed).fit(
                        counts
                    ),
                )
            except ValueError:
                self.interarrival_predictor = None

    # -- predictions ------------------------------------------------------------
    def predict_inter_arrival(self, counts: np.ndarray) -> float:
        """Predicted gap to the next invocation (seconds)."""
        return self._it_from_gaps(gaps_from_counts(counts), counts)

    def _it_from_gaps(self, gaps: np.ndarray, counts: np.ndarray) -> float:
        p = self.interarrival_predictor
        if (
            p is not None
            and p.trained
            and gaps.size >= p.gap_window
            and counts.size >= p.count_window
        ):
            return p.predict_next(gaps, counts)
        if gaps.size:
            # Conservative (low-quantile) fallback: under-estimating IT makes
            # pre-warming early, which costs a little idle time; the paper's
            # predictor is trained asymmetrically for the same reason.
            return float(np.quantile(gaps[-10:], 0.25))
        return self.default_it

    def predict_inter_arrival_upper(self, counts: np.ndarray) -> float:
        """High-side gap estimate for keep-alive sizing.

        Keep-alive must *survive* until the next arrival, so it needs an
        over-estimate — the mirror image of the pre-warm-timing estimate.
        """
        return self._it_upper_from_gaps(gaps_from_counts(counts), counts)

    def _it_upper_from_gaps(self, gaps: np.ndarray, counts: np.ndarray) -> float:
        if gaps.size:
            return float(np.quantile(gaps[-10:], 0.9))
        return max(self.predict_inter_arrival(counts), self.default_it)

    def _gaps(self, counts: np.ndarray) -> np.ndarray:
        """Incrementally maintained ``gaps_from_counts(counts)``.

        The count history is append-only within a run, so only the
        yet-unscanned suffix is searched for non-empty windows; the gaps
        accumulate in a doubling buffer and a read-only view is returned.
        O(new windows) per call instead of O(total windows).
        """
        n = counts.size
        if n > self._gaps_scanned:
            nz = np.flatnonzero(counts[self._gaps_scanned :])
            if nz.size:
                idxs = nz + self._gaps_scanned
                if self._gaps_last_nz >= 0:
                    starts = np.concatenate(([self._gaps_last_nz], idxs[:-1]))
                    new_gaps = (idxs - starts).astype(float) * 1.0
                else:
                    new_gaps = np.diff(idxs).astype(float) * 1.0
                end = self._gaps_len + new_gaps.size
                if end > self._gaps_buf.size:
                    grown = np.empty(
                        max(self._gaps_buf.size * 2, end), dtype=float
                    )
                    grown[: self._gaps_len] = self._gaps_buf[: self._gaps_len]
                    self._gaps_buf = grown
                self._gaps_buf[self._gaps_len : end] = new_gaps
                self._gaps_len = end
                self._gaps_last_nz = int(idxs[-1])
            self._gaps_scanned = n
        view = self._gaps_buf[: self._gaps_len]
        view.setflags(write=False)
        return view

    def _predicted(self, counts: np.ndarray, kind: str):
        """Per-window memo over the prediction helpers.

        Keyed on the history length: the history is append-only and the
        predictors' weights are frozen during a run, so every prediction
        is a pure function of the (length-identified) history.  Values are
        computed by the exact same code paths as the public ``predict_*``
        methods, so cached and uncached results are bit-identical.
        """
        if counts.size != self._pred_win:
            self._pred_win = counts.size
            self._pred_cache = {}
        val = self._pred_cache.get(kind)
        if val is None:
            gaps = self._gaps(counts)
            if kind == "it":
                val = self._it_from_gaps(gaps, counts)
            elif kind == "it_upper":
                val = self._it_upper_from_gaps(gaps, counts)
            else:
                val = self.predict_invocations(counts)
            self._pred_cache[kind] = val
        return val

    def predict_invocations(self, counts: np.ndarray) -> int:
        """Predicted invocation count for the next window."""
        p = self.invocation_predictor
        if p is not None and p.trained and counts.size >= p.window:
            return max(0, p.predict_next(counts))
        if counts.size == 0:
            return 0
        if counts.size == 1:
            return int(counts[-1])
        last, prev = int(counts[-1]), int(counts[-2])
        if last < 2:
            return last
        # Fallback: linear ramp extrapolation so a growing burst is met with
        # capacity for its *next* level, not its current one.
        return max(last, 2 * last - prev)

    def _burst_budgets(self, app: AppDAG) -> dict[str, float]:
        """Per-stage latency budgets for the burst (scale-up) regime.

        Instead of the steady plan's stage times — which leave no slack for
        batch/queue absorption — the SLA is re-divided proportionally to
        each stage's *fastest achievable* inference time, normalized so
        every path's budget sum stays within the (margin-tightened) SLA.
        This realizes §V-B2's "dynamically scales up to higher-end
        configurations as needed".

        Memoized per application: profiles, space and SLA are fixed for
        the policy's lifetime, so the simple-path walk and per-config
        minimum run once instead of on every install/scale call.
        """
        cached = self._budgets_cache.get(app.name)
        if cached is not None:
            return cached
        fastest = {
            fn: min(
                self.profiles[fn].inference_time(cfg)
                for cfg in self.space
                if self.profiles[fn].supports(cfg.backend)
            )
            for fn in app.function_names
        }
        target = app.sla * (1.0 - self.sla_margin)
        budgets: dict[str, float] = {}
        for path in app.simple_paths():
            total = sum(fastest[f] for f in path)
            for f in path:
                share = target * fastest[f] / total
                budgets[f] = min(budgets.get(f, math.inf), share)
        self._budgets_cache[app.name] = budgets
        return budgets

    def _prewarm_grace(self) -> float:
        """Idle grace for pre-warmed instances awaiting their arrival.

        Sized by prediction uncertainty: the low-quantile IT estimate makes
        warm-up early by roughly ``it_upper - it_lower``, so the instance
        must be allowed to wait that long (plus safety) before being
        reclaimed.
        """
        spread = max(0.0, self._current_it_upper - self._current_it)
        return max(WARM_GRACE, spread + 2.0 * self.prewarm_safety)

    # -- strategy management -------------------------------------------------
    def _it_bucket(self, it: float) -> int:
        return int(round(math.log(max(it, 1e-3), self.it_rebucket_ratio)))

    def _strategy_for(self, it: float) -> ExecutionStrategy:
        assert self._app is not None
        bucket = self._it_bucket(it)
        if bucket not in self._strategy_cache:
            # Optimize at the bucket's representative IT so nearby predictions
            # share one strategy (bounds optimizer invocations).
            rep_it = float(self.it_rebucket_ratio**bucket)
            self._strategy_cache[bucket] = self.engine.strategy(
                self._app,
                self.profiles,
                rep_it,
                sla=self._app.sla * (1.0 - self.sla_margin),
            )
        return self._strategy_cache[bucket]

    def _standing_batch(self, fn: str, strategy: ExecutionStrategy) -> int:
        """Batch limit for the standing fleet.

        Sized so a queued batch still fits the function's burst-budget
        share: small arrival clusters are then absorbed by the instances
        already warm, without waiting for the Auto-scaler loop.

        Memoized per (function, planned config): the budget share is fixed
        per function, so the bisection result only depends on the config
        the strategy assigns.
        """
        assert self._app is not None
        plan = strategy.plan(fn)
        key = (fn, plan.config)
        cached = self._standing_batch_cache.get(key)
        if cached is None:
            budget = self._burst_budgets(self._app)[fn]
            batch = self.engine.autoscaler.max_feasible_batch(
                self.profiles[fn], plan.config, budget
            )
            cached = self._standing_batch_cache[key] = max(1, min(batch, 8))
        return cached

    def _set_directive(
        self,
        ctx: SimulationContext,
        fn: str,
        directive: FunctionDirective,
        reason: str,
    ) -> None:
        """Issue a directive, skipping no-op re-issues on untraced runs.

        Re-issuing a directive equal to the standing one changes nothing
        in the simulation, so cross-window churn (regime refreshes, burst
        holdover re-installs) can be elided.  Under a recorder every
        ``set_directive`` emits a distinct ``DirectiveChanged`` audit
        event, so the skip is gated on ``ctx.traced`` to keep recorded
        traces byte-identical.
        """
        if not ctx.traced and self._issued_directives.get(fn) == directive:
            return
        self._issued_directives[fn] = directive
        ctx.set_directive(fn, directive, reason)

    def _install_strategy(self, strategy: ExecutionStrategy, ctx: SimulationContext) -> None:
        assert self._app is not None
        self.strategy = strategy
        lat = {fn: strategy.plan(fn).inference_time for fn in self._app.function_names}
        # Start offset: when a stage begins relative to invocation arrival.
        finish: dict[str, float] = {}
        for fn in self._app.function_names:
            start = max(
                (finish[p] for p in self._app.predecessors(fn)), default=0.0
            )
            self._start_offsets[fn] = start
            finish[fn] = start + lat[fn]
        for fn in self._app.function_names:
            plan = strategy.plan(fn)
            # Risk-aware regime check: the plan's regime was chosen at the
            # bucket's representative IT; if the *current* gap estimate is
            # shorter than the function's initialization, a mispredicted
            # pre-warm cannot be recovered before the next arrival, so
            # keep-alive is the robust choice (the Case II boundary applied
            # online).
            prewarm_safe = plan.init_time + plan.inference_time < max(
                self._current_it, 1e-9
            )
            effective = (
                ColdStartPolicy.KEEP_ALIVE
                if plan.policy is ColdStartPolicy.KEEP_ALIVE or not prewarm_safe
                else ColdStartPolicy.PREWARM
            )
            self._effective_policy[fn] = effective
            if effective is ColdStartPolicy.KEEP_ALIVE:
                # Case II (§V-B1): keep the instance alive *until the next
                # invocation*, however long the realized gap is — the regime
                # itself flips to pre-warm only through re-optimization when
                # the predicted IT grows past T + I.
                why = (
                    "optimizer chose Case II"
                    if plan.policy is ColdStartPolicy.KEEP_ALIVE
                    else (
                        f"pre-warm unsafe: I+T="
                        f"{plan.init_time + plan.inference_time:.2f}s >= IT="
                        f"{self._current_it:.2f}s"
                    )
                )
                self._set_directive(
                    ctx,
                    fn,
                    FunctionDirective(
                        config=plan.config,
                        keep_alive=math.inf,
                        batch=self._standing_batch(fn, strategy),
                        min_warm=1,
                        warm_grace=WARM_GRACE,
                    ),
                    reason=(
                        f"keep-alive regime ({why}); strategy IT="
                        f"{strategy.inter_arrival:.2f}s"
                    ),
                )
            else:
                self._set_directive(
                    ctx,
                    fn,
                    FunctionDirective(
                        config=plan.config,
                        keep_alive=0.0,
                        batch=self._standing_batch(fn, strategy),
                        min_warm=0,
                        warm_grace=self._prewarm_grace(),
                    ),
                    reason=(
                        f"pre-warm regime: I+T="
                        f"{plan.init_time + plan.inference_time:.2f}s < IT="
                        f"{self._current_it:.2f}s; strategy IT="
                        f"{strategy.inter_arrival:.2f}s"
                    ),
                )

    # -- Policy callbacks -------------------------------------------------------
    def on_register(self, app: AppDAG, ctx: SimulationContext) -> None:
        """Compute the initial strategy and warm the initial fleet.

        Deploy-time warm-up mirrors the real platform: the Container Manager
        brings one instance per function up when the application is
        submitted, so the first invocation is not an all-cold traversal.
        """
        self._app = app
        self._current_it = self.default_it
        self._reset_run_state()
        self._install_strategy(self._strategy_for(self.default_it), ctx)
        assert self.strategy is not None
        for fn in app.function_names:
            ctx.schedule_warmup(fn, 0.0, config=self.strategy.plan(fn).config)

    def _init_lead(self, fn: str, plan, ctx: SimulationContext) -> float:
        """Initialization lead to budget before the predicted arrival.

        Swap-capable GPU models whose weights are host-resident
        (:meth:`SimulationContext.model_resident`) come up at swap-in cost
        rather than a full cold start, so the pre-warm can be scheduled
        that much later — shrinking the billed pre-warm idle window.
        Fixed profiles (no ``swap_time``) always take ``plan.init_time``,
        keeping the default regime's floats bit-identical.
        """
        swap = self.profiles[fn].swap_time(plan.config)
        if swap is not None and swap < plan.init_time and ctx.model_resident(fn):
            return swap
        return plan.init_time

    def on_arrival(self, invocation: Invocation, ctx: SimulationContext) -> None:
        """Schedule pre-warms for the *next* predicted invocation (§V-B1)."""
        assert self.strategy is not None
        self._last_arrival = ctx.now
        if self._inactive:
            # Traffic resumed after an idle stretch: restore the fleet.
            self._inactive = False
            self._install_strategy(self.strategy, ctx)
        counts = ctx.counts_history()
        it = self._predicted(counts, "it")
        self._current_it = it
        t_next = ctx.now + it
        for fn in ctx.app.function_names:
            plan = self.strategy.plan(fn)
            if self._effective_policy.get(fn) is not ColdStartPolicy.PREWARM:
                continue
            start = (
                t_next
                + self._start_offsets[fn]
                - self._init_lead(fn, plan, ctx)
                - self.prewarm_safety
            )
            ctx.schedule_warmup(fn, start, config=plan.config)

    def on_window(self, t: float, ctx: SimulationContext) -> None:
        """Re-optimize on IT drift; engage the Auto-scaler under bursts."""
        assert self.strategy is not None
        counts = ctx.counts_history()
        it = self._predicted(counts, "it")
        self._current_it = it
        self._current_it_upper = self._predicted(counts, "it_upper")

        # Burst context: burst-level counts seen within the holdover period.
        hold = int(self.burst_holdover / ctx.window)
        recent_peak = (
            int(counts[-min(counts.size, hold):].max()) if counts.size else 0
        )
        burst_context = recent_peak >= 2

        # Re-optimize only when the prediction leaves a hysteresis band of
        # one bucket on either side of the installed strategy's IT —
        # flapping between adjacent strategies leaves a mixed-config fleet
        # whose stage latencies match neither plan.  During a burst the gap
        # estimate is polluted by intra-burst gaps, so the strategy is
        # frozen until the burst holdover passes.
        band = self.it_rebucket_ratio**1.5
        installed_it = self.strategy.inter_arrival
        if (
            not self._inactive
            and not burst_context
            and not (installed_it / band <= it <= installed_it * band)
        ):
            self._install_strategy(self._strategy_for(it), ctx)
        elif not self._inactive and not self._scaled_out:
            # Regime refresh: the pre-warm/keep-alive risk check depends on
            # the *current* IT estimate, which evolves between re-installs.
            for fn in ctx.app.function_names:
                plan = self.strategy.plan(fn)
                safe = plan.init_time + plan.inference_time < max(it, 1e-9)
                want = (
                    ColdStartPolicy.PREWARM
                    if plan.policy is ColdStartPolicy.PREWARM and safe
                    else ColdStartPolicy.KEEP_ALIVE
                )
                if want is not self._effective_policy.get(fn):
                    self._install_strategy(self.strategy, ctx)
                    break

        g = self._predicted(counts, "g")
        # Burst holdover: keep the scaled fleet sized for the recent peak —
        # ramps dip and rebound faster than instances can re-initialize.
        if burst_context:
            g = max(g, recent_peak)
        if g >= 1 and self.engine.needs_scaling(self.strategy, g, ctx.window):
            decisions = self.engine.scale(
                ctx.app,
                self.profiles,
                self.strategy,
                g,
                max(it, ctx.window),
                budgets=self._burst_budgets(ctx.app),
                max_init_time=self.burst_react_init,
            )
            for fn, d in decisions.items():
                plan = self.strategy.plan(fn)
                self._set_directive(
                    ctx,
                    fn,
                    FunctionDirective(
                        config=d.config,
                        keep_alive=max(ctx.window * KEEP_ALIVE_MARGIN, it),
                        batch=d.batch,
                        min_warm=d.instances,
                        warm_grace=WARM_GRACE,
                    ),
                    reason=(
                        f"auto-scaler burst: g={g} predicted arrivals -> "
                        f"{d.instances}x {d.config.key}, batch={d.batch}"
                    ),
                )
            self._scaled_out = True
        elif self._scaled_out:
            # Burst over: fall back to the steady-state strategy.
            self._install_strategy(self.strategy, ctx)
            self._scaled_out = False

        if self._scaled_out or self._inactive:
            return
        idle_for = t - (self._last_arrival if self._last_arrival is not None else 0.0)
        if self._last_arrival is not None and idle_for > max(
            3.0 * self._current_it_upper, 30.0
        ):
            # Traffic ceased: release the whole fleet until arrivals resume.
            self._inactive = True
            for fn in ctx.app.function_names:
                d = ctx.directive(fn)
                self._set_directive(
                    ctx,
                    fn,
                    FunctionDirective(
                        config=d.config, keep_alive=0.0, batch=1, min_warm=0,
                        warm_grace=0.0,
                    ),
                    reason=(
                        f"traffic idle {idle_for:.1f}s: release fleet until "
                        f"arrivals resume"
                    ),
                )
            return
        # Watchdog: if a pre-warm-regime function lost its scheduled warm-up
        # (prediction missed low after a burst, grace expired), re-warm in
        # time for the revised expected arrival.
        if self._last_arrival is None:
            return
        expected_next = self._last_arrival + it
        grace = self._prewarm_grace()
        for fn in ctx.app.function_names:
            plan = self.strategy.plan(fn)
            if self._effective_policy.get(fn) is not ColdStartPolicy.PREWARM:
                continue
            d = ctx.directive(fn)
            if abs(d.warm_grace - grace) > 0.5:
                self._set_directive(
                    ctx,
                    fn,
                    FunctionDirective(
                        config=d.config,
                        keep_alive=d.keep_alive,
                        batch=d.batch,
                        min_warm=d.min_warm,
                        warm_grace=grace,
                    ),
                    reason=(
                        f"watchdog: warm grace {d.warm_grace:.1f}s -> "
                        f"{grace:.1f}s for revised IT"
                    ),
                )
            if ctx.live_count(fn) > 0 or ctx.queue_length(fn) > 0:
                continue
            due = (
                expected_next
                + self._start_offsets[fn]
                - plan.init_time
                - self.prewarm_safety
            )
            if t >= due - ctx.window:
                ctx.schedule_warmup(fn, t, config=plan.config)

"""Aquatope baseline [24]: Bayesian-optimized configs, on-demand containers.

Aquatope searches the workflow's configuration space with uncertainty-aware
Bayesian optimization to minimize cost subject to the latency QoS.  It
reasons about resource *configuration* but not about cold-start timing:
containers launch on demand and linger only for a short keep-alive.  The
result (paper §VII-B) is a low steady-state cost but the most frequent
container (re)initializations of all systems (Fig. 9b) and SLA violations
up to 40 % whenever an initialization lands on the critical path.

The BO objective scores a candidate assignment by its adaptive-policy cost
(Eq. 4/5) with a large penalty for expected-latency SLA violations — the
same latency model Aquatope would fit from traces, here supplied by the
profiler.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.bayesopt import BayesianOptimizer
from repro.core.prewarming import evaluate_assignment
from repro.dag.graph import AppDAG
from repro.hardware.configs import ConfigurationSpace, HardwareConfig
from repro.policies.base import Policy
from repro.policies.registry import register_policy
from repro.profiler.profiles import FunctionProfile
from repro.simulator.gateway import SimulationContext
from repro.simulator.invocation import FunctionDirective

#: Penalty factor applied to the objective when expected latency misses SLA.
_SLA_PENALTY = 100.0


@register_policy("aquatope")
class AquatopePolicy(Policy):
    """BO-tuned configurations with on-demand cold starts."""

    name = "aquatope"

    def __init__(
        self,
        profiles: Mapping[str, FunctionProfile],
        *,
        space: ConfigurationSpace | None = None,
        keep_alive: float = 5.0,
        planning_it: float = 10.0,
        n_iter: int = 60,
        seed: int = 0,
    ) -> None:
        self.profiles = dict(profiles)
        self.space = space or ConfigurationSpace.default()
        self.keep_alive = float(keep_alive)
        self.planning_it = float(planning_it)
        self.n_iter = int(n_iter)
        self.seed = int(seed)
        self.assignment: dict[str, HardwareConfig] = {}

    def _decode(self, x: np.ndarray, functions: tuple[str, ...]) -> dict[str, HardwareConfig]:
        configs = self.space.configs
        idx = np.clip((x * len(configs)).astype(int), 0, len(configs) - 1)
        return {fn: configs[i] for fn, i in zip(functions, idx)}

    def tune(self, app: AppDAG) -> dict[str, HardwareConfig]:
        """Run the BO loop and return the tuned assignment."""
        functions = app.function_names

        def objective(x: np.ndarray) -> float:
            assignment = self._decode(x, functions)
            # Aquatope's QoS model is fit from (warm) executions: latency is
            # the warm critical path and cost the busy + keep-alive billing.
            # Initialization time appears in neither — its blind spot.
            warm_latency = app.critical_path_latency(
                {
                    fn: self.profiles[fn].inference_time(assignment[fn])
                    for fn in functions
                }
            )
            cost = sum(
                (
                    self.profiles[fn].inference_time(assignment[fn])
                    + self.keep_alive
                )
                * assignment[fn].unit_cost
                for fn in functions
            )
            penalty = (
                _SLA_PENALTY * (warm_latency / app.sla)
                if warm_latency > app.sla
                else 0.0
            )
            return cost * 1e4 + penalty

        result = BayesianOptimizer(
            dim=len(functions),
            n_initial=16,
            n_candidates=512,
            length_scale=0.15,
            seed=self.seed,
        ).minimize(objective, n_iter=self.n_iter)
        return self._decode(result.best_x, functions)

    def on_register(self, app: AppDAG, ctx: SimulationContext) -> None:
        """Tune configurations; run containers on demand afterwards."""
        self.assignment = self.tune(app)
        for fn in app.function_names:
            ctx.set_directive(
                fn,
                FunctionDirective(
                    config=self.assignment[fn],
                    keep_alive=self.keep_alive,
                    batch=1,
                    warm_grace=self.keep_alive,
                ),
                reason=(
                    f"aquatope: BO-tuned config, "
                    f"keep-alive {self.keep_alive:g}s"
                ),
            )

"""Orion baseline [4]: sizing under the "right pre-warming" assumption.

Orion co-designs configurations assuming every function's initialization
perfectly overlaps its predecessor's execution — i.e. it prices each
function at the pre-warm cost ``(T + I) * U`` *regardless of the actual
inter-arrival time* (§II-C2).  The assumption holds when invocations are far
apart; when several arrive within a short period the pre-warmed instance is
still busy (or already gone), so extra instances cold-start on the critical
path, producing SLA violations and extra cost (Fig. 3a).

Runtime behaviour: pre-warms for the next invocation using a simple mean of
observed gaps (Orion has no burst-aware predictor), ``keep_alive = 0``, no
adaptive batching, no scale-out.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.prewarming import ColdStartPolicy
from repro.core.workflow import WorkflowManager
from repro.dag.graph import AppDAG
from repro.hardware.configs import ConfigurationSpace
from repro.policies.base import Policy
from repro.policies.registry import register_policy
from repro.predictor.interarrival import gaps_from_counts
from repro.profiler.profiles import FunctionProfile
from repro.simulator.gateway import SimulationContext
from repro.simulator.invocation import FunctionDirective, Invocation

#: IT used for *planning*: effectively infinite, so every function is priced
#: and managed as if right pre-warming always applies.
_PLANNING_IT = 1e9


@register_policy("orion")
class OrionPolicy(Policy):
    """Right-pre-warming sizing; breaks under closely spaced invocations."""

    name = "orion"

    def __init__(
        self,
        profiles: Mapping[str, FunctionProfile],
        *,
        space: ConfigurationSpace | None = None,
        default_it: float = 10.0,
    ) -> None:
        self.profiles = dict(profiles)
        self.space = space or ConfigurationSpace.default()
        self.default_it = float(default_it)
        self._start_offsets: dict[str, float] = {}
        self._plans: dict[str, object] = {}

    def on_register(self, app: AppDAG, ctx: SimulationContext) -> None:
        """Plan once, pricing every function at its pre-warm cost."""
        strategy = WorkflowManager(self.space).optimize(
            app, self.profiles, _PLANNING_IT
        )
        finish: dict[str, float] = {}
        for fn in app.function_names:
            plan = strategy.plan(fn)
            assert plan.policy is ColdStartPolicy.PREWARM  # IT is huge
            start = max((finish[p] for p in app.predecessors(fn)), default=0.0)
            self._start_offsets[fn] = start
            finish[fn] = start + plan.inference_time
            self._plans[fn] = plan
            ctx.set_directive(
                fn,
                FunctionDirective(
                    config=plan.config, keep_alive=0.0, batch=1, warm_grace=6.0
                ),
                reason="orion: pre-warm regime, warm per predicted gap",
            )

    def on_arrival(self, invocation: Invocation, ctx: SimulationContext) -> None:
        """Pre-warm for the next invocation at the mean observed gap."""
        gaps = gaps_from_counts(ctx.counts_history())
        it = float(np.mean(gaps[-10:])) if gaps.size else self.default_it
        t_next = ctx.now + it
        for fn in ctx.app.function_names:
            plan = self._plans[fn]
            start = t_next + self._start_offsets[fn] - plan.init_time  # type: ignore[attr-defined]
            ctx.schedule_warmup(fn, start, config=plan.config)  # type: ignore[attr-defined]

"""Scheduling policies: SMIless, the paper's baselines, and ablations.

Every policy plugs into the simulator through the
:class:`~repro.policies.base.Policy` callbacks and differs only in its
*decisions* — configuration choice, cold-start management and scaling:

- :class:`SMIlessPolicy` — the paper's system: co-optimized configuration +
  adaptive pre-warming from the Optimizer Engine, LSTM predictions,
  batching/scale-out from the Auto-scaler (§III–V);
- :class:`OrionPolicy` — sizes configurations assuming "right pre-warming"
  always holds [4]; breaks down when invocations arrive close together;
- :class:`IceBreakerPolicy` — per-function Fourier-predicted warm-up on
  cost-vs-speed hardware, DAG-oblivious [17];
- :class:`GrandSLAmPolicy` — per-stage slack division with always-on
  instances, no cold-start management [5];
- :class:`AquatopePolicy` — Bayesian-optimized configurations with
  on-demand containers and a short keep-alive [24];
- :class:`OptimalPolicy` — oracle: exhaustive search on true performance
  plus perfectly timed pre-warming from the actual trace;
- :class:`SMIlessNoDagPolicy` / :class:`SMIlessHomoPolicy` — the §VII-C3
  ablations (simultaneous warm-up; CPU-only configurations).
"""

from repro.policies.ablations import SMIlessHomoPolicy, SMIlessNoDagPolicy
from repro.policies.aquatope import AquatopePolicy
from repro.policies.base import AlwaysOnPolicy, OnDemandPolicy, Policy
from repro.policies.grandslam import GrandSLAmPolicy
from repro.policies.icebreaker import IceBreakerPolicy
from repro.policies.optimal import OptimalPolicy
from repro.policies.orion import OrionPolicy
from repro.policies.registry import (
    PolicySpec,
    get_policy_spec,
    make_policy,
    policy_names,
    register_policy,
    registered_policies,
)
from repro.policies.smiless import SMIlessPolicy

__all__ = [
    "Policy",
    "PolicySpec",
    "register_policy",
    "registered_policies",
    "policy_names",
    "get_policy_spec",
    "make_policy",
    "AlwaysOnPolicy",
    "OnDemandPolicy",
    "SMIlessPolicy",
    "OrionPolicy",
    "IceBreakerPolicy",
    "GrandSLAmPolicy",
    "AquatopePolicy",
    "OptimalPolicy",
    "SMIlessNoDagPolicy",
    "SMIlessHomoPolicy",
]

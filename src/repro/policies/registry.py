"""Decorator-based policy registry.

Every scheduling policy registers itself at class-definition time::

    @register_policy("smiless", kwargs={"train_counts": "train_counts"})
    class SMIlessPolicy(Policy):
        ...

The registration carries a *constructor spec*: which environment
ingredients (attributes of
:class:`~repro.experiments.runners.Environment` — ``profiles``,
``train_counts``, ``oracle``, ``trace``) the policy's constructor takes,
positionally (``args``) and by keyword (``kwargs``).  :func:`make_policy`
resolves a name to its spec and instantiates the policy from an
environment, replacing the old hard-coded if-chain in
``Environment.make_policy``; experiment runners, the CLI and the scenario
compiler all resolve policies through this one table.

Unknown names raise a :class:`KeyError` that lists every registered
policy; duplicate registrations are rejected eagerly so two modules can
never silently fight over a name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.policies.base import Policy

__all__ = [
    "PolicySpec",
    "register_policy",
    "registered_policies",
    "policy_names",
    "get_policy_spec",
    "make_policy",
]


@dataclass(frozen=True)
class PolicySpec:
    """One registry entry: the policy class plus its constructor spec."""

    name: str
    cls: type
    #: Environment attributes passed positionally to the constructor.
    args: tuple[str, ...] = ()
    #: Constructor keyword -> environment attribute supplying its value.
    kwargs: Mapping[str, str] = field(default_factory=dict)

    def build(self, env: Any) -> "Policy":
        """Instantiate the policy from an environment-like object."""
        positional = [getattr(env, attr) for attr in self.args]
        keyword = {kw: getattr(env, attr) for kw, attr in self.kwargs.items()}
        return self.cls(*positional, **keyword)


_REGISTRY: dict[str, PolicySpec] = {}


def register_policy(
    name: str,
    *,
    args: tuple[str, ...] = ("profiles",),
    kwargs: Mapping[str, str] | None = None,
):
    """Class decorator registering a policy under ``name``.

    ``args`` / ``kwargs`` name the environment attributes the constructor
    consumes (see :class:`PolicySpec`).  Policies whose constructor takes
    no environment ingredients register with ``args=()``.
    """

    def decorate(cls: type) -> type:
        if name in _REGISTRY:
            raise ValueError(
                f"policy {name!r} is already registered "
                f"(by {_REGISTRY[name].cls.__name__})"
            )
        _REGISTRY[name] = PolicySpec(
            name=name, cls=cls, args=tuple(args), kwargs=dict(kwargs or {})
        )
        return cls

    return decorate


def registered_policies() -> dict[str, PolicySpec]:
    """Snapshot of the registry, keyed by policy name."""
    return dict(_REGISTRY)


def policy_names() -> tuple[str, ...]:
    """All registered policy names, sorted for stable display."""
    return tuple(sorted(_REGISTRY))


def get_policy_spec(name: str) -> PolicySpec:
    """Look up one registration; unknown names list the whole registry."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def make_policy(name: str, env: Any) -> "Policy":
    """Instantiate the policy registered under ``name`` from ``env``."""
    return get_policy_spec(name).build(env)

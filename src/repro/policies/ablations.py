"""SMIless ablations (paper §VII-C3, Fig. 13).

- **SMIless-No-DAG** disregards the DAG structure and warms up *all*
  function instances simultaneously based on the inter-arrival time: every
  pre-warm targets readiness at the (predicted) arrival instant rather
  than the function's start offset along the critical path, so deep
  functions sit warm-and-idle while upstream stages execute — the paper
  measures this costing 39 % extra.
- **SMIless-Homo** restricts the configuration space to CPU backends only;
  without GPU options the tight-SLA regimes become infeasible and the
  violation ratio climbs to 22 %.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.prewarming import ColdStartPolicy
from repro.hardware.configs import ConfigurationSpace
from repro.policies.registry import register_policy
from repro.policies.smiless import SMIlessPolicy
from repro.profiler.profiles import FunctionProfile
from repro.simulator.gateway import SimulationContext
from repro.simulator.invocation import Invocation


@register_policy("smiless-no-dag", kwargs={"train_counts": "train_counts"})
class SMIlessNoDagPolicy(SMIlessPolicy):
    """SMIless without any DAG awareness (§VII-C3).

    Two differences from the full system: (a) configurations are chosen
    per-function against an equal share ``SLA / N`` of the latency budget —
    without the DAG there is no critical-path view to divide slack by, so
    every function must individually be fast enough for the worst case,
    forcing costlier configurations; (b) pre-warms target the arrival
    instant for every function instead of its start offset, so deep
    functions idle while upstream stages execute.
    """

    name = "smiless-no-dag"

    def _strategy_for(self, it: float):
        assert self._app is not None
        bucket = self._it_bucket(it)
        if bucket not in self._strategy_cache:
            from repro.core.path_search import build_candidates
            from repro.core.prewarming import evaluate_assignment
            from repro.core.workflow import WorkflowManager

            rep_it = float(self.it_rebucket_ratio**bucket)
            share = self._app.sla * (1.0 - self.sla_margin) / len(self._app)
            cands = build_candidates(
                self._app.function_names, self.profiles, self.space, rep_it
            )
            assignment = {}
            for fn in self._app.function_names:
                feasible = [c for c in cands[fn] if c.inference_time <= share]
                pick = (
                    feasible[0]  # cheapest within the share
                    if feasible
                    else min(cands[fn], key=lambda c: c.inference_time)
                )
                assignment[fn] = pick.config
            evaluation = evaluate_assignment(
                self._app,
                assignment,
                self.profiles,
                rep_it,
                sla=self._app.sla * (1.0 - self.sla_margin),
            )
            self._strategy_cache[bucket] = WorkflowManager._strategy(
                self._app, assignment, evaluation, rep_it
            )
        return self._strategy_cache[bucket]

    def on_arrival(self, invocation: Invocation, ctx: SimulationContext) -> None:
        """Warm every pre-warm-regime function for the arrival instant."""
        assert self.strategy is not None
        counts = ctx.counts_history()
        it = self._predicted(counts, "it")
        self._current_it = it
        t_next = ctx.now + it
        for fn in ctx.app.function_names:
            plan = self.strategy.plan(fn)
            if plan.policy is not ColdStartPolicy.PREWARM:
                continue
            # No start offset: all instances ready simultaneously at t_next
            # (same prediction safety as the full system, so the comparison
            # isolates the missing DAG-awareness).
            start = t_next - plan.init_time - self.prewarm_safety
            ctx.schedule_warmup(fn, start, config=plan.config)


@register_policy("smiless-homo", kwargs={"train_counts": "train_counts"})
class SMIlessHomoPolicy(SMIlessPolicy):
    """SMIless restricted to homogeneous (CPU-only) configurations."""

    name = "smiless-homo"

    def __init__(
        self,
        profiles: Mapping[str, FunctionProfile],
        *,
        train_counts: np.ndarray | None = None,
        **kwargs,
    ) -> None:
        kwargs.pop("space", None)
        super().__init__(
            profiles,
            space=ConfigurationSpace.cpu_only(),
            train_counts=train_counts,
            **kwargs,
        )

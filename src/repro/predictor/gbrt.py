"""Gradient-boosted regression trees — the XGBoost stand-in for Fig. 12.

XGBoost cannot be installed in this environment, so the comparison baseline
is a from-scratch gradient-boosting regressor on lagged features: squared
loss, shallow CART trees grown greedily by variance reduction, shrinkage,
and quantile-candidate split search.  It is deliberately small but is a real
boosted-trees learner, not a stub.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.predictor.lstm import make_windows
from repro.utils.validation import check_in_range, check_positive


@dataclass
class _Node:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    value: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None


class RegressionTree:
    """CART regression tree with greedy variance-reduction splits."""

    def __init__(
        self, max_depth: int = 3, min_samples_leaf: int = 5, n_thresholds: int = 16
    ) -> None:
        check_positive("max_depth", max_depth)
        check_positive("min_samples_leaf", min_samples_leaf)
        check_positive("n_thresholds", n_thresholds)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.n_thresholds = int(n_thresholds)
        self.root: _Node | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Grow the tree on (X, y)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) and y (n,) with matching n")
        self.root = self._grow(X, y, depth=0)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or y.size < 2 * self.min_samples_leaf:
            return node
        best_gain, best = 0.0, None
        base_sse = float(((y - y.mean()) ** 2).sum())
        for j in range(X.shape[1]):
            col = X[:, j]
            qs = np.unique(
                np.quantile(col, np.linspace(0.05, 0.95, self.n_thresholds))
            )
            for thr in qs:
                mask = col <= thr
                nl = int(mask.sum())
                if nl < self.min_samples_leaf or y.size - nl < self.min_samples_leaf:
                    continue
                yl, yr = y[mask], y[~mask]
                sse = float(((yl - yl.mean()) ** 2).sum()) + float(
                    ((yr - yr.mean()) ** 2).sum()
                )
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain, best = gain, (j, float(thr), mask)
        if best is None:
            return node
        j, thr, mask = best
        node.feature, node.threshold = j, thr
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Per-row predictions."""
        if self.root is None:
            raise RuntimeError("tree must be fit() before prediction")
        X = np.asarray(X, dtype=float)
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.root
            while node.feature is not None:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.value
        return out


class GbrtPredictor:
    """Boosted trees over lagged features, with next-step forecasting API."""

    def __init__(
        self,
        lags: int = 12,
        n_estimators: int = 60,
        learning_rate: float = 0.1,
        max_depth: int = 3,
    ) -> None:
        check_positive("lags", lags)
        check_positive("n_estimators", n_estimators)
        check_in_range("learning_rate", learning_rate, 1e-6, 1.0)
        self.lags = int(lags)
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self._trees: list[RegressionTree] = []
        self._base = 0.0

    def fit(self, series: np.ndarray) -> "GbrtPredictor":
        """Fit boosted trees on (lag-window → next value) pairs."""
        X, y = make_windows(np.asarray(series, dtype=float), self.lags)
        self._base = float(y.mean())
        resid = y - self._base
        self._trees = []
        pred = np.zeros_like(y)
        for _ in range(self.n_estimators):
            tree = RegressionTree(max_depth=self.max_depth).fit(X, resid - pred)
            self._trees.append(tree)
            pred = pred + self.learning_rate * tree.predict(X)
        return self

    def _predict_features(self, X: np.ndarray) -> np.ndarray:
        out = np.full(X.shape[0], self._base)
        for tree in self._trees:
            out = out + self.learning_rate * tree.predict(X)
        return out

    def predict_next(self, history: np.ndarray) -> float:
        """One-step-ahead forecast from the trailing lag window."""
        if not self._trees:
            raise RuntimeError("predictor must be fit() before prediction")
        h = np.asarray(history, dtype=float)
        if h.size < self.lags:
            raise ValueError(f"need >= {self.lags} observations, got {h.size}")
        return float(self._predict_features(h[-self.lags :][None, :])[0])

    def rolling_predict(self, series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(actual, predicted) one-step forecasts along a held-out series."""
        X, y = make_windows(np.asarray(series, dtype=float), self.lags)
        return y, self._predict_features(X)

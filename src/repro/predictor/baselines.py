"""Baseline forecasters for the Fig. 12 predictor comparison.

- :class:`ArimaPredictor` — an ARIMA(p, d, 0) model fit by conditional least
  squares (the paper cites ARIMA as the classic time-series baseline [61]);
- :class:`FipPredictor` — IceBreaker's Fourier-transform-based invocation
  prediction [17]: keep the dominant harmonics of the training series and
  extrapolate them forward;
- :class:`SlidingWindowPredictor` — a simple recent-window statistic
  (mean / max / last), the usual keep-alive heuristic.

All share the interface ``fit(series)`` → ``predict_next(history)`` →
``rolling_predict(series)`` so the Fig. 12 bench can sweep them uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class ArimaPredictor:
    """AR(p) on the d-times-differenced series, fit by least squares."""

    def __init__(self, p: int = 8, d: int = 0) -> None:
        check_positive("p", p)
        if d < 0:
            raise ValueError(f"d must be >= 0, got {d}")
        self.p = int(p)
        self.d = int(d)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def _difference(self, series: np.ndarray) -> np.ndarray:
        for _ in range(self.d):
            series = np.diff(series)
        return series

    def fit(self, series: np.ndarray) -> "ArimaPredictor":
        """Estimate AR coefficients from a training series."""
        s = self._difference(np.asarray(series, dtype=float))
        if s.size <= self.p + 1:
            raise ValueError(
                f"series too short ({s.size}) for AR order {self.p} after differencing"
            )
        X = np.column_stack(
            [s[self.p - k - 1 : s.size - k - 1] for k in range(self.p)]
            + [np.ones(s.size - self.p)]
        )
        y = s[self.p :]
        sol, *_ = np.linalg.lstsq(X, y, rcond=None)
        self.coef_ = sol[:-1]
        self.intercept_ = float(sol[-1])
        return self

    def predict_next(self, history: np.ndarray) -> float:
        """One-step-ahead forecast from the most recent observations."""
        if self.coef_ is None:
            raise RuntimeError("predictor must be fit() before prediction")
        h = np.asarray(history, dtype=float)
        if h.size < self.p + self.d:
            raise ValueError(f"need >= {self.p + self.d} observations")
        diffed = self._difference(h)
        lags = diffed[-self.p :][::-1]
        pred_diff = float(lags @ self.coef_) + self.intercept_
        # integrate back d times using the last levels of the history
        pred = pred_diff
        for k in range(self.d):
            tail = h
            for _ in range(self.d - 1 - k):
                tail = np.diff(tail)
            pred += tail[-1]
        return pred

    def rolling_predict(self, series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(actual, predicted) one-step forecasts along ``series``."""
        s = np.asarray(series, dtype=float)
        start = self.p + self.d
        actual, preds = [], []
        for t in range(start, s.size):
            preds.append(self.predict_next(s[:t]))
            actual.append(s[t])
        return np.array(actual), np.array(preds)


class FipPredictor:
    """Fourier-based Invocation Prediction (IceBreaker [17]).

    Fits the training series with its ``n_harmonics`` largest-magnitude FFT
    components (plus the mean) and predicts by evaluating the harmonic model
    at future time indices.
    """

    def __init__(self, n_harmonics: int = 8) -> None:
        check_positive("n_harmonics", n_harmonics)
        self.n_harmonics = int(n_harmonics)
        self._coeffs: list[tuple[float, float, float]] | None = None
        self._mean = 0.0
        self._n_train = 0

    def fit(self, series: np.ndarray) -> "FipPredictor":
        """Extract dominant harmonics from the training series."""
        s = np.asarray(series, dtype=float)
        if s.size < 4:
            raise ValueError("series too short for FFT fitting")
        self._mean = float(s.mean())
        self._n_train = s.size
        spectrum = np.fft.rfft(s - self._mean)
        freqs = np.fft.rfftfreq(s.size)
        order = np.argsort(np.abs(spectrum))[::-1]
        self._coeffs = []
        for idx in order[: self.n_harmonics]:
            if freqs[idx] == 0.0:
                continue
            amp = 2.0 * np.abs(spectrum[idx]) / s.size
            phase = float(np.angle(spectrum[idx]))
            self._coeffs.append((float(freqs[idx]), amp, phase))
        return self

    def predict_at(self, t: int | np.ndarray) -> np.ndarray:
        """Evaluate the harmonic model at absolute time index ``t``."""
        if self._coeffs is None:
            raise RuntimeError("predictor must be fit() before prediction")
        t = np.asarray(t, dtype=float)
        out = np.full_like(t, self._mean, dtype=float)
        for freq, amp, phase in self._coeffs:
            out = out + amp * np.cos(2 * np.pi * freq * t + phase)
        return np.clip(out, 0.0, None)

    def predict_next(self, history: np.ndarray) -> float:
        """Forecast the value at the index following ``history``."""
        return float(self.predict_at(np.asarray(history).size))

    def rolling_predict(self, series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(actual, predicted) pairs extrapolating beyond the training window."""
        s = np.asarray(series, dtype=float)
        idx = self._n_train + np.arange(s.size)
        return s, self.predict_at(idx)


class SlidingWindowPredictor:
    """Recent-window statistic: ``mean``, ``max`` or ``last``."""

    _STATS = {
        "mean": lambda w: float(np.mean(w)),
        "max": lambda w: float(np.max(w)),
        "last": lambda w: float(w[-1]),
    }

    def __init__(self, window: int = 10, stat: str = "mean") -> None:
        check_positive("window", window)
        if stat not in self._STATS:
            raise ValueError(f"stat must be one of {sorted(self._STATS)}, got {stat!r}")
        self.window = int(window)
        self.stat = stat

    def fit(self, series: np.ndarray) -> "SlidingWindowPredictor":
        """No-op (stateless model); kept for interface parity."""
        return self

    def predict_next(self, history: np.ndarray) -> float:
        """Statistic of the trailing window of ``history``."""
        h = np.asarray(history, dtype=float)
        if h.size == 0:
            raise ValueError("history must not be empty")
        return self._STATS[self.stat](h[-self.window :])

    def rolling_predict(self, series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(actual, predicted) one-step forecasts along ``series``."""
        s = np.asarray(series, dtype=float)
        actual, preds = [], []
        for t in range(1, s.size):
            preds.append(self.predict_next(s[:t]))
            actual.append(s[t])
        return np.array(actual), np.array(preds)

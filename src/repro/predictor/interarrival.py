"""Inter-arrival time prediction with a dual-input LSTM regressor (§IV-B2).

The inter-arrival time IT — the gap between two consecutive non-empty
invocation windows — determines the pre-warming window size, so
*over*-estimating it delays warm-up and violates the SLA.  The paper's
predictor therefore (a) consumes two input streams, the inter-arrival-time
series and the invocation-count series, through two separate LSTM modules
whose final hidden states are merged, passed through an activation layer and
a linear layer; and (b) trains with a loss that punishes over-estimation.

``dual_input=False`` gives the paper's SMIless-S ablation: a single LSTM
over the inter-arrival series only, which over-estimates roughly an order of
magnitude more often (Fig. 12b).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.predictor.lstm import (
    Adam,
    DenseLayer,
    LSTMLayer,
    asymmetric_squared_error,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


def gaps_from_counts(counts: np.ndarray, window: float = 1.0) -> np.ndarray:
    """Inter-arrival times (seconds) between non-empty windows of a series."""
    counts = np.asarray(counts)
    nz = np.flatnonzero(counts)
    if nz.size < 2:
        return np.empty(0)
    return np.diff(nz).astype(float) * window


#: Entries kept in a predictor's prediction memo before it is reset.
_PREDICT_MEMO_LIMIT = 4096


class InterArrivalPredictor:
    """Dual-LSTM inter-arrival regressor (hidden size 128 in the paper)."""

    def __init__(
        self,
        gap_window: int = 12,
        count_window: int = 30,
        hidden_size: int = 32,
        *,
        dual_input: bool = True,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 5e-3,
        over_weight: float = 25.0,
        window_seconds: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_positive("gap_window", gap_window)
        check_positive("count_window", count_window)
        check_positive("hidden_size", hidden_size)
        check_positive("epochs", epochs)
        check_positive("over_weight", over_weight)
        self.gap_window = int(gap_window)
        self.count_window = int(count_window)
        self.dual_input = bool(dual_input)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.window_seconds = float(window_seconds)
        rng = ensure_rng(seed)
        self._rng = rng
        self.gap_lstm = LSTMLayer(1, hidden_size, rng)
        merged = hidden_size * (2 if dual_input else 1)
        self.count_lstm = LSTMLayer(1, hidden_size, rng) if dual_input else None
        self.head = DenseLayer(merged, 1, rng)
        params = {
            **self.gap_lstm.parameters("gap"),
            **self.head.parameters("head"),
        }
        if self.count_lstm is not None:
            params.update(self.count_lstm.parameters("cnt"))
        self.optimizer = Adam(params, lr=lr)
        self.over_weight = float(over_weight)
        self._gap_scale = 1.0
        self._count_scale = 1.0
        self.trained = False
        # predict_next memo: keyed on (weights version, history-tail digest).
        # Any training step invalidates it by bumping the version.
        self._weights_version = 0
        self._predict_memo: dict[tuple[int, bytes], float] = {}

    # -- dataset construction ---------------------------------------------------
    def build_dataset(
        self, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Aligned (gap sequences, count sequences, next-gap targets).

        For each non-empty window ``t_j`` (with enough history), the gap
        input is the last ``gap_window`` inter-arrival times ending at
        ``t_j`` and the count input is the counts of the ``count_window``
        windows up to and including ``t_j``; the target is the gap from
        ``t_j`` to the next non-empty window.
        """
        counts = np.asarray(counts, dtype=float)
        nz = np.flatnonzero(counts)
        gaps = np.diff(nz).astype(float) * self.window_seconds
        gap_seqs, count_seqs, targets = [], [], []
        for j in range(self.gap_window, gaps.size):
            t_j = nz[j]  # gap j is nz[j] - nz[j-1]; target gap starts at nz[j]
            if t_j + 1 < self.count_window:
                continue
            gap_seqs.append(gaps[j - self.gap_window : j])
            count_seqs.append(counts[t_j + 1 - self.count_window : t_j + 1])
            targets.append(gaps[j])
        if not targets:
            raise ValueError(
                "not enough non-empty windows to build an inter-arrival dataset"
            )
        return np.array(gap_seqs), np.array(count_seqs), np.array(targets)

    # -- training ------------------------------------------------------------
    def fit(self, counts: np.ndarray) -> "InterArrivalPredictor":
        """Train on a historical per-window count series."""
        gap_seqs, count_seqs, targets = self.build_dataset(counts)
        self._gap_scale = max(1e-9, float(gap_seqs.mean()))
        self._count_scale = max(1.0, float(count_seqs.max()))
        G = (gap_seqs / self._gap_scale)[:, :, None]
        C = (count_seqs / self._count_scale)[:, :, None]
        y = targets / self._gap_scale
        n = G.shape[0]
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                self._train_batch(G[idx], C[idx], y[idx])
        self.trained = True
        self._weights_version += 1
        self._predict_memo.clear()
        return self

    def _train_batch(self, gb: np.ndarray, cb: np.ndarray, yb: np.ndarray) -> float:
        gh, gcache = self.gap_lstm.forward(gb)
        g_last = gh[:, -1, :]
        if self.count_lstm is not None:
            ch, ccache = self.count_lstm.forward(cb)
            c_last = ch[:, -1, :]
            merged = np.concatenate([g_last, c_last], axis=1)
        else:
            merged = g_last
        act = np.tanh(merged)
        pred = self.head.forward(act)[:, 0]
        loss, dpred = asymmetric_squared_error(pred, yb, self.over_weight)
        head_grads, dact = self.head.backward(act, dpred[:, None])
        dmerged = dact * (1 - act**2)
        grads = {"head.W": head_grads["W"], "head.b": head_grads["b"]}
        H = g_last.shape[1]
        dgh = np.zeros_like(gh)
        dgh[:, -1, :] = dmerged[:, :H]
        g_grads, _ = self.gap_lstm.backward(dgh, gcache)
        grads.update({"gap.Wx": g_grads["Wx"], "gap.Wh": g_grads["Wh"], "gap.b": g_grads["b"]})
        if self.count_lstm is not None:
            dch = np.zeros_like(ch)
            dch[:, -1, :] = dmerged[:, H:]
            c_grads, _ = self.count_lstm.backward(dch, ccache)
            grads.update(
                {"cnt.Wx": c_grads["Wx"], "cnt.Wh": c_grads["Wh"], "cnt.b": c_grads["b"]}
            )
        self.optimizer.step(grads)
        return loss

    def partial_fit(
        self, counts: np.ndarray, epochs: int = 1
    ) -> "InterArrivalPredictor":
        """Online update on freshly observed windows (keeps scales fixed so
        earlier training remains consistent; pass the recent count tail)."""
        if not self.trained:
            return self.fit(counts)
        try:
            gap_seqs, count_seqs, targets = self.build_dataset(counts)
        except ValueError:
            return self  # not enough non-empty windows yet
        G = (gap_seqs / self._gap_scale)[:, :, None]
        C = (count_seqs / self._count_scale)[:, :, None]
        y = targets / self._gap_scale
        n = G.shape[0]
        for _ in range(max(1, int(epochs))):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                self._train_batch(G[idx], C[idx], y[idx])
        self._weights_version += 1
        self._predict_memo.clear()
        return self

    # -- inference ------------------------------------------------------------
    def predict_next(
        self,
        gap_history: np.ndarray,
        count_history: np.ndarray,
        *,
        use_cache: bool = True,
    ) -> float:
        """Predicted next inter-arrival time in seconds (floored at one window).

        The forward pass only consumes the last ``gap_window`` gaps and the
        last ``count_window`` counts, so repeated calls with an unchanged
        history tail are memoized on (weights version, tail digest); the
        cached value is bit-identical to the uncached forward pass.
        """
        if not self.trained:
            raise RuntimeError("predictor must be fit() before prediction")
        gaps = np.asarray(gap_history, dtype=float)
        if gaps.size < self.gap_window:
            raise ValueError(
                f"need >= {self.gap_window} past gaps, got {gaps.size}"
            )
        g_tail = np.ascontiguousarray(gaps[-self.gap_window :])
        c_tail = None
        if self.count_lstm is not None:
            cnts = np.asarray(count_history, dtype=float)
            if cnts.size < self.count_window:
                raise ValueError(
                    f"need >= {self.count_window} past counts, got {cnts.size}"
                )
            c_tail = np.ascontiguousarray(cnts[-self.count_window :])
        if use_cache:
            h = hashlib.blake2b(g_tail.tobytes(), digest_size=16)
            if c_tail is not None:
                h.update(c_tail.tobytes())
            key = (self._weights_version, h.digest())
            cached = self._predict_memo.get(key)
            if cached is not None:
                return cached
        pred = self._forward_tails(g_tail, c_tail)
        if use_cache:
            if len(self._predict_memo) > _PREDICT_MEMO_LIMIT:
                self._predict_memo.clear()
            self._predict_memo[key] = pred
        return pred

    def _forward_tails(self, g_tail: np.ndarray, c_tail: np.ndarray | None) -> float:
        g = (g_tail / self._gap_scale)[None, :, None]
        merged = self.gap_lstm.last_hidden(g)
        if self.count_lstm is not None:
            c = (c_tail / self._count_scale)[None, :, None]
            merged = np.concatenate(
                [merged, self.count_lstm.last_hidden(c)], axis=1
            )
        pred = float(self.head.forward(np.tanh(merged))[0, 0]) * self._gap_scale
        return max(self.window_seconds, pred)

    def evaluate(self, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(actual, predicted) next-gap pairs over a held-out count series."""
        gap_seqs, count_seqs, targets = self.build_dataset(counts)
        G = (gap_seqs / self._gap_scale)[:, :, None]
        gh, _ = self.gap_lstm.forward(G)
        merged = gh[:, -1, :]
        if self.count_lstm is not None:
            C = (count_seqs / self._count_scale)[:, :, None]
            ch, _ = self.count_lstm.forward(C)
            merged = np.concatenate([merged, ch[:, -1, :]], axis=1)
        preds = self.head.forward(np.tanh(merged))[:, 0] * self._gap_scale
        preds = np.maximum(self.window_seconds, preds)
        return targets, preds

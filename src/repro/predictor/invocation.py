"""Invocation-number prediction via bucketized LSTM classification (§IV-B1).

To avoid under-estimation (and hence SLA violations), the paper predicts the
invocation count for the next one-second window with a *classifier* rather
than a regressor: the prediction space is divided into buckets whose size
equals the minimum batch size of the application's functions, and the upper
bound of the predicted bucket is returned, inflated by a 3 % compensation
for residual under-estimation (§VII-C2).
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.predictor.lstm import (
    Adam,
    DenseLayer,
    LSTMLayer,
    make_windows,
    softmax,
    softmax_cross_entropy,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

#: Compensation added to the bucket upper bound (§VII-C2: "+3 %").
DEFAULT_COMPENSATION = 0.03

#: Entries kept in a predictor's prediction memo before it is reset.
_PREDICT_MEMO_LIMIT = 4096


class InvocationPredictor:
    """LSTM bucket classifier over per-window invocation counts.

    Parameters mirror the paper: hidden size 30, input sequence length
    tailored per application (default 30 windows), bucket size equal to the
    application's minimum batch size.
    """

    def __init__(
        self,
        bucket_size: int = 1,
        n_buckets: int = 16,
        window: int = 30,
        hidden_size: int = 30,
        *,
        epochs: int = 6,
        batch_size: int = 64,
        lr: float = 1e-2,
        compensation: float = DEFAULT_COMPENSATION,
        quantile: float = 0.95,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_positive("bucket_size", bucket_size)
        check_positive("n_buckets", n_buckets)
        check_positive("window", window)
        check_positive("hidden_size", hidden_size)
        check_positive("epochs", epochs)
        if not 0.0 <= compensation < 1.0:
            raise ValueError(f"compensation must be in [0, 1), got {compensation}")
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        self.quantile = float(quantile)
        self.bucket_size = int(bucket_size)
        self.n_buckets = int(n_buckets)
        self.window = int(window)
        self.compensation = float(compensation)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        rng = ensure_rng(seed)
        self._rng = rng
        self.lstm = LSTMLayer(1, hidden_size, rng)
        self.head = DenseLayer(hidden_size, self.n_buckets, rng)
        params = {**self.lstm.parameters("lstm"), **self.head.parameters("head")}
        self.optimizer = Adam(params, lr=lr)
        self._scale = 1.0
        self.trained = False
        # predict_next memo: keyed on (weights version, history-tail digest).
        # Any training step invalidates it by bumping the version.
        self._weights_version = 0
        self._predict_memo: dict[tuple[int, bytes], int] = {}

    # -- bucketing ------------------------------------------------------------
    def bucket_of(self, count: int) -> int:
        """Bucket index of an invocation count (0 = idle window)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return 0
        return min(int(math.ceil(count / self.bucket_size)), self.n_buckets - 1)

    def upper_bound(self, bucket: int) -> int:
        """Upper bound of a bucket — the raw (uncompensated) prediction."""
        if not 0 <= bucket < self.n_buckets:
            raise ValueError(f"bucket {bucket} out of range")
        return bucket * self.bucket_size

    # -- training ------------------------------------------------------------
    def fit(self, counts: np.ndarray) -> "InvocationPredictor":
        """Train on a historical per-window count series."""
        counts = np.asarray(counts, dtype=float)
        X, y = make_windows(counts, self.window)
        labels = np.array([self.bucket_of(int(round(v))) for v in y])
        self._scale = max(1.0, float(counts.max()))
        Xn = (X / self._scale)[:, :, None]
        n = Xn.shape[0]
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                self._train_batch(Xn[idx], labels[idx])
        self.trained = True
        self._weights_version += 1
        self._predict_memo.clear()
        return self

    def _train_batch(self, xb: np.ndarray, yb: np.ndarray) -> float:
        hs, cache = self.lstm.forward(xb)
        last = hs[:, -1, :]
        logits = self.head.forward(last)
        loss, dlogits = softmax_cross_entropy(logits, yb)
        head_grads, dlast = self.head.backward(last, dlogits)
        dhs = np.zeros_like(hs)
        dhs[:, -1, :] = dlast
        lstm_grads, _ = self.lstm.backward(dhs, cache)
        self.optimizer.step(
            {
                "lstm.Wx": lstm_grads["Wx"],
                "lstm.Wh": lstm_grads["Wh"],
                "lstm.b": lstm_grads["b"],
                "head.W": head_grads["W"],
                "head.b": head_grads["b"],
            }
        )
        return loss

    def partial_fit(self, counts: np.ndarray, epochs: int = 1) -> "InvocationPredictor":
        """Online update on freshly observed windows (§IV-B: the Online
        Predictor keeps training as the Gateway streams invocation counts).

        The normalization scale only ever grows, so earlier training stays
        consistent; pass the recent tail of the count series.
        """
        if not self.trained:
            return self.fit(counts)
        counts = np.asarray(counts, dtype=float)
        if counts.size <= self.window:
            return self  # not enough new history for a single example
        X, y = make_windows(counts, self.window)
        labels = np.array([self.bucket_of(int(round(v))) for v in y])
        self._scale = max(self._scale, float(counts.max()), 1.0)
        Xn = (X / self._scale)[:, :, None]
        n = Xn.shape[0]
        for _ in range(max(1, int(epochs))):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                self._train_batch(Xn[idx], labels[idx])
        self._weights_version += 1
        self._predict_memo.clear()
        return self

    # -- inference ------------------------------------------------------------
    def predict_bucket(self, history: np.ndarray) -> int:
        """Bucket choice for the next window given recent counts.

        Uses *conservative* selection: the smallest bucket whose cumulative
        predicted probability reaches ``quantile``.  This is how the
        classification approach "determines the upper bound of the bucket"
        without under-estimating: only a ``1 - quantile`` tail of outcomes
        can exceed the chosen bucket.
        """
        probs = self.predict_proba(history)
        return self._select_bucket(probs[None, :])[0]

    def _select_bucket(self, probs: np.ndarray) -> np.ndarray:
        cdf = np.cumsum(probs, axis=1)
        return np.argmax(cdf >= self.quantile - 1e-12, axis=1)

    def predict_proba(self, history: np.ndarray) -> np.ndarray:
        """Bucket probability distribution for the next window."""
        self._check_ready(history)
        x = (np.asarray(history, dtype=float)[-self.window :] / self._scale)[
            None, :, None
        ]
        return softmax(self.head.forward(self.lstm.last_hidden(x)))[0]

    def predict_next(self, history: np.ndarray, *, use_cache: bool = True) -> int:
        """Predicted invocation count: bucket upper bound plus compensation.

        The forward pass only consumes the last ``window`` counts, so
        repeated calls with an unchanged history tail are memoized on
        (weights version, tail digest); the cached value is bit-identical
        to the uncached forward pass.
        """
        self._check_ready(history)
        if use_cache:
            tail = np.ascontiguousarray(np.asarray(history)[-self.window :])
            h = hashlib.blake2b(tail.tobytes(), digest_size=16)
            h.update(str(tail.dtype).encode())
            key = (self._weights_version, h.digest())
            cached = self._predict_memo.get(key)
            if cached is not None:
                return cached
        raw = self.upper_bound(self.predict_bucket(history))
        pred = int(round(raw * (1.0 + self.compensation)))
        if use_cache:
            if len(self._predict_memo) > _PREDICT_MEMO_LIMIT:
                self._predict_memo.clear()
            self._predict_memo[key] = pred
        return pred

    def rolling_predict(self, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One-step-ahead predictions along a test series.

        Returns ``(actual, predicted)`` arrays of length
        ``len(counts) - window``; the model is *not* updated while rolling.
        """
        counts = np.asarray(counts, dtype=float)
        X, y = make_windows(counts, self.window)
        Xn = (X / self._scale)[:, :, None]
        hs, _ = self.lstm.forward(Xn)
        probs = softmax(self.head.forward(hs[:, -1, :]))
        buckets = self._select_bucket(probs)
        preds = np.round(
            buckets * self.bucket_size * (1.0 + self.compensation)
        ).astype(int)
        return y.astype(int), preds

    def _check_ready(self, history: np.ndarray) -> None:
        if not self.trained:
            raise RuntimeError("predictor must be fit() before prediction")
        if np.asarray(history).size < self.window:
            raise ValueError(
                f"history must contain >= {self.window} windows, got {np.asarray(history).size}"
            )

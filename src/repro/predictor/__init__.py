"""Online Predictor (paper §IV-B): invocation and inter-arrival forecasting.

Two predictors drive SMIless' proactive decisions:

- the **Invocation Predictor** — a bucketized LSTM *classifier* over
  per-window invocation counts; predicting the bucket's upper bound (plus a
  3 % compensation) avoids the under-estimation that causes SLA violations;
- the **Inter-arrival Time Predictor** — a *dual-input* LSTM regressor that
  merges an inter-arrival-time stream and an invocation-count stream to
  keep over-estimation (which would delay pre-warming) rare.

Baseline predictors from the paper's comparison (Fig. 12) live in
:mod:`repro.predictor.baselines` (ARIMA, IceBreaker's Fourier-based FIP,
sliding window) and :mod:`repro.predictor.gbrt` (an XGBoost stand-in).
The LSTM itself is implemented from scratch on NumPy in
:mod:`repro.predictor.lstm` (forward + BPTT + Adam).
"""

from repro.predictor.baselines import (
    ArimaPredictor,
    FipPredictor,
    SlidingWindowPredictor,
)
from repro.predictor.gbrt import GbrtPredictor
from repro.predictor.interarrival import InterArrivalPredictor
from repro.predictor.invocation import InvocationPredictor
from repro.predictor.metrics import (
    mean_absolute_percentage_error,
    overestimation_rate,
    underestimation_rate,
)

__all__ = [
    "InvocationPredictor",
    "InterArrivalPredictor",
    "ArimaPredictor",
    "FipPredictor",
    "SlidingWindowPredictor",
    "GbrtPredictor",
    "underestimation_rate",
    "overestimation_rate",
    "mean_absolute_percentage_error",
]

"""Forecast-quality metrics used in the Fig. 12 comparison.

The paper scores invocation-number predictors by their *under-estimation*
error (an under-estimate means too few instances and an SLA violation) and
inter-arrival predictors by MAPE and the probability of *over*-estimation
(an over-estimate means a pre-warm that starts too late).
"""

from __future__ import annotations

import numpy as np


def _pair(actual, predicted) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {p.shape}")
    if a.size == 0:
        raise ValueError("metrics of empty arrays are undefined")
    return a, p


def underestimation_rate(actual, predicted) -> float:
    """Fraction of predictions strictly below the actual value."""
    a, p = _pair(actual, predicted)
    return float((p < a).mean())


def overestimation_rate(actual, predicted) -> float:
    """Fraction of predictions strictly above the actual value."""
    a, p = _pair(actual, predicted)
    return float((p > a).mean())


def underestimation_magnitude(actual, predicted) -> float:
    """Mean relative shortfall over under-estimated samples (0 if none)."""
    a, p = _pair(actual, predicted)
    mask = (p < a) & (a > 0)
    if not mask.any():
        return 0.0
    return float(((a[mask] - p[mask]) / a[mask]).mean())


def mean_absolute_percentage_error(actual, predicted) -> float:
    """MAPE in percent over samples with non-zero actual value."""
    a, p = _pair(actual, predicted)
    mask = a != 0
    if not mask.any():
        raise ValueError("MAPE undefined when all actual values are zero")
    return float(100.0 * np.mean(np.abs((p[mask] - a[mask]) / a[mask])))

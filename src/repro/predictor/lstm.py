"""From-scratch LSTM on NumPy: batched forward, BPTT, Adam.

The paper trains its predictors with PyTorch LSTMs; this module provides the
same building blocks without a deep-learning dependency:

- :class:`LSTMLayer` — a single LSTM layer processing ``(B, T, I)`` batches,
  returning all hidden states and a cache for truncated BPTT;
- :class:`DenseLayer` — an affine head;
- :class:`Adam` — the optimizer, with global-norm gradient clipping;
- loss helpers: softmax cross-entropy (classification) and an asymmetric
  squared error that penalizes over-prediction more than under-prediction
  (used by the inter-arrival regressor, where over-estimating the gap delays
  pre-warming and violates the SLA).

The implementation favors clarity over raw speed, but all per-timestep math
is vectorized over the batch so training the paper-scale models (hidden
sizes 30–128, sequences of ~3600 windows) takes seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng


def _xavier(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    scale = np.sqrt(6.0 / (rows + cols))
    return rng.uniform(-scale, scale, size=(rows, cols))


class LSTMLayer:
    """One LSTM layer with input size ``I`` and hidden size ``H``.

    Weights follow the standard gate layout ``[i, f, g, o]`` stacked along
    the first axis; the forget-gate bias starts at 1.0 for stable training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        if input_size < 1 or hidden_size < 1:
            raise ValueError("input_size and hidden_size must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        H = hidden_size
        self.Wx = _xavier(4 * H, input_size, rng)
        self.Wh = _xavier(4 * H, H, rng)
        self.b = np.zeros(4 * H)
        self.b[H : 2 * H] = 1.0  # forget gate bias

    # -- parameter plumbing --------------------------------------------------
    def parameters(self, prefix: str) -> dict[str, np.ndarray]:
        """Named parameter dict (shared with the optimizer)."""
        return {f"{prefix}.Wx": self.Wx, f"{prefix}.Wh": self.Wh, f"{prefix}.b": self.b}

    # -- forward ----------------------------------------------------------------
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, dict]:
        """Run the layer over a batch of sequences.

        ``x`` has shape ``(B, T, I)``; returns hidden states ``(B, T, H)``
        and the cache needed by :meth:`backward`.
        """
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(
                f"expected input (B, T, {self.input_size}), got {x.shape}"
            )
        B, T, _ = x.shape
        H = self.hidden_size
        h = np.zeros((B, H))
        c = np.zeros((B, H))
        hs = np.zeros((B, T, H))
        cache: dict = {
            "x": x,
            "gates": [],
            "tanh_cs": [],
            "hs_prev": [],
            "cs_prev": [],
        }
        WxT = self.Wx.T
        WhT = self.Wh.T
        b = self.b
        # Hoist the input projection out of the time loop when the inner
        # dimension is 1 (every element is a single multiply, so the batched
        # product is bitwise identical to the per-timestep one).
        xz = x @ WxT if self.input_size == 1 else None
        for t in range(T):
            zx = xz[:, t, :] if xz is not None else x[:, t, :] @ WxT
            z = zx + h @ WhT + b
            # One fused sigmoid over the i/f/o columns gathered contiguously
            # (elementwise, so gathering first and splitting afterwards is
            # bitwise identical to per-gate calls at half the ufunc count).
            s = _sigmoid(
                np.concatenate([z[:, : 2 * H], z[:, 3 * H :]], axis=1)
            )
            i = s[:, :H]
            f = s[:, H : 2 * H]
            o = s[:, 2 * H :]
            g = np.tanh(z[:, 2 * H : 3 * H])
            cache["hs_prev"].append(h)
            cache["cs_prev"].append(c)
            c = f * c + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            hs[:, t, :] = h
            cache["gates"].append((i, f, g, o))
            cache["tanh_cs"].append(tanh_c)
        return hs, cache

    def last_hidden(self, x: np.ndarray) -> np.ndarray:
        """Final hidden state ``(B, H)`` of each sequence, inference-only.

        Runs the exact per-timestep arithmetic of :meth:`forward` without
        materializing the BPTT cache or the full ``(B, T, H)`` hidden
        tensor — bit-identical to ``forward(x)[0][:, -1, :]`` but without
        the bookkeeping, which dominates online single-sequence predicts.
        """
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(
                f"expected input (B, T, {self.input_size}), got {x.shape}"
            )
        B, T, _ = x.shape
        H = self.hidden_size
        h = np.zeros((B, H))
        c = np.zeros((B, H))
        WxT = self.Wx.T
        WhT = self.Wh.T
        b = self.b
        xz = x @ WxT if self.input_size == 1 else None
        for t in range(T):
            zx = xz[:, t, :] if xz is not None else x[:, t, :] @ WxT
            z = zx + h @ WhT + b
            # One sigmoid over the i/f/o columns gathered contiguously
            # (sigmoid is elementwise, so gathering first is bitwise
            # identical to the per-gate calls and halves the ufunc count).
            s = _sigmoid(
                np.concatenate([z[:, : 2 * H], z[:, 3 * H :]], axis=1)
            )
            i = s[:, :H]
            f = s[:, H : 2 * H]
            o = s[:, 2 * H :]
            g = np.tanh(z[:, 2 * H : 3 * H])
            c = f * c + i * g
            h = o * np.tanh(c)
        return h

    def backward(
        self, dhs: np.ndarray, cache: dict
    ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Backprop-through-time.

        ``dhs`` is the loss gradient w.r.t. every hidden state (``(B, T, H)``;
        zero rows for timesteps without direct loss).  Returns gradients for
        this layer's parameters and the gradient w.r.t. the input sequence.
        """
        x = cache["x"]
        B, T, _ = x.shape
        H = self.hidden_size
        dWx = np.zeros_like(self.Wx)
        dWh = np.zeros_like(self.Wh)
        db = np.zeros_like(self.b)
        dx = np.zeros_like(x)
        dh_next = np.zeros((B, H))
        dc_next = np.zeros((B, H))
        for t in reversed(range(T)):
            i, f, g, o = cache["gates"][t]
            c_prev = cache["cs_prev"][t]
            h_prev = cache["hs_prev"][t]
            tanh_c = cache["tanh_cs"][t]
            dh = dhs[:, t, :] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1 - tanh_c**2) + dc_next
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dc_next = dc * f
            dz = np.empty((B, 4 * H))
            np.multiply(di * i, 1 - i, out=dz[:, :H])
            np.multiply(df * f, 1 - f, out=dz[:, H : 2 * H])
            np.multiply(dg, 1 - g**2, out=dz[:, 2 * H : 3 * H])
            np.multiply(do * o, 1 - o, out=dz[:, 3 * H :])
            dWx += dz.T @ x[:, t, :]
            dWh += dz.T @ h_prev
            db += dz.sum(axis=0)
            dx[:, t, :] = dz @ self.Wx
            dh_next = dz @ self.Wh
        return {"Wx": dWx, "Wh": dWh, "b": db}, dx


class DenseLayer:
    """Affine layer ``y = x @ W.T + b``."""

    def __init__(self, input_size: int, output_size: int, rng: np.random.Generator):
        self.W = _xavier(output_size, input_size, rng)
        self.b = np.zeros(output_size)

    def parameters(self, prefix: str) -> dict[str, np.ndarray]:
        """Named parameter dict (shared with the optimizer)."""
        return {f"{prefix}.W": self.W, f"{prefix}.b": self.b}

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the affine map to a ``(B, I)`` batch."""
        return x @ self.W.T + self.b

    def backward(self, x: np.ndarray, dy: np.ndarray) -> tuple[dict, np.ndarray]:
        """Gradients for parameters and input given upstream ``dy``."""
        return {"W": dy.T @ x, "b": dy.sum(axis=0)}, dy @ self.W


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Numerically stable split, evaluated branchlessly: ``exp(-|z|)`` never
    # overflows and equals the stable branch's exponential on both sides
    # (``exp(-z)`` for ``z >= 0``, ``exp(z)`` otherwise), so each element
    # goes through bit-for-bit the same expression as the classic masked
    # two-branch form — without its gather/scatter cost, which dominates on
    # the small per-gate slices this sees.
    e = np.abs(z)
    np.negative(e, out=e)
    np.exp(e, out=e)
    out = np.where(z >= 0, 1.0, e)
    e += 1.0  # e becomes the shared denominator
    np.divide(out, e, out=out)
    return out


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilization."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and gradient w.r.t. logits."""
    B = logits.shape[0]
    probs = softmax(logits)
    loss = float(-np.log(probs[np.arange(B), labels] + 1e-12).mean())
    grad = probs.copy()
    grad[np.arange(B), labels] -= 1.0
    return loss, grad / B


def asymmetric_squared_error(
    pred: np.ndarray, target: np.ndarray, over_weight: float = 8.0
) -> tuple[float, np.ndarray]:
    """Squared error that penalizes over-prediction ``over_weight`` times more.

    Over-estimating an inter-arrival time makes pre-warming start too late
    and violates the SLA, so the regressor is trained to err low (§IV-B2).
    """
    diff = pred - target
    w = np.where(diff > 0, over_weight, 1.0)
    loss = float((w * diff**2).mean())
    grad = 2.0 * w * diff / diff.size
    return loss, grad


@dataclass
class Adam:
    """Adam optimizer over a named parameter dict, with global-norm clipping."""

    params: dict[str, np.ndarray]
    lr: float = 1e-2
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    clip_norm: float = 5.0
    _m: dict[str, np.ndarray] = field(default_factory=dict)
    _v: dict[str, np.ndarray] = field(default_factory=dict)
    _t: int = 0

    def __post_init__(self) -> None:
        for k, p in self.params.items():
            self._m[k] = np.zeros_like(p)
            self._v[k] = np.zeros_like(p)

    def step(self, grads: dict[str, np.ndarray]) -> None:
        """Apply one update; ``grads`` keys must match the parameter dict."""
        total = np.sqrt(sum(float((g**2).sum()) for g in grads.values()))
        scale = min(1.0, self.clip_norm / (total + 1e-12))
        self._t += 1
        bias1 = 1 - self.beta1**self._t
        bias2 = 1 - self.beta2**self._t
        for k, g in grads.items():
            g = g * scale
            p = self.params[k]
            self._m[k] = self.beta1 * self._m[k] + (1 - self.beta1) * g
            self._v[k] = self.beta2 * self._v[k] + (1 - self.beta2) * g**2
            m_hat = self._m[k] / bias1
            v_hat = self._v[k] / bias2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def make_windows(series: np.ndarray, length: int) -> tuple[np.ndarray, np.ndarray]:
    """Sliding windows for next-step prediction.

    Returns ``(X, y)`` where ``X[i]`` is ``series[i : i+length]`` and
    ``y[i] = series[i+length]``.
    """
    s = np.asarray(series, dtype=float)
    if s.ndim != 1:
        raise ValueError("series must be 1-D")
    if length < 1:
        raise ValueError("window length must be >= 1")
    if s.size <= length:
        raise ValueError(
            f"series of length {s.size} too short for window {length}"
        )
    n = s.size - length
    idx = np.arange(length)[None, :] + np.arange(n)[:, None]
    return s[idx], s[length:]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Alias of :func:`repro.utils.rng.ensure_rng` for predictor modules."""
    return ensure_rng(seed)

"""Small argument-validation helpers used across the library.

These raise ``ValueError`` with the offending parameter name so errors
surface at API boundaries rather than deep inside numeric code.
"""

from __future__ import annotations

import math
from collections.abc import Iterable


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str, value: float, lo: float, hi: float, *, inclusive: bool = True
) -> float:
    """Validate ``lo <= value <= hi`` (or strict interior)."""
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value!r}"
        )
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_finite(name: str, values: float | Iterable[float]) -> None:
    """Validate that a scalar or iterable contains only finite numbers."""
    if isinstance(values, (int, float)):
        values = (values,)
    for v in values:
        if not math.isfinite(v):
            raise ValueError(f"{name} contains non-finite value {v!r}")

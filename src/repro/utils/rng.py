"""Deterministic random-number management.

Every stochastic component in the reproduction (ground-truth noise, workload
generation, predictor initialization, Bayesian optimization) accepts either a
seed or a :class:`numpy.random.Generator`.  These helpers normalize the two
and derive independent child streams so that experiments are reproducible
end-to-end from a single root seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a fresh non-deterministic generator, an ``int`` seeds a
    new PCG64 stream, and an existing generator is passed through untouched.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected int, Generator or None, got {type(rng)!r}")


def child_rng(rng: np.random.Generator, tag: str) -> np.random.Generator:
    """Derive an independent child stream keyed by a string tag.

    The tag is hashed into the spawn key so that the same parent seed and tag
    always produce the same child stream, regardless of the order in which
    children are requested.
    """
    digest = abs(hash(tag)) % (2**32)
    seed = int(rng.integers(0, 2**32)) ^ digest
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]

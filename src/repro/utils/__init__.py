"""Shared utilities: deterministic RNG management, validation helpers."""

from repro.utils.rng import child_rng, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_probability,
)

__all__ = [
    "child_rng",
    "ensure_rng",
    "spawn_rngs",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_probability",
]

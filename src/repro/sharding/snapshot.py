"""Picklable run snapshots and the commutative barrier merge.

A shard worker cannot ship a live :class:`~repro.simulator.metrics.RunMetrics`
across a process boundary (oracles, pools and timers hang off it through
the gateway), so each finished unit is reduced to a :class:`UnitSnapshot`:
plain-data counters plus the exact states of its streaming accumulators
(:meth:`QuantileSketch.to_state`, :meth:`StreamingStats.to_state`,
:meth:`BillingFold.to_state`).  A :class:`ShardSnapshot` is a canonically
ordered set of unit snapshots; :func:`merge_snapshots` unions them.

Merge algebra — why the reducer is *bit-for-bit* commutative and
associative (pinned by ``tests/test_sharding.py``): merging never adds
floats.  It only unions leaf snapshots, and :class:`ShardSnapshot`
normalizes its units into canonical ``(app, slice_index)`` order, so any
merge tree over any shard ordering produces the *same object*.  All
floating-point reduction is deferred to :meth:`ShardSnapshot.per_app_metrics`,
which folds the leaves in canonical order — the identical fold a 1-shard
run performs — making merged counters, costs, availability, goodput and
conservation sums bit-identical regardless of how many processes ran the
plan.  Latency quantiles come from t-digest merges in the same canonical
order, and stay within the sketch's documented rank-error bound of the
per-unit exact distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.metrics.sketch import QuantileSketch, StreamingStats
from repro.simulator.metrics import BillingFold, RunMetrics

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    pass

__all__ = ["UnitSnapshot", "ShardSnapshot", "merge_snapshots"]

#: RunMetrics integer counters carried verbatim on a UnitSnapshot and
#: summed (exactly) at collapse time.  Order matters only for readability.
_COUNTER_FIELDS = (
    "unfinished",
    "timed_out",
    "stage_executions",
    "cold_stage_executions",
    "initializations",
    "failed_initializations",
    "stage_retries",
    "failed_executions",
    "fallbacks",
    "completed_count",
    "sla_violation_count",
    "within_sla_count",
    # Appended (not inserted) so older positional fixtures keep their
    # indices: GPU swap-in launches under swap-capable profiles.
    "swap_ins",
    # Overload plane (repro.overload): queue sheds, admission rejections,
    # and fault-plan-injected arrivals (flash crowds, retry storms).  All
    # three sum exactly across slices; peak_queue_depth does NOT belong
    # here — it merges by max, not sum, and rides as its own field.
    "shed",
    "rejected",
    "injected_arrivals",
)


@dataclass(frozen=True)
class UnitSnapshot:
    """Everything one finished unit contributes to the merged run.

    Extracted from a **sealed** sketch-retention
    :class:`~repro.simulator.metrics.RunMetrics` (see
    :meth:`from_metrics`); plain data end to end, so it pickles under both
    fork and spawn start methods and hashes/compares structurally.
    """

    app: str
    policy: str
    sla: float
    slice_index: int
    n_slices: int
    duration: float
    counters: tuple[int, ...]  # values of _COUNTER_FIELDS, in order
    sketch_state: tuple  # QuantileSketch.to_state()
    stats_state: tuple  # StreamingStats.to_state()
    billing_state: tuple  # BillingFold.to_state()
    events_processed: int = 0
    #: Host timing, not simulation outcome — excluded from equality so two
    #: runs of the same unit compare equal bit for bit.
    wall_clock: float = field(default=0.0, compare=False)
    #: Deepest per-function queue seen in this unit.  Kept off
    #: ``_COUNTER_FIELDS`` because slices combine it with ``max``, not
    #: ``+`` — the merged value is the deepest backlog anywhere in the run.
    peak_queue_depth: int = 0

    @property
    def key(self) -> tuple[str, int]:
        """Canonical identity: one snapshot per (app, slice)."""
        return (self.app, self.slice_index)

    @classmethod
    def from_metrics(
        cls,
        metrics: RunMetrics,
        *,
        slice_index: int = 0,
        n_slices: int = 1,
        events_processed: int = 0,
        wall_clock: float = 0.0,
    ) -> "UnitSnapshot":
        """Extract the snapshot of one sealed sketch-retention run.

        This is the extraction that used to be scattered across
        ``Gateway.finalize`` consumers: conservation and fault counters,
        the billing fold, and the latency sketch/stats states, reduced to
        one picklable record.
        """
        if metrics.retention != "sketch":
            raise ValueError(
                "unit snapshots require retention='sketch'; a full-retention "
                "run retains unmergeable per-record state "
                f"(got retention={metrics.retention!r})"
            )
        return cls(
            app=metrics.app,
            policy=metrics.policy,
            sla=metrics.sla,
            slice_index=slice_index,
            n_slices=n_slices,
            duration=metrics.duration,
            counters=tuple(
                int(getattr(metrics, name)) for name in _COUNTER_FIELDS
            ),
            sketch_state=metrics.latency_sketch.to_state(),
            stats_state=metrics.latency_stats.to_state(),
            billing_state=metrics.billing.to_state(),
            events_processed=int(events_processed),
            wall_clock=float(wall_clock),
            peak_queue_depth=int(metrics.peak_queue_depth),
        )

    def to_metrics(self) -> RunMetrics:
        """Rebuild a standalone sketch-retention ``RunMetrics`` (exact)."""
        metrics = RunMetrics(
            app=self.app,
            policy=self.policy,
            sla=self.sla,
            retention="sketch",
            duration=self.duration,
            latency_sketch=QuantileSketch.from_state(self.sketch_state),
            latency_stats=StreamingStats.from_state(self.stats_state),
            billing=BillingFold.from_state(self.billing_state),
        )
        for name, value in zip(_COUNTER_FIELDS, self.counters):
            setattr(metrics, name, value)
        metrics.peak_queue_depth = self.peak_queue_depth
        return metrics


@dataclass(frozen=True)
class ShardSnapshot:
    """A set of unit snapshots in canonical order, mergeable at the barrier."""

    units: tuple[UnitSnapshot, ...]

    def __post_init__(self) -> None:
        keys = [u.key for u in self.units]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate units in snapshot: {sorted(keys)}")
        object.__setattr__(
            self, "units", tuple(sorted(self.units, key=lambda u: u.key))
        )

    # ------------------------------------------------------------- queries
    @property
    def events_processed(self) -> int:
        """Simulator events across every unit (exact integer sum)."""
        return sum(u.events_processed for u in self.units)

    @property
    def busy_seconds(self) -> float:
        """Summed per-unit simulation wall-clock (CPU-time proxy)."""
        return sum(u.wall_clock for u in self.units)

    @property
    def apps(self) -> tuple[str, ...]:
        """Distinct application names, sorted."""
        return tuple(sorted({u.app for u in self.units}))

    def per_app_metrics(self) -> dict[str, RunMetrics]:
        """Collapse the units into one merged ``RunMetrics`` per app.

        Folding happens here, in canonical (app, slice) order, so the
        result is a pure function of the unit *set* — identical no matter
        which processes produced the units or in which order snapshots
        were merged.  ``duration`` sums across slices (total simulated
        seconds); counters and billing sum exactly; sketches and stats
        merge in slice order.
        """
        grouped: dict[str, list[UnitSnapshot]] = {}
        for unit in self.units:  # already canonically sorted
            grouped.setdefault(unit.app, []).append(unit)
        merged: dict[str, RunMetrics] = {}
        for app, units in grouped.items():
            expected = set(range(units[0].n_slices))
            got = {u.slice_index for u in units}
            if {u.n_slices for u in units} != {units[0].n_slices} or (
                got != expected
            ):
                raise ValueError(
                    f"app {app!r} snapshot is incomplete: have slices "
                    f"{sorted(got)}, expected {sorted(expected)}"
                )
            metrics = units[0].to_metrics()
            for unit in units[1:]:
                if unit.policy != metrics.policy or unit.sla != metrics.sla:
                    raise ValueError(
                        f"app {app!r} units disagree on policy/SLA"
                    )
                metrics.duration += unit.duration
                for name, value in zip(_COUNTER_FIELDS, unit.counters):
                    setattr(metrics, name, getattr(metrics, name) + value)
                metrics.peak_queue_depth = max(
                    metrics.peak_queue_depth, unit.peak_queue_depth
                )
                metrics.latency_sketch.merge(
                    QuantileSketch.from_state(unit.sketch_state)
                )
                metrics.latency_stats.merge(
                    StreamingStats.from_state(unit.stats_state)
                )
                metrics.billing.merge(BillingFold.from_state(unit.billing_state))
            merged[app] = metrics
        return merged

    def summary(self) -> dict[str, dict[str, float]]:
        """Merged per-app summaries (the macro bench's record shape)."""
        return {
            app: metrics.summary()
            for app, metrics in self.per_app_metrics().items()
        }


def merge_snapshots(*snapshots: ShardSnapshot) -> ShardSnapshot:
    """Union shard snapshots: the pure, commutative, associative reducer.

    No floats are combined here — the union is re-canonicalized by
    :class:`ShardSnapshot`, so every merge tree over every argument order
    yields an *equal* snapshot (bit-for-bit, including the metrics later
    collapsed from it).  Duplicate (app, slice) units are rejected: a unit
    must be simulated by exactly one shard.
    """
    if not snapshots:
        raise ValueError("need at least one snapshot to merge")
    units: list[UnitSnapshot] = []
    for snap in snapshots:
        units.extend(snap.units)
    return ShardSnapshot(units=tuple(units))

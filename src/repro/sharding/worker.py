"""Spawn-safe shard workers and the scatter/barrier driver.

:func:`run_shard` is the worker entrypoint: given a picklable
:class:`ShardTask` it simulates each assigned unit as its **own**
:class:`~repro.simulator.runtime.Runtime` in ``retention="sketch"`` and
returns the shard's :class:`~repro.sharding.snapshot.ShardSnapshot` — the
only thing that crosses the process boundary back.  It is a module-level
function over frozen plain-data arguments, so it works under both ``fork``
and ``spawn`` start methods (macOS/Windows default to ``spawn``).

:func:`run_sharded` is the driver: scatter the plan's unit assignments
over a process pool, then merge the shard snapshots at the barrier with
:func:`~repro.sharding.snapshot.merge_snapshots`.  Because each unit's
trace window and seed derive only from the unit itself (see
:func:`~repro.simulator.runtime.derive_slice_seed`), the merged snapshot
is a pure function of the plan — any shard count, any process placement,
same bits.

Serial fallback contract (mirrors ``run_grid``'s): a daemonic caller
(we're already inside someone's pool worker — nested pools are forbidden)
or a pool that fails to start degrades to in-process execution with a
``RuntimeWarning``; results are identical either way, only slower.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import reduce
from typing import TYPE_CHECKING

from repro.experiments.parallel import EnvSpec, _environment
from repro.sharding.plan import ShardPlan, ShardUnit
from repro.sharding.snapshot import ShardSnapshot, UnitSnapshot, merge_snapshots

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.faults.plan import FaultPlan
    from repro.overload.spec import OverloadSpec

__all__ = ["ShardTask", "run_shard", "run_sharded"]


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker process needs, in picklable form."""

    shard_index: int
    units: tuple[ShardUnit, ...]
    #: Environment recipe per app; must cover every app in ``units``.
    envs: tuple[EnvSpec, ...]
    policy: str
    sim_seed: int = 3
    init_failure_rate: float = 0.0
    faults: "FaultPlan | None" = None
    overload: "OverloadSpec | None" = None

    def env_for(self, app: str) -> EnvSpec:
        """The environment recipe of one app (KeyError if unmapped)."""
        for env in self.envs:
            if env.app == app:
                return env
        raise KeyError(
            f"shard task has no environment for app {app!r}; "
            f"mapped: {sorted(e.app for e in self.envs)}"
        )


def _run_unit(task: ShardTask, unit: ShardUnit) -> UnitSnapshot:
    """Simulate one unit as its own runtime; snapshot the sealed metrics."""
    from repro.simulator import ServerlessSimulator
    from repro.simulator.runtime import derive_slice_seed

    env = _environment(task.env_for(unit.app))
    if unit.n_slices == 1:
        trace = env.trace
    else:
        width = env.trace.duration / unit.n_slices
        start = unit.slice_index * width
        # The last slice closes at the exact horizon, never a rounded one.
        end = (
            env.trace.duration
            if unit.slice_index == unit.n_slices - 1
            else (unit.slice_index + 1) * width
        )
        trace = env.trace.slice(start, end)
    seed = derive_slice_seed(
        task.sim_seed, unit.app, unit.slice_index, unit.n_slices
    )
    wall_start = time.perf_counter()
    sim = ServerlessSimulator(
        env.app,
        trace,
        env.make_policy(task.policy),
        seed=seed,
        init_failure_rate=task.init_failure_rate,
        faults=task.faults,
        overload=task.overload,
        retention="sketch",
    )
    metrics = sim.run()
    wall = time.perf_counter() - wall_start
    return UnitSnapshot.from_metrics(
        metrics,
        slice_index=unit.slice_index,
        n_slices=unit.n_slices,
        events_processed=sim.events.processed,
        wall_clock=wall,
    )


def run_shard(task: ShardTask) -> ShardSnapshot:
    """Worker entrypoint: simulate every assigned unit, return the snapshot.

    Each unit is a fresh runtime (own clock, event heap, cluster), so a
    shard's result is independent of which other units share its process —
    the property the bit-identity bar rests on.  Environments memoize per
    process (:func:`repro.experiments.parallel._environment`), so a shard
    holding four slices of one app profiles that app once.
    """
    return ShardSnapshot(
        units=tuple(_run_unit(task, unit) for unit in task.units)
    )


def _tasks(
    plan: ShardPlan,
    envs: tuple[EnvSpec, ...],
    policy: str,
    sim_seed: int,
    init_failure_rate: float,
    faults: "FaultPlan | None",
    overload: "OverloadSpec | None",
) -> list[ShardTask]:
    mapped = {env.app for env in envs}
    missing = set(plan.apps) - mapped
    if missing:
        raise ValueError(
            f"plan needs environments for apps {sorted(missing)}; "
            f"mapped: {sorted(mapped)}"
        )
    return [
        ShardTask(
            shard_index=i,
            units=units,
            envs=envs,
            policy=policy,
            sim_seed=sim_seed,
            init_failure_rate=init_failure_rate,
            faults=faults,
            overload=overload,
        )
        for i, units in enumerate(plan.assignments())
    ]


def run_sharded(
    plan: ShardPlan,
    envs: "tuple[EnvSpec, ...] | list[EnvSpec]",
    policy: str,
    *,
    sim_seed: int = 3,
    processes: int | None = None,
    mp_context: str | None = None,
    init_failure_rate: float = 0.0,
    faults: "FaultPlan | None" = None,
    overload: "OverloadSpec | None" = None,
) -> ShardSnapshot:
    """Scatter the plan over worker processes; merge at the barrier.

    ``processes`` caps the pool size (default: the plan's shard count);
    ``mp_context`` picks the multiprocessing start method (``"spawn"``,
    ``"fork"``, ...; default: the platform's).  Runs serially — same
    result, one process — when only one shard has work, when ``processes``
    is 1, when called from a daemonic (pool-worker) process, or when the
    pool cannot start (``RuntimeWarning``).
    """
    tasks = _tasks(
        plan, tuple(envs), policy, sim_seed, init_failure_rate, faults, overload
    )
    workers = len(tasks) if processes is None else min(processes, len(tasks))
    if workers < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if workers > 1 and multiprocessing.current_process().daemon:
        warnings.warn(
            "run_sharded called from a daemonic worker process; nested "
            "process pools are not allowed, running shards serially "
            "in-process (results are identical).",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = 1
    if workers == 1:
        return merge_snapshots(*(run_shard(t) for t in tasks))
    context = (
        multiprocessing.get_context(mp_context)
        if mp_context is not None
        else None
    )
    try:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            snapshots = list(pool.map(run_shard, tasks))
    except OSError as exc:
        warnings.warn(
            f"shard worker pool failed to start ({exc}); falling back to "
            "serial in-process execution (results are identical).",
            RuntimeWarning,
            stacklevel=2,
        )
        snapshots = [run_shard(t) for t in tasks]
    return reduce(merge_snapshots, snapshots)

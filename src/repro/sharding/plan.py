"""Deterministic shard plans: partition a deployment across processes.

A :class:`ShardPlan` fixes the *unit decomposition* of a run — one
:class:`ShardUnit` per (application, trace time-slice) — plus how many
worker shards execute it.  The decomposition is the experiment definition:
merged results depend only on the units (and the root seed), **never** on
``n_shards``, which merely controls how the units fan across processes.
That invariance is what makes the shard plane's correctness bar testable:
a 4-shard run and a 1-shard run of the same plan produce bit-identical
merged non-distributional metrics, because they simulate exactly the same
units with exactly the same seeds and merge them in the same canonical
order (see :mod:`repro.sharding.snapshot`).

Units are intentionally *independent* simulations — each runs as its own
:class:`~repro.simulator.runtime.Runtime` with its own cluster.  Shards
that must share a cluster (cross-shard back-pressure) need optimistic
sync and rollback — Revati-style time-warp emulation — which ROADMAP
lists as the stretch goal on top of this deterministic-partition layer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ShardUnit:
    """One independently-simulable unit: an app, or one slice of its trace.

    ``slice_index``/``n_slices`` select a contiguous ``[i*T/n, (i+1)*T/n)``
    window of the unit's trace, re-based to start at 0 (see
    :meth:`~repro.workload.trace.Trace.slice`).  ``n_slices == 1`` means
    the whole trace — the unit then reproduces a standalone per-app run
    bit for bit.
    """

    app: str
    slice_index: int = 0
    n_slices: int = 1

    def __post_init__(self) -> None:
        if self.n_slices < 1:
            raise ValueError(f"n_slices must be >= 1, got {self.n_slices}")
        if not 0 <= self.slice_index < self.n_slices:
            raise ValueError(
                f"slice_index must be in [0, {self.n_slices}), "
                f"got {self.slice_index}"
            )

    @property
    def key(self) -> tuple[str, int]:
        """Canonical sort/identity key."""
        return (self.app, self.slice_index)


@dataclass(frozen=True)
class ShardPlan:
    """A unit decomposition plus the shard count executing it."""

    units: tuple[ShardUnit, ...]
    n_shards: int = 1

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if not self.units:
            raise ValueError("plan needs at least one unit")
        keys = [u.key for u in self.units]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate shard units: {sorted(keys)}")
        # Units must form a complete partition per app: consistent slice
        # count, every slice present — a plan missing slice 2 of 4 would
        # silently drop arrivals.
        per_app: dict[str, list[ShardUnit]] = {}
        for unit in self.units:
            per_app.setdefault(unit.app, []).append(unit)
        for app, units in per_app.items():
            n_slices = {u.n_slices for u in units}
            if len(n_slices) != 1:
                raise ValueError(
                    f"app {app!r} mixes slice counts {sorted(n_slices)}"
                )
            expected = set(range(n_slices.pop()))
            got = {u.slice_index for u in units}
            if got != expected:
                raise ValueError(
                    f"app {app!r} misses trace slices "
                    f"{sorted(expected - got)}"
                )
        # Canonical unit order, independent of construction order.
        object.__setattr__(
            self, "units", tuple(sorted(self.units, key=lambda u: u.key))
        )

    @classmethod
    def for_apps(
        cls,
        apps: "list[str] | tuple[str, ...]",
        *,
        n_shards: int = 1,
        slices_per_app: int = 1,
    ) -> "ShardPlan":
        """Plan over a multi-app deployment: ``apps x slices_per_app`` units.

        ``slices_per_app`` is part of the experiment definition (it changes
        which simulations run); ``n_shards`` is not (it only changes where
        they run).
        """
        if slices_per_app < 1:
            raise ValueError(
                f"slices_per_app must be >= 1, got {slices_per_app}"
            )
        units = tuple(
            ShardUnit(app=app, slice_index=i, n_slices=slices_per_app)
            for app in sorted(set(apps))
            for i in range(slices_per_app)
        )
        return cls(units=units, n_shards=n_shards)

    @property
    def apps(self) -> tuple[str, ...]:
        """Distinct application names, sorted."""
        return tuple(sorted({u.app for u in self.units}))

    def assignments(self) -> tuple[tuple[ShardUnit, ...], ...]:
        """Units per shard: round-robin over the canonical unit order.

        Round-robin interleaves each app's slices across shards, so a
        shard never ends up holding all of the most expensive app.  Empty
        shards (more shards than units) are dropped.
        """
        groups = tuple(
            tuple(self.units[i :: self.n_shards])
            for i in range(self.n_shards)
        )
        return tuple(g for g in groups if g)


def clamp_shard_workers(
    requested: int, cpu_count: int | None = None
) -> tuple[int, str | None]:
    """Clamp a worker-process request to the host's usable cores.

    Mirrors the microbench pool clamp (``benchmarks/test_perf_microbench.py``):
    on a host with fewer cores than requested shards, extra worker
    processes only add pool overhead, so the pool never exceeds the CPU
    count.  Returns ``(effective_workers, note)`` where ``note`` is a
    human-readable explanation to record in benchmark JSON (``None`` when
    nothing was clamped).
    """
    if requested < 1:
        raise ValueError(f"requested workers must be >= 1, got {requested}")
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    effective = min(requested, cpus)
    if effective == requested:
        return requested, None
    return effective, (
        f"clamped shard workers {requested} -> {effective}: host has "
        f"{cpus} usable core(s); extra worker processes cannot beat them"
    )

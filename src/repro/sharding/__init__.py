"""Shard plane: multi-process scale-out with bit-identical merged metrics.

Three layers (see ``docs/architecture.md``):

- :mod:`~repro.sharding.plan` — :class:`ShardPlan` deterministically
  partitions a deployment into independent (app × trace-slice) units and
  assigns them round-robin to worker shards;
- :mod:`~repro.sharding.snapshot` — :class:`UnitSnapshot` /
  :class:`ShardSnapshot` are the picklable run extracts, and
  :func:`merge_snapshots` is the commutative, associative barrier reducer;
- :mod:`~repro.sharding.worker` — :func:`run_shard` is the spawn-safe
  worker entrypoint, :func:`run_sharded` the scatter/merge driver.

The invariant the whole plane is built around: merged metrics are a pure
function of the plan and the root seed — never of the shard count, the
process placement, or the merge order.
"""

from repro.sharding.plan import ShardPlan, ShardUnit, clamp_shard_workers
from repro.sharding.snapshot import (
    ShardSnapshot,
    UnitSnapshot,
    merge_snapshots,
)
from repro.sharding.worker import ShardTask, run_shard, run_sharded

__all__ = [
    "ShardPlan",
    "ShardUnit",
    "clamp_shard_workers",
    "ShardSnapshot",
    "UnitSnapshot",
    "merge_snapshots",
    "ShardTask",
    "run_shard",
    "run_sharded",
]

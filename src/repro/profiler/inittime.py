"""Robust initialization-time estimation (paper §IV-A1).

Initialization times fluctuate with shared-resource contention (network,
PCIe, memory bandwidth), so the profiler uses ``mu + n*sigma`` over the
collected samples as a robust measurement instead of the plain mean.  The
paper shows the mean alone drives the SLA violation ratio up to 34 % while
``n = 3`` eliminates violations (Fig. 11a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default uncertainty multiplier ("3x uncertainty", §VII-C1).
DEFAULT_UNCERTAINTY = 3.0


@dataclass(frozen=True)
class InitTimeEstimate:
    """Summary statistics of one function's initialization on one backend."""

    mean: float
    std: float
    n_samples: int

    def robust(self, n_sigma: float = DEFAULT_UNCERTAINTY) -> float:
        """The paper's robust measurement ``mu + n*sigma``."""
        return self.mean + n_sigma * self.std


def estimate_init_time(samples: np.ndarray) -> InitTimeEstimate:
    """Build an :class:`InitTimeEstimate` from raw initialization samples.

    The paper repeats initialization 10 times per function; we accept any
    sample count >= 2 (a single sample cannot estimate dispersion).
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"samples must be 1-D, got shape {arr.shape}")
    if arr.size < 2:
        raise ValueError(f"need >= 2 init samples, got {arr.size}")
    if (arr <= 0).any():
        raise ValueError("initialization times must be positive")
    return InitTimeEstimate(
        mean=float(arr.mean()), std=float(arr.std(ddof=1)), n_samples=int(arr.size)
    )

"""In-process metric store standing in for Prometheus (paper §IV-A).

The real system tracks per-stage timings with event tracking and stores them
in Prometheus alongside hardware configuration and batch-size labels.  This
store keeps the same record shape — (function, config, batch, kind, value,
timestamp) — with label-based querying, which is all the Offline Profiler
consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class MetricKind(enum.Enum):
    """The two stages of function execution the profiler distinguishes."""

    INIT = "init"
    INFERENCE = "inference"


@dataclass(frozen=True)
class MetricSample:
    """One timing record with its identifying labels."""

    function: str
    config_key: str
    batch: int
    kind: MetricKind
    value: float
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"negative timing value {self.value}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")


@dataclass
class MetricStore:
    """Append-only store of :class:`MetricSample` with label filtering."""

    _samples: list[MetricSample] = field(default_factory=list)

    def record(self, sample: MetricSample) -> None:
        """Append one sample."""
        self._samples.append(sample)

    def record_timing(
        self,
        function: str,
        config_key: str,
        kind: MetricKind,
        value: float,
        *,
        batch: int = 1,
        timestamp: float = 0.0,
    ) -> None:
        """Convenience wrapper building and appending a sample."""
        self.record(MetricSample(function, config_key, batch, kind, value, timestamp))

    def __len__(self) -> int:
        return len(self._samples)

    def query(
        self,
        *,
        function: str | None = None,
        config_key: str | None = None,
        batch: int | None = None,
        kind: MetricKind | None = None,
    ) -> list[MetricSample]:
        """All samples matching every provided label."""
        out = []
        for s in self._samples:
            if function is not None and s.function != function:
                continue
            if config_key is not None and s.config_key != config_key:
                continue
            if batch is not None and s.batch != batch:
                continue
            if kind is not None and s.kind != kind:
                continue
            out.append(s)
        return out

    def values(self, **labels) -> np.ndarray:
        """Timing values of :meth:`query` as an array."""
        return np.array([s.value for s in self.query(**labels)])

    def functions(self) -> tuple[str, ...]:
        """Distinct function labels present in the store."""
        return tuple(dict.fromkeys(s.function for s in self._samples))

    def clear(self) -> None:
        """Drop all samples (used between profiling campaigns)."""
        self._samples.clear()

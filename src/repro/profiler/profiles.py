"""Function profiles: the optimizer-facing view of profiled performance.

A :class:`FunctionProfile` bundles, per backend, the fitted latency model
and the robust initialization estimate.  Every latency/cost number the
Strategy Optimizer, Auto-scaler and baselines use flows through this class,
so swapping profiled knowledge for oracle knowledge (OPT baseline) is a
one-object change.

Profiles are immutable, so predicted latencies are memoized per instance:
the optimizer re-derives identical strategies every control window, and the
memo turns those repeated latency-law evaluations (and downstream plan /
candidate construction, see :mod:`repro.core.prewarming` and
:mod:`repro.core.path_search`) into dictionary hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.hardware.configs import Backend, ConfigurationSpace, HardwareConfig
from repro.profiler.fitting import FittedLatencyModel
from repro.profiler.inittime import DEFAULT_UNCERTAINTY, InitTimeEstimate


@dataclass(frozen=True)
class FunctionProfile:
    """Profiled performance knowledge for one function.

    A backend may be absent (``None``) when the profiling campaign skipped
    it — e.g. the CPU-only ablation.  Querying an absent backend raises.
    """

    function: str
    cpu_model: FittedLatencyModel | None
    gpu_model: FittedLatencyModel | None
    init_cpu: InitTimeEstimate | None
    init_gpu: InitTimeEstimate | None
    n_sigma: float = DEFAULT_UNCERTAINTY
    # Profiled host→GPU swap-in estimate for swap-capable models (absent
    # for everything else; see repro.hardware.servicetime).  Policies read
    # it through swap_time() to price swap-in against a full cold start.
    swap_init_gpu: InitTimeEstimate | None = None
    # Per-instance scratch cache for derived values (predicted latencies,
    # plans, candidate lists).  Excluded from equality/hash/repr: it holds
    # memoized *functions of* the frozen fields, never independent state.
    _memo: dict[Any, Any] = field(
        default_factory=dict, repr=False, compare=False
    )

    def supports(self, backend: Backend) -> bool:
        """Whether this profile covers ``backend``."""
        model = self.cpu_model if backend is Backend.CPU else self.gpu_model
        return model is not None

    def _model(self, backend: Backend) -> FittedLatencyModel:
        model = self.cpu_model if backend is Backend.CPU else self.gpu_model
        if model is None:
            raise ValueError(
                f"function {self.function!r} has no profiled {backend.value} model"
            )
        return model

    def _init(self, backend: Backend) -> InitTimeEstimate:
        est = self.init_cpu if backend is Backend.CPU else self.init_gpu
        if est is None:
            raise ValueError(
                f"function {self.function!r} has no profiled {backend.value} init estimate"
            )
        return est

    def inference_time(self, config: HardwareConfig, batch: int = 1) -> float:
        """Predicted inference time (the ``I_k`` of §V-B)."""
        key = ("inf", config, batch)
        cached = self._memo.get(key)
        if cached is None:
            resources = (
                config.cpu_cores
                if config.backend is Backend.CPU
                else config.gpu_fraction
            )
            cached = self._model(config.backend).latency(resources, batch)
            self._memo[key] = cached
        return cached

    def init_time(self, config: HardwareConfig) -> float:
        """Robust initialization time ``mu + n*sigma`` (the ``T_k`` of §V-B)."""
        key = ("init", config.backend)
        cached = self._memo.get(key)
        if cached is None:
            cached = self._init(config.backend).robust(self.n_sigma)
            self._memo[key] = cached
        return cached

    def config_arrays(
        self, space: ConfigurationSpace, batch: int = 1
    ) -> tuple[tuple[HardwareConfig, ...], np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized view of this profile over a configuration space.

        Returns ``(configs, init_times, inference_times, unit_costs)``
        restricted to supported backends, aligned elementwise and in space
        order.  Values come from the same memoized scalar accessors the
        non-vectorized paths use, so array entries are bit-identical to
        per-config calls.  Memoized per (space identity, batch); callers
        treat the arrays as read-only.
        """
        key = ("vec", id(space), batch)
        cached = self._memo.get(key)
        if cached is not None and cached[0] is space:
            return cached[1]
        configs = tuple(c for c in space if self.supports(c.backend))
        arrays = (
            configs,
            np.array([self.init_time(c) for c in configs]),
            np.array([self.inference_time(c, batch) for c in configs]),
            np.array([c.unit_cost for c in configs]),
        )
        if len(self._memo) > 16384:  # unbounded-IT safety valve
            self._memo.clear()
        self._memo[key] = (space, arrays)
        return arrays

    def mean_init_time(self, config: HardwareConfig) -> float:
        """Plain-mean initialization time (the Fig. 11a strawman)."""
        return self._init(config.backend).mean

    def swap_time(self, config: HardwareConfig) -> float | None:
        """Robust host→GPU swap-in time, or ``None`` when swap cannot apply.

        ``None`` for CPU configurations and for models without a profiled
        swap estimate — callers fall back to :meth:`init_time`, so the
        default regime is untouched.
        """
        if self.swap_init_gpu is None or config.backend is not Backend.GPU:
            return None
        key = ("swap", config.backend)
        cached = self._memo.get(key)
        if cached is None:
            cached = self.swap_init_gpu.robust(self.n_sigma)
            self._memo[key] = cached
        return cached

    def with_n_sigma(self, n_sigma: float) -> "FunctionProfile":
        """Copy of this profile with a different uncertainty multiplier."""
        return FunctionProfile(
            function=self.function,
            cpu_model=self.cpu_model,
            gpu_model=self.gpu_model,
            init_cpu=self.init_cpu,
            init_gpu=self.init_gpu,
            n_sigma=n_sigma,
            swap_init_gpu=self.swap_init_gpu,
        )

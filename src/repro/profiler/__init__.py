"""Offline Profiler (paper §IV-A): measurement collection and model fitting.

The profiler collects initialization and inference timing samples from
running functions (stored in a Prometheus-like metric store) and fits:

- the Amdahl-law inference-time model of Eq. (1)/(2) per backend, via
  linear least squares on the features ``[B/resources, B, 1]``;
- a robust initialization-time estimate ``mu + n*sigma`` per backend
  (``n = 3`` avoids the SLA violations of the plain mean — Fig. 11a).

The resulting :class:`FunctionProfile` is the *only* performance knowledge
the Optimizer Engine sees — ground-truth parameters stay hidden inside the
simulator, as on the real testbed.
"""

from repro.profiler.fitting import FittedLatencyModel, fit_latency_model, smape
from repro.profiler.inittime import InitTimeEstimate, estimate_init_time
from repro.profiler.profiles import FunctionProfile
from repro.profiler.sampler import OfflineProfiler, ProfilingPlan, oracle_profile
from repro.profiler.store import MetricKind, MetricSample, MetricStore

__all__ = [
    "MetricKind",
    "MetricSample",
    "MetricStore",
    "FittedLatencyModel",
    "fit_latency_model",
    "smape",
    "InitTimeEstimate",
    "estimate_init_time",
    "FunctionProfile",
    "OfflineProfiler",
    "ProfilingPlan",
    "oracle_profile",
]

"""Profiling campaigns: sampling plans and the OfflineProfiler facade.

The paper's Offline Profiler achieves <8 % average SMAPE from only
``5 x 5 = 25`` CPU samples (batch sizes 2^1..2^5 crossed with 2^0..2^4
cores) and 50 GPU samples (10 MPS fractions x 5 batch sizes), repeating
each initialization 10 times (§IV-A, §VII-C1).  :class:`ProfilingPlan`
encodes exactly that default grid; :class:`OfflineProfiler` runs the plan
against the ground-truth oracle, records every measurement in the metric
store, and fits a :class:`FunctionProfile` per function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dag.graph import AppDAG
from repro.hardware.configs import Backend, HardwareConfig
from repro.hardware.perfmodel import GroundTruthPerformance, PerfProfile
from repro.profiler.fitting import FittedLatencyModel, fit_latency_model
from repro.profiler.inittime import DEFAULT_UNCERTAINTY, estimate_init_time
from repro.profiler.profiles import FunctionProfile
from repro.profiler.store import MetricKind, MetricStore
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class ProfilingPlan:
    """Which (config, batch) grid points to measure, and how many repeats.

    Defaults mirror the paper: CPU batch sizes ``2^1..2^5`` by core counts
    ``2^0..2^4``; GPU fractions 10 %..100 % by 5 batch sizes; 10
    initialization repeats per backend; one inference repeat per grid point.
    """

    cpu_cores: tuple[int, ...] = (1, 2, 4, 8, 16)
    gpu_fractions: tuple[float, ...] = tuple(round(0.1 * k, 2) for k in range(1, 11))
    batches: tuple[int, ...] = (2, 4, 8, 16, 32)
    init_repeats: int = 10
    inference_repeats: int = 1

    def __post_init__(self) -> None:
        if self.init_repeats < 2:
            raise ValueError("need >= 2 init repeats to estimate dispersion")
        if self.inference_repeats < 1:
            raise ValueError("need >= 1 inference repeat")
        if not self.cpu_cores and not self.gpu_fractions:
            raise ValueError("plan must cover at least one backend")

    def cpu_grid(self) -> tuple[tuple[HardwareConfig, int], ...]:
        """All (config, batch) CPU grid points."""
        return tuple(
            (HardwareConfig.cpu(c), b) for c in self.cpu_cores for b in self.batches
        )

    def gpu_grid(self) -> tuple[tuple[HardwareConfig, int], ...]:
        """All (config, batch) GPU grid points."""
        return tuple(
            (HardwareConfig.gpu(f), b) for f in self.gpu_fractions for b in self.batches
        )

    @classmethod
    def paper_default(cls) -> "ProfilingPlan":
        """The §VII-C1 sampling budget: 25 CPU + 50 GPU inference samples."""
        return cls()

    @classmethod
    def cpu_only(cls) -> "ProfilingPlan":
        """CPU-only plan (SMIless-Homo ablation)."""
        return cls(gpu_fractions=())


@dataclass
class OfflineProfiler:
    """Runs profiling campaigns and produces :class:`FunctionProfile` objects.

    ``oracles`` maps function name -> ground-truth oracle (the simulator's
    stand-in for actually executing the function).  All raw measurements are
    kept in ``store`` so tests and Fig. 11 benches can inspect them.
    """

    plan: ProfilingPlan = field(default_factory=ProfilingPlan.paper_default)
    n_sigma: float = DEFAULT_UNCERTAINTY
    store: MetricStore = field(default_factory=MetricStore)

    def profile_function(
        self, name: str, oracle: GroundTruthPerformance
    ) -> FunctionProfile:
        """Measure one function per the plan and fit its profile."""
        cpu_model = self._fit_backend(name, oracle, self.plan.cpu_grid())
        gpu_model = self._fit_backend(name, oracle, self.plan.gpu_grid())

        init_cpu = init_gpu = swap_gpu = None
        if self.plan.cpu_cores:
            cfg = HardwareConfig.cpu(self.plan.cpu_cores[0])
            init_cpu = self._estimate_init(name, oracle, cfg)
        if self.plan.gpu_fractions:
            cfg = HardwareConfig.gpu(self.plan.gpu_fractions[0])
            init_gpu = self._estimate_init(name, oracle, cfg)
            if oracle.supports_swap:
                # Swap-capable models additionally get a swap-in campaign;
                # default models draw nothing extra, so their oracle noise
                # streams (and everything fitted from them) are untouched.
                swap_gpu = self._estimate_init(name, oracle, cfg, swap=True)

        return FunctionProfile(
            function=name,
            cpu_model=cpu_model,
            gpu_model=gpu_model,
            init_cpu=init_cpu,
            init_gpu=init_gpu,
            n_sigma=self.n_sigma,
            swap_init_gpu=swap_gpu,
        )

    def profile_app(
        self,
        app: AppDAG,
        rng: int | np.random.Generator | None = None,
        *,
        noisy: bool = True,
    ) -> dict[str, FunctionProfile]:
        """Profile every function of ``app`` with per-function oracle streams."""
        gen = ensure_rng(rng)
        profiles: dict[str, FunctionProfile] = {}
        for spec in app.specs:
            oracle = GroundTruthPerformance(
                spec.profile, rng=int(gen.integers(2**32)), noisy=noisy
            )
            profiles[spec.name] = self.profile_function(spec.name, oracle)
        return profiles

    # -- internals ----------------------------------------------------------
    def _fit_backend(
        self,
        name: str,
        oracle: GroundTruthPerformance,
        grid: tuple[tuple[HardwareConfig, int], ...],
    ) -> FittedLatencyModel | None:
        if not grid:
            return None
        resources, batches, times = [], [], []
        for cfg, batch in grid:
            for _ in range(self.plan.inference_repeats):
                t = oracle.inference_time(cfg, batch)
                self.store.record_timing(
                    name, cfg.key, MetricKind.INFERENCE, t, batch=batch
                )
                amount = (
                    cfg.cpu_cores if cfg.backend is Backend.CPU else cfg.gpu_fraction
                )
                resources.append(amount)
                batches.append(batch)
                times.append(t)
        return fit_latency_model(
            np.array(resources), np.array(batches), np.array(times)
        )

    def _estimate_init(
        self,
        name: str,
        oracle: GroundTruthPerformance,
        config: HardwareConfig,
        *,
        swap: bool = False,
    ):
        if swap:
            samples = oracle.sample_swap(config, self.plan.init_repeats)
        else:
            samples = oracle.sample_init(config, self.plan.init_repeats)
        for v in samples:
            self.store.record_timing(name, config.key, MetricKind.INIT, float(v))
        return estimate_init_time(samples)


def oracle_profile(perf: PerfProfile, n_sigma: float = 0.0) -> FunctionProfile:
    """Noise-free profile straight from ground truth (the OPT baseline's view).

    Uses the true latency-law coefficients and the true init mean/std, so the
    exhaustive-search baseline optimizes against reality rather than fits.
    """
    from repro.profiler.inittime import InitTimeEstimate

    cpu = FittedLatencyModel(
        a=perf.cpu.lam * perf.cpu.alpha, b=perf.cpu.lam * perf.cpu.beta, c=perf.cpu.gamma
    )
    gpu = FittedLatencyModel(
        a=perf.gpu.lam * perf.gpu.alpha, b=perf.gpu.lam * perf.gpu.beta, c=perf.gpu.gamma
    )
    swap = (
        InitTimeEstimate(perf.swap_gpu.mean, perf.swap_gpu.std, 10)
        if perf.swap_gpu is not None
        else None
    )
    return FunctionProfile(
        function=perf.name,
        cpu_model=cpu,
        gpu_model=gpu,
        init_cpu=InitTimeEstimate(perf.init_cpu.mean, perf.init_cpu.std, 10),
        init_gpu=InitTimeEstimate(perf.init_gpu.mean, perf.init_gpu.std, 10),
        n_sigma=n_sigma,
        swap_init_gpu=swap,
    )

"""Least-squares fitting of the inference-time model (Eq. 1/2).

The paper's latency law is ``t = lam * B * (alpha/r + beta) + gamma`` where
``r`` is the resource amount (CPU cores or GPU fraction).  ``lam`` only ever
multiplies ``alpha`` and ``beta``, so the identifiable parameterization is
linear in the features ``[B/r, B, 1]``:

    t = a * (B/r) + b * B + c       with a = lam*alpha, b = lam*beta, c = gamma

which we solve with ordinary least squares.  Negative coefficients are
clipped to a small floor — timing noise can otherwise produce a (physically
meaningless) negative serial fraction on tiny models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

#: Floor applied to fitted coefficients (seconds); keeps predictions positive.
_COEF_FLOOR = 1e-6


@dataclass(frozen=True)
class FittedLatencyModel:
    """Fitted inference-time predictor for one function on one backend.

    ``a = lam*alpha`` (parallel volume), ``b = lam*beta`` (serial per-item
    overhead), ``c = gamma`` (constant).  Exposes the same ``latency``
    interface as the ground-truth law, so the optimizer is agnostic to
    whether it runs on fitted or oracle numbers.
    """

    a: float
    b: float
    c: float

    def latency(self, resources: float, batch: int = 1) -> float:
        """Predicted inference time for ``batch`` items on ``resources``."""
        check_positive("resources", resources)
        check_positive("batch", batch)
        return self.a * batch / resources + self.b * batch + self.c

    def predict(self, resources: np.ndarray, batch: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`latency`."""
        resources = np.asarray(resources, dtype=float)
        batch = np.asarray(batch, dtype=float)
        return self.a * batch / resources + self.b * batch + self.c


def fit_latency_model(
    resources: np.ndarray,
    batches: np.ndarray,
    times: np.ndarray,
) -> FittedLatencyModel:
    """Fit Eq. (1)/(2) to measurement samples with least squares.

    Parameters are sample-aligned arrays: resource amount, batch size, and
    measured inference time.  Requires at least 3 samples spanning more than
    one resource level so the system is well-posed.
    """
    r = np.asarray(resources, dtype=float)
    b = np.asarray(batches, dtype=float)
    t = np.asarray(times, dtype=float)
    if not (r.shape == b.shape == t.shape):
        raise ValueError("resources, batches and times must be the same shape")
    if r.size < 3:
        raise ValueError(f"need >= 3 samples to fit, got {r.size}")
    if (r <= 0).any() or (b <= 0).any() or (t < 0).any():
        raise ValueError("samples must have positive resources/batches and non-negative times")
    if np.unique(r).size < 2:
        raise ValueError("samples must span at least two resource levels")

    X = np.column_stack([b / r, b, np.ones_like(t)])
    # Relative (1/t) weighting: absolute least squares would be dominated by
    # the slowest samples (e.g. batch 32 on one core), leaving percentage
    # errors on fast configurations large — and SMAPE is what §VII-C1
    # evaluates.
    w = 1.0 / np.clip(t, 1e-6, None)
    coef, *_ = np.linalg.lstsq(X * w[:, None], t * w, rcond=None)
    a, b_coef, c = (max(float(v), _COEF_FLOOR) for v in coef)
    return FittedLatencyModel(a=a, b=b_coef, c=c)


def smape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Symmetric Mean Absolute Percentage Error, in percent (Fig. 11b).

    ``SMAPE = 100 * mean(|p - a| / ((|a| + |p|) / 2))``; pairs where both
    values are zero contribute zero error.
    """
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError("actual and predicted must be the same shape")
    if a.size == 0:
        raise ValueError("smape of empty arrays is undefined")
    denom = (np.abs(a) + np.abs(p)) / 2.0
    err = np.zeros_like(a)
    mask = denom > 0
    err[mask] = np.abs(p[mask] - a[mask]) / denom[mask]
    return float(100.0 * err.mean())


def mape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean Absolute Percentage Error in percent (Fig. 12b metric)."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError("actual and predicted must be the same shape")
    mask = a != 0
    if not mask.any():
        raise ValueError("mape undefined when all actual values are zero")
    return float(100.0 * np.mean(np.abs((p[mask] - a[mask]) / a[mask])))

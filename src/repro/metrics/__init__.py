"""Streaming metric primitives for bounded-memory runs.

:mod:`repro.metrics.sketch` holds the mergeable streaming accumulators
the ``retention="sketch"`` mode of
:class:`~repro.simulator.metrics.RunMetrics` folds completed invocations
into: a t-digest-style :class:`QuantileSketch` for latency distributions
and exact :class:`StreamingStats` for means/counts/extrema.  See
``docs/performance.md`` ("Scaling to millions of invocations") for the
retention modes and the documented rank-error bound.
"""

from repro.metrics.sketch import QuantileSketch, StreamingStats

__all__ = ["QuantileSketch", "StreamingStats"]

"""Mergeable streaming sketches: quantiles and moments in O(1) memory.

The scale plane's core primitive.  A run with ``retention="sketch"``
folds every completed invocation's latency into a :class:`QuantileSketch`
and a :class:`StreamingStats` instead of retaining the
:class:`~repro.simulator.invocation.Invocation` record, so memory per
application is bounded by the sketch size — independent of how many
million arrivals the trace carries.

Design (t-digest style, Dunning & Ertl):

- values stream into a small insertion buffer; when it fills, the buffer
  is sorted and merge-compressed into a bounded list of *centroids*
  (weighted means), each limited to one unit of the ``k1`` scale function
  ``k(q) = (compression / 2pi) * asin(2q - 1)`` — tail centroids stay
  tiny (near-exact), the middle compresses, and the centroid count is
  hard-capped at about ``compression`` regardless of stream length;
- while the sketch has seen at most ``compression`` values it keeps them
  verbatim and :meth:`quantile` is **bit-identical** to
  ``numpy.percentile`` (linear interpolation) — small runs lose nothing;
- sketches :meth:`merge` by re-compressing the union of their centroids.
  Merging is *commutative* bit-for-bit (centroids are sorted before
  compression) and *associative within the rank-error bound* (different
  merge trees may compress differently, but every tree's estimates obey
  the same bound).

**Documented rank-error bound**: for any quantile ``q`` in [0, 100], the
value returned by :meth:`quantile` sits at a true (empirical) rank within
``rank_error_bound`` of ``q/100``, where ``rank_error_bound`` is
``2.0 / compression`` (1 % at the default ``compression=200``).  The
bound holds for merged sketches too; ``tests/test_sketch_properties.py``
pins it across adversarial distributions (bimodal, heavy-tail, constant,
tiny n) and merge orders.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["QuantileSketch", "StreamingStats"]


class StreamingStats:
    """Exact streaming count / sum / min / max (mergeable, O(1) memory)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation in."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "StreamingStats") -> None:
        """Fold another accumulator in (exact, order-insensitive counts)."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    # ------------------------------------------------------------ snapshots
    def to_state(self) -> tuple[int, float, float, float]:
        """Exact picklable state ``(count, total, min, max)``.

        The shard plane ships these across process boundaries; a restored
        accumulator (:meth:`from_state`) is indistinguishable from the
        original — same count, same bit-exact running sum and extrema.
        """
        return (self.count, self.total, self.minimum, self.maximum)

    @classmethod
    def from_state(
        cls, state: tuple[int, float, float, float]
    ) -> "StreamingStats":
        """Rebuild an accumulator from a :meth:`to_state` snapshot."""
        count, total, minimum, maximum = state
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        stats = cls()
        stats.count = int(count)
        stats.total = float(total)
        stats.minimum = float(minimum)
        stats.maximum = float(maximum)
        return stats

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN for an empty accumulator)."""
        return self.total / self.count if self.count else float("nan")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamingStats(count={self.count}, mean={self.mean:.4g}, "
            f"min={self.minimum:.4g}, max={self.maximum:.4g})"
        )


class QuantileSketch:
    """Mergeable t-digest-style streaming quantile sketch.

    ``compression`` trades memory for accuracy: the sketch holds at most
    ~``2 * compression`` centroids and guarantees the documented
    fractional rank error :attr:`rank_error_bound` (= ``2/compression``).
    Until more than ``compression`` values have been seen the sketch is
    exact — :meth:`quantile` matches ``numpy.percentile`` bit for bit.
    """

    #: Insertion-buffer length between merge-compressions.
    _BUFFER = 512

    __slots__ = ("compression", "count", "_means", "_counts", "_buf", "_min", "_max")

    def __init__(self, compression: int = 200) -> None:
        if compression < 20:
            raise ValueError(f"compression must be >= 20, got {compression}")
        self.compression = int(compression)
        self.count = 0
        self._means = np.empty(0)
        self._counts = np.empty(0)
        self._buf: list[float] = []
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------- streaming
    @property
    def rank_error_bound(self) -> float:
        """Documented worst-case fractional rank error of :meth:`quantile`."""
        return 2.0 / self.compression

    def add(self, value: float) -> None:
        """Fold one observation in."""
        if not math.isfinite(value):
            raise ValueError(f"sketch values must be finite, got {value}")
        self.count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._buf.append(value)
        if len(self._buf) >= self._BUFFER and self.count > self.compression:
            self._flush()

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in.

        Commutative bit-for-bit (the union of centroids is sorted before
        compression, so ``a.merge(b)`` and ``b.merge(a)`` hold identical
        state); associative within :attr:`rank_error_bound`.
        """
        if other.count == 0:
            return
        self.count += other.count
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        if self.count <= self.compression:
            # Both sides still exact: stay exact.
            self._buf.extend(other._all_values())
            return
        means, counts = other._centroid_state()
        own_means, own_counts = self._centroid_state()
        self._means = np.concatenate([own_means, means])
        self._counts = np.concatenate([own_counts, counts])
        self._buf = []
        self._compress()

    # ------------------------------------------------------------- internals
    def _all_values(self) -> np.ndarray:
        """Every retained value as singletons (exact-regime helper)."""
        parts = []
        if self._means.size:
            # Exact-regime sketches only ever hold singleton centroids.
            parts.append(np.repeat(self._means, self._counts.astype(int)))
        if self._buf:
            parts.append(np.asarray(self._buf))
        return np.concatenate(parts) if parts else np.empty(0)

    def _centroid_state(self) -> tuple[np.ndarray, np.ndarray]:
        """Current (means, counts) with the buffer folded in as singletons."""
        if self._buf:
            buf = np.asarray(self._buf)
            means = np.concatenate([self._means, buf])
            counts = np.concatenate([self._counts, np.ones(buf.size)])
            return means, counts
        return self._means.copy(), self._counts.copy()

    def _flush(self) -> None:
        """Fold the insertion buffer into the centroid set."""
        if not self._buf:
            return
        self._means, self._counts = self._centroid_state()
        self._buf = []
        self._compress()

    def _q_limit(self, q0: float) -> float:
        """Largest cumulative quantile one centroid starting at ``q0`` may span.

        One unit of the t-digest ``k1`` scale function
        ``k(q) = (compression / 2pi) * asin(2q - 1)``: centroids are thin
        at the tails (``dq ~ sqrt(q(1-q))``) and the total k-range is
        ``compression / 2``, hard-capping the centroid count.
        """
        scale = self.compression / (2.0 * math.pi)
        k = scale * math.asin(2.0 * q0 - 1.0) + 1.0
        if k >= scale * (math.pi / 2.0):
            return 1.0
        return 0.5 * (math.sin(k / scale) + 1.0)

    def _compress(self) -> None:
        """Merge-compress centroids under the t-digest ``k1`` size budget.

        Centroids are sorted by (mean, count) — making the result a pure
        function of the centroid *multiset*, hence commutative merges —
        then greedily merged left-to-right while the combined centroid
        spans at most one unit of the ``k1`` scale function.
        """
        order = np.lexsort((self._counts, self._means))
        means = self._means[order]
        counts = self._counts[order]
        n = float(counts.sum())
        out_means: list[float] = []
        out_counts: list[float] = []
        cum_before = 0.0  # mass strictly before the open centroid
        cur_mean = float(means[0])
        cur_count = float(counts[0])
        q_limit = self._q_limit(0.0)
        for i in range(1, means.size):
            c = float(counts[i])
            merged = cur_count + c
            if (cum_before + merged) / n <= q_limit:
                cur_mean += (float(means[i]) - cur_mean) * (c / merged)
                cur_count = merged
            else:
                out_means.append(cur_mean)
                out_counts.append(cur_count)
                cum_before += cur_count
                q_limit = self._q_limit(cum_before / n)
                cur_mean = float(means[i])
                cur_count = c
        out_means.append(cur_mean)
        out_counts.append(cur_count)
        self._means = np.asarray(out_means)
        self._counts = np.asarray(out_counts)

    # -------------------------------------------------------------- queries
    def quantile(self, q: float) -> float:
        """Estimate percentile ``q`` in [0, 100] (NaN on an empty sketch).

        Exact (``numpy.percentile``-identical) while at most
        ``compression`` values have been seen; afterwards accurate within
        :attr:`rank_error_bound` of the true empirical rank.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return float("nan")
        if self.count <= self.compression:
            return float(np.percentile(self._all_values(), q))
        self._flush()
        means, counts = self._means, self._counts
        if means.size == 1:
            return float(means[0])
        n = float(counts.sum())
        target = (q / 100.0) * n
        # Centroid i's mass is centred at cumulative midpoint cum_i - c_i/2.
        cum = np.cumsum(counts)
        mids = cum - counts / 2.0
        if target <= mids[0]:
            # Below the first midpoint: interpolate from the true minimum.
            span = mids[0]
            frac = target / span if span > 0 else 1.0
            return float(self._min + frac * (means[0] - self._min))
        if target >= mids[-1]:
            span = n - mids[-1]
            frac = (target - mids[-1]) / span if span > 0 else 0.0
            return float(means[-1] + frac * (self._max - means[-1]))
        j = int(np.searchsorted(mids, target, side="right"))
        left, right = mids[j - 1], mids[j]
        frac = (target - left) / (right - left) if right > left else 0.0
        return float(means[j - 1] + frac * (means[j] - means[j - 1]))

    @property
    def minimum(self) -> float:
        """Smallest observed value (``inf`` on an empty sketch)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observed value (``-inf`` on an empty sketch)."""
        return self._max

    def __len__(self) -> int:
        return self.count

    # ------------------------------------------------------------ snapshots
    def to_flat(self) -> tuple[float, ...]:
        """Flat ``(mean0, count0, mean1, count1, ...)`` centroid snapshot.

        The JSON-scalar form the telemetry plane embeds in
        :class:`~repro.telemetry.events.RunFinished`; round-trips through
        :meth:`from_flat` (the reconstructed sketch answers quantile
        queries within the same rank-error bound).
        """
        self._flush()
        means, counts = self._centroid_state()
        out: list[float] = []
        for m, c in zip(means, counts):
            out.append(float(m))
            out.append(float(c))
        return tuple(out)

    def to_state(self) -> tuple[int, int, float, float, tuple[float, ...]]:
        """Exact shard-plane snapshot: ``(compression, count, min, max, flat)``.

        Unlike :meth:`to_flat` — which targets JSON-scalar telemetry embeds
        and lets :meth:`from_flat` re-derive count and extrema from the
        centroids — this round-trip preserves the sketch's *exact* count,
        minimum and maximum, so a sketch restored in another process
        (:meth:`from_state`) merges and answers quantile queries
        bit-identically to the original.  This is the primitive
        :mod:`repro.sharding` builds :class:`~repro.sharding.UnitSnapshot`
        on.
        """
        return (
            self.compression,
            self.count,
            self._min,
            self._max,
            self.to_flat(),
        )

    @classmethod
    def from_state(
        cls, state: tuple[int, int, float, float, tuple[float, ...]]
    ) -> "QuantileSketch":
        """Rebuild a sketch from a :meth:`to_state` snapshot (exact)."""
        compression, count, minimum, maximum, flat = state
        sketch = cls.from_flat(flat, compression=int(compression))
        if sketch.count != int(count):
            raise ValueError(
                f"snapshot centroid mass {sketch.count} disagrees with the "
                f"recorded count {count}"
            )
        sketch.count = int(count)
        if flat:
            sketch._min = float(minimum)
            sketch._max = float(maximum)
        return sketch

    @classmethod
    def from_flat(
        cls, flat: tuple[float, ...] | list[float], compression: int = 200
    ) -> "QuantileSketch":
        """Rebuild a sketch from a :meth:`to_flat` snapshot."""
        if len(flat) % 2:
            raise ValueError(
                f"flat snapshot must have even length, got {len(flat)}"
            )
        sketch = cls(compression)
        means = np.asarray(flat[0::2], dtype=float)
        counts = np.asarray(flat[1::2], dtype=float)
        if means.size:
            order = np.lexsort((counts, means))
            sketch._means = means[order]
            sketch._counts = counts[order]
            sketch.count = int(round(float(counts.sum())))
            sketch._min = float(means.min())
            sketch._max = float(means.max())
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QuantileSketch(n={self.count}, centroids={self._means.size}, "
            f"buffered={len(self._buf)}, compression={self.compression})"
        )

"""DAG abstraction for ML serving applications.

The Workflow Manager (paper §V-C2) operates on applications whose functions
form a directed acyclic graph.  :class:`AppDAG` wraps a ``networkx.DiGraph``
with the operations the optimizer needs: topological traversal, simple-path
decomposition, parallel-substructure discovery, and critical-path latency
evaluation under a per-function latency assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

import networkx as nx

from repro.hardware.perfmodel import PerfProfile


@dataclass(frozen=True)
class FunctionSpec:
    """One serverless inference function inside an application DAG.

    ``name`` is unique within the application; ``profile`` is the
    ground-truth performance profile of the model the function serves
    (used by the simulator — the optimizer only ever sees profiler fits).
    """

    name: str
    profile: PerfProfile
    metadata: Mapping[str, str] = field(default_factory=dict)

    @property
    def model_name(self) -> str:
        """Name of the underlying Table I model."""
        return self.profile.name

    @property
    def min_batch(self) -> int:
        """Minimum batch size — defines the Invocation Predictor bucket size."""
        return self.profile.min_batch


class AppDAG:
    """An ML serving application: named DAG of :class:`FunctionSpec` nodes.

    Construction validates acyclicity and connectivity of every function.
    The graph is immutable after construction.
    """

    def __init__(
        self,
        name: str,
        functions: Iterable[FunctionSpec],
        edges: Iterable[tuple[str, str]],
        sla: float = 2.0,
        work_model: object | None = None,
    ) -> None:
        self.name = name
        self.sla = float(sla)
        # Optional per-invocation work distribution (e.g. a TokenWorkModel
        # for LLM apps).  ``None`` — the default — means every invocation
        # carries identical work and the gateway draws nothing extra.
        self.work_model = work_model
        if self.sla <= 0:
            raise ValueError(f"sla must be > 0, got {sla}")
        self._functions: dict[str, FunctionSpec] = {}
        for spec in functions:
            if spec.name in self._functions:
                raise ValueError(f"duplicate function name {spec.name!r}")
            self._functions[spec.name] = spec
        if not self._functions:
            raise ValueError("application must contain at least one function")

        graph = nx.DiGraph()
        graph.add_nodes_from(self._functions)
        for u, v in edges:
            for endpoint in (u, v):
                if endpoint not in self._functions:
                    raise ValueError(f"edge endpoint {endpoint!r} is not a function")
            if u == v:
                raise ValueError(f"self-loop on {u!r}")
            graph.add_edge(u, v)
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError(f"application {name!r} contains a cycle")
        self._graph = graph
        self._topo = tuple(nx.topological_sort(graph))

    # -- basic structure ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._functions)

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __iter__(self) -> Iterator[str]:
        return iter(self._topo)

    @property
    def graph(self) -> nx.DiGraph:
        """Read-only view of the underlying graph."""
        return self._graph.copy(as_view=True)

    @property
    def function_names(self) -> tuple[str, ...]:
        """All function names in topological order."""
        return self._topo

    def spec(self, name: str) -> FunctionSpec:
        """Look up the :class:`FunctionSpec` for ``name``."""
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"no function {name!r} in app {self.name!r}") from None

    @property
    def specs(self) -> tuple[FunctionSpec, ...]:
        """All function specs in topological order."""
        return tuple(self._functions[n] for n in self._topo)

    def predecessors(self, name: str) -> tuple[str, ...]:
        """Direct upstream functions of ``name``."""
        return tuple(self._graph.predecessors(name))

    def successors(self, name: str) -> tuple[str, ...]:
        """Direct downstream functions of ``name``."""
        return tuple(self._graph.successors(name))

    def sources(self) -> tuple[str, ...]:
        """Entry functions (no predecessors), in topological order."""
        return tuple(n for n in self._topo if self._graph.in_degree(n) == 0)

    def sinks(self) -> tuple[str, ...]:
        """Exit functions (no successors), in topological order."""
        return tuple(n for n in self._topo if self._graph.out_degree(n) == 0)

    def min_batch(self) -> int:
        """Smallest ``min_batch`` over all functions (predictor bucket size)."""
        return min(spec.min_batch for spec in self._functions.values())

    # -- paths ---------------------------------------------------------------
    def simple_paths(self) -> tuple[tuple[str, ...], ...]:
        """All source→sink simple paths (the Workflow Manager decomposition).

        Each path is a maximal chain of sequential dependencies; the Strategy
        Optimizer runs the basic path-search algorithm on each in parallel
        (paper §V-C2).
        """
        paths: list[tuple[str, ...]] = []
        for s in self.sources():
            for t in self.sinks():
                if s == t:
                    paths.append((s,))
                    continue
                for path in nx.all_simple_paths(self._graph, s, t):
                    paths.append(tuple(path))
        # A single isolated node is both source and sink; dedupe.
        return tuple(dict.fromkeys(paths))

    def longest_path(self) -> tuple[str, ...]:
        """The longest source→sink path by function count."""
        return tuple(nx.dag_longest_path(self._graph))

    def longest_path_length(self) -> int:
        """Function count of the longest path (drives search complexity)."""
        return len(self.longest_path())

    def depth(self, name: str) -> int:
        """Length of the longest chain of predecessors feeding ``name``."""
        depths: dict[str, int] = {}
        for node in self._topo:
            preds = self.predecessors(node)
            depths[node] = 0 if not preds else 1 + max(depths[p] for p in preds)
        return depths[name]

    # -- latency evaluation --------------------------------------------------
    def critical_path_latency(self, latency: Mapping[str, float]) -> float:
        """E2E latency given per-function stage latencies.

        With adaptive pre-warming every function's initialization is hidden
        behind upstream execution, so the application's E2E latency is the
        longest cumulative stage latency over all paths (Eq. 5 generalized
        to DAGs).
        """
        finish: dict[str, float] = {}
        for node in self._topo:
            start = max(
                (finish[p] for p in self.predecessors(node)), default=0.0
            )
            finish[node] = start + float(latency[node])
        return max(finish[s] for s in self.sinks())

    def critical_path(self, latency: Mapping[str, float]) -> tuple[str, ...]:
        """The functions realizing :meth:`critical_path_latency`."""
        finish: dict[str, float] = {}
        argmax: dict[str, str | None] = {}
        for node in self._topo:
            best_pred, best_t = None, 0.0
            for p in self.predecessors(node):
                if finish[p] > best_t:
                    best_pred, best_t = p, finish[p]
            finish[node] = best_t + float(latency[node])
            argmax[node] = best_pred
        tail = max(self.sinks(), key=lambda s: finish[s])
        path = [tail]
        while argmax[path[-1]] is not None:
            path.append(argmax[path[-1]])  # type: ignore[arg-type]
        return tuple(reversed(path))

    # -- parallel substructures ------------------------------------------------
    def parallel_substructures(self) -> tuple[tuple[str, str], ...]:
        """(start, end) pairs of minimal parallel-branch substructures.

        A substructure is a fork node ``F_s`` with out-degree > 1 paired with
        its join ``F_e`` — the nearest common descendant where the branches
        reconverge.  Returned innermost-first so the Workflow Manager can
        combine smallest substructures first (paper §V-C2).
        """
        pairs: list[tuple[str, str, int]] = []
        for node in self._topo:
            if self._graph.out_degree(node) <= 1:
                continue
            join = self._nearest_join(node)
            if join is None:
                continue
            span = sum(
                1
                for p in nx.all_simple_paths(self._graph, node, join)
                for _ in p
            )
            pairs.append((node, join, span))
        pairs.sort(key=lambda t: t[2])
        return tuple((s, e) for s, e, _ in pairs)

    def _nearest_join(self, fork: str) -> str | None:
        """Nearest descendant reachable from *every* branch of ``fork``."""
        branch_reach: list[set[str]] = []
        for child in self._graph.successors(fork):
            reach = set(nx.descendants(self._graph, child))
            reach.add(child)
            branch_reach.append(reach)
        common = set.intersection(*branch_reach)
        if not common:
            return None
        # topologically earliest common descendant
        for node in self._topo:
            if node in common:
                return node
        return None

    def map_functions(self, fn: Callable[[FunctionSpec], float]) -> dict[str, float]:
        """Apply ``fn`` to every spec, returning ``{name: value}``."""
        return {name: fn(self.spec(name)) for name in self._topo}

    def with_sla(self, sla: float) -> "AppDAG":
        """A copy of this application with a different SLA target."""
        return AppDAG(
            self.name,
            self.specs,
            tuple(self._graph.edges),
            sla=sla,
            work_model=self.work_model,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AppDAG({self.name!r}, functions={len(self)}, "
            f"edges={self._graph.number_of_edges()}, sla={self.sla})"
        )

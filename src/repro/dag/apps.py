"""Builders for the evaluation applications (paper Fig. 7) and synthetic DAGs.

The exact Fig. 7 artwork is not part of the text, so the three application
topologies are reconstructed from the prose descriptions in §VII-A; see
DESIGN.md §4 for the rationale.  ``linear_pipeline`` and ``random_dag`` build
synthetic applications for the overhead study (Fig. 16) and property tests.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.dag.graph import AppDAG, FunctionSpec
from repro.dag.models import get_profile, model_names
from repro.hardware.configs import Backend
from repro.hardware.perfmodel import InitTimeParams, LatencyParams, PerfProfile
from repro.hardware.servicetime import (
    TokenBackendCurve,
    TokenServiceTime,
    TokenThroughputCurve,
    WorkUnit,
)
from repro.utils.rng import ensure_rng
from repro.workload.generator import TokenWorkModel

#: Default SLA target (seconds) used throughout the evaluation (§VII-A).
DEFAULT_SLA = 2.0

#: Default SLA for the LLM archetype — generation is long and heavy-tailed,
#: so the paper's 2 s target would be unconditionally infeasible.
LLM_SLA = 6.0

#: Host→GPU swap-in time as a fraction of the GPU cold-start mean
#: (Torpor/FaaSwap report order-of-magnitude gaps; we use ~1/8).
SWAP_FRACTION = 0.12


def _spec(name: str, model: str | None = None) -> FunctionSpec:
    return FunctionSpec(name=name, profile=get_profile(model or name))


def amber_alert(sla: float = DEFAULT_SLA) -> AppDAG:
    """WL1 — AMBER Alert: object detection fans out to vehicle/person/pose
    analysis, results fuse into an alert message, which is then translated.
    """
    functions = [
        _spec("OD"),
        _spec("IR"),
        _spec("FR"),
        _spec("HAP"),
        _spec("TG"),
        _spec("TRS"),
    ]
    edges = [
        ("OD", "IR"),
        ("OD", "FR"),
        ("OD", "HAP"),
        ("IR", "TG"),
        ("FR", "TG"),
        ("HAP", "TG"),
        ("TG", "TRS"),
    ]
    return AppDAG("amber-alert", functions, edges, sla=sla)


def image_query(sla: float = DEFAULT_SLA) -> AppDAG:
    """WL2 — Image Query: recognition feeds two language-understanding
    branches whose outputs fuse into a natural-language description.
    """
    functions = [_spec("IR"), _spec("DB"), _spec("TM"), _spec("TG")]
    edges = [("IR", "DB"), ("IR", "TM"), ("DB", "TG"), ("TM", "TG")]
    return AppDAG("image-query", functions, edges, sla=sla)


def voice_assistant(sla: float = DEFAULT_SLA) -> AppDAG:
    """WL3 — Voice Assistant: speech-to-text, parallel language analysis,
    answer generation, then speech synthesis.
    """
    functions = [_spec("SR"), _spec("DB"), _spec("NER"), _spec("QA"), _spec("TTS")]
    edges = [
        ("SR", "DB"),
        ("SR", "NER"),
        ("DB", "QA"),
        ("NER", "QA"),
        ("QA", "TTS"),
    ]
    return AppDAG("voice-assistant", functions, edges, sla=sla)


def evaluation_apps(sla: float = DEFAULT_SLA) -> tuple[AppDAG, AppDAG, AppDAG]:
    """The three Fig. 7 workloads with a common SLA target."""
    return (amber_alert(sla), image_query(sla), voice_assistant(sla))


def llm_profile(typical: WorkUnit | None = None) -> PerfProfile:
    """Ground truth for a mid-size generative LLM stage (beyond the paper).

    Service time is token-driven (:class:`TokenServiceTime`): prefill
    processes the prompt in parallel, decode generates output tokens
    autoregressively at a resources-dependent tokens/sec rate.  The
    ``cpu``/``gpu`` latency laws carried alongside are the typical-work
    collapse of the token model, so planners that never pass work (the
    profiler grid, the co-optimizer) see a consistent fixed-latency view.
    Cold starts are heavy (multi-GB weights); numbers follow the Table I
    conventions (λ, network constant, init dispersion).
    """
    typical = typical or WorkUnit(tokens_in=256, tokens_out=128)
    tokens = TokenServiceTime(
        cpu=TokenBackendCurve(
            prefill=TokenThroughputCurve(lam=1.08, alpha=0.02, beta=0.001),
            decode=TokenThroughputCurve(lam=1.08, alpha=0.05, beta=0.01),
            gamma=0.02,
        ),
        gpu=TokenBackendCurve(
            prefill=TokenThroughputCurve(lam=1.0, alpha=0.0004, beta=0.0002),
            decode=TokenThroughputCurve(lam=1.0, alpha=0.002, beta=0.008),
            gamma=0.02,
        ),
        typical=typical,
    )
    return PerfProfile(
        name="LLM",
        cpu=LatencyParams(*tokens.equivalent_law(Backend.CPU)),
        gpu=LatencyParams(*tokens.equivalent_law(Backend.GPU)),
        init_cpu=InitTimeParams(mean=4.0, std=0.32),
        init_gpu=InitTimeParams(mean=12.0, std=1.44),
        mem_knee_gb=10.0,
        max_batch=8,
        service_model=tokens,
    )


def llm_chat(sla: float = LLM_SLA) -> AppDAG:
    """LLM chat archetype: guard → generate → safety filter.

    A lightweight classifier gates the prompt, a token-driven LLM stage
    generates the reply, and a moderation model screens the output.  The
    application carries a :class:`~repro.workload.generator.TokenWorkModel`
    so every invocation draws its own prompt/generation lengths — service
    times are variable and heavy-tailed, the regime the fixed-latency
    paper model cannot express.
    """
    work = TokenWorkModel()
    functions = [
        _spec("GD", "DB"),
        FunctionSpec(name="LLM", profile=llm_profile(work.typical)),
        _spec("SF", "TM"),
    ]
    edges = [("GD", "LLM"), ("LLM", "SF")]
    return AppDAG("llm-chat", functions, edges, sla=sla, work_model=work)


def _swap_capable(profile: PerfProfile, fraction: float = SWAP_FRACTION) -> PerfProfile:
    """A copy of ``profile`` whose model can page host↔GPU memory."""
    mean = fraction * profile.init_gpu.mean
    return dataclasses.replace(
        profile, swap_gpu=InitTimeParams(mean=mean, std=0.2 * mean)
    )


def image_query_swap(sla: float = DEFAULT_SLA) -> AppDAG:
    """WL2 with swap-capable models (Torpor/FaaSwap-style GPU paging).

    Identical topology and latency laws to :func:`image_query`; the only
    difference is that once a model's weights are host-resident, bringing
    it onto a GPU costs a swap-in (≪ cold start) instead of a full
    initialization.  Pairing runs of the two apps isolates the value of
    swapping.
    """
    base = image_query(sla)
    functions = [
        dataclasses.replace(spec, profile=_swap_capable(spec.profile))
        for spec in base.specs
    ]
    return AppDAG(
        "image-query-swap", functions, tuple(base.graph.edges), sla=sla
    )


def linear_pipeline(
    length: int, sla: float = DEFAULT_SLA, models: tuple[str, ...] | None = None
) -> AppDAG:
    """A sequential chain of ``length`` functions (Fig. 16 overhead study).

    Models cycle through the registry unless ``models`` is given.  Function
    names are suffixed with their position so repeated models stay distinct.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    pool = models or model_names()
    functions = [
        FunctionSpec(name=f"f{i}-{pool[i % len(pool)]}", profile=get_profile(pool[i % len(pool)]))
        for i in range(length)
    ]
    edges = [
        (functions[i].name, functions[i + 1].name) for i in range(length - 1)
    ]
    return AppDAG(f"pipeline-{length}", functions, edges, sla=sla)


def random_dag(
    n_functions: int,
    *,
    edge_prob: float = 0.3,
    sla: float = DEFAULT_SLA,
    rng: int | np.random.Generator | None = None,
) -> AppDAG:
    """A random layered DAG over registry models (property-test workhorse).

    Functions are placed in a random topological order; each ordered pair is
    connected with probability ``edge_prob``.  Nodes left unreachable are
    chained to the previous node so the application stays weakly connected.
    """
    if n_functions < 1:
        raise ValueError(f"n_functions must be >= 1, got {n_functions}")
    gen = ensure_rng(rng)
    pool = model_names()
    functions = []
    for i in range(n_functions):
        model = pool[int(gen.integers(len(pool)))]
        functions.append(FunctionSpec(name=f"f{i}-{model}", profile=get_profile(model)))

    parent = list(range(n_functions))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    edges: list[tuple[str, str]] = []
    for i in range(n_functions):
        for j in range(i + 1, n_functions):
            if gen.random() < edge_prob:
                edges.append((functions[i].name, functions[j].name))
                parent[find(j)] = find(i)
    # Keep the graph weakly connected: chain any disconnected component onto
    # the previous node (edges stay forward in index order, so acyclic).
    for i in range(1, n_functions):
        if find(i) != find(0):
            edges.append((functions[i - 1].name, functions[i].name))
            parent[find(i)] = find(i - 1)
    return AppDAG(f"random-{n_functions}", functions, edges, sla=sla)

"""Application DAGs: function specs, graph structure, Table I model registry.

An ML serving application is a directed acyclic graph of inference
functions (paper §II-A).  This package defines the graph abstraction the
Workflow Manager operates on, the registry of the twelve Table I inference
models with their ground-truth performance profiles, and builders for the
three evaluation applications of Fig. 7.
"""

from repro.dag.apps import (
    amber_alert,
    evaluation_apps,
    image_query,
    image_query_swap,
    linear_pipeline,
    llm_chat,
    llm_profile,
    random_dag,
    voice_assistant,
)
from repro.dag.graph import AppDAG, FunctionSpec
from repro.dag.models import (
    MODEL_REGISTRY,
    ModelInfo,
    get_model,
    get_profile,
    model_names,
)

__all__ = [
    "FunctionSpec",
    "AppDAG",
    "ModelInfo",
    "MODEL_REGISTRY",
    "get_model",
    "get_profile",
    "model_names",
    "amber_alert",
    "image_query",
    "image_query_swap",
    "llm_chat",
    "llm_profile",
    "voice_assistant",
    "evaluation_apps",
    "linear_pipeline",
    "random_dag",
]
